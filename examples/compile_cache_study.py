"""Persistent-artifact walkthrough: canonical bytes, fingerprints, the cache.

Everything the AutoComm pipeline produces is deterministic in its inputs,
which makes compiled programs worth keeping.  This walkthrough exercises
the three layers of ``repro.persist`` end to end:

1. **canonical serialization** — save a compiled program as deterministic
   bytes, load it back, and check the round-trip is perfect: identical
   metrics, identical analytical latency, bit-identical re-encoded bytes,
   bit-identical seeded Monte-Carlo latency streams;
2. **content addressing** — show ``compile_fingerprint`` is stable across
   rebuilt objects but moves the moment any compile input changes;
3. **the on-disk compile cache** — time a cold compile-and-store against
   a warm cache hit that skips the whole pipeline, and read the cache's
   own account of what happened.

Run with:  PYTHONPATH=src python examples/compile_cache_study.py
"""

import shutil
import tempfile
import time
from pathlib import Path

from repro import compile_autocomm
from repro.circuits import qft_circuit
from repro.core import AutoCommConfig
from repro.hardware import apply_topology, uniform_network
from repro.persist import (CompileCache, compile_fingerprint, dumps_program,
                           load_program, loads_program, save_program)
from repro.sim import SimulationConfig, run_monte_carlo

SEED = 2022  # the paper's year; any integer reproduces the same study


def build_inputs():
    circuit = qft_circuit(24)
    network = uniform_network(num_nodes=4, qubits_per_node=6)
    apply_topology(network, "ring")
    return circuit, network


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="cache-study-"))
    circuit, network = build_inputs()

    # -- 1. canonical serialization --------------------------------------
    program = compile_autocomm(circuit, network)
    artifact = save_program(program, workdir / "qft24.rpz")
    loaded = load_program(artifact)
    print(f"saved {artifact.name}: {artifact.stat().st_size} bytes "
          f"({len(program.circuit)} gates, latency "
          f"{program.schedule.latency:.1f})")

    assert loaded.metrics.as_dict() == program.metrics.as_dict()
    assert loaded.schedule.latency == program.schedule.latency
    assert dumps_program(loaded) == dumps_program(program)
    data = dumps_program(program)
    assert dumps_program(loads_program(data)) == data  # byte-stable
    print("round-trip: metrics, latency and canonical bytes all identical")

    mc_fresh = run_monte_carlo(program, SimulationConfig(
        p_epr=0.7, trials=8, seed=SEED))
    mc_loaded = run_monte_carlo(loaded, SimulationConfig(
        p_epr=0.7, trials=8, seed=SEED))
    assert mc_loaded.latencies == mc_fresh.latencies
    print(f"seeded Monte-Carlo streams bit-identical over "
          f"{len(mc_fresh.latencies)} trials "
          f"(mean latency {mc_fresh.summary()['mean']:.1f})")

    # -- 2. content addressing -------------------------------------------
    fingerprint = compile_fingerprint(circuit, network)
    rebuilt = compile_fingerprint(*build_inputs())
    assert rebuilt == fingerprint  # fresh objects, same content, same address
    print(f"\nfingerprint {fingerprint[:16]}... is stable across rebuilds")
    for label, changed in [
        ("one more qubit", compile_fingerprint(qft_circuit(25), network)),
        ("phased remap config", compile_fingerprint(
            circuit, network, config=AutoCommConfig(remap="bursts",
                                                    phase_blocks=4))),
    ]:
        assert changed != fingerprint
        print(f"  input change ({label}) -> {changed[:16]}...")

    # -- 3. the compile cache --------------------------------------------
    cache = CompileCache(workdir / "cache")
    begin = time.perf_counter()
    cold = compile_autocomm(circuit, network, cache=cache)
    cold_ms = (time.perf_counter() - begin) * 1e3
    begin = time.perf_counter()
    warm = compile_autocomm(circuit, network, cache=cache)
    warm_ms = (time.perf_counter() - begin) * 1e3

    assert warm.metrics.as_dict() == cold.metrics.as_dict()
    assert [span.name for span in warm.spans.children] == ["cache-lookup"]
    print(f"\ncold compile+store {cold_ms:.1f} ms -> warm hit {warm_ms:.1f} "
          f"ms ({cold_ms / warm_ms:.1f}x); the pipeline never ran "
          "(span tree is a single cache-lookup stage)")

    stats = cache.stats()
    print(f"cache at {stats['directory']}: {stats['entries']} entries, "
          f"{stats['total_bytes']} bytes, counters {stats['counters']}")

    shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
