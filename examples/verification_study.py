"""Static verification walk-through: compile, corrupt, diagnose.

A compiled program is a claim — "this schedule respects its dependency
graph, every qubit lives on exactly one node, every EPR pair travels a
physical link".  :mod:`repro.verify` checks those claims without executing
anything.  This study compiles a QFT benchmark onto a line network, shows
the clean report, then deliberately plants three classes of bug a compiler
pass could realistically introduce and shows the diagnostic each one
triggers:

1. a schedule op whose end precedes its start (causality),
2. an EPR route that jumps a non-adjacent node pair (route validity),
3. a qubit mapped to a node that does not exist (mapping well-formedness).

Run with:  python examples/verification_study.py
"""

from dataclasses import replace

from repro.circuits import qft_circuit
from repro.core import compile_autocomm
from repro.hardware import apply_topology, uniform_network
from repro.hardware.routing import EPRRoute
from repro.verify import verify_program


def compile_study_program():
    circuit = qft_circuit(12)
    network = uniform_network(num_nodes=4, qubits_per_node=3)
    apply_topology(network, "line")
    return compile_autocomm(circuit, network)


def show(title: str, report) -> None:
    print(f"\n--- {title} " + "-" * max(0, 60 - len(title)))
    print(report.render())


def main() -> None:
    program = compile_study_program()
    print(f"compiled {program.name!r}: "
          f"{len(program.schedule.ops)} scheduled ops, "
          f"{program.metrics.num_blocks} comm blocks "
          "on a 4-node line network")

    # --- the honest artifact ----------------------------------------------
    report = verify_program(program)
    show("pristine program", report)
    assert report.clean, "a freshly compiled program must verify clean"

    # --- bug 1: time runs backwards ---------------------------------------
    broken = compile_study_program()
    victim = max(range(len(broken.schedule.ops)),
                 key=lambda i: broken.schedule.ops[i].end)
    op = broken.schedule.ops[victim]
    broken.schedule.ops[victim] = replace(op, end=op.start - 1.0)
    show("schedule op with end < start", verify_program(broken))

    # --- bug 2: an EPR route that teleports across the line ---------------
    broken = compile_study_program()
    routing = broken.network.routing
    for key, route in list(routing._routes.items()):
        if route.num_hops > 1:
            # Pretend distant nodes are directly linked: one "hop" that no
            # physical link backs.
            routing._routes[key] = EPRRoute(path=(key[0], key[1]))
    show("multi-hop routes collapsed to fake direct links",
         verify_program(broken))

    # --- bug 3: a qubit mapped onto a ghost node --------------------------
    broken = compile_study_program()
    broken.mapping._assignment[0] = 99
    show("qubit 0 mapped to nonexistent node 99", verify_program(broken))

    print("\nEvery corruption above is caught statically — no simulation "
          "was run.  The same checks gate CI over the full benchmark "
          "matrix (tools/verify_suite.py) and run after every compile in "
          "the test suite (tests/conftest.py autoverify fixture).")


if __name__ == "__main__":
    main()
