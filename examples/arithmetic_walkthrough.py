"""The paper's Figure 4 / Figure 8 / Figure 11 walk-through, reproduced.

The arithmetic snippet is compiled step by step: the aggregation pass is
shown block by block, the assignment pass's Cat/TP choices are printed, and
the final schedule is compared against executing every remote CX through its
own communication (the paper reports a 2.4x latency saving on this example).

Run with:  python examples/arithmetic_walkthrough.py
"""

from repro import compile_autocomm, compile_sparse
from repro.circuits import arithmetic_snippet, arithmetic_snippet_layout
from repro.core import aggregate_communications, assign_communications
from repro.hardware import uniform_network
from repro.partition import QubitMapping


def main() -> None:
    circuit = arithmetic_snippet()
    layout = arithmetic_snippet_layout()
    network = uniform_network(num_nodes=3, qubits_per_node=3)
    mapping = QubitMapping(layout, network)

    print("program (Figure 4 style arithmetic snippet):")
    for index, gate in enumerate(circuit):
        nodes = "/".join(f"n{layout[q]}" for q in gate.qubits)
        marker = "  <-- remote" if mapping.is_remote(gate) else ""
        print(f"  {index:2d}: {gate!r:20s} [{nodes}]{marker}")

    # --- aggregation -------------------------------------------------------
    aggregation = aggregate_communications(circuit, mapping)
    print(f"\naggregation: {mapping.count_remote_gates(circuit)} remote gates "
          f"grouped into {aggregation.num_blocks()} burst blocks")
    for index, block in enumerate(aggregation.blocks, start=1):
        remotes = block.num_remote_gates(mapping)
        print(f"  block {index}: hub q{block.hub_qubit} <-> node {block.remote_node}, "
              f"{remotes} remote CX, pattern {block.pattern(mapping).value}")

    # --- assignment --------------------------------------------------------
    assignment = assign_communications(aggregation)
    print(f"\nassignment: {assignment.num_cat_blocks()} Cat-Comm blocks, "
          f"{assignment.num_tp_blocks()} TP-Comm blocks, "
          f"{assignment.cost.total_comm} communications in total")
    for index, block in enumerate(assignment.blocks, start=1):
        print(f"  block {index}: {block.scheme.value} "
              f"({block.epr_cost(mapping)} EPR pair(s))")

    # --- scheduling / latency ---------------------------------------------
    autocomm = compile_autocomm(circuit, network, mapping=mapping)
    sparse = compile_sparse(circuit, network, mapping=mapping)
    saving = sparse.metrics.latency / autocomm.metrics.latency
    print(f"\nschedule: AutoComm latency {autocomm.metrics.latency:.1f} CX units, "
          f"per-gate baseline {sparse.metrics.latency:.1f} CX units")
    print(f"latency saving: {saving:.1f}x "
          "(the paper reports 2.4x on its version of this snippet)")


if __name__ == "__main__":
    main()
