"""Quickstart: compile a distributed QFT with AutoComm and compare to the baseline.

Run with:  python examples/quickstart.py
"""

from repro import compile_autocomm, compile_sparse, comparison_factors
from repro.circuits import qft_circuit
from repro.hardware import uniform_network


def main() -> None:
    # A 24-qubit QFT spread over 4 quantum nodes (6 data qubits each, 2
    # communication qubits each, all-to-all EPR links).
    circuit = qft_circuit(24)
    network = uniform_network(num_nodes=4, qubits_per_node=6)

    print(f"program: {circuit.name}, {circuit.num_qubits} qubits, "
          f"{len(circuit)} gates")
    print(f"machine: {network.num_nodes} nodes x {network.node(0).num_data_qubits} "
          f"data qubits, {network.node(0).num_comm_qubits} comm qubits per node\n")

    autocomm = compile_autocomm(circuit, network)
    baseline = compile_sparse(circuit, network, mapping=autocomm.mapping)

    print("                      AutoComm    baseline")
    print(f"remote communications  {autocomm.metrics.total_comm:8d}    "
          f"{baseline.metrics.total_comm:8d}")
    print(f"  of which TP-Comm     {autocomm.metrics.tp_comm:8d}    "
          f"{baseline.metrics.tp_comm:8d}")
    print(f"peak remote CX / comm  {autocomm.metrics.peak_rem_cx:8.1f}    "
          f"{baseline.metrics.peak_rem_cx:8.1f}")
    print(f"program latency [CX]   {autocomm.metrics.latency:8.1f}    "
          f"{baseline.metrics.latency:8.1f}")

    factors = comparison_factors(baseline.metrics, autocomm.metrics)
    print(f"\nimprov. factor (comm): {factors['improv_factor']:.2f}x")
    print(f"LAT-DEC factor (time): {factors['lat_dec_factor']:.2f}x")

    print("\nburst distribution Pr[comm carries >= X remote CX]:")
    for x, probability in sorted(autocomm.burst_distribution(max_x=8).items()):
        bar = "#" * int(40 * probability)
        print(f"  X >= {x:2d}: {probability:5.2f} {bar}")


if __name__ == "__main__":
    main()
