"""Process-parallel Monte-Carlo: same distribution, any worker count.

``run_monte_carlo`` derives every trial's seed from the master generator in
the parent process, so chunking trials across a process pool and merging
the per-worker metric registries reproduces the sequential run exactly.
This walkthrough demonstrates that contract end to end:

1. compile one benchmark and run the same 64-trial study at ``workers=1``
   and ``workers=4``;
2. verify the latency distributions, per-trial seeds and merged metrics
   are identical (not just statistically close);
3. report wall-clock for both runs — speedup is honest about the host's
   CPU count, since a single-core machine only pays the pool's spawn
   overhead.

Run with:  PYTHONPATH=src python examples/parallel_monte_carlo_study.py
"""

import os
import time

from repro import compile_autocomm
from repro.analysis import render_table
from repro.circuits import qft_circuit
from repro.hardware import apply_topology, uniform_network
from repro.sim import SimulationConfig, run_monte_carlo

TRIALS = 64
SEED = 2022


def main() -> None:
    circuit = qft_circuit(24)
    network = uniform_network(num_nodes=4, qubits_per_node=6)
    apply_topology(network, "line")
    program = compile_autocomm(circuit, network)
    cpu_count = os.cpu_count() or 1

    print(f"program: {circuit.name}, {circuit.num_qubits} qubits on "
          f"{network.num_nodes} nodes; host has {cpu_count} cpu(s)")

    # -- 1. the same study, sequential and process-parallel --------------
    rows = []
    results = {}
    for workers in (1, 4):
        config = SimulationConfig(p_epr=0.5, trials=TRIALS, seed=SEED,
                                  workers=workers, record_trace=False)
        begin = time.perf_counter()
        results[workers] = run_monte_carlo(program, config)
        elapsed = time.perf_counter() - begin
        summary = results[workers].summary()
        rows.append({
            "workers": workers,
            "wall_s": round(elapsed, 3),
            "mean": summary["mean"],
            "p95": summary["p95"],
            "max": summary["max"],
        })
    print(f"\n{TRIALS}-trial study at p_epr=0.5 (seed={SEED}):")
    print(render_table(rows, columns=["workers", "wall_s", "mean", "p95",
                                      "max"]))

    # -- 2. bit-identical, not statistically close -----------------------
    sequential, parallel = results[1], results[4]
    assert parallel.latencies == sequential.latencies
    assert parallel.trial_seeds == sequential.trial_seeds
    assert parallel.metrics.as_dict() == sequential.metrics.as_dict()
    print("\nworkers=4 reproduced workers=1 exactly: latencies, trial "
          "seeds\nand merged metrics registry all match.")

    # -- 3. honest speedup report ----------------------------------------
    speedup = rows[0]["wall_s"] / rows[1]["wall_s"] if rows[1]["wall_s"] else 1.0
    print(f"\nwall-clock speedup at 4 workers: {speedup:.2f}x "
          f"(usable parallelism min(4, {cpu_count}) = {min(4, cpu_count)})")
    if cpu_count == 1:
        print("single-core host: the pool can only add spawn overhead; "
              "use workers=1 here.")


if __name__ == "__main__":
    main()
