"""Heterogeneous-link study: what one slow, lossy fibre costs a program.

The paper prices every EPR link identically; real networks mix fibre
lengths and repeater quality.  This walkthrough compiles and executes one
benchmark on a 4-node line whose middle link is progressively degraded
through a :class:`~repro.hardware.links.LinkModel`:

1. uniform links — the baseline (bit-identical to the pre-link-model
   pipeline);
2. a 3x slower middle fibre — weighted routing and per-link pricing raise
   the compiled latency, and deterministic replay still matches the
   analytical schedule exactly;
3. the same slow fibre made lossy (``p_epr < 1``) and capacity-limited —
   a seeded Monte-Carlo study of what the analytical model idealises away;
4. an all-to-all network with one slow direct link, showing the
   latency-weighted router detouring around it.

Run with:  PYTHONPATH=src python examples/heterogeneous_link_study.py
"""

from repro import compile_autocomm
from repro.analysis import render_table
from repro.circuits import qft_circuit
from repro.hardware import (LinkModel, LinkSpec, apply_topology,
                            uniform_network)
from repro.sim import SimulationConfig, run_monte_carlo, validate_schedule

TRIALS = 25
SEED = 2022
BASE_T_EPR = 12.0


def _compile(kind, link_model=None):
    circuit = qft_circuit(16)
    network = uniform_network(num_nodes=4, qubits_per_node=4)
    apply_topology(network, kind, link_model=link_model)
    return compile_autocomm(circuit, network)


def main() -> None:
    # -- 1 + 2. uniform vs heterogeneous latencies ----------------------
    scenarios = [
        ("uniform line", None),
        ("slow middle fibre (3x)",
         LinkModel(LinkSpec(BASE_T_EPR),
                   {(1, 2): LinkSpec(BASE_T_EPR * 3)})),
    ]
    rows = []
    for label, model in scenarios:
        program = _compile("line", model)
        report = validate_schedule(program)
        assert report.matches, "replay must match the analytical schedule"
        metrics = program.metrics
        rows.append({
            "scenario": label,
            "total_comm": metrics.total_comm,
            "epr_pairs": metrics.total_epr_pairs,
            "epr_latency_volume": metrics.total_epr_latency,
            "latency": metrics.latency,
            "replay": "exact" if report.matches else "DIVERGED",
        })
    print("per-link latency pricing (deterministic):\n")
    print(render_table(rows))

    # -- 3. loss and capacity on the degraded fibre ---------------------
    lossy = LinkModel(LinkSpec(BASE_T_EPR),
                      {(1, 2): LinkSpec(BASE_T_EPR * 3, p_epr=0.5,
                                        capacity=1)})
    program = _compile("line", lossy)
    report = validate_schedule(program)  # ideal-links replay still exact
    mc = run_monte_carlo(program, SimulationConfig(
        trials=TRIALS, seed=SEED, record_trace=False))
    summary = mc.summary()
    print("\nlossy + capacity-1 middle fibre (p_epr=0.5, Monte-Carlo "
          f"x{TRIALS}):\n")
    print(render_table([{
        "analytical": report.analytical_latency,
        "ideal_replay": report.simulated_latency,
        "sim_mean": summary["mean"],
        "sim_p95": summary["p95"],
        "slowdown": summary["slowdown"],
        "mean_epr_attempts": summary["mean_epr_attempts"],
    }]))

    # -- 4. weighted routing detours around a slow direct link ----------
    slow_direct = LinkModel(LinkSpec(BASE_T_EPR),
                            {(0, 1): LinkSpec(BASE_T_EPR * 10)})
    network = uniform_network(num_nodes=4, qubits_per_node=4)
    apply_topology(network, "all-to-all", link_model=slow_direct)
    route = network.epr_route(0, 1)
    print("\nall-to-all with a 10x slow 0-1 fibre: route(0, 1) = "
          f"{'-'.join(map(str, route.path))} "
          f"(latency {network.epr_latency(0, 1):.1f} vs "
          f"{BASE_T_EPR * 10:.1f} direct)")


if __name__ == "__main__":
    main()
