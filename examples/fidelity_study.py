"""Fidelity study: what the communication savings buy in output quality.

The paper motivates AutoComm with the noise cost of remote communication
(5-100x slower and up to 40x less accurate than local gates).  This example
feeds the compiled programs into the multiplicative error model of
``repro.analysis.fidelity`` and shows the estimated end-to-end fidelity for
AutoComm, the per-gate baseline and the GP-TP qubit-movement compiler, plus
an ASCII view of the communication schedule.

Run with:  python examples/fidelity_study.py
"""

from repro import compile_autocomm, compile_gp_tp, compile_sparse
from repro.analysis import ErrorModel, estimate_fidelity, fidelity_breakdown, render_table
from repro.analysis.visualize import burst_histogram, schedule_timeline
from repro.circuits import qft_circuit
from repro.hardware import uniform_network


def main() -> None:
    circuit = qft_circuit(20)
    network = uniform_network(num_nodes=4, qubits_per_node=5)
    model = ErrorModel(epr_error=0.02, two_qubit_error=0.002,
                       one_qubit_error=0.0002, coherence_time=20_000.0)

    autocomm = compile_autocomm(circuit, network)
    sparse = compile_sparse(circuit, network, mapping=autocomm.mapping)
    gp_tp = compile_gp_tp(circuit, network, mapping=autocomm.mapping)

    rows = []
    for program in (autocomm, sparse, gp_tp):
        breakdown = fidelity_breakdown(program, model)
        rows.append({
            "compiler": program.compiler,
            "communications": program.metrics.total_comm,
            "latency": round(program.metrics.latency, 1),
            "comm fidelity": round(breakdown["communication"], 3),
            "decoherence": round(breakdown["decoherence"], 3),
            "total fidelity": round(breakdown["total"], 3),
        })
    print(f"estimated output fidelity, {circuit.name} on "
          f"{network.num_nodes} nodes (epr_error={model.epr_error}):\n")
    print(render_table(rows, columns=["compiler", "communications", "latency",
                                      "comm fidelity", "decoherence",
                                      "total fidelity"]))

    print("\nburst-block size histogram (AutoComm):")
    print(burst_histogram(autocomm))

    print("\ncommunication timeline (AutoComm, C=Cat, T=TP, #=overlap):")
    print(schedule_timeline(autocomm))

    gain = estimate_fidelity(autocomm, model) / max(1e-12, estimate_fidelity(sparse, model))
    print(f"\nAutoComm improves the estimated fidelity by {gain:.2f}x over the "
          "per-gate baseline on this instance.")


if __name__ == "__main__":
    main()
