"""Dynamic-remapping study: when moving qubits mid-program pays off.

The paper's pipeline commits to ONE static OEE mapping for the whole
program.  On a constrained topology that forces a compromise: a workload
whose communication pattern *shifts* between burst phases leaves every
static placement wrong for half the program.  Phase-structured compilation
(``AutoCommConfig(remap="bursts")``) segments the aggregated program at
burst-phase boundaries and re-partitions incrementally between phases —
each qubit move is charged its routed teleport latency, so qubits only
migrate where the later phases' savings beat the migration bill.

The workload here has two conflicting phases on a 4-node line
(2 data qubits per node):

* phase A bursts along neighbouring pairs q1-q2 and q5-q6;
* phase B bursts between q1 and q6, which phase A's friendly layout
  keeps 3 routed hops apart.

The study compiles the workload statically and with ``--remap bursts`` and
shows that remapping strictly lowers both the latency-weighted
communication volume (``total_epr_latency``) and the scheduled program
latency — while the deterministic discrete-event replay still reproduces
the analytical schedule exactly, migration teleports included.

Run with:  PYTHONPATH=src python examples/dynamic_remapping_study.py
"""

from repro.analysis import render_table
from repro.core import AutoCommConfig, compile_autocomm
from repro.hardware import apply_topology, uniform_network
from repro.ir.circuit import Circuit
from repro.ir.gates import Gate
from repro.sim import validate_schedule

REPS_A = 8        # neighbour-pair bursts in phase A
REPS_B = 4        # remote gates per phase-B burst
BURSTS_B = 10     # phase-B bursts between the conflicting far pair
PHASE_BLOCKS = 4  # burst blocks per phase when slicing


def phase_shift_circuit() -> Circuit:
    """Two-phase workload whose traffic pattern shifts mid-program."""
    circuit = Circuit(8, name="phase-shift")
    for _ in range(REPS_A):
        circuit.append(Gate("cx", (1, 2)))
        circuit.append(Gate("h", (1,)))
        circuit.append(Gate("cx", (5, 6)))
        circuit.append(Gate("h", (5,)))
    for _ in range(BURSTS_B):
        for _ in range(REPS_B):
            circuit.append(Gate("cx", (1, 6)))
        circuit.append(Gate("h", (1,)))
        circuit.append(Gate("h", (6,)))
    return circuit


def _compile(config=None):
    network = uniform_network(num_nodes=4, qubits_per_node=2)
    apply_topology(network, "line")
    return compile_autocomm(phase_shift_circuit(), network, config=config)


def main() -> None:
    static = _compile()
    remapped = _compile(AutoCommConfig(remap="bursts",
                                       phase_blocks=PHASE_BLOCKS))

    rows = []
    for label, program in (("static mapping", static),
                           ("dynamic remapping", remapped)):
        report = validate_schedule(program)
        assert report.matches, "replay must match the analytical schedule"
        metrics = program.metrics
        rows.append({
            "pipeline": label,
            "phases": metrics.num_phases,
            "migrations": metrics.migration_moves,
            "migration_latency": metrics.migration_latency,
            "epr_latency_volume": metrics.total_epr_latency,
            "latency": metrics.latency,
            "replay": "exact" if report.matches else "DIVERGED",
        })
    print("static vs phase-structured compilation (4-node line):\n")
    print(render_table(rows))

    saved_volume = (static.metrics.total_epr_latency
                    - remapped.metrics.total_epr_latency)
    saved_latency = static.metrics.latency - remapped.metrics.latency
    assert saved_volume > 0, "remapping must strictly lower EPR volume here"
    assert saved_latency > 0, "remapping must strictly lower latency here"
    print(f"\nremapping saves {saved_volume:.0f} CX units of routed EPR "
          f"latency volume and {saved_latency:.1f} CX units of schedule "
          "latency,\nafter paying "
          f"{remapped.metrics.migration_latency:.1f} CX units to migrate "
          f"{remapped.metrics.migration_moves} qubits "
          f"across {remapped.metrics.num_phases} phases.")

    print("\nper-phase mappings (qubit -> node):")
    for phase in remapped.phases:
        moves = ([] if phase.index == 0
                 else remapped.migrations[phase.index - 1])
        note = (f"  ({len(moves)} migrations in)" if moves else "")
        print(f"  phase {phase.index}: {phase.mapping.as_dict()}{note}")


if __name__ == "__main__":
    main()
