"""Distributed QAOA max-cut: the paper's flagship near-term application.

Builds a QAOA circuit for a random 3-regular max-cut instance, distributes it
over a small quantum data centre, and shows how AutoComm's three passes
reshape the communication profile compared to per-gate communication.

Run with:  python examples/qaoa_maxcut.py [num_qubits] [num_nodes]
"""

import sys

from repro import compile_autocomm, compile_sparse
from repro.analysis import mean_remote_cx_per_comm, render_table
from repro.circuits import random_maxcut_graph, qaoa_circuit_for_graph
from repro.comm import CommScheme
from repro.hardware import uniform_network
from repro.ir import decompose_to_cx
from repro.partition import oee_partition


def main(num_qubits: int = 24, num_nodes: int = 4, layers: int = 2) -> None:
    graph = random_maxcut_graph(num_qubits, degree=3, seed=11)
    circuit = qaoa_circuit_for_graph(graph, layers=layers,
                                     name=f"qaoa-{num_qubits}")
    per_node = -(-num_qubits // num_nodes)
    network = uniform_network(num_nodes, per_node)

    print(f"max-cut instance: {graph.number_of_nodes()} vertices, "
          f"{graph.number_of_edges()} edges, p={layers} QAOA layers")

    # Static placement: OEE minimises the number of remote ZZ interactions.
    decomposed = decompose_to_cx(circuit)
    partition = oee_partition(decomposed, network)
    print(f"OEE partition: cut weight {partition.initial_cut:.0f} -> "
          f"{partition.final_cut:.0f} remote interactions "
          f"({partition.num_exchanges} exchanges)\n")

    autocomm = compile_autocomm(circuit, network, mapping=partition.mapping)
    sparse = compile_sparse(circuit, network, mapping=partition.mapping)

    cat = sum(1 for b in autocomm.blocks if b.scheme is CommScheme.CAT)
    tp = sum(1 for b in autocomm.blocks if b.scheme is CommScheme.TP)
    rows = [
        {"metric": "remote gates", "autocomm": autocomm.metrics.num_remote_gates,
         "sparse": sparse.metrics.num_remote_gates},
        {"metric": "burst blocks", "autocomm": len(autocomm.blocks),
         "sparse": len(sparse.blocks)},
        {"metric": "  cat / tp blocks", "autocomm": f"{cat} / {tp}", "sparse": "-"},
        {"metric": "communications", "autocomm": autocomm.metrics.total_comm,
         "sparse": sparse.metrics.total_comm},
        {"metric": "mean REM-CX per comm",
         "autocomm": round(mean_remote_cx_per_comm(autocomm.blocks, autocomm.mapping), 2),
         "sparse": 1.0},
        {"metric": "latency [CX units]", "autocomm": round(autocomm.metrics.latency, 1),
         "sparse": round(sparse.metrics.latency, 1)},
    ]
    print(render_table(rows, columns=["metric", "autocomm", "sparse"]))

    improv = sparse.metrics.total_comm / max(1, autocomm.metrics.total_comm)
    lat_dec = sparse.metrics.latency / max(1e-9, autocomm.metrics.latency)
    print(f"\nAutoComm reduces communications by {improv:.2f}x "
          f"and latency by {lat_dec:.2f}x on this instance.")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args) if args else main()
