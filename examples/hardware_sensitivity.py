"""Hardware sensitivity study: EPR latency and communication-qubit count.

The paper fixes the Table 1 latency numbers and two communication qubits per
node; this example explores how AutoComm's latency advantage over the sparse
baseline changes when those hardware assumptions move — slower EPR
generation widens the gap, and more communication qubits narrow the
scheduling pressure.

Run with:  python examples/hardware_sensitivity.py
"""

from repro import compile_autocomm, compile_sparse
from repro.analysis import render_table
from repro.circuits import qft_circuit
from repro.hardware import LatencyModel, uniform_network
from repro.ir import decompose_to_cx
from repro.partition import oee_partition


def run_point(circuit, mapping, num_nodes, qubits_per_node, comm_qubits, t_epr):
    latency = LatencyModel(t_epr=t_epr)
    network = uniform_network(num_nodes, qubits_per_node,
                              comm_qubits_per_node=comm_qubits, latency=latency)
    autocomm = compile_autocomm(circuit, network, mapping=mapping)
    sparse = compile_sparse(circuit, network, mapping=mapping)
    return autocomm.metrics.latency, sparse.metrics.latency


def main() -> None:
    num_qubits, num_nodes = 20, 4
    qubits_per_node = num_qubits // num_nodes
    circuit = qft_circuit(num_qubits)
    reference_network = uniform_network(num_nodes, qubits_per_node)
    mapping = oee_partition(decompose_to_cx(circuit), reference_network).mapping

    print("EPR preparation latency sweep (2 comm qubits per node):\n")
    rows = []
    for t_epr in (4.0, 8.0, 12.0, 24.0, 48.0):
        auto, sparse = run_point(circuit, mapping, num_nodes, qubits_per_node,
                                 comm_qubits=2, t_epr=t_epr)
        rows.append({"t_epr [CX]": t_epr, "autocomm latency": round(auto, 1),
                     "sparse latency": round(sparse, 1),
                     "LAT-DEC factor": round(sparse / auto, 2)})
    print(render_table(rows))

    print("\ncommunication-qubit count sweep (t_epr = 12 CX):\n")
    rows = []
    for comm_qubits in (1, 2, 4, 8):
        auto, sparse = run_point(circuit, mapping, num_nodes, qubits_per_node,
                                 comm_qubits=comm_qubits, t_epr=12.0)
        rows.append({"comm qubits/node": comm_qubits,
                     "autocomm latency": round(auto, 1),
                     "sparse latency": round(sparse, 1),
                     "LAT-DEC factor": round(sparse / auto, 2)})
    print(render_table(rows))


if __name__ == "__main__":
    main()
