"""Hardware-sensitivity study: stochastic EPR generation under Monte-Carlo.

The analytical scheduler prices every EPR pair at a fixed ``t_epr``; real
heralded-entanglement hardware succeeds each attempt only with probability
``p``.  This walkthrough executes one compiled benchmark on the modelled
hardware with the discrete-event simulator:

1. validate that deterministic execution (p = 1.0) reproduces the
   analytical schedule latency exactly;
2. sweep the attempt success probability and collect seeded latency
   distributions;
3. render the executed schedule (EPR windows included) as a timeline.

Run with:  PYTHONPATH=src python examples/stochastic_epr_study.py
"""

from repro import compile_autocomm
from repro.analysis import render_table, simulation_timeline
from repro.circuits import qft_circuit
from repro.hardware import uniform_network
from repro.sim import SimulationConfig, run_monte_carlo, validate_schedule

TRIALS = 25
SEED = 2022  # the paper's year; any integer reproduces the same study


def main() -> None:
    circuit = qft_circuit(20)
    network = uniform_network(num_nodes=4, qubits_per_node=5)
    program = compile_autocomm(circuit, network)

    print(f"program: {circuit.name}, {circuit.num_qubits} qubits, "
          f"{len(circuit)} gates on {network.num_nodes} nodes")

    # -- 1. deterministic cross-check -----------------------------------
    report = validate_schedule(program)
    print(f"\n{report.describe()}")
    assert report.matches, "analytical schedule and execution disagree!"

    # -- 2. sweep the EPR attempt success probability --------------------
    rows = []
    for p_epr in (1.0, 0.9, 0.75, 0.5, 0.25):
        mc = run_monte_carlo(program, SimulationConfig(
            p_epr=p_epr, trials=TRIALS, seed=SEED))
        summary = mc.summary()
        rows.append({
            "p_epr": p_epr,
            "mean": summary["mean"],
            "std": summary["std"],
            "p95": summary["p95"],
            "max": summary["max"],
            "slowdown": summary["slowdown"],
            "epr_attempts": summary["mean_epr_attempts"],
        })
    print(f"\nlatency over {TRIALS} seeded trials (seed={SEED}), CX units:")
    print(render_table(rows, columns=["p_epr", "mean", "std", "p95", "max",
                                      "slowdown", "epr_attempts"]))

    # -- 3. timeline of one noisy execution ------------------------------
    mc = run_monte_carlo(program, SimulationConfig(p_epr=0.5, trials=1,
                                                   seed=SEED))
    print("\none executed schedule at p_epr=0.5:")
    print(simulation_timeline(mc.sample_trial, network.num_nodes))


if __name__ == "__main__":
    main()
