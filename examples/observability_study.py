"""Observability walkthrough: spans, simulator metrics and run reports.

The compiler and simulator instrument themselves by default.  This
walkthrough compiles a QFT for a four-node line network with dynamic
remapping and then reads everything the run left behind:

1. the stage-timing span tree attached to the compiled program — where
   the compile spent its time, with per-stage counters (commutation-cache
   activity, OEE rounds, migration moves);
2. the simulator's metrics registry from a Monte-Carlo study — per-link
   EPR generations, queue waits by communication kind, comm-qubit
   occupancy per node — aggregated over every trial;
3. a versioned ``RunReport`` JSON artifact plus a Chrome-trace-format
   export of the same run, loadable in chrome://tracing or Perfetto.

Run with:  PYTHONPATH=src python examples/observability_study.py
"""

import json
from pathlib import Path

from repro import compile_autocomm
from repro.circuits import qft_circuit
from repro.core import AutoCommConfig
from repro.hardware import apply_topology, uniform_network
from repro.obs import (RunReport, report_for_program, simulation_trace_events,
                       span_trace_events, validate_trace_events,
                       write_chrome_trace)
from repro.sim import SimulationConfig, run_monte_carlo, simulate_program

TRIALS = 25
SEED = 2022  # the paper's year; any integer reproduces the same study
OUT_DIR = Path(__file__).parent


def main() -> None:
    circuit = qft_circuit(16)
    network = uniform_network(num_nodes=4, qubits_per_node=4)
    apply_topology(network, "line")
    program = compile_autocomm(circuit, network,
                               config=AutoCommConfig(remap="bursts",
                                                     phase_blocks=3))

    # -- 1. where did the compile spend its time? ------------------------
    print("compile stage tree (wall time, with per-stage counters):")
    print(program.spans.render())
    slowest = max(program.spans.children, key=lambda s: s.duration)
    print(f"\nslowest top-level stage: {slowest.name} "
          f"({slowest.duration * 1e3:.2f} ms)")

    # -- 2. what did the simulated hardware do? --------------------------
    mc = run_monte_carlo(program, SimulationConfig(
        p_epr=0.5, trials=TRIALS, seed=SEED))
    metrics = mc.metrics
    print(f"\nsimulator metrics over {TRIALS} trials at p_epr=0.5:")
    print(f"  EPR attempts: {metrics.counter('epr.attempts').value:.0f} "
          f"({metrics.counter('epr.retries').value:.0f} retries)")
    print("  busiest links by EPR generations:")
    for name, value in metrics.top_counters("link.epr_generations", n=3):
        print(f"    {name}: {value:.0f}")
    waits = metrics.histogram("comm.queue_wait", kind="cat").summary()
    print(f"  cat-comm queue wait: mean {waits['mean']:.2f}, "
          f"p95 {waits['p95']:.2f} (CX units)")

    # -- 3. export a run report and a Chrome trace ------------------------
    report = report_for_program(program, kind="simulate",
                                meta={"study": "observability_walkthrough"})
    report.simulation = {"monte_carlo": mc.summary(),
                         "sim_metrics": metrics.as_dict()}
    report_path = report.save(OUT_DIR / "observability_report.json")
    assert RunReport.load(report_path) == report  # round-trips exactly
    print(f"\nwrote {report_path}")

    replay = simulate_program(program, SimulationConfig(p_epr=1.0, seed=SEED))
    events = span_trace_events(program.spans)
    events.extend(simulation_trace_events(replay))
    assert validate_trace_events(events) == []
    trace_path = write_chrome_trace(OUT_DIR / "observability.trace.json",
                                    events)
    print(f"wrote {trace_path} ({len(events)} events) — open in "
          "chrome://tracing or https://ui.perfetto.dev")

    # The artifact is plain JSON: any tooling can consume it.
    payload = json.loads(report_path.read_text())
    print(f"report schema v{payload['schema']}, "
          f"sections: {sorted(payload)}")


if __name__ == "__main__":
    main()
