"""Run every compiler on the scaled benchmark suite and print a comparison.

This reproduces, at reduced scale, the structure of the paper's Table 3 and
Figure 16 in one sweep: AutoComm vs the sparse per-gate baseline vs the GP-TP
qubit-movement compiler, plus the two assignment/aggregation ablations.

Run with:  python examples/compare_compilers.py [small|medium]
"""

import sys

from repro import compile_autocomm, compile_gp_tp, compile_sparse
from repro.analysis import geometric_mean, render_table
from repro.baselines import compile_cat_only, compile_no_commute
from repro.circuits import scaled_configurations
from repro.ir import decompose_to_cx
from repro.partition import oee_partition

COMPILERS = {
    "autocomm": compile_autocomm,
    "sparse": compile_sparse,
    "gp-tp": compile_gp_tp,
    "cat-only": compile_cat_only,
    "no-commute": compile_no_commute,
}


def main(scale: str = "small") -> None:
    rows = []
    improvements = {name: [] for name in COMPILERS if name != "autocomm"}
    for spec in scaled_configurations(scale):
        circuit, network = spec.build()
        mapping = oee_partition(decompose_to_cx(circuit), network).mapping
        results = {name: compiler(circuit, network, mapping=mapping)
                   for name, compiler in COMPILERS.items()}
        row = {"benchmark": spec.name}
        autocomm_comm = results["autocomm"].metrics.total_comm
        for name, program in results.items():
            row[name] = program.metrics.total_comm
            if name != "autocomm" and autocomm_comm:
                improvements[name].append(program.metrics.total_comm / autocomm_comm)
        rows.append(row)

    print("remote communications per compiler (lower is better):\n")
    print(render_table(rows, columns=["benchmark"] + list(COMPILERS)))

    print("\ngeometric-mean communication overhead relative to AutoComm:")
    for name, factors in improvements.items():
        print(f"  {name:12s} {geometric_mean(factors):.2f}x")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "small")
