"""Zero-bubble boundaries study: filling phase boundaries with real work.

Phase-structured compilation (see ``dynamic_remapping_study.py``) makes
every phase boundary a hard barrier: all phase-N work drains, the
migration teleports run, then phase N+1 starts.  The time where only
migrations (or nothing) run is the *boundary bubble* — the phased-schedule
analogue of a pipeline bubble in zero-bubble pipeline parallelism.

``AutoCommConfig(overlap=True)`` replaces the barrier with per-qubit
dependency edges: a migration teleport for qubit q starts as soon as q's
last phase-N op retires, and phase-N+1 ops wait only for the migrations
and predecessors of the qubits they actually touch.  Compute unrelated to
an in-flight teleport keeps running on both sides of the boundary.  The
adaptive scheduler keeps the barrier plans in its candidate pool, so the
overlapped schedule is never slower by construction — and the
deterministic discrete-event replay still reproduces the analytical
schedule exactly.

The workload and machine are the committed remapping scenario: a
phase-shifted burst pattern on a 4-node line with 2 data qubits per node.

Run with:  PYTHONPATH=src python examples/overlap_study.py
"""

from repro.analysis import render_table
from repro.core import AutoCommConfig, compile_autocomm
from repro.hardware import apply_topology, uniform_network
from repro.sim import validate_schedule

from dynamic_remapping_study import PHASE_BLOCKS, phase_shift_circuit


def _compile(overlap: bool):
    network = uniform_network(num_nodes=4, qubits_per_node=2)
    apply_topology(network, "line")
    config = AutoCommConfig(remap="bursts", phase_blocks=PHASE_BLOCKS,
                            overlap=overlap)
    return compile_autocomm(phase_shift_circuit(), network, config=config)


def main() -> None:
    barrier = _compile(overlap=False)
    overlapped = _compile(overlap=True)

    rows = []
    for label, program in (("barrier boundaries", barrier),
                           ("zero-bubble overlap", overlapped)):
        report = validate_schedule(program)
        assert report.matches, "replay must match the analytical schedule"
        metrics = program.metrics
        rows.append({
            "boundaries": label,
            "phases": metrics.num_phases,
            "migrations": metrics.migration_moves,
            "boundary_bubble": round(metrics.boundary_bubble, 1),
            "latency": round(metrics.latency, 1),
            "replay": "exact" if report.matches else "DIVERGED",
        })
    print("barrier vs zero-bubble phase boundaries (4-node line):\n")
    print(render_table(rows))

    saved_bubble = (barrier.metrics.boundary_bubble
                    - overlapped.metrics.boundary_bubble)
    saved_latency = barrier.metrics.latency - overlapped.metrics.latency
    assert saved_latency > 0, "overlap must strictly lower latency here"
    assert overlapped.metrics.latency <= barrier.metrics.latency, \
        "overlap must never be slower than the barrier schedule"
    print(f"\noverlapping migration with compute removes {saved_bubble:.1f} "
          "CX units of boundary\nbubble and "
          f"{saved_latency:.1f} CX units of schedule latency "
          f"({barrier.metrics.latency:.1f} -> "
          f"{overlapped.metrics.latency:.1f}),\nwith the same "
          f"{overlapped.metrics.migration_moves} migrations across "
          f"{overlapped.metrics.num_phases} phases.")


if __name__ == "__main__":
    main()
