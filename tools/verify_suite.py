#!/usr/bin/env python3
"""CI gate: run the static verifier over the whole benchmark matrix.

Sweeps every benchmark family x topology x remap mode, compiles each
combination and runs every program-scope check of :mod:`repro.verify`
over the artifact; with ``--simulate`` (the CI default) each program is
additionally executed once deterministically and the trace sanitizer
passes run over the result.  The gate demands **zero** diagnostics —
warnings included — across the matrix, and writes a JSON diagnostics
report suitable for upload as a CI artifact.

Usage::

    python tools/verify_suite.py --output verify_report.json
    python tools/verify_suite.py --qubits 12 --nodes 4 --no-simulate
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(_SRC))

from repro.circuits import BENCHMARK_FAMILIES, build_benchmark
from repro.core import AutoCommConfig, compile_autocomm
from repro.hardware import SUPPORTED_TOPOLOGIES, apply_topology
from repro.persist import CompileCache
from repro.sim import SimulationConfig, simulate_program
from repro.verify import sanitize_simulation, verify_program

REMAP_MODES = ("never", "bursts")


def _compile(family: str, topology: str, remap: str, qubits: int,
             nodes: int, cache=None):
    circuit, network = build_benchmark(family, qubits, nodes)
    if topology != "all-to-all":
        apply_topology(network, topology)
    config = (AutoCommConfig(remap="bursts", phase_blocks=4)
              if remap == "bursts" else None)
    return compile_autocomm(circuit, network, config=config, cache=cache)


def run_matrix(qubits: int, nodes: int, simulate: bool,
               cache: "CompileCache | None" = None) -> dict:
    entries = []
    total_diagnostics = 0
    for family in sorted(BENCHMARK_FAMILIES):
        for topology in SUPPORTED_TOPOLOGIES:
            for remap in REMAP_MODES:
                label = f"{family.lower()}/{topology}/{remap}"
                program = _compile(family, topology, remap, qubits, nodes,
                                   cache=cache)
                report = verify_program(program)
                if simulate:
                    config = SimulationConfig(ideal_links=True)
                    result = simulate_program(program, config)
                    report.merge(sanitize_simulation(program, result,
                                                     config))
                entry = {
                    "family": family,
                    "topology": topology,
                    "remap": remap,
                    "checks_run": list(report.checks_run),
                    "clean": report.clean,
                    "diagnostics": [d.as_dict() for d in report.diagnostics],
                }
                entries.append(entry)
                total_diagnostics += len(report.diagnostics)
                status = ("ok" if report.clean
                          else f"{len(report.diagnostics)} diagnostics")
                print(f"verify {label}: {len(report.checks_run)} checks, "
                      f"{status}")
                if not report.clean:
                    for diagnostic in report.diagnostics:
                        print(f"  {diagnostic}")
    payload = {
        "command": "verify_suite",
        "schema": 1,
        "qubits": qubits,
        "nodes": nodes,
        "simulate": simulate,
        "combinations": len(entries),
        "total_diagnostics": total_diagnostics,
        "entries": entries,
    }
    if cache is not None:
        payload["cache"] = cache.counters()
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="verify every benchmark family x topology x remap mode "
                    "compiles to a diagnostics-free artifact")
    parser.add_argument("--qubits", type=int, default=12,
                        help="circuit width per benchmark (default 12)")
    parser.add_argument("--nodes", type=int, default=4,
                        help="network nodes (default 4)")
    parser.add_argument("--no-simulate", dest="simulate",
                        action="store_false",
                        help="skip the deterministic-execution sanitize "
                             "passes (static checks only)")
    parser.add_argument("--output", type=Path, default=None, metavar="PATH",
                        help="write the JSON diagnostics report to PATH")
    parser.add_argument("--cache-dir", type=Path, default=None, metavar="DIR",
                        help="compile through a persistent compile cache "
                             "rooted at DIR (repro.persist)")
    parser.add_argument("--expect-warm", action="store_true",
                        help="fail unless every combination was served from "
                             "the cache (requires --cache-dir); proves a "
                             "pre-populated cache covers the whole matrix")
    args = parser.parse_args(argv)

    if args.expect_warm and args.cache_dir is None:
        parser.error("--expect-warm requires --cache-dir")
    cache = None if args.cache_dir is None else CompileCache(args.cache_dir)

    payload = run_matrix(args.qubits, args.nodes, args.simulate, cache=cache)
    if args.output is not None:
        args.output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.output}")
    print(f"{payload['combinations']} combinations, "
          f"{payload['total_diagnostics']} diagnostics")
    if cache is not None:
        counters = payload["cache"]
        print(f"compile cache: {counters['hits']} hits, "
              f"{counters['misses']} misses, {counters['stores']} stores")
        if args.expect_warm and counters["hits"] != payload["combinations"]:
            print(f"FAIL: expected all {payload['combinations']} "
                  f"combinations served warm, got {counters['hits']} hits "
                  f"({counters['misses']} misses)", file=sys.stderr)
            return 1
    return 1 if payload["total_diagnostics"] else 0


if __name__ == "__main__":
    sys.exit(main())
