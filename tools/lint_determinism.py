#!/usr/bin/env python3
"""AST lint: ban nondeterminism sources in ``src/repro``.

Reproducibility is a headline claim of this codebase — every simulation is
replayable from one master seed.  This linter statically rejects the
constructs that silently break that promise:

* ``random-global`` — the ``random`` module's global convenience API
  (``random.random()``, ``random.shuffle()``, ...).  Shared global state;
  use an explicit ``random.Random(seed)`` instance instead.
* ``wall-clock`` — ``datetime.now()`` / ``utcnow()`` / ``today()`` and
  ``time.time()`` / ``time_ns()``.  Wall-clock reads make output depend on
  when it ran; monotonic timers (``perf_counter``) for *durations* are
  fine and remain allowed.
* ``numpy-random`` — numpy's global convenience API
  (``np.random.rand()``, ``np.random.seed()``, ...) and **unseeded**
  generator construction (``default_rng()`` / ``RandomState()`` with no
  arguments).  Seeded construction is the supported idiom.
* ``set-iteration`` — iterating a set (``for x in set(...)``, set
  literals/comprehensions as loop iterables, ``list(set(...))``).
  CPython's set order is insertion-and-hash dependent; wrap in
  ``sorted(...)`` to pin the order.
* ``hash-id`` — the ``hash()`` and ``id()`` builtins.  ``hash()`` of a
  string varies per process (``PYTHONHASHSEED``) and ``id()`` is a memory
  address; neither may leak into persisted payloads or cache fingerprints.
  Opt-in: applied only where ``STRICT_RULES`` says so (``repro/persist``),
  where every emitted byte must be stable across processes.

Per-file exemptions live in ``ALLOWLIST`` (path suffix -> rule ids), each
with a reason a reviewer can audit; ``STRICT_RULES`` is the inverse — path
fragments where *extra* opt-in rules apply.  Run
``python tools/lint_determinism.py`` from the repository root; exit
status 1 means findings.
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Mapping, Tuple

#: Path suffix -> rule ids exempted there.  Keep reasons next to entries.
ALLOWLIST: Mapping[str, FrozenSet[str]] = {
    # Builds RandomState shells whose state is immediately overwritten from
    # the seeded random.Random stream (see _SCRATCH_STATE and set_state);
    # no unseeded draw can ever happen.
    "sim/epr_process.py": frozenset({"numpy-random"}),
}

#: Path fragment -> extra opt-in rule ids enforced there.  The persistence
#: layer writes content-addressed artifacts, so anything process-dependent
#: (hash randomisation, object addresses) is banned outright.
STRICT_RULES: Mapping[str, FrozenSet[str]] = {
    "repro/persist/": frozenset({"hash-id"}),
}

_RANDOM_GLOBAL_FNS = {
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate", "weibullvariate",
}
_WALL_CLOCK_FNS = {"now", "utcnow", "today"}
_TIME_FNS = {"time", "time_ns", "ctime"}
#: Rules that apply only where STRICT_RULES opts a path in.
_OPT_IN_RULES = frozenset({"hash-id"})

_NUMPY_RANDOM_FNS = {
    "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
    "exponential", "gamma", "geometric", "normal", "permutation", "poisson",
    "rand", "randint", "randn", "random", "random_sample", "ranf", "sample",
    "seed", "shuffle", "standard_normal", "uniform",
}


@dataclass(frozen=True)
class Finding:
    """One determinism violation at one source location."""

    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name of an expression ('' when not a name chain)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: List[Finding] = []
        #: Names bound by ``from random import shuffle``-style imports.
        self._random_from_imports: Dict[str, str] = {}

    def _add(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(Finding(self.path, node.lineno, rule, message))

    # ----------------------------------------------------------- imports

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                if alias.name in _RANDOM_GLOBAL_FNS:
                    bound = alias.asname or alias.name
                    self._random_from_imports[bound] = alias.name
                    self._add(node, "random-global",
                              f"'from random import {alias.name}' binds the "
                              "shared global RNG; use a seeded "
                              "random.Random instance")
        self.generic_visit(node)

    # ------------------------------------------------------------- calls

    def visit_Call(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        self._check_call(node, name)
        if isinstance(node.func, ast.Name) and node.func.id in ("hash", "id"):
            self._add(node, "hash-id",
                      f"{node.func.id}() is process-dependent "
                      f"({'PYTHONHASHSEED' if node.func.id == 'hash' else 'a memory address'}); "
                      "it must not shape persisted payloads or fingerprints")
        if (isinstance(node.func, ast.Name)
                and node.func.id in ("list", "tuple")
                and len(node.args) == 1
                and _is_set_expression(node.args[0])):
            self._add(node, "set-iteration",
                      f"{node.func.id}(set(...)) freezes a hash-dependent "
                      "order; use sorted(...)")
        self.generic_visit(node)

    def _check_call(self, node: ast.Call, name: str) -> None:
        if not name:
            return
        head, _, tail = name.partition(".")
        last = name.rsplit(".", 1)[-1]
        if name in self._random_from_imports:
            self._add(node, "random-global",
                      f"{name}() draws from the shared global RNG")
            return
        if head == "random" and tail in _RANDOM_GLOBAL_FNS:
            self._add(node, "random-global",
                      f"{name}() draws from the shared global RNG; use a "
                      "seeded random.Random instance")
            return
        if last in _WALL_CLOCK_FNS and any(
                part in ("datetime", "date") for part in name.split(".")[:-1]):
            self._add(node, "wall-clock",
                      f"{name}() reads the wall clock; results become "
                      "time-of-run dependent")
            return
        if head == "time" and tail in _TIME_FNS:
            self._add(node, "wall-clock",
                      f"{name}() reads the wall clock; use a monotonic "
                      "timer for durations")
            return
        if self._is_numpy_random(name, last):
            if last in ("default_rng", "RandomState"):
                if not node.args and not node.keywords:
                    self._add(node, "numpy-random",
                              f"{name}() without a seed is entropy-seeded "
                              "and unreproducible")
            else:
                self._add(node, "numpy-random",
                          f"{name}() uses numpy's global RNG; construct a "
                          "seeded Generator instead")

    @staticmethod
    def _is_numpy_random(name: str, last: str) -> bool:
        parts = name.split(".")
        if last in ("default_rng", "RandomState"):
            return len(parts) == 1 or "random" in parts[:-1] or \
                parts[0] in ("np", "numpy")
        return (len(parts) >= 3 and parts[0] in ("np", "numpy")
                and parts[1] == "random" and last in _NUMPY_RANDOM_FNS)

    # --------------------------------------------------------- iteration

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def _check_iterable(self, iterable: ast.AST) -> None:
        if _is_set_expression(iterable):
            self._add(iterable, "set-iteration",
                      "iterating a set has hash-dependent order; wrap in "
                      "sorted(...)")


def check_source(source: str, filename: str,
                 allow: FrozenSet[str] = frozenset(),
                 extra: FrozenSet[str] = frozenset()) -> List[Finding]:
    """Lint one module's source text; returns the findings not allowed.

    ``extra`` activates opt-in rules (see ``STRICT_RULES``) for this file;
    opt-in findings are dropped everywhere else.
    """
    tree = ast.parse(source, filename=filename)
    visitor = _DeterminismVisitor(filename)
    visitor.visit(tree)
    return [f for f in visitor.findings
            if f.rule not in allow
            and (f.rule not in _OPT_IN_RULES or f.rule in extra)]


def _allowed_rules(path: Path) -> FrozenSet[str]:
    posix = path.as_posix()
    for suffix, rules in ALLOWLIST.items():
        if posix.endswith(suffix):
            return rules
    return frozenset()


def _extra_rules(path: Path) -> FrozenSet[str]:
    posix = path.as_posix()
    extra: FrozenSet[str] = frozenset()
    for fragment, rules in STRICT_RULES.items():
        if fragment in posix:
            extra |= rules
    return extra


def check_file(path: Path) -> List[Finding]:
    return check_source(path.read_text(), str(path), _allowed_rules(path),
                        _extra_rules(path))


def iter_py_files(root: Path) -> Iterable[Path]:
    yield from sorted(root.rglob("*.py"))


def main(argv: Tuple[str, ...] = None) -> int:
    parser = argparse.ArgumentParser(
        description="ban nondeterminism sources (global RNGs, wall-clock "
                    "reads, set-order iteration) from the package sources")
    parser.add_argument("paths", nargs="*", type=Path,
                        default=[Path("src/repro")],
                        help="files or directories to lint "
                             "(default: src/repro)")
    args = parser.parse_args(argv)
    findings: List[Finding] = []
    for target in args.paths:
        if target.is_dir():
            for path in iter_py_files(target):
                findings.extend(check_file(path))
        else:
            findings.extend(check_file(target))
    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} determinism finding"
              f"{'s' if len(findings) != 1 else ''}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
