"""Setuptools shim.

The environment used for the reproduction has no network access and no
``wheel`` package, so PEP 517 editable installs are unavailable; this shim
lets ``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``pip install -e .`` on modern setups) work from the pyproject metadata.
"""

from setuptools import setup

setup()
