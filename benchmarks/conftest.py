"""Pytest configuration for the benchmark harnesses.

Adds the benchmarks directory to ``sys.path`` so the `_harness` helper module
is importable regardless of how pytest is invoked, and provides a
session-scoped cache so expensive compilations are shared between benchmark
functions that need the same compiled program.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, _SRC)

import pytest


@pytest.fixture(scope="session")
def compile_cache():
    """Session-wide memo table: (compiler-name, spec-name) -> CompiledProgram."""
    return {}
