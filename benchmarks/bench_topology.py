"""Topology-sensitivity benchmark (the ``BENCH_topology.json`` trajectory).

Compiles each benchmark configuration for every supported network topology
through the full topology-aware pipeline (hop-weighted OEE partitioning,
routed assignment, itinerary-charged scheduling) and measures what
constrained connectivity costs relative to the paper's all-to-all
assumption:

* ``total_epr_pairs`` — physical EPR pairs consumed, entanglement swaps
  included (equals ``total_comm`` on all-to-all);
* analytical schedule latency, plus its deterministic discrete-event
  replay (``p_epr = 1.0``), which must reproduce it exactly for every
  topology — the benchmark doubles as a routed-simulation validation;
* the all-to-all run must be byte-identical to a compile on an unrouted
  network, guarding the "topology-aware changes nothing when the topology
  is unconstrained" invariant;
* every topology is additionally compiled with a heterogeneous
  ``noisy_spine`` link model (``<kind>+hetero`` rows): latency-weighted
  routing plus per-link pricing, whose deterministic replay must also match
  the analytical schedule exactly;
* line/ring/grid are additionally compiled with dynamic inter-phase
  remapping (``<kind>+remap`` rows, ``AutoCommConfig(remap="bursts")``):
  the rows compare the remapped EPR latency volume and schedule latency
  against the static mapping, and the deterministic replay check covers
  the phased plan, migration teleports included;
* every ``+remap`` row gains a zero-bubble sibling
  (``<kind>+remap+overlap``, ``AutoCommConfig(overlap=True)``): the
  ``latency_vs_barrier`` column compares the overlapped schedule against
  its barrier counterpart and must stay ``<= 1.0`` — the scheduler keeps
  barrier plans as candidates, so overlap is never slower — and the
  replay check covers the per-qubit overlapped plan;
* the cost of building a latency-weighted RoutingTable is measured against
  the unit-weight build on a 64-node grid, with a regression guard on the
  ratio (same Dijkstra, float weight sums — a blowup means a complexity
  regression in the weighted path).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_topology.py \
        --scale small --output BENCH_topology.json

or through pytest (``pytest benchmarks/bench_topology.py``), which writes
``benchmarks/results/topology_sensitivity.txt`` as the other harnesses do.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent
if __name__ == "__main__":  # allow standalone runs without PYTHONPATH=src
    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        try:
            import repro  # noqa: F401
        except ImportError:
            sys.path.insert(0, src)

from _harness import BENCH_SCALES, emit
from repro.analysis import topology_row
from repro.circuits import BenchmarkSpec, paper_configurations, scaled_configurations
from repro.core import AutoCommConfig, compile_autocomm
from repro.hardware import (RoutingTable, SUPPORTED_TOPOLOGIES,
                            apply_topology, link_model_from_profile,
                            topology_graph)
from repro.sim import validate_schedule

DEFAULT_FAMILIES = ("QFT", "BV", "QAOA")
DEFAULT_SWAP_OVERHEAD = 1.0
#: Preset used for the heterogeneous-link rows: spine links 2.5x slower,
#: which is heterogeneous (and therefore weighted-routed) on every topology.
HETERO_PROFILE = "noisy_spine"
HETERO_FACTOR = 2.5
#: Topologies the dynamic-remapping rows compare remap vs static on, and
#: the phase quota they slice with (small so small-scale programs phase up).
REMAP_TOPOLOGIES = ("line", "ring", "grid")
REMAP_PHASE_BLOCKS = 4
#: Weighted construction may cost more than the unit-weight search (float
#: weight sums instead of int hop counts) but must stay the same algorithm;
#: a blowup beyond this ratio flags a complexity regression.
ROUTING_COST_MAX_RATIO = 5.0
ROUTING_COST_NODES = 64


def _compile_for_topology(spec: BenchmarkSpec, kind: str,
                          swap_overhead: float, hetero: bool = False,
                          config: Optional[AutoCommConfig] = None):
    circuit, network = spec.build()
    if hetero:
        graph = topology_graph(kind, network.num_nodes)
        model = link_model_from_profile(HETERO_PROFILE, graph,
                                        network.latency.t_epr,
                                        factor=HETERO_FACTOR)
        apply_topology(network, kind, swap_overhead=swap_overhead,
                       link_model=model)
    elif kind != "unrouted":
        apply_topology(network, kind, swap_overhead=swap_overhead)
    return compile_autocomm(circuit, network, config=config)


def _bench_spec(spec: BenchmarkSpec,
                swap_overhead: float) -> List[Dict[str, object]]:
    # The unrouted compile is the pre-topology-support behaviour; the routed
    # all-to-all run must reproduce it byte-for-byte.
    unrouted = _compile_for_topology(spec, "unrouted", swap_overhead)
    baseline = _compile_for_topology(spec, "all-to-all", swap_overhead)
    matches_unrouted = (
        baseline.metrics.as_dict() == unrouted.metrics.as_dict()
        and [b.scheme for b in baseline.blocks]
        == [b.scheme for b in unrouted.blocks]
        and baseline.mapping.as_dict() == unrouted.mapping.as_dict())

    rows = []
    for kind in SUPPORTED_TOPOLOGIES:
        program = (baseline if kind == "all-to-all"
                   else _compile_for_topology(spec, kind, swap_overhead))
        report = validate_schedule(program)
        row = topology_row(program, baseline=baseline,
                           simulated_latency=report.simulated_latency)
        row["replay_validated"] = report.matches
        if kind == "all-to-all":
            row["matches_unrouted"] = matches_unrouted
        rows.append(row)
        # The same topology with heterogeneous (noisy-spine) links: weighted
        # routing plus per-link pricing, whose deterministic replay must
        # still reproduce the analytical latency exactly.
        hetero = _compile_for_topology(spec, kind, swap_overhead, hetero=True)
        hetero_report = validate_schedule(hetero)
        hetero_row = topology_row(hetero, baseline=baseline,
                                  simulated_latency=hetero_report.simulated_latency)
        hetero_row["topology"] = f"{kind}+hetero"
        hetero_row["replay_validated"] = hetero_report.matches
        rows.append(hetero_row)
        # Dynamic inter-phase remapping vs the static mapping on the same
        # constrained topology: migration teleports included, so the
        # deterministic replay check also covers the phased plan.
        if kind in REMAP_TOPOLOGIES:
            remap = _compile_for_topology(
                spec, kind, swap_overhead,
                config=AutoCommConfig(remap="bursts",
                                      phase_blocks=REMAP_PHASE_BLOCKS))
            remap_report = validate_schedule(remap)
            remap_row = topology_row(
                remap, baseline=baseline,
                simulated_latency=remap_report.simulated_latency)
            remap_row["topology"] = f"{kind}+remap"
            remap_row["replay_validated"] = remap_report.matches
            remap_row["num_phases"] = remap.metrics.num_phases
            remap_row["migration_moves"] = remap.metrics.migration_moves
            remap_row["migration_latency"] = remap.metrics.migration_latency
            remap_row["total_epr_latency"] = remap.metrics.total_epr_latency
            static_epr_latency = program.metrics.total_epr_latency
            remap_row["epr_latency_vs_static"] = (
                remap.metrics.total_epr_latency / static_epr_latency
                if static_epr_latency else 1.0)
            remap_row["latency_vs_static"] = (
                remap.metrics.latency / program.metrics.latency
                if program.metrics.latency else 1.0)
            remap_row["boundary_bubble"] = remap.metrics.boundary_bubble
            rows.append(remap_row)
            # Zero-bubble boundaries: the same phased compile with the
            # barrier replaced by per-qubit migration/compute overlap.
            # The scheduler keeps the barrier plans as candidates, so
            # latency_vs_barrier must never exceed 1.0.
            overlap = _compile_for_topology(
                spec, kind, swap_overhead,
                config=AutoCommConfig(remap="bursts",
                                      phase_blocks=REMAP_PHASE_BLOCKS,
                                      overlap=True))
            overlap_report = validate_schedule(overlap)
            overlap_row = topology_row(
                overlap, baseline=baseline,
                simulated_latency=overlap_report.simulated_latency)
            overlap_row["topology"] = f"{kind}+remap+overlap"
            overlap_row["replay_validated"] = overlap_report.matches
            overlap_row["num_phases"] = overlap.metrics.num_phases
            overlap_row["migration_moves"] = overlap.metrics.migration_moves
            overlap_row["migration_latency"] = overlap.metrics.migration_latency
            overlap_row["total_epr_latency"] = overlap.metrics.total_epr_latency
            overlap_row["boundary_bubble"] = overlap.metrics.boundary_bubble
            overlap_row["latency_vs_static"] = (
                overlap.metrics.latency / program.metrics.latency
                if program.metrics.latency else 1.0)
            overlap_row["latency_vs_barrier"] = (
                overlap.metrics.latency / remap.metrics.latency
                if remap.metrics.latency else 1.0)
            overlap_row["bubble_vs_barrier"] = (
                overlap.metrics.boundary_bubble
                - remap.metrics.boundary_bubble)
            rows.append(overlap_row)
    return rows


def _routing_construction_cost() -> Dict[str, object]:
    """Unit-weight vs latency-weighted RoutingTable construction time.

    The regression guard is the *ratio*: weighted construction runs the same
    Dijkstra with float weight sums, so it may cost a constant factor over
    the int hop search but never a complexity class.  Absolute timings are
    recorded for the trajectory.
    """
    import time

    graph = topology_graph("grid", ROUTING_COST_NODES)
    model = link_model_from_profile("distance_scaled", graph, 12.0)
    weights = model.routing_weights(graph.edges)
    assert weights is not None

    def _best_of(builder, repeats: int = 3) -> float:
        best = float("inf")
        for _ in range(repeats):
            begin = time.perf_counter()
            builder()
            best = min(best, time.perf_counter() - begin)
        return best

    unweighted_s = _best_of(lambda: RoutingTable(graph))
    weighted_s = _best_of(lambda: RoutingTable(graph, weights=weights))
    ratio = weighted_s / unweighted_s if unweighted_s > 0 else 1.0
    return {
        "nodes": ROUTING_COST_NODES,
        "edges": graph.number_of_edges(),
        "unweighted_ms": round(unweighted_s * 1e3, 3),
        "weighted_ms": round(weighted_s * 1e3, 3),
        "weighted_over_unweighted": round(ratio, 3),
        "max_ratio": ROUTING_COST_MAX_RATIO,
    }


def run_bench(scale: str, families: Sequence[str] = DEFAULT_FAMILIES,
              swap_overhead: float = DEFAULT_SWAP_OVERHEAD) -> Dict[str, object]:
    if scale == "paper":
        specs = paper_configurations()
    else:
        specs = scaled_configurations(scale)
    wanted = {family.upper() for family in families}
    specs = [spec for spec in specs if spec.family in wanted]
    if not specs:
        raise ValueError(f"no benchmark configurations for families {families}")

    configs: List[Dict[str, object]] = []
    for spec in specs:
        configs.extend(_bench_spec(spec, swap_overhead))
    # The +remap/+remap+overlap rows are a separate study (remap vs
    # static, overlap vs barrier); the inflation aggregates keep their
    # schema-2 meaning over the static pipeline's rows only.
    remap_rows = [c for c in configs if str(c["topology"]).endswith("+remap")]
    overlap_rows = [c for c in configs
                    if str(c["topology"]).endswith("+remap+overlap")]
    static_rows = [c for c in configs
                   if "+remap" not in str(c["topology"])]
    constrained = [c for c in static_rows if c["topology"] != "all-to-all"]
    return {
        "bench": "topology_sensitivity",
        "schema": 4,
        "scale": scale,
        "swap_overhead": swap_overhead,
        "hetero_profile": {"name": HETERO_PROFILE, "factor": HETERO_FACTOR},
        "remap": {"phase_blocks": REMAP_PHASE_BLOCKS,
                  "topologies": list(REMAP_TOPOLOGIES)},
        "configs": configs,
        "routing_construction": _routing_construction_cost(),
        "all_replays_validated": all(c["replay_validated"] for c in configs),
        "all_to_all_matches_unrouted": all(
            c["matches_unrouted"] for c in configs
            if c["topology"] == "all-to-all"),
        "epr_pairs_never_below_logical": all(
            c["total_epr_pairs"] >= c["total_comm"] for c in static_rows),
        "max_epr_pair_inflation": max(
            (c["epr_pairs_vs_all_to_all"] for c in constrained), default=1.0),
        "max_latency_inflation": max(
            (c["latency_vs_all_to_all"] for c in constrained), default=1.0),
        "min_remap_epr_latency_vs_static": min(
            (c["epr_latency_vs_static"] for c in remap_rows), default=1.0),
        "max_remap_epr_latency_vs_static": max(
            (c["epr_latency_vs_static"] for c in remap_rows), default=1.0),
        "max_overlap_latency_vs_barrier": max(
            (c["latency_vs_barrier"] for c in overlap_rows), default=1.0),
        "overlap_never_slower": all(
            c["latency_vs_barrier"] <= 1.0 + 1e-9 for c in overlap_rows),
    }


def _check(report: Dict[str, object]) -> List[str]:
    failures = []
    if not report["all_replays_validated"]:
        failures.append("deterministic replay diverged from the analytical "
                        "schedule on some topology (heterogeneous links "
                        "included)")
    if not report["all_to_all_matches_unrouted"]:
        failures.append("routed all-to-all compile differs from the "
                        "unrouted baseline")
    if not report["epr_pairs_never_below_logical"]:
        failures.append("physical EPR-pair count fell below the logical "
                        "communication count")
    if not report["overlap_never_slower"]:
        failures.append(
            "an overlapped schedule came out slower than its barrier "
            "counterpart (latency_vs_barrier "
            f"{report['max_overlap_latency_vs_barrier']:.4f}x > 1.0)")
    routing = report["routing_construction"]
    if routing["weighted_over_unweighted"] > routing["max_ratio"]:
        failures.append(
            "weighted RoutingTable construction regressed: "
            f"{routing['weighted_over_unweighted']:.2f}x the unit-weight "
            f"build (allowed {routing['max_ratio']}x)")
    return failures


def _emit_report(report: Dict[str, object]) -> None:
    routing = report["routing_construction"]
    note = (f"swap_overhead={report['swap_overhead']}; max inflation vs "
            f"all-to-all: EPR pairs {report['max_epr_pair_inflation']:.2f}x, "
            f"latency {report['max_latency_inflation']:.2f}x; remap EPR "
            "latency vs static "
            f"{report['min_remap_epr_latency_vs_static']:.2f}x.."
            f"{report['max_remap_epr_latency_vs_static']:.2f}x; overlap "
            "latency vs barrier <= "
            f"{report['max_overlap_latency_vs_barrier']:.2f}x; weighted "
            f"routing build {routing['weighted_ms']:.2f}ms "
            f"({routing['weighted_over_unweighted']:.2f}x unit-weight)")
    emit("topology_sensitivity", report["configs"],
         columns=["name", "topology", "max_hops", "total_comm",
                  "total_epr_pairs", "latency", "simulated_latency",
                  "latency_vs_all_to_all", "epr_pairs_vs_all_to_all",
                  "migration_moves", "boundary_bubble",
                  "latency_vs_barrier", "replay_validated"],
         note=note)


def test_bench_topology():
    """Pytest entry point (uses the REPRO_BENCH_SCALE protocol)."""
    from _harness import bench_scale

    report = run_bench(bench_scale())
    _emit_report(report)
    failures = _check(report)
    assert not failures, "; ".join(failures)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="topology-sensitivity benchmark")
    parser.add_argument("--scale", choices=BENCH_SCALES, default="small")
    parser.add_argument("--families", default=",".join(DEFAULT_FAMILIES),
                        help="comma-separated benchmark families "
                             f"(default {','.join(DEFAULT_FAMILIES)})")
    parser.add_argument("--swap-overhead", type=float,
                        default=DEFAULT_SWAP_OVERHEAD)
    parser.add_argument("--output", type=Path, default=None,
                        help="write the JSON report here "
                             "(e.g. BENCH_topology.json)")
    args = parser.parse_args(argv)

    families = [f for f in args.families.split(",") if f]
    report = run_bench(args.scale, families=families,
                       swap_overhead=args.swap_overhead)
    _emit_report(report)

    if args.output is not None:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.output}")

    failures = _check(report)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
