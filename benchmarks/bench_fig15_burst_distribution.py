"""Figure 15 — burst-communication distribution assembled by AutoComm.

Reports Pr[one communication carries >= X remote CX gates] for the
building-block circuits (MCTR/RCA/QFT, Figure 15a) and the application
circuits (BV/QAOA/UCCSD, Figure 15b), plus the fraction of communications
carrying at least two remote CX gates (the paper reports 76.8% on average).
"""

import pytest

from _harness import emit, family_specs, prepare
from repro import compile_autocomm

BUILDING_BLOCKS = ("MCTR", "RCA", "QFT")
APPLICATIONS = ("BV", "QAOA", "UCCSD")
X_VALUES = (1, 2, 3, 4, 6, 8, 10)


def _distribution_rows(specs):
    rows = []
    carrying_two = []
    for spec in specs:
        circuit, network, mapping = prepare(spec)
        program = compile_autocomm(circuit, network, mapping=mapping)
        distribution = program.burst_distribution(max_x=max(X_VALUES))
        row = {"name": spec.name}
        for x in X_VALUES:
            row[f"Pr[>={x}]"] = round(distribution.get(x, 0.0), 3)
        rows.append(row)
        carrying_two.append(distribution.get(2, 0.0))
    average = sum(carrying_two) / len(carrying_two) if carrying_two else 0.0
    return rows, average


@pytest.mark.parametrize("panel,families", [
    ("fig15a_building_blocks", BUILDING_BLOCKS),
    ("fig15b_applications", APPLICATIONS),
])
def test_fig15_burst_distribution(benchmark, panel, families):
    specs = family_specs(*families)
    rows, avg_two = benchmark.pedantic(lambda: _distribution_rows(specs),
                                       rounds=1, iterations=1)
    emit(panel, rows,
         columns=["name"] + [f"Pr[>={x}]" for x in X_VALUES],
         note="Figure 15: burst distribution; fraction of communications "
              f"carrying >= 2 remote CX = {avg_two:.1%} "
              "(paper average across the suite: 76.8%).")
