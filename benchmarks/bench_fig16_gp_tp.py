"""Figure 16 — AutoComm compared to the GP-TP (qubit movement) compiler.

For every benchmark family the harness reports the ratio of communication
counts and latencies (GP-TP over AutoComm), averaged over the family's
configurations, which is exactly the bar chart of Figure 16 (paper averages:
3.3x communications, 4.3x latency; BV is the extreme case).
"""


from _harness import emit, suite_specs, prepare
from repro import compile_autocomm, compile_gp_tp
from repro.analysis import geometric_mean


def _family_ratios():
    per_family = {}
    for spec in suite_specs():
        circuit, network, mapping = prepare(spec)
        autocomm = compile_autocomm(circuit, network, mapping=mapping)
        gp_tp = compile_gp_tp(circuit, network, mapping=mapping)
        entry = per_family.setdefault(spec.family, {"improv": [], "lat": []})
        entry["improv"].append(gp_tp.metrics.total_comm
                               / max(1, autocomm.metrics.total_comm))
        entry["lat"].append(gp_tp.metrics.latency
                            / max(1e-9, autocomm.metrics.latency))
    rows = []
    for family, data in sorted(per_family.items()):
        rows.append({
            "family": family,
            "improv_factor": round(geometric_mean(data["improv"]), 2),
            "lat_dec_factor": round(geometric_mean(data["lat"]), 2),
        })
    return rows


def test_fig16_gp_tp_comparison(benchmark):
    rows = benchmark.pedantic(_family_ratios, rounds=1, iterations=1)
    emit("fig16_gp_tp", rows,
         columns=["family", "improv_factor", "lat_dec_factor"],
         note="Figure 16: GP-TP / AutoComm ratios per benchmark family "
              "(paper averages 3.3x comm, 4.3x latency; BV largest).")
