"""Section 3.2 — analytical inverse-burst bounds vs measured burstiness.

The paper derives closed-form upper bounds on the inverse-burst distribution
P(4) of QFT (<= 1/t) and QAOA (<= (t - 2(r mod t)) / r).  This harness
measures P(4) on compiled programs and checks it against the bounds,
regenerating the argument of Figures 5 and 6.
"""


from _harness import bench_scale, emit
from repro import compile_autocomm
from repro.analysis import (
    inverse_burst_distribution,
    qaoa_inverse_burst_bound,
    qft_inverse_burst_bound,
)
from repro.circuits import qaoa_maxcut_circuit, qft_circuit
from repro.hardware import uniform_network
from repro.ir import decompose_to_cx
from repro.partition import oee_partition


def _configs():
    scale = bench_scale()
    if scale == "paper":
        return [(100, 10), (200, 20), (300, 30)]
    if scale == "medium":
        return [(40, 4), (60, 6)]
    return [(20, 2), (30, 3)]


def _qft_rows():
    rows = []
    for num_qubits, num_nodes in _configs():
        circuit = decompose_to_cx(qft_circuit(num_qubits))
        network = uniform_network(num_nodes, -(-num_qubits // num_nodes))
        mapping = oee_partition(circuit, network).mapping
        program = compile_autocomm(circuit, network, mapping=mapping)
        measured = inverse_burst_distribution(program.blocks, mapping, thresholds=(4,))[4]
        bound = qft_inverse_burst_bound(num_qubits, num_nodes, threshold=4)
        rows.append({"program": f"QFT-{num_qubits}-{num_nodes}",
                     "measured_P4": round(measured, 3),
                     "paper_bound_P4": round(bound, 3),
                     "within_bound": measured <= bound + 0.05})
    return rows


def _qaoa_rows():
    rows = []
    for num_qubits, num_nodes in _configs():
        per_node = -(-num_qubits // num_nodes)
        circuit = decompose_to_cx(qaoa_maxcut_circuit(num_qubits, layers=1, degree=3))
        network = uniform_network(num_nodes, per_node)
        mapping = oee_partition(circuit, network).mapping
        program = compile_autocomm(circuit, network, mapping=mapping)
        measured = inverse_burst_distribution(program.blocks, mapping, thresholds=(4,))[4]
        # The paper's r is the number of remote ZZ interactions per node pair;
        # use the average over pairs as the representative r.
        remote_zz = mapping.count_remote_gates(circuit) // 2
        num_pairs = num_nodes * (num_nodes - 1) // 2
        r = max(1, remote_zz // max(1, num_pairs))
        bound = qaoa_inverse_burst_bound(per_node, r, threshold=4)
        rows.append({"program": f"QAOA-{num_qubits}-{num_nodes}",
                     "measured_P4": round(measured, 3),
                     "paper_bound_P4": round(bound, 3),
                     "avg_r_per_node_pair": r})
    return rows


def test_sec32_qft_inverse_burst(benchmark):
    rows = benchmark.pedantic(_qft_rows, rounds=1, iterations=1)
    emit("sec32_qft_inverse_burst", rows,
         note="Section 3.2 / Figure 5: QFT inverse-burst P(4) vs the 1/t bound.")


def test_sec32_qaoa_inverse_burst(benchmark):
    rows = benchmark.pedantic(_qaoa_rows, rounds=1, iterations=1)
    emit("sec32_qaoa_inverse_burst", rows,
         note="Section 3.2 / Figure 6: QAOA inverse-burst P(4) vs the "
              "(t - 2(r mod t))/r bound.")
