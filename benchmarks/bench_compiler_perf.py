"""Compiler perf-regression benchmark (the ``BENCH_compiler.json`` trajectory).

Times the optimized AutoComm passes (indexed aggregation + cached
commutation + memoised plan construction) against the preserved
pre-optimization reference pipeline (``repro.core.*_reference``) on the
benchmark suite, asserts that both produce identical results, and emits a
machine-readable report.  The committed ``BENCH_compiler.json`` at the
repository root is the perf trajectory: CI re-runs this benchmark at
``small`` scale and fails when a config's speedup regresses by more than
2x against that baseline.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_compiler_perf.py \
        --scale medium --families QFT,BV --output BENCH_compiler.json

or through pytest (``pytest benchmarks/bench_compiler_perf.py``), which
writes ``benchmarks/results/compiler_perf.txt`` as the other harnesses do.

Timing protocol: per configuration the three passes (aggregation,
assignment, scheduling) run ``--repeat`` times per implementation with cold
commutation caches (cleared before every run) on a shared decomposed
circuit and OEE mapping; the median wall time is reported.  Scope
deliberately excludes decomposition and partitioning, which are identical
byte-for-byte in both paths.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent
if __name__ == "__main__":  # allow standalone runs without PYTHONPATH=src
    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        try:
            import repro  # noqa: F401
        except ImportError:
            sys.path.insert(0, src)

from _harness import BENCH_SCALES, emit
from repro.circuits import BenchmarkSpec, paper_configurations, scaled_configurations
from repro.core import (
    aggregate_communications,
    aggregate_communications_reference,
    assign_communications,
    assign_communications_reference,
    schedule_communications,
    schedule_communications_reference,
)
from repro.ir import Gate, clear_commutation_cache, decompose_to_cx
from repro.partition import oee_partition

DEFAULT_FAMILIES = ("QFT", "BV")
DEFAULT_REPEAT = 5
#: CI fails when a config's measured speedup drops below baseline / this.
REGRESSION_FACTOR = 2.0


def _compile_optimized(circuit, mapping, network):
    aggregation = aggregate_communications(circuit, mapping)
    assignment = assign_communications(aggregation)
    schedule = schedule_communications(assignment, network)
    return assignment, schedule


def _compile_reference(circuit, mapping, network):
    aggregation = aggregate_communications_reference(circuit, mapping)
    assignment = assign_communications_reference(aggregation)
    schedule = schedule_communications_reference(assignment, network)
    return assignment, schedule


def _result_fingerprint(assignment, schedule) -> tuple:
    return (assignment.cost, len(assignment.blocks),
            tuple(sorted((s.value, n) for s, n
                         in assignment.scheme_histogram.items())),
            round(schedule.latency, 9), schedule.mode,
            schedule.num_comm_ops, schedule.num_fused_chains)


def _bench_config(spec: BenchmarkSpec, repeat: int) -> Dict[str, object]:
    circuit, network = spec.build()
    decomposed = decompose_to_cx(circuit)
    mapping = oee_partition(decomposed, network).mapping

    timings: Dict[str, List[float]] = {"optimized": [], "reference": []}
    fingerprints = {}
    for label, runner in (("optimized", _compile_optimized),
                          ("reference", _compile_reference)):
        for _ in range(repeat):
            clear_commutation_cache()
            begin = time.perf_counter()
            assignment, schedule = runner(decomposed, mapping, network)
            timings[label].append(time.perf_counter() - begin)
        fingerprints[label] = _result_fingerprint(assignment, schedule)

    optimized_s = statistics.median(timings["optimized"])
    reference_s = statistics.median(timings["reference"])
    return {
        "name": spec.name,
        "family": spec.family,
        "gates": len(decomposed),
        "optimized_ms": round(optimized_s * 1e3, 3),
        "reference_ms": round(reference_s * 1e3, 3),
        "speedup": round(reference_s / optimized_s, 2),
        "results_equal": fingerprints["optimized"] == fingerprints["reference"],
    }


def _microbench_gate_qubit_set() -> Dict[str, float]:
    """Satellite micro-benchmark: cached ``Gate.qubit_set`` vs re-building."""
    gate = Gate("cx", (3, 17))
    iterations = 200_000
    begin = time.perf_counter()
    for _ in range(iterations):
        gate.qubit_set
    cached_ns = (time.perf_counter() - begin) / iterations * 1e9
    begin = time.perf_counter()
    for _ in range(iterations):
        set(gate.qubits)
    rebuild_ns = (time.perf_counter() - begin) / iterations * 1e9
    return {"qubit_set_ns": round(cached_ns, 1),
            "set_qubits_ns": round(rebuild_ns, 1),
            "speedup": round(rebuild_ns / cached_ns, 2)}


def run_bench(scale: str, families: Sequence[str] = DEFAULT_FAMILIES,
              repeat: int = DEFAULT_REPEAT) -> Dict[str, object]:
    if scale == "paper":
        specs = paper_configurations()
    else:
        specs = scaled_configurations(scale)
    wanted = {family.upper() for family in families}
    specs = [spec for spec in specs if spec.family in wanted]
    if not specs:
        raise ValueError(f"no benchmark configurations for families {families}")

    configs = [_bench_config(spec, repeat) for spec in specs]
    speedups = sorted(config["speedup"] for config in configs)
    per_family = {
        family: round(statistics.median(
            [c["speedup"] for c in configs if c["family"] == family]), 2)
        for family in sorted({c["family"] for c in configs})
    }
    return {
        "bench": "compiler_perf",
        "schema": 1,
        "scale": scale,
        "repeat": repeat,
        "configs": configs,
        "median_speedup": round(statistics.median(speedups), 2),
        "median_speedup_by_family": per_family,
        "all_results_equal": all(c["results_equal"] for c in configs),
        "micro": {"gate_qubit_set": _microbench_gate_qubit_set()},
    }


def check_regression(report: Dict[str, object],
                     baseline: Dict[str, object]) -> List[str]:
    """Compare a fresh report against the committed baseline.

    Speedups (reference time / optimized time) are machine-independent, so
    they are the regression signal: a config fails when its speedup fell
    below ``baseline_speedup / REGRESSION_FACTOR``.
    """
    failures = []
    baseline_configs = {c["name"]: c for c in baseline.get("configs", [])}
    for config in report["configs"]:
        if not config["results_equal"]:
            failures.append(f"{config['name']}: optimized and reference "
                            "pipelines disagree")
        base = baseline_configs.get(config["name"])
        if base is None:
            continue
        floor = base["speedup"] / REGRESSION_FACTOR
        if config["speedup"] < floor:
            failures.append(
                f"{config['name']}: speedup {config['speedup']}x fell below "
                f"{floor:.1f}x (baseline {base['speedup']}x / "
                f"{REGRESSION_FACTOR})")
    return failures


def _emit_report(report: Dict[str, object]) -> None:
    rows = [dict(config) for config in report["configs"]]
    note = (f"median speedup {report['median_speedup']}x over "
            f"{len(rows)} configs; by family: "
            f"{report['median_speedup_by_family']}; "
            f"gate.qubit_set micro: {report['micro']['gate_qubit_set']}")
    emit("compiler_perf", rows,
         columns=["name", "gates", "optimized_ms", "reference_ms",
                  "speedup", "results_equal"],
         note=note)


def test_bench_compiler_perf():
    """Pytest entry point (uses the REPRO_BENCH_SCALE protocol)."""
    from _harness import bench_scale

    report = run_bench(bench_scale())
    _emit_report(report)
    assert report["all_results_equal"], \
        "optimized and reference compile pipelines disagree"


def test_bench_scale_is_validated(monkeypatch):
    """Unknown REPRO_BENCH_SCALE values fail loudly with the allowed set."""
    import pytest

    from _harness import bench_scale

    monkeypatch.setenv("REPRO_BENCH_SCALE", "enormous")
    with pytest.raises(ValueError, match="small, medium, paper"):
        bench_scale()
    for scale in BENCH_SCALES:
        monkeypatch.setenv("REPRO_BENCH_SCALE", scale)
        assert bench_scale() == scale


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="compiler perf-regression benchmark")
    parser.add_argument("--scale", choices=BENCH_SCALES, default="small")
    parser.add_argument("--families", default=",".join(DEFAULT_FAMILIES),
                        help="comma-separated benchmark families "
                             f"(default {','.join(DEFAULT_FAMILIES)})")
    parser.add_argument("--repeat", type=int, default=DEFAULT_REPEAT)
    parser.add_argument("--output", type=Path, default=None,
                        help="write the JSON report here "
                             "(e.g. BENCH_compiler.json)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="committed BENCH_compiler.json to check for "
                             ">2x speedup regressions (exit 1 on failure)")
    args = parser.parse_args(argv)

    families = [f for f in args.families.split(",") if f]
    report = run_bench(args.scale, families=families, repeat=args.repeat)
    _emit_report(report)

    if args.output is not None:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.output}")

    if not report["all_results_equal"]:
        print("FAIL: optimized and reference pipelines disagree",
              file=sys.stderr)
        return 1
    if args.baseline is not None:
        if not args.baseline.exists():
            print(f"FAIL: baseline {args.baseline} not found", file=sys.stderr)
            return 1
        baseline = json.loads(args.baseline.read_text())
        if baseline.get("scale") != report["scale"]:
            print(f"note: baseline scale {baseline.get('scale')!r} differs "
                  f"from run scale {report['scale']!r}; comparing by config "
                  "name only")
        failures = check_regression(report, baseline)
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print("regression check against baseline: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
