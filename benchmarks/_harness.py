"""Shared helpers for the benchmark harnesses.

Every harness regenerates one table or figure of the paper's evaluation at a
configurable scale.  The scale is controlled by the ``REPRO_BENCH_SCALE``
environment variable:

* ``small`` (default) — minutes for the whole ``pytest benchmarks/`` run;
* ``medium`` — closer to the paper's smallest configurations;
* ``paper``  — the full Table 2 sizes (hours; use for final numbers only).

Each harness prints its rows (the same rows/series the paper reports) and
writes them to ``benchmarks/results/<name>.txt`` so the output survives
pytest's capture.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Mapping, Sequence, Tuple

from repro.analysis import render_table
from repro.circuits import BenchmarkSpec, paper_configurations, scaled_configurations
from repro.ir import Circuit, decompose_to_cx
from repro.partition import QubitMapping, oee_partition

RESULTS_DIR = Path(__file__).parent / "results"

#: Valid values of the ``REPRO_BENCH_SCALE`` environment variable.
BENCH_SCALES = ("small", "medium", "paper")


def bench_scale() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "small")
    if scale not in BENCH_SCALES:
        raise ValueError(
            f"invalid REPRO_BENCH_SCALE={scale!r}; "
            f"choose one of: {', '.join(BENCH_SCALES)}")
    return scale


def suite_specs() -> List[BenchmarkSpec]:
    """Benchmark specs for the configured scale."""
    scale = bench_scale()
    if scale == "paper":
        return paper_configurations()
    return scaled_configurations(scale)


def family_specs(*families: str) -> List[BenchmarkSpec]:
    wanted = {family.upper() for family in families}
    return [spec for spec in suite_specs() if spec.family in wanted]


def prepare(spec: BenchmarkSpec) -> Tuple[Circuit, "QuantumNetwork", QubitMapping]:
    """Build, decompose and place one benchmark instance."""
    circuit, network = spec.build()
    decomposed = decompose_to_cx(circuit)
    mapping = oee_partition(decomposed, network).mapping
    return decomposed, network, mapping


def emit(name: str, rows: Sequence[Mapping[str, object]],
         columns: Sequence[str] | None = None, note: str = "") -> str:
    """Render rows, print them and persist them under benchmarks/results/."""
    table = render_table(rows, columns=columns)
    header = f"== {name} (scale={bench_scale()}) =="
    text = f"{header}\n{note}\n{table}\n" if note else f"{header}\n{table}\n"
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print("\n" + text)
    return text
