"""OEE partition perf-regression benchmark (``BENCH_partition.json``).

Times the numpy-vectorized OEE search (:mod:`repro.partition.oee`) against
the preserved scalar reference (:mod:`repro.partition.oee_reference`) for
both fresh partitioning and migration-priced repartitioning, asserts the
two produce bit-identical results, and emits a machine-readable report.
The committed ``BENCH_partition.json`` at the repository root is the perf
trajectory: its top-level ``configs`` come from a ``small``-scale run that
CI re-runs and gates (a config fails when its speedup regresses by more
than 2x), while its ``paper`` section records the paper-scale rows
(QFT-200/300, QAOA up to 64 nodes) plus the Monte-Carlo worker-scaling
table measured when the file was generated.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_partition.py \
        --scale paper --output BENCH_partition.json

or through pytest (``pytest benchmarks/bench_partition.py``), which writes
``benchmarks/results/partition_perf.txt`` like the other harnesses.

Timing protocol: per configuration both implementations run ``--repeat``
times from the same round-robin seed mapping (round-robin scatters qubits
so the search has real exchanges to find on structured families; on QFT's
complete uniform-weight graph every balanced partition ties, so the search
does a full scan and accepts nothing — the scan itself is what is timed)
and the median wall time is reported.  ``mc_scaling`` times
``run_monte_carlo`` at worker counts 1/2/4 on one compiled program and
records ``cpu_count`` so efficiency numbers are honest on small hosts.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent
if __name__ == "__main__":  # allow standalone runs without PYTHONPATH=src
    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        try:
            import repro  # noqa: F401
        except ImportError:
            sys.path.insert(0, src)

from _harness import BENCH_SCALES, emit
from repro.circuits import mctr_circuit, qaoa_maxcut_circuit, qft_circuit
from repro.core import compile_autocomm
from repro.hardware import apply_topology, uniform_network
from repro.partition import (
    oee_partition_reference,
    oee_repartition_reference,
    round_robin_mapping,
)
from repro.partition.oee import _oee_partition, _oee_repartition
from repro.sim import SimulationConfig, run_monte_carlo

DEFAULT_REPEAT = 3
#: CI fails when a config's measured speedup drops below baseline / this.
REGRESSION_FACTOR = 2.0


class _Config:
    def __init__(self, name: str, build: Callable, nodes: int, topology: str):
        self.name = name
        self.build = build
        self.nodes = nodes
        self.topology = topology


def _configs(scale: str) -> List[_Config]:
    if scale == "small":
        return [
            _Config("qft-48@6", lambda: qft_circuit(48), 6, "ring"),
            _Config("qaoa-64@8", lambda: qaoa_maxcut_circuit(64, seed=7),
                    8, "grid"),
            _Config("mctr-54@6", lambda: mctr_circuit(54), 6, "line"),
        ]
    if scale == "medium":
        return [
            _Config("qft-120@12", lambda: qft_circuit(120), 12, "ring"),
            _Config("qaoa-128@16", lambda: qaoa_maxcut_circuit(128, seed=7),
                    16, "grid"),
            _Config("mctr-126@14", lambda: mctr_circuit(126), 14, "line"),
        ]
    # Paper scale: the Table 2 sizes the speedup acceptance bar is read on —
    # QFT at 100+ qubits and 16-64 node networks.
    return [
        _Config("qft-200@20", lambda: qft_circuit(200), 20, "ring"),
        _Config("qft-300@30", lambda: qft_circuit(300), 30, "grid"),
        _Config("qaoa-192@16", lambda: qaoa_maxcut_circuit(192, seed=7),
                16, "grid"),
        _Config("qaoa-384@32", lambda: qaoa_maxcut_circuit(384, seed=7),
                32, "grid"),
        _Config("qaoa-512@64", lambda: qaoa_maxcut_circuit(512, seed=7),
                64, "grid"),
        _Config("mctr-240@24", lambda: mctr_circuit(240), 24, "line"),
    ]


def _network_for(config: _Config, num_qubits: int):
    network = uniform_network(config.nodes, -(-num_qubits // config.nodes))
    apply_topology(network, config.topology)
    return network


def _results_equal(reference, vectorized) -> bool:
    return (vectorized.mapping.as_dict() == reference.mapping.as_dict()
            and vectorized.final_cut == reference.final_cut
            and vectorized.num_exchanges == reference.num_exchanges
            and vectorized.rounds == reference.rounds
            and vectorized.migration_moves == reference.migration_moves
            and vectorized.migration_cost == reference.migration_cost)


def _time_median(runner: Callable, repeat: int):
    timings = []
    result = None
    for _ in range(repeat):
        begin = time.perf_counter()
        result = runner()
        timings.append(time.perf_counter() - begin)
    return statistics.median(timings), result


def _bench_config(config: _Config, repeat: int) -> Dict[str, object]:
    circuit = config.build()
    network = _network_for(config, circuit.num_qubits)
    seed = round_robin_mapping(circuit.num_qubits, network)

    part_vec_s, part_vec = _time_median(
        lambda: _oee_partition(circuit, network, initial=seed), repeat)
    part_ref_s, part_ref = _time_median(
        lambda: oee_partition_reference(circuit, network, initial=seed),
        repeat)
    repart_vec_s, repart_vec = _time_median(
        lambda: _oee_repartition(circuit, network, seed), repeat)
    repart_ref_s, repart_ref = _time_median(
        lambda: oee_repartition_reference(circuit, network, seed), repeat)

    return {
        "name": config.name,
        "qubits": circuit.num_qubits,
        "nodes": config.nodes,
        "topology": config.topology,
        "exchanges": part_vec.num_exchanges,
        "part_vec_ms": round(part_vec_s * 1e3, 3),
        "part_ref_ms": round(part_ref_s * 1e3, 3),
        "part_speedup": round(part_ref_s / part_vec_s, 2),
        "repart_vec_ms": round(repart_vec_s * 1e3, 3),
        "repart_ref_ms": round(repart_ref_s * 1e3, 3),
        "repart_speedup": round(repart_ref_s / repart_vec_s, 2),
        "results_equal": (_results_equal(part_ref, part_vec)
                          and _results_equal(repart_ref, repart_vec)),
    }


def _mc_scaling(scale: str) -> Dict[str, object]:
    """Monte-Carlo wall-clock at worker counts 1/2/4, identical results.

    Efficiency is speedup over the sequential run divided by the usable
    parallelism ``min(workers, cpu_count)`` — on a single-core host the
    pool only adds spawn overhead, and the table should say so rather
    than flatter the feature.
    """
    trials = {"small": 10, "medium": 100, "paper": 1000}[scale]
    qubits = {"small": 16, "medium": 24, "paper": 32}[scale]
    network = uniform_network(4, -(-qubits // 4))
    apply_topology(network, "line")
    program = compile_autocomm(qft_circuit(qubits), network)
    cpu_count = os.cpu_count() or 1

    rows = []
    baseline_s = None
    baseline_latencies = None
    for workers in (1, 2, 4):
        config = SimulationConfig(p_epr=0.5, seed=17, trials=trials,
                                  workers=workers, record_trace=False)
        begin = time.perf_counter()
        result = run_monte_carlo(program, config)
        elapsed = time.perf_counter() - begin
        if workers == 1:
            baseline_s = elapsed
            baseline_latencies = result.latencies
        speedup = baseline_s / elapsed
        rows.append({
            "workers": workers,
            "wall_s": round(elapsed, 3),
            "speedup": round(speedup, 2),
            "efficiency": round(speedup / min(workers, cpu_count), 2),
            "identical": result.latencies == baseline_latencies,
        })
    return {"program": f"qft-{qubits}@4", "trials": trials,
            "cpu_count": cpu_count, "rows": rows}


def run_bench(scale: str, repeat: int = DEFAULT_REPEAT,
              mc: bool = True) -> Dict[str, object]:
    configs = [_bench_config(config, repeat) for config in _configs(scale)]
    part = sorted(c["part_speedup"] for c in configs)
    repart = sorted(c["repart_speedup"] for c in configs)
    report = {
        "bench": "partition_perf",
        "schema": 1,
        "scale": scale,
        "repeat": repeat,
        "configs": configs,
        "median_part_speedup": round(statistics.median(part), 2),
        "median_repart_speedup": round(statistics.median(repart), 2),
        "all_results_equal": all(c["results_equal"] for c in configs),
    }
    if mc:
        report["mc_scaling"] = _mc_scaling(scale)
    return report


def check_regression(report: Dict[str, object],
                     baseline: Dict[str, object]) -> List[str]:
    """Compare a fresh report against the committed baseline.

    Speedups (reference time / vectorized time) are machine-independent,
    so they are the regression signal: a config fails when either its
    partition or repartition speedup fell below
    ``baseline_speedup / REGRESSION_FACTOR``.  The mc_scaling section is
    wall-clock on whatever host generated it and is never gated.
    """
    failures = []
    baseline_configs = {c["name"]: c for c in baseline.get("configs", [])}
    for config in report["configs"]:
        if not config["results_equal"]:
            failures.append(f"{config['name']}: vectorized and reference "
                            "searches disagree")
        base = baseline_configs.get(config["name"])
        if base is None:
            continue
        for key in ("part_speedup", "repart_speedup"):
            floor = base[key] / REGRESSION_FACTOR
            if config[key] < floor:
                failures.append(
                    f"{config['name']}: {key} {config[key]}x fell below "
                    f"{floor:.1f}x (baseline {base[key]}x / "
                    f"{REGRESSION_FACTOR})")
    return failures


def _emit_report(report: Dict[str, object]) -> None:
    rows = [dict(config) for config in report["configs"]]
    note = (f"median speedup {report['median_part_speedup']}x partition / "
            f"{report['median_repart_speedup']}x repartition over "
            f"{len(rows)} configs")
    mc = report.get("mc_scaling")
    if mc:
        scaling = ", ".join(f"{r['workers']}w={r['wall_s']}s" for r in mc["rows"])
        note += (f"; MC {mc['trials']} trials on {mc['program']} "
                 f"({mc['cpu_count']} cpus): {scaling}")
    emit("partition_perf", rows,
         columns=["name", "qubits", "nodes", "topology", "exchanges",
                  "part_vec_ms", "part_ref_ms", "part_speedup",
                  "repart_vec_ms", "repart_ref_ms", "repart_speedup",
                  "results_equal"],
         note=note)


def test_bench_partition():
    """Pytest entry point (uses the REPRO_BENCH_SCALE protocol)."""
    from _harness import bench_scale

    report = run_bench(bench_scale())
    _emit_report(report)
    assert report["all_results_equal"], \
        "vectorized and reference OEE searches disagree"
    mc_rows = report["mc_scaling"]["rows"]
    assert all(row["identical"] for row in mc_rows), \
        "parallel Monte-Carlo diverged from the sequential run"


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="OEE partition perf-regression benchmark")
    parser.add_argument("--scale", choices=BENCH_SCALES, default="small")
    parser.add_argument("--repeat", type=int, default=DEFAULT_REPEAT)
    parser.add_argument("--no-mc", action="store_true",
                        help="skip the Monte-Carlo worker-scaling table")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the JSON report here "
                             "(e.g. BENCH_partition.json)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="committed BENCH_partition.json to check for "
                             ">2x speedup regressions (exit 1 on failure)")
    args = parser.parse_args(argv)

    report = run_bench(args.scale, repeat=args.repeat, mc=not args.no_mc)
    _emit_report(report)

    if args.output is not None:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.output}")

    if not report["all_results_equal"]:
        print("FAIL: vectorized and reference searches disagree",
              file=sys.stderr)
        return 1
    if args.baseline is not None:
        if not args.baseline.exists():
            print(f"FAIL: baseline {args.baseline} not found", file=sys.stderr)
            return 1
        baseline = json.loads(args.baseline.read_text())
        if baseline.get("scale") != report["scale"]:
            print(f"note: baseline scale {baseline.get('scale')!r} differs "
                  f"from run scale {report['scale']!r}; comparing by config "
                  "name only")
        failures = check_regression(report, baseline)
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print("regression check against baseline: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
