"""Figure 17(d)(e) — sensitivity of the improvement factor to #qubit and #node.

The test program is MCTR, as in the paper.  Part (d) sweeps the number of
qubits at fixed node counts; part (e) sweeps the number of nodes at fixed
qubit counts.  The reported quantity is the improv. factor (baseline
communications over AutoComm communications); the paper observes that it
converges as qubits-per-node grows and deteriorates when qubits-per-node is
small.
"""


from _harness import bench_scale, emit
from repro import compile_autocomm, compile_sparse
from repro.circuits import mctr_circuit
from repro.hardware import uniform_network
from repro.ir import decompose_to_cx
from repro.partition import oee_partition


def _sweep_points():
    scale = bench_scale()
    if scale == "paper":
        qubit_sweep = [100, 200, 300, 400, 500, 600]
        node_counts = [10, 20, 50]
        node_sweep = [2, 10, 20, 50, 100]
        qubit_counts = [100, 200, 300]
    elif scale == "medium":
        qubit_sweep = [40, 60, 80, 100]
        node_counts = [4, 8]
        node_sweep = [2, 4, 8, 16]
        qubit_counts = [48, 96]
    else:
        qubit_sweep = [16, 24, 32, 40]
        node_counts = [2, 4]
        node_sweep = [2, 4, 8]
        qubit_counts = [24, 40]
    return qubit_sweep, node_counts, node_sweep, qubit_counts


def _improv_factor(num_qubits, num_nodes, builder=mctr_circuit):
    per_node = -(-num_qubits // num_nodes)
    circuit = decompose_to_cx(builder(num_qubits))
    network = uniform_network(num_nodes, per_node)
    mapping = oee_partition(circuit, network).mapping
    autocomm = compile_autocomm(circuit, network, mapping=mapping)
    sparse = compile_sparse(circuit, network, mapping=mapping)
    return sparse.metrics.total_comm / max(1, autocomm.metrics.total_comm)


def test_fig17d_qubit_sweep(benchmark):
    qubit_sweep, node_counts, _, _ = _sweep_points()

    def run():
        rows = []
        for num_qubits in qubit_sweep:
            row = {"num_qubits": num_qubits}
            for num_nodes in node_counts:
                row[f"{num_nodes} nodes"] = round(_improv_factor(num_qubits, num_nodes), 2)
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("fig17d_qubit_sweep", rows,
         note="Figure 17(d): MCTR improv. factor vs #qubit; the factor "
              "stabilises once qubits-per-node is large.")


def test_fig17e_node_sweep(benchmark):
    _, _, node_sweep, qubit_counts = _sweep_points()

    def run():
        rows = []
        for num_nodes in node_sweep:
            row = {"num_nodes": num_nodes}
            for num_qubits in qubit_counts:
                if num_nodes >= num_qubits:
                    row[f"{num_qubits} qubits"] = None
                    continue
                row[f"{num_qubits} qubits"] = round(
                    _improv_factor(num_qubits, num_nodes), 2)
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("fig17e_node_sweep", rows,
         note="Figure 17(e): MCTR improv. factor vs #node; performance "
              "degrades when each node holds only a few qubits.")


def test_fig17e_node_sweep_qft(benchmark):
    """Companion sweep on QFT.

    Our V-chain MCTR has node-size-independent bursts (see EXPERIMENTS.md),
    so the paper's qubits-per-node trend is additionally demonstrated on QFT,
    where burst sizes track the node capacity directly.
    """
    from repro.circuits import qft_circuit

    _, _, node_sweep, qubit_counts = _sweep_points()
    num_qubits = min(qubit_counts)

    def run():
        rows = []
        for num_nodes in node_sweep:
            if num_nodes >= num_qubits:
                continue
            rows.append({
                "num_nodes": num_nodes,
                "qubits_per_node": -(-num_qubits // num_nodes),
                "improv_factor": round(
                    _improv_factor(num_qubits, num_nodes, builder=qft_circuit), 2),
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("fig17e_node_sweep_qft", rows,
         note=f"Figure 17(e) companion on QFT-{num_qubits}: the improv. factor "
              "tracks qubits-per-node and degrades as nodes are added.")
