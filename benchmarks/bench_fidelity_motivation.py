"""Motivation experiment — estimated output fidelity per compiler.

Not a numbered figure in the paper, but it quantifies the claim that drives
it (Section 1/3: remote communication is the dominant error source in DQC).
For every benchmark instance the harness reports the estimated end-to-end
fidelity of the AutoComm, sparse-baseline and GP-TP programs under the
multiplicative error model of ``repro.analysis.fidelity``.
"""


from _harness import emit, suite_specs, prepare
from repro import compile_autocomm, compile_gp_tp, compile_sparse
from repro.analysis import ErrorModel, estimate_fidelity

MODEL = ErrorModel(epr_error=0.01, two_qubit_error=0.001, one_qubit_error=0.0001,
                   coherence_time=50_000.0)


def _rows():
    rows = []
    for spec in suite_specs():
        circuit, network, mapping = prepare(spec)
        autocomm = compile_autocomm(circuit, network, mapping=mapping)
        sparse = compile_sparse(circuit, network, mapping=mapping)
        gp_tp = compile_gp_tp(circuit, network, mapping=mapping)
        rows.append({
            "name": spec.name,
            "autocomm": round(estimate_fidelity(autocomm, MODEL), 4),
            "sparse": round(estimate_fidelity(sparse, MODEL), 4),
            "gp_tp": round(estimate_fidelity(gp_tp, MODEL), 4),
        })
    return rows


def test_fidelity_motivation(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    emit("fidelity_motivation", rows,
         columns=["name", "autocomm", "sparse", "gp_tp"],
         note="Estimated output fidelity per compiler (epr_error=1%, "
              "2q=0.1%, 1q=0.01%, T_coh=50k CX). Higher is better.")
