"""Figure 17(a)-(c) — the effect of each AutoComm optimisation.

* (a) aggregation with vs without gate commutation (QFT, BV);
* (b) hybrid Cat/TP assignment vs Cat-Comm only (RCA, QFT);
* (c) burst-greedy schedule vs plain greedy schedule (MCTR, QFT).

Each harness reports the same ratio the paper plots (ablated / AutoComm), so
values above 1.0 mean the optimisation helps.
"""


from _harness import emit, family_specs, prepare
from repro import compile_autocomm
from repro.baselines import compile_cat_only, compile_no_commute, compile_plain_schedule


def _comm_ratio_rows(families, ablation):
    rows = []
    for spec in family_specs(*families):
        circuit, network, mapping = prepare(spec)
        full = compile_autocomm(circuit, network, mapping=mapping)
        ablated = ablation(circuit, network, mapping=mapping)
        rows.append({
            "name": spec.name,
            "autocomm_comm": full.metrics.total_comm,
            "ablated_comm": ablated.metrics.total_comm,
            "ratio": round(ablated.metrics.total_comm
                           / max(1, full.metrics.total_comm), 2),
        })
    return rows


def test_fig17a_aggregation_commutation(benchmark):
    rows = benchmark.pedantic(
        lambda: _comm_ratio_rows(("QFT", "BV"), compile_no_commute),
        rounds=1, iterations=1)
    emit("fig17a_aggregation", rows,
         note="Figure 17(a): communication count without commutation-aware "
              "aggregation over AutoComm (paper: 4.3x-6.7x).")


def test_fig17b_hybrid_assignment(benchmark):
    rows = benchmark.pedantic(
        lambda: _comm_ratio_rows(("RCA", "QFT"), compile_cat_only),
        rounds=1, iterations=1)
    emit("fig17b_assignment", rows,
         note="Figure 17(b): Cat-Comm-only assignment over the hybrid "
              "assignment (paper: 1.0x-4.6x, QFT largest).")


def test_fig17c_burst_greedy_schedule(benchmark):
    def run():
        rows = []
        for spec in family_specs("MCTR", "QFT"):
            circuit, network, mapping = prepare(spec)
            full = compile_autocomm(circuit, network, mapping=mapping)
            plain = compile_plain_schedule(circuit, network, mapping=mapping)
            rows.append({
                "name": spec.name,
                "burst_greedy_latency": round(full.metrics.latency, 1),
                "plain_greedy_latency": round(plain.metrics.latency, 1),
                "ratio": round(plain.metrics.latency
                               / max(1e-9, full.metrics.latency), 2),
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("fig17c_scheduling", rows,
         note="Figure 17(c): plain greedy latency over burst-greedy latency "
              "(paper: 1.17x-1.61x).")
