"""Performance benchmark of the discrete-event execution engine.

Times deterministic replay and stochastic Monte-Carlo execution of the
benchmark suite so simulator-speed regressions are visible, and records the
event/op counts that drive the cost.  Uses wall-clock timing over the whole
suite (one run per configuration, like the table harnesses) plus a
pytest-benchmark microbenchmark of the hot path.
"""

import time

import pytest

from _harness import emit, suite_specs
from repro.core import compile_autocomm
from repro.sim import SimulationConfig, run_monte_carlo, simulate_program

MC_TRIALS = 10


def test_bench_sim_engine():
    rows = []
    for spec in suite_specs():
        circuit, network = spec.build()
        program = compile_autocomm(circuit, network)

        begin = time.perf_counter()
        deterministic = simulate_program(program)
        det_ms = (time.perf_counter() - begin) * 1e3

        begin = time.perf_counter()
        run_monte_carlo(program, SimulationConfig(
            p_epr=0.5, trials=MC_TRIALS, seed=17, record_trace=False))
        mc_ms = (time.perf_counter() - begin) * 1e3

        rows.append({
            "name": spec.name,
            "ops": len(deterministic.ops),
            "comm_ops": len(deterministic.comm_ops()),
            "trace_events": deterministic.trace.num_events(),
            "det_ms": det_ms,
            "mc_ms_per_trial": mc_ms / MC_TRIALS,
            "trials_per_s": MC_TRIALS / (mc_ms / 1e3) if mc_ms else 0.0,
        })
    emit("sim_engine", rows,
         columns=["name", "ops", "comm_ops", "trace_events", "det_ms",
                  "mc_ms_per_trial", "trials_per_s"],
         note=f"deterministic replay + {MC_TRIALS}-trial Monte-Carlo (p_epr=0.5)")


@pytest.fixture(scope="module")
def qft_program():
    spec = next(s for s in suite_specs() if s.family == "QFT")
    circuit, network = spec.build()
    return compile_autocomm(circuit, network)


def test_perf_deterministic_replay(benchmark, qft_program):
    benchmark(simulate_program, qft_program,
              SimulationConfig(record_trace=False))


def test_perf_stochastic_trial(benchmark, qft_program):
    config = SimulationConfig(p_epr=0.5, seed=5, record_trace=False)
    benchmark(simulate_program, qft_program, config)
