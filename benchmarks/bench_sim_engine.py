"""Performance benchmark of the discrete-event execution engine.

Times deterministic replay and stochastic Monte-Carlo execution of the
benchmark suite so simulator-speed regressions are visible, and records the
event/op counts that drive the cost.  Uses wall-clock timing over the whole
suite (one run per configuration, like the table harnesses) plus a
pytest-benchmark microbenchmark of the hot path.

The Monte-Carlo trial count follows ``REPRO_BENCH_SCALE`` (10 / 100 / 1000
for small / medium / paper), matching the paper's 1000-trial protocol at
full scale, and a second table times ``run_monte_carlo`` at worker counts
1/2/4 on one program — asserting the distributions stay identical — so the
process-pool path is exercised at every scale.
"""

import os
import time

import pytest

from _harness import bench_scale, emit, suite_specs
from repro.core import compile_autocomm
from repro.sim import SimulationConfig, run_monte_carlo, simulate_program

MC_TRIALS_BY_SCALE = {"small": 10, "medium": 100, "paper": 1000}
MC_TRIALS = MC_TRIALS_BY_SCALE[bench_scale()]


def test_bench_sim_engine():
    rows = []
    for spec in suite_specs():
        circuit, network = spec.build()
        program = compile_autocomm(circuit, network)

        begin = time.perf_counter()
        deterministic = simulate_program(program)
        det_ms = (time.perf_counter() - begin) * 1e3

        begin = time.perf_counter()
        run_monte_carlo(program, SimulationConfig(
            p_epr=0.5, trials=MC_TRIALS, seed=17, record_trace=False))
        mc_ms = (time.perf_counter() - begin) * 1e3

        rows.append({
            "name": spec.name,
            "ops": len(deterministic.ops),
            "comm_ops": len(deterministic.comm_ops()),
            "trace_events": deterministic.trace.num_events(),
            "det_ms": det_ms,
            "mc_ms_per_trial": mc_ms / MC_TRIALS,
            "trials_per_s": MC_TRIALS / (mc_ms / 1e3) if mc_ms else 0.0,
        })
    emit("sim_engine", rows,
         columns=["name", "ops", "comm_ops", "trace_events", "det_ms",
                  "mc_ms_per_trial", "trials_per_s"],
         note=f"deterministic replay + {MC_TRIALS}-trial Monte-Carlo (p_epr=0.5)")


@pytest.fixture(scope="module")
def qft_program():
    spec = next(s for s in suite_specs() if s.family == "QFT")
    circuit, network = spec.build()
    return compile_autocomm(circuit, network)


def test_bench_mc_worker_scaling(qft_program):
    """Monte-Carlo wall clock at 1/2/4 workers; results must not change."""
    rows = []
    baseline_s = None
    baseline_latencies = None
    cpu_count = os.cpu_count() or 1
    for workers in (1, 2, 4):
        config = SimulationConfig(p_epr=0.5, trials=MC_TRIALS, seed=17,
                                  workers=workers, record_trace=False)
        begin = time.perf_counter()
        result = run_monte_carlo(qft_program, config)
        elapsed = time.perf_counter() - begin
        if workers == 1:
            baseline_s = elapsed
            baseline_latencies = result.latencies
        assert result.latencies == baseline_latencies, \
            f"workers={workers} changed the latency distribution"
        speedup = baseline_s / elapsed
        rows.append({
            "workers": workers,
            "wall_s": round(elapsed, 3),
            "speedup": round(speedup, 2),
            "efficiency": round(speedup / min(workers, cpu_count), 2),
        })
    emit("sim_engine_workers", rows,
         columns=["workers", "wall_s", "speedup", "efficiency"],
         note=(f"{MC_TRIALS}-trial Monte-Carlo on the smallest QFT config; "
               f"host has {cpu_count} cpu(s); efficiency = speedup / "
               "min(workers, cpus)"))


def test_perf_deterministic_replay(benchmark, qft_program):
    benchmark(simulate_program, qft_program,
              SimulationConfig(record_trace=False))


def test_perf_stochastic_trial(benchmark, qft_program):
    config = SimulationConfig(p_epr=0.5, seed=5, record_trace=False)
    benchmark(simulate_program, qft_program, config)
