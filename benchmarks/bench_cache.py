"""Compile-cache perf benchmark (``BENCH_cache.json``).

Times the persistent compile cache of :mod:`repro.persist` in three modes
per configuration:

* **cold** — fingerprint + full pipeline compile + atomic store into an
  empty cache directory (a fresh directory per repeat, commutation cache
  cleared so every repeat is a true first compile);
* **warm** — fingerprint + cache hit: the program is decoded from its
  on-disk artifact and the pipeline never runs;
* **fingerprint** — the content-address alone, the fixed overhead every
  cached compile pays.

The warm/cold ratio is the benchmark's acceptance gate.  At **paper**
scale (QFT-100/128, QAOA-192) every row must serve warm compiles at least
:data:`WARM_SPEEDUP_FLOOR` times faster than recompiling.  Small-scale
rows compile in tens of milliseconds, so their ratio is structurally
lower; they are gated on staying warm-faster-than-cold
(:data:`SANITY_SPEEDUP_FLOOR`) and on not regressing against the
committed baseline.  Like ``BENCH_partition.json``, the committed file's
top-level ``configs`` come from a ``small``-scale run that CI re-runs and
gates, while its ``paper`` section records the paper-scale rows where the
floor claim is made — and :func:`check_regression` re-asserts that claim
from the baseline on every CI run.

MCTR is benchmarked at ``medium`` scale but has no paper row: its compile
is cheap per gate (no commutation search blow-up), so the cold side grows
no faster than the artifact and the ratio plateaus around 7x however
large the circuit.

The paper rows deliberately cover both remap modes: the QFT rows compile
with ``remap="never"`` and the QAOA row with the phased
``remap="bursts"`` variant, so a cache hit is proven to skip both
pipeline shapes.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_cache.py \
        --scale paper --output BENCH_cache.json

(``--scale paper`` runs the small scale for the gated top-level configs
*and* the paper scale for the ``paper`` section, matching the committed
file's layout) or through pytest (``pytest benchmarks/bench_cache.py``),
which writes ``benchmarks/results/cache_perf.txt`` like the other
harnesses.

Timing protocol: per configuration the cold path runs ``--repeat`` times
(each into a fresh directory), then the warm path runs ``--repeat`` times
against the stored entry; medians are reported.  The garbage collector is
paused around each timed region (and collected between them) so a cold
compile's garbage is not charged to the warm load that happens to run
next.  Every warm program is checked metric-identical to the cold one
before any timing is trusted.
"""

from __future__ import annotations

import argparse
import gc
import json
import shutil
import statistics
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent
if __name__ == "__main__":  # allow standalone runs without PYTHONPATH=src
    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        try:
            import repro  # noqa: F401
        except ImportError:
            sys.path.insert(0, src)

from _harness import BENCH_SCALES, emit
from repro.circuits import (bv_circuit, mctr_circuit, qaoa_maxcut_circuit,
                            qft_circuit)
from repro.core import AutoCommConfig, compile_autocomm
from repro.hardware import apply_topology, uniform_network
from repro.ir.commutation import clear_commutation_cache
from repro.persist import CompileCache, compile_fingerprint

DEFAULT_REPEAT = 3
#: Every paper-scale row must serve warm compiles this much faster than cold.
WARM_SPEEDUP_FLOOR = 10.0
#: Every row at any scale must at least be warm-faster-than-cold by this much.
SANITY_SPEEDUP_FLOOR = 1.5
#: CI also fails when a row's speedup regresses below baseline / this.
REGRESSION_FACTOR = 2.0


class _Config:
    def __init__(self, name: str, build: Callable, nodes: int, topology: str,
                 remap: str = "never"):
        self.name = name
        self.build = build
        self.nodes = nodes
        self.topology = topology
        self.remap = remap


def _configs(scale: str) -> List[_Config]:
    if scale == "small":
        return [
            _Config("qft-32@4", lambda: qft_circuit(32), 4, "ring"),
            _Config("qaoa-48@6", lambda: qaoa_maxcut_circuit(48, seed=7),
                    6, "grid", remap="bursts"),
            _Config("bv-40@4", lambda: bv_circuit(40), 4, "line"),
        ]
    if scale == "medium":
        return [
            _Config("qft-64@8", lambda: qft_circuit(64), 8, "ring"),
            _Config("qaoa-96@12", lambda: qaoa_maxcut_circuit(96, seed=7),
                    12, "grid", remap="bursts"),
            _Config("mctr-72@8", lambda: mctr_circuit(72), 8, "line"),
        ]
    # Paper scale: the sizes the acceptance bar is read on — QFT at 100+
    # qubits and the large QAOA instance, covering both remap modes.
    return [
        _Config("qft-100@10", lambda: qft_circuit(100), 10, "ring"),
        _Config("qft-128@16", lambda: qft_circuit(128), 16, "grid"),
        _Config("qaoa-192@16", lambda: qaoa_maxcut_circuit(192, seed=7),
                16, "grid", remap="bursts"),
    ]


def _network_for(config: _Config, num_qubits: int):
    network = uniform_network(config.nodes, -(-num_qubits // config.nodes))
    apply_topology(network, config.topology)
    return network


def _compiler_config(config: _Config) -> AutoCommConfig:
    if config.remap == "bursts":
        return AutoCommConfig(remap="bursts", phase_blocks=4)
    return AutoCommConfig()


def _timed(runner: Callable) -> float:
    """One GC-quiesced wall-time sample of ``runner``."""
    gc.collect()
    gc.disable()
    try:
        begin = time.perf_counter()
        runner()
        return time.perf_counter() - begin
    finally:
        gc.enable()


def _bench_config(config: _Config, repeat: int,
                  workdir: Path) -> Dict[str, object]:
    circuit = config.build()
    network = _network_for(config, circuit.num_qubits)
    compiler_config = _compiler_config(config)

    # Cold: fingerprint + compile + store, each repeat into a fresh
    # directory (so the store is always a first write) with the process
    # commutation cache cleared (so the compile is a true first compile).
    cold_timings = []
    cold = None
    for index in range(repeat):
        cache_dir = workdir / f"{config.name}-cold-{index}"

        def _cold_once():
            nonlocal cold
            clear_commutation_cache()
            cold = compile_autocomm(circuit, network, config=compiler_config,
                                    cache=CompileCache(cache_dir))

        cold_timings.append(_timed(_cold_once))
    cold_s = statistics.median(cold_timings)

    # Warm: every run hits the entry the first store left behind.
    warm_dir = workdir / f"{config.name}-cold-0"
    artifact_bytes = CompileCache(warm_dir).entries()[0].stat().st_size
    warm_timings = []
    warm = None

    def _warm_once():
        nonlocal warm
        warm = compile_autocomm(circuit, network, config=compiler_config,
                                cache=CompileCache(warm_dir))

    for _ in range(repeat):
        warm_timings.append(_timed(_warm_once))
    warm_s = statistics.median(warm_timings)

    fingerprint_s = statistics.median(
        [_timed(lambda: compile_fingerprint(circuit, network,
                                            config=compiler_config))
         for _ in range(repeat)])

    return {
        "name": config.name,
        "qubits": circuit.num_qubits,
        "nodes": config.nodes,
        "topology": config.topology,
        "remap": config.remap,
        "gates": len(cold.circuit),
        "artifact_bytes": artifact_bytes,
        "cold_ms": round(cold_s * 1e3, 3),
        "warm_ms": round(warm_s * 1e3, 3),
        "fingerprint_ms": round(fingerprint_s * 1e3, 3),
        "warm_speedup": round(cold_s / warm_s, 2),
        "results_equal": warm.metrics.as_dict() == cold.metrics.as_dict(),
    }


def run_bench(scale: str, repeat: int = DEFAULT_REPEAT) -> Dict[str, object]:
    workdir = Path(tempfile.mkdtemp(prefix="bench-cache-"))
    try:
        configs = [_bench_config(config, repeat, workdir)
                   for config in _configs(scale)]
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    speedups = sorted(c["warm_speedup"] for c in configs)
    return {
        "bench": "cache_perf",
        "schema": 1,
        "scale": scale,
        "repeat": repeat,
        "warm_speedup_floor": WARM_SPEEDUP_FLOOR,
        "floor_scale": "paper",
        "configs": configs,
        "min_warm_speedup": speedups[0],
        "median_warm_speedup": round(statistics.median(speedups), 2),
        "all_results_equal": all(c["results_equal"] for c in configs),
    }


def _floor_failures(configs: List[Dict[str, object]],
                    floor: float) -> List[str]:
    return [f"{c['name']}: warm_speedup {c['warm_speedup']}x is below "
            f"the {floor:.1f}x floor"
            for c in configs if c["warm_speedup"] < floor]


def check_regression(report: Dict[str, object],
                     baseline: Dict[str, object]) -> List[str]:
    """Compare a fresh report against the committed baseline.

    All gates run on the machine-independent warm/cold ratio: every fresh
    row must beat :data:`SANITY_SPEEDUP_FLOOR` (paper-scale rows the full
    :data:`WARM_SPEEDUP_FLOOR`), no fresh row may fall below its baseline
    speedup / :data:`REGRESSION_FACTOR`, and the baseline's committed
    ``paper`` rows must themselves clear the floor — so the paper-scale
    claim is re-checked in CI without re-running paper-scale compiles.
    Artifact sizes and absolute times are recorded but never gated.
    """
    failures = []
    baseline_configs = {c["name"]: c for c in baseline.get("configs", [])}
    floor = (WARM_SPEEDUP_FLOOR if report.get("scale") == "paper"
             else SANITY_SPEEDUP_FLOOR)
    for config in report["configs"]:
        if not config["results_equal"]:
            failures.append(f"{config['name']}: warm program's metrics "
                            "differ from the cold compile")
        if config["warm_speedup"] < floor:
            failures.append(
                f"{config['name']}: warm_speedup {config['warm_speedup']}x "
                f"is below the {floor:.1f}x floor")
        base = baseline_configs.get(config["name"])
        if base is None:
            continue
        allowed = base["warm_speedup"] / REGRESSION_FACTOR
        if config["warm_speedup"] < allowed:
            failures.append(
                f"{config['name']}: warm_speedup {config['warm_speedup']}x "
                f"fell below {allowed:.1f}x (baseline {base['warm_speedup']}x "
                f"/ {REGRESSION_FACTOR})")
    paper = baseline.get("paper") or {}
    failures.extend(_floor_failures(paper.get("configs", []),
                                    WARM_SPEEDUP_FLOOR))
    return failures


def _emit_report(report: Dict[str, object]) -> None:
    rows = [dict(config) for config in report["configs"]]
    note = (f"min warm speedup {report['min_warm_speedup']}x "
            f"(median {report['median_warm_speedup']}x) over "
            f"{len(rows)} configs at scale {report['scale']}")
    paper = report.get("paper")
    if paper:
        rows.extend(dict(config) for config in paper["configs"])
        note += (f"; paper rows min {paper['min_warm_speedup']}x "
                 f"(floor {WARM_SPEEDUP_FLOOR:.0f}x)")
    emit("cache_perf", rows,
         columns=["name", "qubits", "nodes", "topology", "remap", "gates",
                  "artifact_bytes", "cold_ms", "warm_ms", "fingerprint_ms",
                  "warm_speedup", "results_equal"],
         note=note)


def test_bench_cache():
    """Pytest entry point (uses the REPRO_BENCH_SCALE protocol)."""
    from _harness import bench_scale

    scale = bench_scale()
    report = run_bench(scale)
    _emit_report(report)
    assert report["all_results_equal"], \
        "cache-served programs differ from fresh compiles"
    floor = WARM_SPEEDUP_FLOOR if scale == "paper" else SANITY_SPEEDUP_FLOOR
    assert report["min_warm_speedup"] >= floor, \
        (f"warm path only {report['min_warm_speedup']}x faster than cold "
         f"(floor {floor:.1f}x at scale {scale})")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="compile-cache cold/warm perf benchmark")
    parser.add_argument("--scale", choices=BENCH_SCALES, default="small")
    parser.add_argument("--repeat", type=int, default=DEFAULT_REPEAT)
    parser.add_argument("--output", type=Path, default=None,
                        help="write the JSON report here "
                             "(e.g. BENCH_cache.json)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="committed BENCH_cache.json to gate the "
                             "warm-speedup floors and regressions against "
                             "(exit 1 on failure)")
    args = parser.parse_args(argv)

    if args.scale == "paper":
        # The committed layout: gated small-scale configs at top level,
        # paper-scale rows (where the floor claim is made) under "paper".
        report = run_bench("small", repeat=args.repeat)
        report["paper"] = run_bench("paper", repeat=args.repeat)
    else:
        report = run_bench(args.scale, repeat=args.repeat)
    _emit_report(report)

    if args.output is not None:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.output}")

    failures = []
    if not report["all_results_equal"]:
        failures.append("cache-served programs differ from fresh compiles")
    failures.extend(_floor_failures(report["configs"], SANITY_SPEEDUP_FLOOR))
    paper = report.get("paper")
    if paper:
        if not paper["all_results_equal"]:
            failures.append("paper scale: cache-served programs differ "
                            "from fresh compiles")
        failures.extend(_floor_failures(paper["configs"],
                                        WARM_SPEEDUP_FLOOR))
    if args.baseline is not None:
        if not args.baseline.exists():
            print(f"FAIL: baseline {args.baseline} not found", file=sys.stderr)
            return 1
        failures.extend(
            check_regression(report, json.loads(args.baseline.read_text())))

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if args.baseline is not None:
        print("regression check against baseline: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
