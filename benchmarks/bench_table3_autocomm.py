"""Table 3 — AutoComm results and relative performance to the sparse baseline.

For every benchmark instance the harness reports the paper's Table 3 columns:
Tot Comm, TP-Comm, Peak # REM CX, improv. factor and LAT-DEC factor, where
the baseline is the Ferrari-style per-gate Cat-Comm compiler with greedy
scheduling, plus a ``simulated_latency`` column measured by executing the
compiled program with the discrete-event engine (it must equal the
analytical latency).  The timed quantity is the AutoComm compilation itself.
"""

import pytest

from _harness import emit, prepare, suite_specs
from repro import compile_autocomm, compile_sparse, simulate_program
from repro.analysis import geometric_mean, table3_row

SPECS = suite_specs()
_ROWS = []


@pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
def test_table3_row(benchmark, spec, compile_cache):
    circuit, network, mapping = prepare(spec)

    autocomm = benchmark.pedantic(
        lambda: compile_autocomm(circuit, network, mapping=mapping),
        rounds=1, iterations=1)
    baseline = compile_sparse(circuit, network, mapping=mapping)
    compile_cache[("autocomm", spec.name)] = autocomm
    compile_cache[("sparse", spec.name)] = baseline

    executed = simulate_program(autocomm)
    row = table3_row(autocomm, baseline,
                     simulated_latency=executed.latency)
    row["name"] = spec.name
    _ROWS.append(row)

    averages = {
        "name": "geomean",
        "tot_comm": "",
        "tp_comm": "",
        "peak_rem_cx": "",
        "baseline_comm": "",
        "improv_factor": geometric_mean([r["improv_factor"] for r in _ROWS]),
        "lat_dec_factor": geometric_mean([r["lat_dec_factor"] for r in _ROWS]),
        "simulated_latency": "",
    }
    emit("table3_autocomm", _ROWS + [averages],
         columns=["name", "tot_comm", "tp_comm", "peak_rem_cx", "baseline_comm",
                  "improv_factor", "lat_dec_factor", "simulated_latency"],
         note="Paper Table 3: AutoComm vs per-gate Cat-Comm baseline "
              "(paper averages: 4.1x comm, 3.5x latency); simulated_latency "
              "is the discrete-event execution of the AutoComm schedule.")
