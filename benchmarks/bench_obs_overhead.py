"""Observability overhead benchmark (the ``BENCH_obs.json`` trajectory).

The span/metrics layer is default-on, so its cost must stay negligible:
this harness A/Bs the fully instrumented pipeline against the same
pipeline with tracing globally disabled (:func:`repro.obs.set_tracing`)
and the simulator with its metrics registry and trace recorder off, on one
QFT configuration per scale.  The committed ``BENCH_obs.json`` at the
repository root records the measured overheads; CI re-runs the benchmark
at ``small`` scale and fails when either overhead exceeds the threshold.

The run also exports the compile's :class:`~repro.obs.RunReport` via
``--report`` so the CI perf-smoke job can upload one report artifact per
run (and implicitly proves the report round-trips through the loader).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py \
        --scale small --output BENCH_obs.json --report obs_report.ci.json

Timing protocol: ``--repeat`` rounds, each timing the full AutoComm
compile once per mode (cold commutation caches) back to back with the
order alternating between rounds; the overhead is the ratio of the two
modes' median times.  Rounds are measured in process CPU time (immune to
the CPU steal of shared runners) with the garbage collector paused, and
interleaving cancels the multi-percent clock drift that swamps the
percent-level cost being measured if modes are timed in separate batches.
The simulator comparison applies the same protocol to a seeded
Monte-Carlo run with the metrics registry on versus off; the event-trace
recorder — its own pre-existing subsystem — keeps its default in both
arms.  Even so, shared-runner noise floors sit at a few percent, so the
gate measures up to three times and fails only when every attempt
exceeds the threshold: a noise spike rarely repeats, a real regression
always does.
"""

from __future__ import annotations

import argparse
import gc
import json
import statistics
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent
if __name__ == "__main__":  # allow standalone runs without PYTHONPATH=src
    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        try:
            import repro  # noqa: F401
        except ImportError:
            sys.path.insert(0, src)

from _harness import BENCH_SCALES, emit
from repro.circuits import qft_circuit
from repro.core import compile_autocomm
from repro.hardware import apply_topology, uniform_network
from repro.ir import clear_commutation_cache
from repro.obs import RunReport, report_for_program, set_tracing
from repro.sim import SimulationConfig, run_monte_carlo

DEFAULT_REPEAT = 25
#: CI fails when a measured overhead exceeds this many percent.
DEFAULT_THRESHOLD_PCT = 5.0
#: Independent measurements the gate may take before declaring a failure.
DEFAULT_ATTEMPTS = 3

#: One QFT configuration per scale: (qubits, nodes, Monte-Carlo trials).
_SCALE_CONFIG = {
    "small": (16, 4, 20),
    "medium": (24, 4, 50),
    "paper": (32, 8, 100),
}


def _build(scale: str):
    qubits, nodes, trials = _SCALE_CONFIG[scale]
    network = uniform_network(nodes, qubits // nodes)
    apply_topology(network, "line")
    return qft_circuit(qubits), network, trials


def _compile_once(circuit, network, traced: bool):
    previous = set_tracing(traced)
    gc.collect()
    gc.disable()
    try:
        clear_commutation_cache()
        begin = time.process_time()
        program = compile_autocomm(circuit, network)
        return time.process_time() - begin, program
    finally:
        gc.enable()
        set_tracing(previous)


def _simulate_once(program, trials: int, instrumented: bool) -> float:
    # The A/B isolates the metrics registry; the event-trace recorder (its
    # own subsystem, covered by tests/sim/test_trace_disabled.py) keeps its
    # default in both arms.
    config = SimulationConfig(p_epr=0.75, seed=13, trials=trials,
                              record_metrics=instrumented)
    gc.collect()
    gc.disable()
    try:
        begin = time.process_time()
        run_monte_carlo(program, config)
        return time.process_time() - begin
    finally:
        gc.enable()


def _time_compiles(circuit, network, repeat: int):
    """Paired traced/untraced compile timings, order alternating per round.

    Shared-runner clocks drift by several percent over a benchmark's
    lifetime, which dwarfs the instrumentation cost being measured.  Each
    round therefore times both modes back to back (drift cancels within a
    round) with the order flipped every round (within-pair bias cancels
    across rounds); the median of the per-round ratios is the signal.
    """
    _compile_once(circuit, network, traced=True)   # warm caches & imports
    _compile_once(circuit, network, traced=False)
    traced_times: List[float] = []
    untraced_times: List[float] = []
    program = None
    for round_index in range(repeat):
        if round_index % 2 == 0:
            traced_s, program = _compile_once(circuit, network, traced=True)
            untraced_s, _ = _compile_once(circuit, network, traced=False)
        else:
            untraced_s, _ = _compile_once(circuit, network, traced=False)
            traced_s, program = _compile_once(circuit, network, traced=True)
        traced_times.append(traced_s)
        untraced_times.append(untraced_s)
    return traced_times, untraced_times, program


def _time_simulations(program, trials: int, repeat: int):
    """Paired instrumented/stripped Monte-Carlo timings (same protocol)."""
    _simulate_once(program, trials, instrumented=True)
    _simulate_once(program, trials, instrumented=False)
    on_times: List[float] = []
    off_times: List[float] = []
    for round_index in range(repeat):
        if round_index % 2 == 0:
            on_s = _simulate_once(program, trials, instrumented=True)
            off_s = _simulate_once(program, trials, instrumented=False)
        else:
            off_s = _simulate_once(program, trials, instrumented=False)
            on_s = _simulate_once(program, trials, instrumented=True)
        on_times.append(on_s)
        off_times.append(off_s)
    return on_times, off_times


def _overhead_pct(instrumented: Sequence[float],
                  stripped: Sequence[float]) -> float:
    """Ratio of medians: robust to the heavy-tailed jitter of shared
    runners, where a median of per-round ratios still inherits any single
    round's noise."""
    stripped_median = statistics.median(stripped)
    if stripped_median <= 0:
        return 0.0
    return (statistics.median(instrumented) / stripped_median - 1.0) * 100.0


def run_bench(scale: str, repeat: int = DEFAULT_REPEAT) -> Dict[str, object]:
    circuit, network, trials = _build(scale)

    traced_times, untraced_times, program = _time_compiles(circuit, network,
                                                           repeat)
    sim_on, sim_off = _time_simulations(program, trials, repeat)

    compile_overhead = _overhead_pct(traced_times, untraced_times)
    sim_overhead = _overhead_pct(sim_on, sim_off)
    qubits, nodes, _ = _SCALE_CONFIG[scale]
    return {
        "bench": "obs_overhead",
        "schema": 1,
        "scale": scale,
        "repeat": repeat,
        "config": {"circuit": f"qft{qubits}", "nodes": nodes,
                   "topology": "line", "trials": trials},
        "compile": {
            "traced_ms": round(min(traced_times) * 1e3, 3),
            "untraced_ms": round(min(untraced_times) * 1e3, 3),
            "traced_median_ms": round(statistics.median(traced_times) * 1e3, 3),
            "untraced_median_ms": round(
                statistics.median(untraced_times) * 1e3, 3),
            "overhead_pct": round(compile_overhead, 2),
        },
        "simulate": {
            "instrumented_ms": round(min(sim_on) * 1e3, 3),
            "stripped_ms": round(min(sim_off) * 1e3, 3),
            "overhead_pct": round(sim_overhead, 2),
        },
        "threshold_pct": DEFAULT_THRESHOLD_PCT,
        "_program": program,  # stripped before serialisation
    }


def check_overhead(report: Dict[str, object],
                   threshold_pct: float) -> List[str]:
    failures = []
    for section in ("compile", "simulate"):
        overhead = report[section]["overhead_pct"]
        if overhead > threshold_pct:
            failures.append(f"{section}: observability overhead "
                            f"{overhead:.2f}% exceeds {threshold_pct:.1f}%")
    return failures


def run_gated(scale: str, repeat: int = DEFAULT_REPEAT,
              threshold_pct: float = DEFAULT_THRESHOLD_PCT,
              attempts: int = DEFAULT_ATTEMPTS):
    """Measure up to ``attempts`` times; pass on the first clean attempt.

    Even CPU-time medians over interleaved rounds carry a noise floor of a
    few percent on shared runners, so one estimate above the threshold is
    far more often a noisy measurement than a real regression — but a real
    regression exceeds the threshold on every attempt.  Returns the
    passing report, or the best (lowest worst-section overhead) failing
    one together with its failure messages.
    """
    best_report = None
    best_failures: List[str] = []
    for _ in range(max(1, attempts)):
        report = run_bench(scale, repeat=repeat)
        failures = check_overhead(report, threshold_pct)
        if not failures:
            return report, []
        worst = max(report[s]["overhead_pct"] for s in ("compile", "simulate"))
        if best_report is None or worst < max(
                best_report[s]["overhead_pct"]
                for s in ("compile", "simulate")):
            best_report, best_failures = report, failures
    return best_report, best_failures


def _emit_report(report: Dict[str, object]) -> None:
    rows = [
        {"pipeline": "compile", "with_obs_ms": report["compile"]["traced_ms"],
         "without_obs_ms": report["compile"]["untraced_ms"],
         "overhead_pct": report["compile"]["overhead_pct"]},
        {"pipeline": "simulate",
         "with_obs_ms": report["simulate"]["instrumented_ms"],
         "without_obs_ms": report["simulate"]["stripped_ms"],
         "overhead_pct": report["simulate"]["overhead_pct"]},
    ]
    note = (f"config {report['config']}; threshold {report['threshold_pct']}% "
            f"(CPU-time ratio of medians over {report['repeat']} interleaved "
            "rounds, GC paused; ms columns are round minima; the gate takes "
            f"up to {DEFAULT_ATTEMPTS} attempts)")
    emit("obs_overhead", rows,
         columns=["pipeline", "with_obs_ms", "without_obs_ms",
                  "overhead_pct"],
         note=note)


def test_bench_obs_overhead():
    """Pytest entry point (uses the REPRO_BENCH_SCALE protocol)."""
    from _harness import bench_scale

    report, failures = run_gated(bench_scale())
    report.pop("_program")
    _emit_report(report)
    assert not failures, "; ".join(failures)


def test_run_report_roundtrips(tmp_path):
    """The exported compile RunReport reloads into an equal object."""
    circuit, network, _ = _build("small")
    program = compile_autocomm(circuit, network)
    artifact = report_for_program(
        program, meta={"bench": "obs_overhead", "scale": "small"})
    loaded = RunReport.load(artifact.save(tmp_path / "obs_report.json"))
    assert loaded == artifact
    assert loaded.span_tree() is not None


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="observability overhead benchmark")
    parser.add_argument("--scale", choices=BENCH_SCALES, default="small")
    parser.add_argument("--repeat", type=int, default=DEFAULT_REPEAT)
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD_PCT,
                        help="fail when an overhead exceeds this many "
                             f"percent (default {DEFAULT_THRESHOLD_PCT})")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the JSON report here (e.g. BENCH_obs.json)")
    parser.add_argument("--report", type=Path, default=None,
                        help="also export the instrumented compile's "
                             "RunReport artifact here")
    args = parser.parse_args(argv)

    report, failures = run_gated(args.scale, repeat=args.repeat,
                                 threshold_pct=args.threshold)
    program = report.pop("_program")
    _emit_report(report)

    if args.output is not None:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.output}")
    if args.report is not None:
        artifact = report_for_program(
            program, meta={"bench": "obs_overhead", "scale": args.scale})
        artifact.save(args.report)
        # The loader must accept its own artifact before CI uploads it.
        assert RunReport.load(args.report) == artifact
        print(f"wrote {args.report}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"observability overhead within {args.threshold:.1f}%: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
