"""Table 2 — benchmark program statistics under the OEE static mapping.

Regenerates the columns of Table 2 (#qubit, #node, #gate, #CX, #REM CX) for
every benchmark instance at the configured scale.  The timed quantity is the
full preparation pipeline: circuit generation, CX-basis decomposition and OEE
partitioning.
"""

import pytest

from _harness import emit, suite_specs
from repro.analysis import table2_row
from repro.ir import decompose_to_cx
from repro.partition import oee_partition

SPECS = suite_specs()
_ROWS = []


@pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
def test_table2_row(benchmark, spec):
    def run():
        circuit, network = spec.build()
        decomposed = decompose_to_cx(circuit)
        mapping = oee_partition(decomposed, network).mapping
        return table2_row(spec.name, circuit, decomposed, mapping, spec.num_nodes)

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    _ROWS.append(row)
    emit("table2_suite", _ROWS,
         columns=["name", "num_qubits", "num_nodes", "num_gates", "num_cx",
                  "num_remote_cx"],
         note="Paper Table 2: benchmark programs (qubits evenly distributed, "
              "OEE mapping).")
