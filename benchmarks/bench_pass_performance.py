"""Compiler-pass micro-benchmarks (compile-time performance, not paper data).

These benchmarks time the individual AutoComm passes on a mid-size QFT so
regressions in compilation speed are visible; they use pytest-benchmark's
statistical timing (multiple rounds), unlike the table/figure harnesses which
run each expensive experiment once.
"""

import pytest

from repro.core import (
    aggregate_communications,
    assign_communications,
    schedule_communications,
)
from repro.circuits import qft_circuit, qaoa_maxcut_circuit
from repro.hardware import uniform_network
from repro.ir import decompose_to_cx
from repro.partition import oee_partition


@pytest.fixture(scope="module")
def qft_instance():
    circuit = decompose_to_cx(qft_circuit(16))
    network = uniform_network(4, 4)
    mapping = oee_partition(circuit, network).mapping
    return circuit, network, mapping


@pytest.fixture(scope="module")
def qaoa_instance():
    circuit = decompose_to_cx(qaoa_maxcut_circuit(24, layers=1, degree=3))
    network = uniform_network(4, 6)
    mapping = oee_partition(circuit, network).mapping
    return circuit, network, mapping


def test_perf_decompose_qft(benchmark):
    circuit = qft_circuit(16)
    benchmark(decompose_to_cx, circuit)


def test_perf_oee_partition(benchmark, qft_instance):
    circuit, network, _ = qft_instance
    benchmark(oee_partition, circuit, network)


def test_perf_aggregation_qft(benchmark, qft_instance):
    circuit, _, mapping = qft_instance
    benchmark(aggregate_communications, circuit, mapping)


def test_perf_aggregation_qaoa(benchmark, qaoa_instance):
    circuit, _, mapping = qaoa_instance
    benchmark(aggregate_communications, circuit, mapping)


def test_perf_assignment(benchmark, qft_instance):
    circuit, _, mapping = qft_instance
    aggregation = aggregate_communications(circuit, mapping)
    benchmark(assign_communications, aggregation)


def test_perf_scheduling(benchmark, qft_instance):
    circuit, network, mapping = qft_instance
    assignment = assign_communications(aggregate_communications(circuit, mapping))
    benchmark(schedule_communications, assignment, network)
