"""Unit tests for the counters/gauges/histograms metrics registry."""

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestInstruments:
    def test_counter_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_gauge_keeps_last_value(self):
        gauge = Gauge()
        assert gauge.as_value() is None
        gauge.set(3.0)
        gauge.set(1.5)
        assert gauge.as_value() == 1.5

    def test_histogram_summary(self):
        histogram = Histogram()
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 4
        assert summary["sum"] == pytest.approx(10.0)
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["p50"] == pytest.approx(2.5)

    def test_empty_histogram_summary_is_zeroes(self):
        assert Histogram().summary() == {"count": 0, "sum": 0.0, "mean": 0.0,
                                         "min": 0.0, "p50": 0.0, "p95": 0.0,
                                         "max": 0.0}

    def test_histogram_percentile_bounds(self):
        histogram = Histogram()
        histogram.observe(1.0)
        with pytest.raises(ValueError):
            histogram.percentile(101)


class TestMetricsRegistry:
    def test_same_name_and_labels_share_an_instrument(self):
        registry = MetricsRegistry()
        registry.counter("epr", link="0-1").inc()
        registry.counter("epr", link="0-1").inc(2)
        registry.counter("epr", link="1-2").inc()
        values = registry.counter_values()
        assert values == {"epr{link=0-1}": 3, "epr{link=1-2}": 1}

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        registry.counter("x", a=1, b=2).inc()
        registry.counter("x", b=2, a=1).inc()
        assert registry.counter_values() == {"x{a=1,b=2}": 2}

    def test_as_dict_sections(self):
        registry = MetricsRegistry()
        registry.counter("trials").inc(3)
        registry.gauge("latency").set(42.0)
        registry.histogram("wait").observe(1.0)
        snapshot = registry.as_dict()
        assert snapshot["counters"] == {"trials": 3}
        assert snapshot["gauges"] == {"latency": 42.0}
        assert snapshot["histograms"]["wait"]["count"] == 1

    def test_disabled_registry_serves_noops_and_stays_empty(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("a").inc(5)
        registry.gauge("b").set(1.0)
        registry.histogram("c").observe(2.0)
        assert len(registry) == 0
        assert registry.as_dict() == {"counters": {}, "gauges": {},
                                      "histograms": {}}

    def test_merge_pools_all_instrument_kinds(self):
        left = MetricsRegistry()
        left.counter("n").inc(1)
        left.gauge("g").set(1.0)
        left.histogram("h").observe(1.0)
        right = MetricsRegistry()
        right.counter("n").inc(2)
        right.counter("extra").inc(1)
        right.gauge("g").set(9.0)
        right.histogram("h").observe(3.0)

        left.merge(right)
        assert left.counter_values() == {"extra": 1, "n": 3}
        assert left.gauge("g").value == 9.0
        assert left.histogram("h").summary()["count"] == 2

    def test_chunked_merge_equals_sequential_registry(self):
        """Process-pool aggregation: one registry per worker chunk, merged
        in chunk order, must equal the registry a sequential run fills."""
        def record(registry, trial):
            registry.counter("epr.attempts").inc(trial + 1)
            registry.counter("link.gen", link=f"{trial % 3}").inc(2)
            registry.gauge("plan.size").set(40 + trial)
            registry.histogram("queue.wait").observe(float(trial) * 1.5)
            registry.histogram("occupancy", node="0").observe(trial % 4)

        trials = list(range(11))
        sequential = MetricsRegistry()
        for trial in trials:
            record(sequential, trial)

        merged = MetricsRegistry()
        chunks = [trials[0:4], trials[4:8], trials[8:11]]
        for chunk in chunks:
            worker = MetricsRegistry()
            for trial in chunk:
                record(worker, trial)
            merged.merge(worker)

        assert merged.as_dict() == sequential.as_dict()
        assert merged.counter_values() == sequential.counter_values()
        # Chunk-ordered histogram merge preserves the raw sample order, so
        # exact percentiles coincide at every quantile.
        for key, seq_hist in sequential._histograms.items():
            merged_hist = merged._histograms[key]
            assert merged_hist.values == seq_hist.values
            for q in (0, 10, 50, 95, 100):
                assert merged_hist.percentile(q) == seq_hist.percentile(q)
        # Gauges keep the last write (final trial), counters the exact sum.
        assert merged.gauge("plan.size").value == 40 + trials[-1]
        assert (merged.top_counters("link.", n=5)
                == sequential.top_counters("link.", n=5))

    def test_top_counters_orders_by_value(self):
        registry = MetricsRegistry()
        registry.counter("link.epr", link="0-1").inc(10)
        registry.counter("link.epr", link="1-2").inc(30)
        registry.counter("link.epr", link="2-3").inc(20)
        registry.counter("other").inc(99)
        top = registry.top_counters("link.", n=2)
        assert top == [("link.epr{link=1-2}", 30), ("link.epr{link=2-3}", 20)]
