"""Unit tests for the versioned RunReport export format."""

import json

import pytest

from repro.circuits import qft_circuit
from repro.core import compile_autocomm
from repro.core.metrics import CompilationMetrics
from repro.hardware import uniform_network
from repro.obs import RUN_REPORT_SCHEMA, RunReport, Span, report_for_program


def _compiled():
    network = uniform_network(num_nodes=2, qubits_per_node=4)
    return compile_autocomm(qft_circuit(8), network)


class TestRunReport:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown report kind"):
            RunReport(kind="banana")

    def test_minimal_roundtrip(self, tmp_path):
        report = RunReport(kind="compile", meta={"qasm": "qft.qasm"})
        path = report.save(tmp_path / "report.json")
        loaded = RunReport.load(path)
        assert loaded == report
        assert loaded.schema == RUN_REPORT_SCHEMA

    def test_to_json_from_dict_roundtrip(self):
        report = RunReport(kind="simulate", meta={"nodes": 4},
                           simulation={"validation": {"matches": True}})
        rebuilt = RunReport.from_dict(json.loads(report.to_json()))
        assert rebuilt == report

    def test_wrong_schema_rejected(self):
        data = RunReport(kind="compile").as_dict()
        data["schema"] = RUN_REPORT_SCHEMA + 1
        with pytest.raises(ValueError, match="unsupported run-report schema"):
            RunReport.from_dict(data)

    def test_load_rejects_non_object_and_bad_json(self, tmp_path):
        array = tmp_path / "array.json"
        array.write_text("[1, 2]")
        with pytest.raises(ValueError, match="JSON object"):
            RunReport.load(array)
        broken = tmp_path / "broken.json"
        broken.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            RunReport.load(broken)

    def test_omitted_sections_absent_from_json(self):
        data = RunReport(kind="compile").as_dict()
        assert set(data) == {"schema", "kind", "meta"}


class TestReportForProgram:
    def test_compile_report_roundtrips_through_loader(self, tmp_path):
        program = _compiled()
        report = report_for_program(program, meta={"qasm": "qft.qasm"})
        assert report.kind == "compile"
        assert report.meta["compiler"] == program.compiler
        assert report.meta["num_qubits"] == 8
        assert report.meta["qasm"] == "qft.qasm"

        loaded = RunReport.load(report.save(tmp_path / "r.json"))
        assert loaded == report

        # Both structured sections reconstruct into live objects.
        metrics = loaded.compilation_metrics()
        assert isinstance(metrics, CompilationMetrics)
        assert metrics.as_dict() == program.metrics.as_dict()
        tree = loaded.span_tree()
        assert isinstance(tree, Span)
        assert tree.name == f"compile/{program.circuit.name}"
        assert tree.find("aggregation") is not None

    def test_span_tree_none_without_spans(self):
        assert RunReport(kind="compile").span_tree() is None
        assert RunReport(kind="compile").compilation_metrics() is None
