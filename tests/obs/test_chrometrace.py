"""Chrome-trace export: span flattening, lane packing, validation.

Includes the acceptance scenario: compile a QFT for a 4-node line topology
with dynamic remapping, simulate it, export the combined compile+sim trace
and check that every event carries ``ts``/``dur``/``pid``/``tid`` and that
spans nest without partial overlaps.
"""

import json

import pytest

from repro.circuits import qft_circuit
from repro.core import AutoCommConfig, compile_autocomm
from repro.hardware import apply_topology, uniform_network
from repro.obs import (PID_COMPILE, PID_LINKS, PID_SIM, Span, chrome_trace,
                       simulation_trace_events, span_trace_events,
                       validate_trace_events, write_chrome_trace)
from repro.obs.chrometrace import _assign_lanes, _merge_windows
from repro.sim import SimulationConfig, simulate_program


def _span_tree():
    root = Span("compile", start=0.0)
    first = root.child("first")
    first.start = 0.0
    first.add("gates", 3)
    first.close(end=0.4)
    second = root.child("second")
    second.start = 0.4
    second.close(end=1.0)
    root.close(end=1.0)
    return root


class TestSpanTraceEvents:
    def test_events_are_complete_and_relative(self):
        events = span_trace_events(_span_tree())
        assert [e["name"] for e in events] == ["compile", "first", "second"]
        assert all(e["ph"] == "X" and e["pid"] == PID_COMPILE for e in events)
        assert events[0]["ts"] == 0.0
        assert events[0]["dur"] == pytest.approx(1.0e6)  # seconds → µs
        assert events[1]["args"] == {"gates": 3}
        assert validate_trace_events(events) == []

    def test_child_clamped_into_parent_window(self):
        root = Span("root", start=0.0)
        child = root.child("late")
        child.start = 0.9
        child.close(end=1.5)  # stamped past the parent's end
        root.close(end=1.0)
        events = span_trace_events(root)
        child_event = events[1]
        assert child_event["ts"] + child_event["dur"] <= events[0]["dur"]
        assert validate_trace_events(events) == []


class TestLaneAssignment:
    def test_disjoint_intervals_share_a_lane(self):
        assert _assign_lanes([(0, 1), (2, 3), (4, 5)]) == [0, 0, 0]

    def test_overlapping_intervals_get_distinct_lanes(self):
        lanes = _assign_lanes([(0, 4), (1, 2), (1, 3)])
        assert lanes[0] != lanes[1]
        assert lanes[0] != lanes[2]
        assert lanes[1] != lanes[2]

    def test_empty_input(self):
        assert _assign_lanes([]) == []

    def test_merge_windows_counts_overlaps(self):
        merged = _merge_windows([(0.0, 2.0), (1.0, 3.0), (5.0, 6.0)])
        assert merged == [(0.0, 3.0, 2), (5.0, 6.0, 1)]


class TestChromeTraceFile:
    def test_write_and_reload(self, tmp_path):
        events = span_trace_events(_span_tree())
        path = write_chrome_trace(tmp_path / "out.trace.json", events)
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert len(payload["traceEvents"]) == len(events)
        assert chrome_trace(events)["traceEvents"] == events


class TestValidation:
    def test_flags_wrong_phase(self):
        problems = validate_trace_events([{"name": "m", "ph": "M"}])
        assert problems and "expected 'X'" in problems[0]

    def test_flags_missing_fields(self):
        problems = validate_trace_events([{"name": "e", "ph": "X", "ts": 0.0}])
        assert problems and "missing" in problems[0]

    def test_flags_negative_times(self):
        event = {"name": "e", "ph": "X", "ts": -1.0, "dur": -2.0,
                 "pid": 1, "tid": 0}
        problems = validate_trace_events([event])
        assert any("negative ts" in p for p in problems)
        assert any("negative dur" in p for p in problems)

    def test_flags_partial_overlap_within_a_lane(self):
        events = [
            {"name": "a", "ph": "X", "ts": 0.0, "dur": 10.0, "pid": 1, "tid": 0},
            {"name": "b", "ph": "X", "ts": 5.0, "dur": 10.0, "pid": 1, "tid": 0},
        ]
        problems = validate_trace_events(events)
        assert problems and "partially overlaps" in problems[0]

    def test_accepts_nesting_and_cross_lane_overlap(self):
        events = [
            {"name": "a", "ph": "X", "ts": 0.0, "dur": 10.0, "pid": 1, "tid": 0},
            {"name": "b", "ph": "X", "ts": 2.0, "dur": 3.0, "pid": 1, "tid": 0},
            {"name": "c", "ph": "X", "ts": 5.0, "dur": 10.0, "pid": 1, "tid": 1},
        ]
        assert validate_trace_events(events) == []


class TestAcceptanceScenario:
    """Chrome-trace export of the 4-node line remap scenario validates."""

    @pytest.fixture(scope="class")
    def trace_events(self):
        network = uniform_network(num_nodes=4, qubits_per_node=3)
        apply_topology(network, "line")
        program = compile_autocomm(
            qft_circuit(12), network,
            config=AutoCommConfig(remap="bursts", phase_blocks=3))
        result = simulate_program(program,
                                  SimulationConfig(p_epr=1.0, seed=0))
        events = span_trace_events(program.spans, pid=PID_COMPILE)
        events.extend(simulation_trace_events(result))
        return events

    def test_all_events_complete(self, trace_events):
        assert trace_events
        for event in trace_events:
            assert event["ph"] == "X"
            for key in ("ts", "dur", "pid", "tid"):
                assert key in event, f"{event['name']} missing {key}"
                assert isinstance(event[key], (int, float))
            assert event["ts"] >= 0
            assert event["dur"] >= 0

    def test_spans_nest_without_overlap(self, trace_events):
        assert validate_trace_events(trace_events) == []

    def test_all_three_processes_present(self, trace_events):
        pids = {event["pid"] for event in trace_events}
        assert pids == {PID_COMPILE, PID_SIM, PID_LINKS}

    def test_compile_process_shows_remap_stages(self, trace_events):
        names = {e["name"] for e in trace_events if e["pid"] == PID_COMPILE}
        assert any(name.startswith("phase-") for name in names)
        assert "migration-planning" in names
        assert "oee-repartition" in names

    def test_link_events_cover_line_links_only(self, trace_events):
        links = {tuple(e["args"]["link"]) for e in trace_events
                 if e["pid"] == PID_LINKS}
        assert links  # EPR traffic happened
        assert links <= {(0, 1), (1, 2), (2, 3)}  # line-topology links only
