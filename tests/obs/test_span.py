"""Unit tests for the span/tracer stage-timing layer."""

import pytest

from repro.obs import (NULL_SPAN, Span, Tracer, current_span, set_tracing,
                       stage, tracing_enabled)


class TestSpan:
    def test_duration_from_explicit_times(self):
        span = Span("work", start=1.0)
        span.close(end=3.5)
        assert span.duration == pytest.approx(2.5)

    def test_close_is_idempotent(self):
        span = Span("work", start=0.0)
        span.close(end=1.0)
        span.close(end=99.0)
        assert span.end == 1.0

    def test_add_accumulates_and_set_overwrites(self):
        span = Span("work")
        span.add("items")
        span.add("items", 4)
        span.set("latency", 12.5)
        span.set("latency", 7.0)
        assert span.counters == {"items": 5, "latency": 7.0}

    def test_walk_is_preorder(self):
        root = Span("root", start=0.0)
        a = root.child("a")
        a.child("a1")
        root.child("b")
        assert [s.name for s in root.walk()] == ["root", "a", "a1", "b"]

    def test_find_returns_first_match_or_none(self):
        root = Span("root", start=0.0)
        child = root.child("target")
        child.child("target")
        assert root.find("target") is child
        assert root.find("missing") is None

    def test_as_dict_roundtrip_is_exact(self):
        root = Span("root", start=10.0)
        child = root.child("child")
        child.start = 10.5
        child.add("gates", 7)
        child.close(end=11.0)
        root.set("total", 3)
        root.close(end=12.0)

        data = root.as_dict()
        assert data["start"] == 0.0  # root is the origin
        rebuilt = Span.from_dict(data)
        assert rebuilt.as_dict() == data

    def test_render_mentions_name_and_counters(self):
        root = Span("compile", start=0.0)
        root.set("gates", 42)
        root.close(end=0.001)
        text = root.render()
        assert "compile" in text
        assert "gates=42" in text


class TestNullSpan:
    def test_mutators_are_noops(self):
        NULL_SPAN.add("x")
        NULL_SPAN.set("y", 3)
        assert NULL_SPAN.child("z") is NULL_SPAN
        NULL_SPAN.close()
        assert NULL_SPAN.duration == 0.0
        assert NULL_SPAN.counters == {}
        assert not NULL_SPAN.enabled


class TestTracerAndStage:
    def test_stage_without_tracer_yields_null_span(self):
        with stage("orphan") as span:
            assert span is NULL_SPAN
        assert current_span() is NULL_SPAN

    def test_stages_nest_under_tracer_root(self):
        with Tracer("run") as tracer:
            with stage("outer") as outer:
                assert current_span() is outer
                with stage("inner") as inner:
                    inner.add("ticks")
        root = tracer.root
        assert root is not None
        assert root.end is not None
        assert [s.name for s in root.walk()] == ["run", "outer", "inner"]
        assert root.find("inner").counters == {"ticks": 1}

    def test_tracer_closes_leaked_stages_on_exception(self):
        with pytest.raises(RuntimeError):
            with Tracer("run") as tracer:
                with stage("doomed"):
                    raise RuntimeError("boom")
        assert current_span() is NULL_SPAN
        assert tracer.root.end is not None
        assert tracer.root.find("doomed").end is not None

    def test_nested_tracers_do_not_corrupt_the_stack(self):
        with Tracer("outer") as outer:
            with Tracer("inner") as inner:
                with stage("work"):
                    pass
            assert current_span() is outer.root
        assert inner.root.find("work") is not None
        assert current_span() is NULL_SPAN

    def test_set_tracing_disables_new_tracers(self):
        previous = set_tracing(False)
        try:
            assert not tracing_enabled()
            with Tracer("run") as tracer:
                with stage("work") as span:
                    assert span is NULL_SPAN
            assert tracer.root is None
        finally:
            set_tracing(previous)
        assert tracing_enabled() == previous
