"""The determinism linter: every rule fires, and the package is clean."""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def _load_linter():
    name = "lint_determinism"
    if name in sys.modules:
        return sys.modules[name]
    spec = importlib.util.spec_from_file_location(
        name, REPO_ROOT / "tools" / "lint_determinism.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


linter = _load_linter()


def _rules(source):
    return [f.rule for f in linter.check_source(source, "snippet.py")]


class TestRandomGlobal:
    def test_module_convenience_call(self):
        assert _rules("import random\nx = random.random()\n") == [
            "random-global"]

    def test_shuffle_and_choice(self):
        src = "import random\nrandom.shuffle(xs)\nrandom.choice(xs)\n"
        assert _rules(src) == ["random-global", "random-global"]

    def test_from_import_flagged_at_import_and_call(self):
        src = "from random import randint\nx = randint(0, 3)\n"
        assert _rules(src) == ["random-global", "random-global"]

    def test_seeded_instance_allowed(self):
        src = ("import random\n"
               "rng = random.Random(7)\n"
               "x = rng.random()\n"
               "rng.shuffle(xs)\n")
        assert _rules(src) == []


class TestWallClock:
    def test_datetime_now(self):
        src = "import datetime\nt = datetime.datetime.now()\n"
        assert _rules(src) == ["wall-clock"]

    def test_datetime_utcnow_and_today(self):
        src = ("from datetime import datetime, date\n"
               "a = datetime.utcnow()\n"
               "b = date.today()\n")
        assert _rules(src) == ["wall-clock", "wall-clock"]

    def test_time_time(self):
        assert _rules("import time\nt = time.time()\n") == ["wall-clock"]

    def test_perf_counter_allowed(self):
        # Monotonic duration timers are deterministic in what they are used
        # for (relative spans) and must stay allowed — obs.span uses them.
        assert _rules("import time\nt = time.perf_counter()\n") == []


class TestNumpyRandom:
    def test_global_convenience(self):
        src = "import numpy as np\nx = np.random.rand(3)\n"
        assert _rules(src) == ["numpy-random"]

    def test_global_seed(self):
        src = "import numpy as np\nnp.random.seed(0)\n"
        assert _rules(src) == ["numpy-random"]

    def test_unseeded_default_rng(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert _rules(src) == ["numpy-random"]

    def test_unseeded_randomstate(self):
        src = "import numpy as np\nrng = np.random.RandomState()\n"
        assert _rules(src) == ["numpy-random"]

    def test_seeded_constructors_allowed(self):
        src = ("import numpy as np\n"
               "a = np.random.default_rng(7)\n"
               "b = np.random.RandomState(7)\n"
               "x = a.random(3)\n")
        assert _rules(src) == []


class TestSetIteration:
    def test_for_over_set_call(self):
        assert _rules("for x in set(xs):\n    pass\n") == ["set-iteration"]

    def test_for_over_set_literal(self):
        assert _rules("for x in {1, 2, 3}:\n    pass\n") == ["set-iteration"]

    def test_comprehension_over_set(self):
        assert _rules("ys = [f(x) for x in set(xs)]\n") == ["set-iteration"]

    def test_list_of_set(self):
        assert _rules("ys = list(set(xs))\n") == ["set-iteration"]

    def test_sorted_set_allowed(self):
        src = ("for x in sorted(set(xs)):\n    pass\n"
               "ys = list(sorted({1, 2}))\n")
        assert _rules(src) == []

    def test_membership_test_allowed(self):
        assert _rules("ok = x in {1, 2, 3}\n") == []


class TestHashId:
    def test_silent_without_opt_in(self):
        # hash-id is opt-in: ordinary modules may use hash()/id() freely
        # (dict internals, identity checks) without findings.
        assert _rules("x = hash(key)\ny = id(obj)\n") == []

    def test_fires_with_opt_in(self):
        findings = linter.check_source("x = hash(key)\ny = id(obj)\n",
                                       "snippet.py",
                                       extra=frozenset({"hash-id"}))
        assert [f.rule for f in findings] == ["hash-id", "hash-id"]

    def test_method_named_hash_allowed(self):
        src = "d = obj.hash()\ne = spec.id(3)\n"
        findings = linter.check_source(src, "snippet.py",
                                       extra=frozenset({"hash-id"}))
        assert findings == []

    def test_persist_package_opted_in(self):
        path = REPO_ROOT / "src" / "repro" / "persist" / "codec.py"
        assert linter._extra_rules(path) == frozenset({"hash-id"})
        assert linter._extra_rules(
            REPO_ROOT / "src" / "repro" / "core" / "pipeline.py"
        ) == frozenset()

    def test_persist_package_is_clean(self):
        persist = REPO_ROOT / "src" / "repro" / "persist"
        findings = []
        for path in linter.iter_py_files(persist):
            findings.extend(linter.check_file(path))
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_check_file_applies_strict_rules(self, tmp_path):
        strict_dir = tmp_path / "repro" / "persist"
        strict_dir.mkdir(parents=True)
        dirty = strict_dir / "payload.py"
        dirty.write_text("key = hash((a, b))\n")
        assert [f.rule for f in linter.check_file(dirty)] == ["hash-id"]
        relaxed = tmp_path / "repro" / "other.py"
        relaxed.write_text("key = hash((a, b))\n")
        assert linter.check_file(relaxed) == []


class TestAllowlistAndTree:
    def test_allowlist_suppresses_rule(self):
        src = "import numpy as np\nrng = np.random.RandomState()\n"
        findings = linter.check_source(src, "x.py",
                                       allow=frozenset({"numpy-random"}))
        assert findings == []

    def test_epr_process_is_allowlisted(self):
        path = REPO_ROOT / "src" / "repro" / "sim" / "epr_process.py"
        assert linter._allowed_rules(path) == frozenset({"numpy-random"})
        assert linter.check_file(path) == []

    def test_package_tree_is_clean(self):
        findings = []
        for path in linter.iter_py_files(REPO_ROOT / "src" / "repro"):
            findings.extend(linter.check_file(path))
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_main_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("import random\nrng = random.Random(3)\n")
        assert linter.main((str(clean),)) == 0
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\nx = random.random()\n")
        assert linter.main((str(dirty),)) == 1
        out = capsys.readouterr()
        assert "random-global" in out.out
