"""Mutation tests: every checker proven to fire on a seeded corruption.

Each test compiles a healthy program, corrupts exactly one artifact the
way a real regression would (through the same internal state the pipeline
writes), and asserts the matching checker reports the specific diagnostic
— checker id and structured location included.  The corruptions bypass
constructor validation on purpose (``object.__setattr__`` on frozen
dataclasses, direct ``_routes``/``_assignment`` edits), because that is
exactly the class of bug static verification exists to catch.
"""

from dataclasses import replace

import pytest

from repro.circuits import qft_circuit
from repro.core import AutoCommConfig, compile_autocomm
from repro.hardware import LinkModel, apply_topology, uniform_network
from repro.hardware.routing import EPRRoute
from repro.sim import SimulationConfig, simulate_program
from repro.sim.engine import mapping_for_program, plan_for_program
from repro.verify import Severity, sanitize_simulation, verify_program
from repro.verify.checks import (BookingCheck, CausalityCheck,
                                 DagAcyclicityCheck, ItemCoverageCheck,
                                 MappingCheck, MigrationCheck, RouteCheck)
from repro.verify.sanitize import (TraceCausalityCheck, TraceCommQubitCheck,
                                   TraceLinkCapacityCheck)

pytestmark = pytest.mark.no_autoverify


def _static_program(num_qubits=10, nodes=3, topology="all-to-all",
                    link_model=None):
    circuit = qft_circuit(num_qubits)
    network = uniform_network(nodes, -(-num_qubits // nodes))
    if topology != "all-to-all" or link_model is not None:
        apply_topology(network, topology, link_model=link_model)
    return compile_autocomm(circuit, network)


def _phased_program():
    circuit = qft_circuit(12)
    network = uniform_network(4, 3)
    return compile_autocomm(
        circuit, network, config=AutoCommConfig(remap="bursts",
                                                phase_blocks=4))


def _run(program, pass_cls):
    return verify_program(program, passes=[pass_cls()])


def _sanitize(program, result, config, pass_cls):
    return sanitize_simulation(program, result, config,
                               passes=[pass_cls()])


class TestDagAcyclicity:
    def test_cycle_detected(self):
        program = _static_program()
        plan = plan_for_program(program)
        plan.preds[0].append(1)
        plan.preds[1].append(0)
        report = _run(program, DagAcyclicityCheck)
        diags = report.by_checker("dag-acyclic")
        assert any("cycle" in d.message for d in diags)
        assert any(d.location.op == 0 for d in diags)

    def test_self_dependency_detected(self):
        program = _static_program()
        plan_for_program(program).preds[2].append(2)
        diags = _run(program, DagAcyclicityCheck).by_checker("dag-acyclic")
        assert any("depends on itself" in d.message and d.location.op == 2
                   for d in diags)

    def test_out_of_range_predecessor_detected(self):
        program = _static_program()
        plan_for_program(program).preds[0].append(9999)
        diags = _run(program, DagAcyclicityCheck).by_checker("dag-acyclic")
        assert any("out of range" in d.message and d.location.op == 0
                   for d in diags)


class TestItemCoverage:
    def test_dropped_op_detected(self):
        program = _static_program()
        dropped = program.schedule.ops.pop()
        diags = _run(program, ItemCoverageCheck).by_checker("item-coverage")
        assert any("never scheduled" in d.message
                   and d.location.op == dropped.index for d in diags)

    def test_duplicated_op_detected(self):
        program = _static_program()
        program.schedule.ops.append(program.schedule.ops[0])
        diags = _run(program, ItemCoverageCheck).by_checker("item-coverage")
        assert any("scheduled 2 times" in d.message for d in diags)

    def test_item_count_mismatch_detected(self):
        program = _static_program()
        ops = program.schedule.ops
        ops[0] = replace(ops[0], num_items=ops[0].num_items + 1)
        diags = _run(program, ItemCoverageCheck).by_checker("item-coverage")
        assert any("plan says" in d.message and d.location.op == ops[0].index
                   for d in diags)

    def test_fused_chain_count_mismatch_detected(self):
        program = _static_program()
        program.schedule.num_fused_chains += 1
        diags = _run(program, ItemCoverageCheck).by_checker("item-coverage")
        assert any("fused chains" in d.message for d in diags)


class TestMappingWellformed:
    def test_unplaced_qubit_detected(self):
        program = _static_program()
        del program.mapping._assignment[0]
        diags = _run(program, MappingCheck).by_checker("mapping-wellformed")
        assert any("no placement" in d.message and d.location.qubit == 0
                   for d in diags)

    def test_unknown_node_detected(self):
        program = _static_program()
        program.mapping._assignment[0] = 99
        diags = _run(program, MappingCheck).by_checker("mapping-wellformed")
        assert any("unknown node 99" in d.message and d.location.qubit == 0
                   for d in diags)

    def test_unknown_qubit_detected(self):
        program = _static_program()
        program.mapping._assignment[99] = 0
        diags = _run(program, MappingCheck).by_checker("mapping-wellformed")
        assert any("unknown qubit 99" in d.message for d in diags)

    def test_overloaded_node_detected(self):
        program = _static_program()
        for qubit in program.mapping._assignment:
            program.mapping._assignment[qubit] = 0
        diags = _run(program, MappingCheck).by_checker("mapping-wellformed")
        assert any("data qubits" in d.message and d.location.node == 0
                   for d in diags)

    def test_phase_mapping_checked_too(self):
        program = _phased_program()
        assert len(program.phases) > 1
        program.phases[1].mapping._assignment[0] = 99
        diags = _run(program, MappingCheck).by_checker("mapping-wellformed")
        assert any(d.location.phase == 1 for d in diags)


def _first_move(program):
    for boundary, moves in enumerate(program.migrations):
        if moves:
            return boundary, moves
    pytest.fail("phased program compiled without any migration")


class TestMigrationLegality:
    def test_wrong_source_detected(self):
        program = _phased_program()
        boundary, moves = _first_move(program)
        move = moves[0]
        wrong = next(n for n in range(program.network.num_nodes)
                     if n not in (move.source, move.target))
        object.__setattr__(move, "source", wrong)
        diags = _run(program, MigrationCheck).by_checker("migration-legality")
        assert any("the qubit lives on node" in d.message
                   and d.location.qubit == move.qubit
                   and d.location.phase == boundary + 1 for d in diags)

    def test_self_move_detected(self):
        program = _phased_program()
        _, moves = _first_move(program)
        move = moves[0]
        object.__setattr__(move, "target", move.source)
        diags = _run(program, MigrationCheck).by_checker("migration-legality")
        assert any("to itself" in d.message for d in diags)

    def test_commless_endpoint_detected(self):
        program = _phased_program()
        _, moves = _first_move(program)
        node = program.network.node(moves[0].target)
        object.__setattr__(node, "num_comm_qubits", 0)
        diags = _run(program, MigrationCheck).by_checker("migration-legality")
        assert any("no communication qubit" in d.message
                   and d.location.node == moves[0].target for d in diags)

    def test_missing_boundary_detected(self):
        program = _phased_program()
        program.migrations.pop()
        # The plan builder itself rejects the boundary-count mismatch; the
        # verifier reports that rejection as a diagnostic instead of
        # crashing (the in-pass count check covers hand-built contexts).
        report = _run(program, MigrationCheck)
        diags = report.by_checker("plan-construction")
        assert any("one migration list per phase boundary" in d.message
                   for d in diags)
        assert not report.ok

    def test_history_composition_detected(self):
        program = _phased_program()
        boundary, moves = _first_move(program)
        # Dropping one real move breaks the composition into the next
        # phase's mapping without touching any single move's legality.
        moves.pop()
        diags = _run(program, MigrationCheck).by_checker("migration-legality")
        assert any("does not compose" in d.message
                   and d.location.phase == boundary + 1 for d in diags)

    def test_phase0_mapping_anchor_detected(self):
        from repro.partition import QubitMapping
        program = _phased_program()
        # Phase 0 shares the program's mapping object, so build a genuinely
        # different (but individually valid) mapping: swap two qubits that
        # live on different nodes.
        assignment = dict(program.mapping.as_dict())
        qubit_a = 0
        qubit_b = next(q for q, node in assignment.items()
                       if node != assignment[qubit_a])
        assignment[qubit_a], assignment[qubit_b] = (assignment[qubit_b],
                                                    assignment[qubit_a])
        program.phases[0] = replace(program.phases[0],
                                    mapping=QubitMapping(assignment))
        diags = _run(program, MigrationCheck).by_checker("migration-legality")
        assert any("phase 0 mapping differs" in d.message
                   and d.location.phase == 0 for d in diags)


class TestRouteValidity:
    def test_non_physical_hop_detected(self):
        program = _static_program(num_qubits=12, nodes=4, topology="line")
        routing = program.network.routing
        corrupted = False
        for key, route in list(routing._routes.items()):
            if route.num_hops > 1:
                routing._routes[key] = EPRRoute(path=(key[0], key[1]))
                corrupted = True
        assert corrupted
        diags = _run(program, RouteCheck).by_checker("route-validity")
        assert any("not a physical link" in d.message
                   and d.location.link is not None for d in diags)

    def test_missing_route_detected(self):
        program = _static_program(num_qubits=12, nodes=4, topology="line")
        program.network.routing._routes.clear()
        diags = _run(program, RouteCheck).by_checker("route-validity")
        assert any("no EPR route" in d.message for d in diags)

    def test_corrupt_link_parameters_detected(self):
        model = LinkModel.uniform_model(t_epr=1.0, capacity=2)
        program = _static_program(num_qubits=12, nodes=4, topology="line",
                                  link_model=model)
        spec = program.network.link_model.default
        object.__setattr__(spec, "t_epr", 0.0)
        object.__setattr__(spec, "capacity", 0)
        object.__setattr__(spec, "p_epr", 1.5)
        diags = _run(program, RouteCheck).by_checker("route-validity")
        messages = " | ".join(d.message for d in diags)
        assert "non-positive EPR latency" in messages
        assert "non-positive capacity" in messages
        assert "outside (0, 1]" in messages


class TestScheduleCausality:
    def test_inverted_window_detected(self):
        program = _static_program()
        ops = program.schedule.ops
        ops[0] = replace(ops[0], end=ops[0].start - 1.0)
        diags = _run(program, CausalityCheck).by_checker("schedule-causality")
        assert any("before it starts" in d.message
                   and d.location.op == ops[0].index for d in diags)

    def test_dependency_violation_detected(self):
        program = _static_program()
        plan = plan_for_program(program)
        ops = program.schedule.ops
        victim = next(i for i in range(len(ops) - 1, -1, -1)
                      if plan.preds[ops[i].index] and ops[i].start > 0)
        ops[victim] = replace(ops[victim], start=0.0,
                              end=ops[victim].duration)
        diags = _run(program, CausalityCheck).by_checker("schedule-causality")
        assert any("before predecessor" in d.message
                   and d.location.op == ops[victim].index for d in diags)


class TestBookingFeasibility:
    def test_comm_qubit_overbooking_detected(self):
        program = _static_program()
        ops = program.schedule.ops
        comm = [i for i, op in enumerate(ops) if op.kind != "gate"]
        assert len(comm) >= 3
        for i in comm:
            ops[i] = replace(ops[i], start=0.0, end=10.0)
        diags = _run(program, BookingCheck).by_checker("booking-feasibility")
        errors = [d for d in diags if "comm qubits" in d.message]
        assert errors and errors[0].location.node is not None

    def test_link_capacity_pressure_is_warning(self):
        model = LinkModel.uniform_model(t_epr=1.0, capacity=1)
        program = _static_program(num_qubits=12, nodes=3, topology="line",
                                  link_model=model)
        ops = program.schedule.ops
        for i, op in enumerate(ops):
            if op.kind != "gate":
                ops[i] = replace(op, start=5.0, end=10.0)
        report = _run(program, BookingCheck)
        serialise = [d for d in report.diagnostics
                     if "serialise the excess" in d.message]
        assert serialise and serialise[0].location.link is not None
        # The link idealisation is a warning, never an error (overlapping
        # the protocol windows also overbooks comm qubits, which *is* one).
        assert all(d.severity == Severity.WARNING for d in serialise)


def _simulated(program, config=None):
    config = config or SimulationConfig()
    return simulate_program(program, config), config


class TestTraceCausality:
    def test_inverted_window_detected(self):
        program = _static_program()
        result, config = _simulated(program)
        result.ops[0] = replace(result.ops[0],
                                end=result.ops[0].start - 1.0)
        diags = _sanitize(program, result, config,
                          TraceCausalityCheck).by_checker("trace-causality")
        assert any("before it starts" in d.message for d in diags)

    def test_missing_execution_detected(self):
        program = _static_program()
        result, config = _simulated(program)
        dropped = result.ops.pop()
        diags = _sanitize(program, result, config,
                          TraceCausalityCheck).by_checker("trace-causality")
        assert any("never executed" in d.message
                   and d.location.op == dropped.index for d in diags)

    def test_negative_prep_detected(self):
        program = _static_program()
        result, config = _simulated(program)
        comm = next(i for i, op in enumerate(result.ops)
                    if op.kind != "gate")
        result.ops[comm] = replace(result.ops[comm], prep_start=-5.0)
        diags = _sanitize(program, result, config,
                          TraceCausalityCheck).by_checker("trace-causality")
        assert any("negative time" in d.message for d in diags)

    def test_dependency_violation_detected(self):
        program = _static_program()
        result, config = _simulated(program)
        plan = plan_for_program(program)
        victim = next(i for i in range(len(result.ops) - 1, -1, -1)
                      if plan.preds[result.ops[i].index]
                      and result.ops[i].start > 0)
        op = result.ops[victim]
        result.ops[victim] = replace(op, prep_start=0.0, start=0.0,
                                     end=op.duration)
        diags = _sanitize(program, result, config,
                          TraceCausalityCheck).by_checker("trace-causality")
        assert any("before dependency" in d.message
                   and d.location.op == op.index for d in diags)


class TestTraceCommQubits:
    def test_double_booking_detected(self):
        program = _static_program()
        result, config = _simulated(program)
        mutated = 0
        for i, op in enumerate(result.ops):
            if op.kind != "gate":
                result.ops[i] = replace(op, prep_start=0.0, start=5.0,
                                        end=10.0)
                mutated += 1
        assert mutated >= 3
        diags = _sanitize(program, result, config,
                          TraceCommQubitCheck).by_checker("trace-comm-qubits")
        assert any("double-booking" in d.message
                   and d.location.node is not None for d in diags)


class TestTraceLinkCapacity:
    def test_capacity_overflow_detected(self):
        program = _static_program()
        config = SimulationConfig(link_capacity=1)
        result = simulate_program(program, config)
        plan = plan_for_program(program)
        mapping = mapping_for_program(program)
        profiles = plan.op_profiles(mapping, program.network.latency)
        by_link = {}
        for i, op in enumerate(result.ops):
            if op.kind == "gate":
                continue
            for a, b in profiles[op.index].prep_pairs:
                for link in program.network.route_links(a, b):
                    by_link.setdefault(link, []).append(i)
        link, indices = next((link, ops) for link, ops in by_link.items()
                             if len(ops) >= 2)
        for i in indices[:2]:
            op = result.ops[i]
            result.ops[i] = replace(op, prep_start=0.0, start=5.0,
                                    end=5.0 + op.duration)
        diags = _sanitize(
            program, result, config,
            TraceLinkCapacityCheck).by_checker("trace-link-capacity")
        assert any("concurrent EPR generation slots" in d.message
                   and d.location.link == link for d in diags)

    def test_malformed_link_window_detected(self):
        program = _static_program()
        result, config = _simulated(program)
        result.trace.link_busy.setdefault((0, 1), []).append((-5.0, -6.0))
        diags = _sanitize(
            program, result, config,
            TraceLinkCapacityCheck).by_checker("trace-link-capacity")
        assert any("malformed link window" in d.message
                   and d.location.link == (0, 1) for d in diags)


def _overlapped_program():
    circuit = qft_circuit(12)
    network = uniform_network(4, 3)
    return compile_autocomm(
        circuit, network, config=AutoCommConfig(remap="bursts",
                                                phase_blocks=4,
                                                overlap=True))


def _scheduled_migrations(program):
    """(migration item, phase it moves into, its scheduled op index)."""
    from repro.core import MigrationOp
    plan = plan_for_program(program)
    out = []
    for position, op in enumerate(program.schedule.ops):
        item = plan.items[op.index]
        if isinstance(item, MigrationOp):
            out.append((item, plan.item_phases[op.index], position))
    return out


class TestOverlapLegality:
    """The extended checkers catch illegal migration/compute overlaps."""

    def test_healthy_overlapped_program_verifies(self):
        program = _overlapped_program()
        assert program.schedule.overlap
        assert verify_program(program).ok

    def test_migration_jumping_its_qubits_work_detected(self):
        from repro.core.scheduling import _item_qubits
        program = _overlapped_program()
        plan = plan_for_program(program)
        ops = program.schedule.ops
        num_qubits = program.circuit.num_qubits
        for move, phase, position in _scheduled_migrations(program):
            mig_op = ops[position]
            blockers = [
                op for op in ops
                if plan.item_phases[op.index] <= phase - 1
                and op.end <= mig_op.start
                and op.end > 0
                and move.qubit in _item_qubits(plan.items[op.index],
                                               num_qubits)]
            if blockers:
                # Teleport the qubit away before its last user retires.
                ops[position] = replace(mig_op, start=0.0,
                                        end=mig_op.duration)
                break
        else:
            pytest.fail("no migration with an earlier-phase user found")
        diags = _run(program, MigrationCheck).by_checker("migration-legality")
        assert any("before the phase-" in d.message
                   and d.location.qubit == move.qubit for d in diags)

    def test_op_racing_an_inflight_migration_detected(self):
        from repro.core.scheduling import _item_qubits
        program = _overlapped_program()
        plan = plan_for_program(program)
        ops = program.schedule.ops
        num_qubits = program.circuit.num_qubits
        for move, phase, position in _scheduled_migrations(program):
            mig_op = ops[position]
            racer = next(
                (i for i, op in enumerate(ops)
                 if plan.item_phases[op.index] >= phase
                 and op.start >= mig_op.end
                 and not isinstance(plan.items[op.index],
                                    type(move))
                 and move.qubit in _item_qubits(plan.items[op.index],
                                                num_qubits)),
                None)
            if racer is not None:
                # Use the qubit while its teleport is still in flight.
                op = ops[racer]
                ops[racer] = replace(op, start=mig_op.start,
                                     end=mig_op.start + op.duration)
                break
        else:
            pytest.fail("no later-phase user of a migrated qubit found")
        diags = _run(program, MigrationCheck).by_checker("migration-legality")
        assert any("in flight" in d.message
                   and d.location.qubit == move.qubit for d in diags)

    def test_cross_phase_qubit_race_detected(self):
        from repro.core.scheduling import _item_qubits
        program = _overlapped_program()
        plan = plan_for_program(program)
        ops = program.schedule.ops
        num_qubits = program.circuit.num_qubits
        from repro.core import MigrationOp
        victim = None
        for i, op in enumerate(ops):
            item = plan.items[op.index]
            if isinstance(item, MigrationOp):
                continue
            phase = plan.item_phases[op.index]
            if phase == 0 or op.start <= 0:
                continue
            qubits = set(_item_qubits(item, num_qubits))
            earlier = [other for other in ops
                       if not isinstance(plan.items[other.index],
                                         MigrationOp)
                       and plan.item_phases[other.index] < phase
                       and other.end > 0
                       and qubits & set(_item_qubits(
                           plan.items[other.index], num_qubits))]
            if earlier:
                victim = i
                break
        assert victim is not None
        op = ops[victim]
        ops[victim] = replace(op, start=0.0, end=op.duration)
        diags = _run(program, CausalityCheck).by_checker("schedule-causality")
        assert any("earlier phase's op on the same" in d.message
                   for d in diags)
