"""The check-pass framework: registry, reports and clean verification."""

import json

import pytest

from repro.circuits import qft_circuit
from repro.core import AutoCommConfig, compile_autocomm
from repro.hardware import apply_topology, uniform_network
from repro.sim import SimulationConfig, simulate_program
from repro.verify import (CheckPass, Diagnostic, Location, Severity,
                          VerificationReport, program_passes, register_pass,
                          registered_passes, sanitize_simulation,
                          trace_passes, verify_program)

EXPECTED_PROGRAM_PASSES = [
    "booking-feasibility", "dag-acyclic", "item-coverage",
    "mapping-wellformed", "migration-legality", "route-validity",
    "schedule-causality",
]
EXPECTED_TRACE_PASSES = [
    "trace-causality", "trace-comm-qubits", "trace-link-capacity",
]


def _compiled(topology="all-to-all", remap="never", num_qubits=10, nodes=3):
    circuit = qft_circuit(num_qubits)
    network = uniform_network(nodes, -(-num_qubits // nodes))
    if topology != "all-to-all":
        apply_topology(network, topology)
    config = (AutoCommConfig(remap="bursts", phase_blocks=4)
              if remap == "bursts" else None)
    return compile_autocomm(circuit, network, config=config)


class TestRegistry:
    def test_all_passes_registered(self):
        registry = registered_passes()
        assert sorted(registry) == sorted(EXPECTED_PROGRAM_PASSES
                                          + EXPECTED_TRACE_PASSES)

    def test_program_passes_sorted_and_scoped(self):
        instances = program_passes()
        assert [p.id for p in instances] == EXPECTED_PROGRAM_PASSES
        assert all(p.scope == "program" for p in instances)

    def test_trace_passes_sorted_and_scoped(self):
        instances = trace_passes()
        assert [p.id for p in instances] == EXPECTED_TRACE_PASSES
        assert all(p.scope == "trace" for p in instances)

    def test_every_pass_has_description(self):
        for cls in registered_passes().values():
            assert cls.description

    def test_register_rejects_empty_id(self):
        class Nameless(CheckPass):
            id = ""

        with pytest.raises(ValueError, match="non-empty id"):
            register_pass(Nameless)

    def test_register_rejects_unknown_scope(self):
        class Odd(CheckPass):
            id = "odd-scope"
            scope = "galactic"

        with pytest.raises(ValueError, match="unknown scope"):
            register_pass(Odd)

    def test_register_rejects_duplicate_id(self):
        class Clone(CheckPass):
            id = "dag-acyclic"
            scope = "program"

        with pytest.raises(ValueError, match="duplicate"):
            register_pass(Clone)


class TestDiagnostics:
    def test_severity_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR
        assert Severity.ERROR.label == "error"

    def test_location_describe_and_dict(self):
        loc = Location(op=3, phase=1, link=(0, 2))
        assert loc.describe() == "op 3, phase 1, link 0-2"
        assert loc.as_dict() == {"op": 3, "phase": 1, "link": [0, 2]}
        assert Location().describe() == ""

    def test_diagnostic_str(self):
        diag = Diagnostic(checker="dag-acyclic", severity=Severity.ERROR,
                          message="boom", location=Location(op=7))
        assert str(diag) == "error: dag-acyclic: boom [op 7]"

    def test_report_partitions_and_merge(self):
        err = Diagnostic("a", Severity.ERROR, "e")
        warn = Diagnostic("b", Severity.WARNING, "w")
        report = VerificationReport(target="x", diagnostics=[err],
                                    checks_run=["a"])
        other = VerificationReport(target="y", diagnostics=[warn],
                                   checks_run=["a", "b"])
        report.merge(other)
        assert report.errors == [err]
        assert report.warnings == [warn]
        assert not report.ok and not report.clean
        assert report.checks_run == ["a", "b"]
        assert report.by_checker("b") == [warn]
        data = report.as_dict()
        assert data["ok"] is False
        assert len(data["diagnostics"]) == 2

    def test_report_render_mentions_counts(self):
        report = VerificationReport(target="prog", checks_run=["a", "b"])
        assert "2 checks, 0 diagnostics" in report.render()
        assert report.ok and report.clean


class TestCleanPrograms:
    @pytest.mark.parametrize("topology", ["all-to-all", "line", "grid"])
    def test_static_compile_is_clean(self, topology):
        report = verify_program(_compiled(topology=topology))
        assert report.checks_run == EXPECTED_PROGRAM_PASSES
        assert report.clean, report.render()

    def test_phased_compile_is_clean(self):
        report = verify_program(_compiled(topology="ring", remap="bursts"))
        assert report.clean, report.render()

    def test_pass_subset_restricts_run(self):
        program = _compiled()
        only = [p for p in program_passes() if p.id == "dag-acyclic"]
        report = verify_program(program, passes=only)
        assert report.checks_run == ["dag-acyclic"]

    def test_deterministic_simulation_sanitizes_clean(self):
        program = _compiled(topology="line", remap="bursts")
        config = SimulationConfig(ideal_links=True)
        result = simulate_program(program, config)
        report = sanitize_simulation(program, result, config)
        assert report.checks_run == EXPECTED_TRACE_PASSES
        assert report.clean, report.render()

    def test_capacity_limited_simulation_sanitizes_clean(self):
        program = _compiled(topology="line")
        config = SimulationConfig(link_capacity=1)
        result = simulate_program(program, config)
        report = sanitize_simulation(program, result, config)
        assert report.clean, report.render()


class TestCli:
    def _write_qasm(self, tmp_path):
        from repro.ir import to_qasm
        path = tmp_path / "prog.qasm"
        path.write_text(to_qasm(qft_circuit(8)))
        return path

    def test_verify_subcommand_clean(self, tmp_path, capsys):
        from repro.cli import main
        qasm = self._write_qasm(tmp_path)
        out_json = tmp_path / "report.json"
        code = main(["verify", str(qasm), "--nodes", "3",
                     "--topology", "line", "--simulate",
                     "--json", str(out_json)])
        assert code == 0
        out = capsys.readouterr().out
        assert "0 errors" in out
        payload = json.loads(out_json.read_text())
        assert payload["report"]["ok"] is True
        assert payload["report"]["clean"] is True

    def test_verify_list_checks(self, capsys):
        from repro.cli import main
        assert main(["verify", "--list-checks"]) == 0
        out = capsys.readouterr().out
        for check_id in EXPECTED_PROGRAM_PASSES + EXPECTED_TRACE_PASSES:
            assert check_id in out

    def test_verify_requires_input(self):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["verify"])

    def test_verify_trace_file(self, tmp_path, capsys):
        from repro.cli import main
        good = tmp_path / "good.json"
        good.write_text(json.dumps({"traceEvents": [
            {"ph": "X", "ts": 0, "dur": 2, "pid": 1, "tid": 1, "name": "a"},
        ]}))
        assert main(["verify", "--trace", str(good)]) == 0
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps([
            {"ph": "X", "ts": -4, "dur": 1, "pid": 1, "tid": 1, "name": "b"},
        ]))
        assert main(["verify", "--trace", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "1 violations" in out

    def test_compile_verify_flag(self, tmp_path, capsys):
        from repro.cli import main
        qasm = self._write_qasm(tmp_path)
        code = main(["compile", str(qasm), "--nodes", "3", "--verify"])
        assert code == 0
        assert "verify" in capsys.readouterr().out

    def test_simulate_verify_flag(self, tmp_path, capsys):
        from repro.cli import main
        qasm = self._write_qasm(tmp_path)
        code = main(["simulate", str(qasm), "--nodes", "3",
                     "--topology", "ring", "--verify"])
        assert code == 0
        out = capsys.readouterr().out
        assert "10 checks" in out
