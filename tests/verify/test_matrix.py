"""CI-style gate: zero diagnostics across the benchmark matrix.

Every benchmark family x topology x remap mode must compile into an
artifact the static verifier finds nothing wrong with — the same matrix
``tools/verify_suite.py`` sweeps in CI, at a test-sized scale here.
"""

import pytest

from repro.circuits import BENCHMARK_FAMILIES, build_benchmark
from repro.core import AutoCommConfig, compile_autocomm
from repro.hardware import SUPPORTED_TOPOLOGIES, apply_topology
from repro.sim import SimulationConfig, simulate_program
from repro.verify import sanitize_simulation, verify_program

NUM_QUBITS = 8
NUM_NODES = 4


def _compile(family, topology, remap):
    circuit, network = build_benchmark(family, NUM_QUBITS, NUM_NODES)
    if topology != "all-to-all":
        apply_topology(network, topology)
    config = (AutoCommConfig(remap="bursts", phase_blocks=4)
              if remap == "bursts" else None)
    return compile_autocomm(circuit, network, config=config)


@pytest.mark.parametrize("remap", ["never", "bursts"])
@pytest.mark.parametrize("topology", SUPPORTED_TOPOLOGIES)
@pytest.mark.parametrize("family", sorted(BENCHMARK_FAMILIES))
def test_benchmark_matrix_verifies_clean(family, topology, remap):
    program = _compile(family, topology, remap)
    report = verify_program(program)
    assert report.clean, report.render()


@pytest.mark.parametrize("topology", ["line", "grid"])
@pytest.mark.parametrize("family", ["QFT", "BV"])
def test_benchmark_simulations_sanitize_clean(family, topology):
    program = _compile(family, topology, "bursts")
    config = SimulationConfig(ideal_links=True)
    result = simulate_program(program, config)
    report = sanitize_simulation(program, result, config)
    assert report.clean, report.render()
