"""Edge cases of Chrome-trace validation, through the API and the CLI.

``repro.obs.chrometrace.validate_trace_events`` backs both ``repro.cli
trace`` and ``repro.cli verify --trace FILE``; these tests pin its
behaviour on degenerate inputs: empty programs, single-op programs,
zero-duration spans and unsorted event streams.
"""

import json

from repro.circuits import qft_circuit
from repro.cli import main
from repro.core import compile_autocomm
from repro.hardware import uniform_network
from repro.ir import Circuit
from repro.obs import (simulation_trace_events, span_trace_events,
                       validate_trace_events)
from repro.sim import SimulationConfig, simulate_program


def _event(name, ts, dur, pid=1, tid=1, ph="X"):
    return {"name": name, "ph": ph, "ts": ts, "dur": dur,
            "pid": pid, "tid": tid}


class TestEdgeCases:
    def test_no_events_is_valid(self):
        assert validate_trace_events([]) == []

    def test_single_event(self):
        assert validate_trace_events([_event("only", 0.0, 3.0)]) == []

    def test_zero_duration_span_is_valid(self):
        events = [_event("parent", 0.0, 4.0), _event("instant", 2.0, 0.0)]
        assert validate_trace_events(events) == []

    def test_zero_duration_at_sibling_boundary(self):
        events = [_event("a", 0.0, 2.0), _event("tick", 2.0, 0.0),
                  _event("b", 2.0, 2.0)]
        assert validate_trace_events(events) == []

    def test_unsorted_events_validate(self):
        # The validator must not rely on input order: lanes are sorted
        # internally before the nesting check.
        events = [_event("late", 6.0, 2.0), _event("early", 0.0, 2.0),
                  _event("middle", 3.0, 2.0)]
        assert validate_trace_events(events) == []

    def test_unsorted_partial_overlap_still_detected(self):
        events = [_event("b", 3.0, 4.0), _event("a", 0.0, 4.0)]
        problems = validate_trace_events(events)
        assert len(problems) == 1
        assert "partially overlaps" in problems[0]

    def test_empty_program_trace(self):
        # A gate-free circuit compiles to a program whose simulated trace
        # and compile spans still form a valid event stream.
        circuit = Circuit(4, name="empty")
        program = compile_autocomm(circuit, uniform_network(2, 2))
        events = list(span_trace_events(program.spans))
        result = simulate_program(program, SimulationConfig())
        events.extend(simulation_trace_events(result))
        assert result.ops == []
        assert validate_trace_events(events) == []

    def test_single_op_program_trace(self):
        circuit = Circuit(4, name="one-gate").cx(0, 2)
        program = compile_autocomm(circuit, uniform_network(2, 2))
        result = simulate_program(program, SimulationConfig())
        events = simulation_trace_events(result)
        assert events
        assert validate_trace_events(events) == []


class TestCliTraceVerification:
    def _run_trace(self, tmp_path, payload):
        path = tmp_path / "t.json"
        path.write_text(json.dumps(payload))
        return main(["verify", "--trace", str(path)])

    def test_empty_trace_object_passes(self, tmp_path):
        assert self._run_trace(tmp_path, {"traceEvents": []}) == 0

    def test_bare_event_list_accepted(self, tmp_path):
        assert self._run_trace(tmp_path, [_event("a", 0, 1)]) == 0

    def test_zero_duration_events_pass(self, tmp_path):
        payload = {"traceEvents": [_event("a", 0, 0), _event("b", 0, 0)]}
        assert self._run_trace(tmp_path, payload) == 0

    def test_unsorted_overlap_fails(self, tmp_path, capsys):
        payload = [_event("b", 3.0, 4.0), _event("a", 0.0, 4.0)]
        assert self._run_trace(tmp_path, payload) == 1
        assert "partially overlaps" in capsys.readouterr().out

    def test_non_json_rejected(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text("not json")
        import pytest
        with pytest.raises(SystemExit, match="not valid JSON"):
            main(["verify", "--trace", str(path)])

    def test_non_list_payload_rejected(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps({"traceEvents": 7}))
        import pytest
        with pytest.raises(SystemExit, match="no trace-event list"):
            main(["verify", "--trace", str(path)])

    def test_exported_trace_roundtrips(self, tmp_path, capsys):
        from repro.ir import to_qasm
        qasm = tmp_path / "p.qasm"
        qasm.write_text(to_qasm(qft_circuit(8)))
        assert main(["trace", str(qasm), "--nodes", "3"]) == 0
        trace = tmp_path / "p.trace.json"
        assert trace.exists()
        capsys.readouterr()
        assert main(["verify", "--trace", str(trace)]) == 0
        assert "0 violations" in capsys.readouterr().out
