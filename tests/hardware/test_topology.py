"""Unit tests for network topologies and per-pair EPR latencies."""

import networkx as nx
import pytest

from repro import compile_autocomm
from repro.circuits import qft_circuit
from repro.hardware import (
    DEFAULT_LATENCY,
    LinkModel,
    LinkSpec,
    SUPPORTED_TOPOLOGIES,
    apply_topology,
    hop_counts,
    topology_graph,
    uniform_network,
)


class TestTopologyGraph:
    def test_all_to_all(self):
        graph = topology_graph("all-to-all", 5)
        assert graph.number_of_edges() == 10

    def test_line(self):
        graph = topology_graph("line", 5)
        assert graph.number_of_edges() == 4
        assert nx.is_connected(graph)

    def test_ring(self):
        graph = topology_graph("ring", 5)
        assert graph.number_of_edges() == 5
        assert all(graph.degree[node] == 2 for node in graph)

    def test_ring_of_two_has_single_link(self):
        assert topology_graph("ring", 2).number_of_edges() == 1

    def test_ring_of_one_has_no_self_loop(self):
        graph = topology_graph("ring", 1)
        assert graph.number_of_nodes() == 1
        assert graph.number_of_edges() == 0
        assert not list(nx.selfloop_edges(graph))

    def test_no_topology_emits_self_loops(self):
        for kind in SUPPORTED_TOPOLOGIES:
            for num_nodes in (1, 2, 3, 4, 7):
                graph = topology_graph(kind, num_nodes)
                assert not list(nx.selfloop_edges(graph)), (kind, num_nodes)

    def test_invalid_grid_columns_rejected(self):
        for bad in (0, -1):
            with pytest.raises(ValueError):
                topology_graph("grid", 6, grid_columns=bad)

    def test_grid_single_column_is_line(self):
        graph = topology_graph("grid", 4, grid_columns=1)
        line = topology_graph("line", 4)
        assert sorted(graph.edges) == sorted(line.edges)

    def test_star(self):
        graph = topology_graph("star", 6)
        assert graph.degree[0] == 5
        assert all(graph.degree[n] == 1 for n in range(1, 6))

    def test_grid(self):
        graph = topology_graph("grid", 6, grid_columns=3)
        assert nx.is_connected(graph)
        assert graph.number_of_edges() == 7  # 2x3 grid

    def test_single_node(self):
        assert topology_graph("line", 1).number_of_edges() == 0

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            topology_graph("torus", 4)

    def test_invalid_node_count(self):
        with pytest.raises(ValueError):
            topology_graph("line", 0)

    def test_supported_list(self):
        for kind in SUPPORTED_TOPOLOGIES:
            assert topology_graph(kind, 4).number_of_nodes() == 4


class TestHopCounts:
    def test_line_hops(self):
        counts = hop_counts(topology_graph("line", 4))
        assert counts[(0, 1)] == 1
        assert counts[(0, 3)] == 3
        assert counts[(1, 3)] == 2

    def test_all_to_all_hops_are_one(self):
        counts = hop_counts(topology_graph("all-to-all", 4))
        assert set(counts.values()) == {1}

    def test_disconnected_rejected(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(3))
        graph.add_edge(0, 1)
        with pytest.raises(ValueError):
            hop_counts(graph)


class TestApplyTopology:
    def test_adjacent_pairs_keep_base_latency(self):
        network = uniform_network(4, 3)
        apply_topology(network, "line")
        assert network.epr_latency(0, 1) == DEFAULT_LATENCY.t_epr

    def test_distant_pairs_pay_swap_overhead(self):
        network = uniform_network(4, 3)
        apply_topology(network, "line", swap_overhead=1.0)
        assert network.epr_latency(0, 3) == pytest.approx(3 * DEFAULT_LATENCY.t_epr)

    def test_custom_swap_overhead(self):
        network = uniform_network(4, 3)
        apply_topology(network, "line", swap_overhead=0.5)
        assert network.epr_latency(0, 2) == pytest.approx(1.5 * DEFAULT_LATENCY.t_epr)

    def test_all_to_all_is_uniform(self):
        network = uniform_network(4, 3)
        apply_topology(network, "all-to-all")
        for a, b in network.node_pairs():
            assert network.epr_latency(a, b) == DEFAULT_LATENCY.t_epr

    def test_negative_overhead_rejected(self):
        network = uniform_network(3, 3)
        with pytest.raises(ValueError):
            apply_topology(network, "line", swap_overhead=-1.0)

    def test_returns_same_network(self):
        network = uniform_network(3, 3)
        assert apply_topology(network, "ring") is network

    def test_line_topology_increases_compiled_latency(self):
        circuit = qft_circuit(12)
        all_to_all = uniform_network(4, 3)
        line = apply_topology(uniform_network(4, 3), "line", swap_overhead=2.0)
        base = compile_autocomm(circuit, all_to_all)
        constrained = compile_autocomm(circuit, line, mapping=base.mapping)
        # Same communication count, higher latency under the constrained topology.
        assert constrained.metrics.total_comm == base.metrics.total_comm
        assert constrained.metrics.latency >= base.metrics.latency


class TestApplyTopologyLinkModel:
    def test_uniform_model_attached_by_default(self):
        network = apply_topology(uniform_network(4, 3), "line")
        assert network.link_model is not None
        assert network.link_model.uniform
        assert not network.heterogeneous_links
        assert not network.routing.weighted

    def test_heterogeneous_latency_derives_route_combination(self):
        model = LinkModel(LinkSpec(12.0), {(1, 2): LinkSpec(36.0)})
        network = apply_topology(uniform_network(4, 3), "line",
                                 link_model=model)
        assert network.heterogeneous_links
        assert network.routing.weighted
        # Route 0-1-2-3 at swap_overhead 1.0: 12 + 36 + 12.
        assert network.epr_latency(0, 3) == 60.0
        assert network.epr_latency(0, 1) == 12.0
        assert network.link_latency(1, 2) == 36.0

    def test_swap_overhead_charges_off_peak_links(self):
        model = LinkModel(LinkSpec(12.0), {(1, 2): LinkSpec(36.0)})
        network = apply_topology(uniform_network(4, 3), "line",
                                 swap_overhead=0.5, link_model=model)
        # Slowest link in full, the two base links at half cost.
        assert network.epr_latency(0, 3) == 36.0 + 0.5 * 24.0

    def test_weighted_routing_detours_and_reprices(self):
        # All-to-all with one very slow direct link: the pair routes around
        # it through an intermediate node, and the derived latency follows
        # the chosen route.
        model = LinkModel(LinkSpec(12.0), {(0, 1): LinkSpec(100.0)})
        network = apply_topology(uniform_network(3, 3), "all-to-all",
                                 link_model=model)
        assert network.epr_route(0, 1).path == (0, 2, 1)
        assert network.epr_hops(0, 1) == 2
        assert network.epr_latency(0, 1) == 24.0

    def test_link_profile_argument(self):
        network = apply_topology(uniform_network(5, 2), "star",
                                 link_profile="noisy_spine")
        assert network.heterogeneous_links
        assert network.link_latency(0, 1) == 2.0 * DEFAULT_LATENCY.t_epr

    def test_model_and_profile_together_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            apply_topology(uniform_network(3, 2), "line",
                           link_model=LinkModel(LinkSpec(12.0)),
                           link_profile="noisy_spine")

    def test_override_outside_topology_rejected(self):
        model = LinkModel(LinkSpec(12.0), {(0, 3): LinkSpec(24.0)})
        with pytest.raises(ValueError, match="not a link"):
            apply_topology(uniform_network(4, 2), "line", link_model=model)

    def test_uniform_model_latencies_bit_identical_to_plain(self):
        for kind in SUPPORTED_TOPOLOGIES:
            plain = apply_topology(uniform_network(6, 2), kind,
                                   swap_overhead=0.3)
            explicit = apply_topology(
                uniform_network(6, 2), kind, swap_overhead=0.3,
                link_model=LinkModel.uniform_model(DEFAULT_LATENCY.t_epr))
            for a, b in plain.node_pairs():
                assert plain.epr_latency(a, b) == explicit.epr_latency(a, b)
            assert ([r.path for r in plain.routing.all_routes()]
                    == [r.path for r in explicit.routing.all_routes()])


class TestGridColumnsScope:
    def test_grid_columns_rejected_for_other_topologies(self):
        for kind in ("line", "ring", "star", "all-to-all"):
            with pytest.raises(ValueError, match="grid_columns"):
                topology_graph(kind, 6, grid_columns=2)
