"""Unit tests for the communication-qubit resource tracker."""

import pytest

from repro.hardware import CommResourceTracker, uniform_network


@pytest.fixture
def tracker():
    return CommResourceTracker(uniform_network(3, 4))


class TestReservation:
    def test_reserve_first_free_slot(self, tracker):
        reservation = tracker.reserve(0, 0.0, 5.0)
        assert reservation.node == 0
        assert reservation.slot == 0

    def test_second_reservation_uses_other_slot(self, tracker):
        tracker.reserve(0, 0.0, 5.0)
        second = tracker.reserve(0, 0.0, 5.0)
        assert second.slot == 1

    def test_third_overlapping_reservation_fails(self, tracker):
        tracker.reserve(0, 0.0, 5.0)
        tracker.reserve(0, 0.0, 5.0)
        with pytest.raises(ValueError):
            tracker.reserve(0, 2.0, 4.0)

    def test_non_overlapping_reservations_share_slot(self, tracker):
        first = tracker.reserve(0, 0.0, 5.0)
        second = tracker.reserve(0, 5.0, 10.0)
        assert first.slot == second.slot == 0

    def test_explicit_slot_conflict_rejected(self, tracker):
        tracker.reserve(1, 0.0, 3.0, slot=0)
        with pytest.raises(ValueError):
            tracker.reserve(1, 1.0, 2.0, slot=0)

    def test_reversed_interval_rejected(self, tracker):
        with pytest.raises(ValueError):
            tracker.reserve(0, 5.0, 1.0)

    def test_labels_recorded(self, tracker):
        tracker.reserve(0, 0.0, 1.0, label="epr-1")
        assert tracker.reservations[0].label == "epr-1"
        assert tracker.num_reservations() == 1


class TestQueries:
    def test_slot_free(self, tracker):
        tracker.reserve(0, 2.0, 4.0, slot=0)
        assert tracker.slot_free(0, 0, 0.0, 2.0)
        assert tracker.slot_free(0, 0, 4.0, 6.0)
        assert not tracker.slot_free(0, 0, 3.0, 5.0)
        assert tracker.slot_free(0, 1, 3.0, 5.0)

    def test_earliest_slot_on_empty_node(self, tracker):
        start, slot = tracker.earliest_slot(2, duration=3.0, not_before=1.5)
        assert start == 1.5
        assert slot in (0, 1)

    def test_earliest_slot_skips_busy_interval(self, tracker):
        tracker.reserve(0, 0.0, 10.0, slot=0)
        tracker.reserve(0, 0.0, 6.0, slot=1)
        start, slot = tracker.earliest_slot(0, duration=5.0, not_before=0.0)
        assert start == 6.0
        assert slot == 1

    def test_earliest_slot_fits_in_gap(self, tracker):
        tracker.reserve(0, 0.0, 2.0, slot=0)
        tracker.reserve(0, 8.0, 12.0, slot=0)
        tracker.reserve(0, 0.0, 12.0, slot=1)
        start, slot = tracker.earliest_slot(0, duration=4.0, not_before=0.0)
        assert start == 2.0
        assert slot == 0

    def test_earliest_joint_respects_both_nodes(self, tracker):
        tracker.reserve(0, 0.0, 10.0, slot=0)
        tracker.reserve(0, 0.0, 10.0, slot=1)
        # Node 1 is free but node 0 is saturated until t=10.
        start, slots = tracker.earliest_joint([0, 1], duration=2.0)
        assert start == 10.0
        assert set(slots) == {0, 1}

    def test_earliest_joint_on_free_nodes(self, tracker):
        start, slots = tracker.earliest_joint([1, 2], duration=4.0, not_before=3.0)
        assert start == 3.0


class TestAccounting:
    def test_makespan(self, tracker):
        assert tracker.makespan() == 0.0
        tracker.reserve(0, 0.0, 7.0)
        tracker.reserve(1, 2.0, 11.0)
        assert tracker.makespan() == 11.0

    def test_utilisation(self, tracker):
        tracker.reserve(0, 0.0, 10.0, slot=0)
        # One of two slots busy for the whole horizon -> 50%.
        assert tracker.utilisation(0, horizon=10.0) == pytest.approx(0.5)
        assert tracker.utilisation(1, horizon=10.0) == 0.0

    def test_utilisation_empty_horizon(self, tracker):
        assert tracker.utilisation(0) == 0.0


class TestEarliestMulti:
    def test_empty_schedule_starts_immediately(self):
        from repro.hardware import SlotSchedule

        schedule = SlotSchedule(2)
        assert schedule.earliest_multi(5.0, 2, not_before=3.0) == 3.0

    def test_waits_for_enough_concurrent_slots(self):
        from repro.hardware import SlotSchedule

        schedule = SlotSchedule(2)
        schedule.book(0.0, 10.0)
        # One slot is free now, but two are only free from t=10.
        assert schedule.earliest_multi(4.0, 1) == 0.0
        assert schedule.earliest_multi(4.0, 2) == 10.0

    def test_finds_gap_between_bookings(self):
        from repro.hardware import SlotSchedule

        schedule = SlotSchedule(2)
        schedule.book(0.0, 2.0, slot=0)
        schedule.book(6.0, 9.0, slot=0)
        schedule.book(0.0, 3.0, slot=1)
        # Both slots are free on [3, 6): a 3-unit window fits there.
        assert schedule.earliest_multi(3.0, 2) == 3.0
        # A 4-unit window for two slots only fits after the last booking.
        assert schedule.earliest_multi(4.0, 2) == 9.0

    def test_count_validation(self):
        from repro.hardware import SlotSchedule

        schedule = SlotSchedule(2)
        with pytest.raises(ValueError):
            schedule.earliest_multi(1.0, 0)
        with pytest.raises(ValueError):
            schedule.earliest_multi(1.0, 3)
