"""Unit tests for entanglement routing (EPRRoute / RoutingTable)."""

import networkx as nx
import pytest

from repro.hardware import (
    DEFAULT_LATENCY,
    EPRRoute,
    RoutingTable,
    apply_topology,
    hop_counts,
    topology_graph,
    uniform_network,
)


class TestEPRRoute:
    def test_direct_route(self):
        route = EPRRoute(path=(2, 5))
        assert route.source == 2
        assert route.target == 5
        assert route.num_hops == 1
        assert route.num_swaps == 0
        assert route.links == ((2, 5),)

    def test_multi_hop_route(self):
        route = EPRRoute(path=(0, 1, 2, 3))
        assert route.num_hops == 3
        assert route.num_swaps == 2
        assert route.links == ((0, 1), (1, 2), (2, 3))

    def test_links_are_normalised(self):
        route = EPRRoute(path=(3, 2, 0))
        assert route.links == ((2, 3), (0, 2))

    def test_reversed(self):
        route = EPRRoute(path=(0, 1, 3))
        back = route.reversed()
        assert back.path == (3, 1, 0)
        assert back.links == ((1, 3), (0, 1))

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            EPRRoute(path=(4,))


class TestRoutingTable:
    def test_line_routes(self):
        table = RoutingTable(topology_graph("line", 4))
        assert table.route(0, 3).path == (0, 1, 2, 3)
        assert table.route(3, 0).path == (3, 2, 1, 0)
        assert table.hops(1, 3) == 2
        assert table.links(0, 2) == ((0, 1), (1, 2))

    def test_hops_match_hop_counts(self):
        for kind in ("line", "ring", "star", "grid"):
            graph = topology_graph(kind, 6)
            table = RoutingTable(graph)
            for (a, b), hops in hop_counts(graph).items():
                assert table.hops(a, b) == hops, (kind, a, b)

    def test_all_to_all_is_uniform(self):
        table = RoutingTable(topology_graph("all-to-all", 5))
        assert table.uniform
        assert table.max_hops() == 1

    def test_line_not_uniform(self):
        assert not RoutingTable(topology_graph("line", 3)).uniform

    def test_hop_matrix(self):
        table = RoutingTable(topology_graph("line", 4))
        matrix = table.hop_matrix()
        assert matrix[0][0] == 0
        assert matrix[0][3] == matrix[3][0] == 3
        assert matrix[1][2] == 1

    def test_single_node(self):
        table = RoutingTable(topology_graph("line", 1))
        assert table.max_hops() == 0
        assert table.all_routes() == []

    def test_same_node_rejected(self):
        table = RoutingTable(topology_graph("ring", 4))
        with pytest.raises(ValueError):
            table.route(2, 2)

    def test_disconnected_rejected(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(3))
        graph.add_edge(0, 1)
        with pytest.raises(ValueError):
            RoutingTable(graph)

    def test_self_loop_rejected(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(2))
        graph.add_edge(0, 1)
        graph.add_edge(0, 0)
        with pytest.raises(ValueError):
            RoutingTable(graph)

    def test_deterministic_tie_breaking(self):
        # A 4-cycle has two shortest paths between opposite corners; the
        # lexicographically smaller node sequence must win, every build.
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (1, 2), (2, 3), (3, 0)])
        for _ in range(3):
            table = RoutingTable(graph)
            assert table.route(0, 2).path == (0, 1, 2)
            assert table.route(1, 3).path == (1, 0, 3)

    def test_routes_independent_of_edge_insertion_order(self):
        edges = [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)]
        forward = nx.Graph()
        forward.add_edges_from(edges)
        backward = nx.Graph()
        backward.add_nodes_from(range(4))
        backward.add_edges_from(reversed(edges))
        paths_f = [r.path for r in RoutingTable(forward).all_routes()]
        paths_b = [r.path for r in RoutingTable(backward).all_routes()]
        assert paths_f == paths_b


class TestWeightedRouting:
    @staticmethod
    def _unit_weights(graph):
        return {tuple(sorted(edge)): 1 for edge in graph.edges}

    def test_unit_weights_reproduce_hop_routing(self):
        for kind in ("line", "ring", "star", "grid", "all-to-all"):
            graph = topology_graph(kind, 7)
            plain = RoutingTable(graph)
            weighted = RoutingTable(graph, weights=self._unit_weights(graph))
            assert ([r.path for r in weighted.all_routes()]
                    == [r.path for r in plain.all_routes()]), kind
            assert weighted.cost_matrix() == plain.hop_matrix()

    def test_routes_detour_around_slow_link(self):
        # 4-cycle with one very slow link: the 0-1 pair routes the long way.
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (1, 2), (2, 3), (3, 0)])
        table = RoutingTable(graph, weights={(0, 1): 100.0, (1, 2): 1.0,
                                             (2, 3): 1.0, (0, 3): 1.0})
        assert table.route(0, 1).path == (0, 3, 2, 1)
        assert table.route_cost(0, 1) == 3.0

    def test_equal_cost_tie_prefers_fewer_hops(self):
        # distance_scaled-style weights: the direct 0-3 link costs exactly
        # what the 0-1-2-3 chain sums to.  The direct route must win —
        # fewer hops means fewer physical EPR pairs — even though the
        # chain's node sequence is lexicographically smaller.
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (1, 2), (2, 3), (0, 3)])
        table = RoutingTable(graph, weights={(0, 1): 1.0, (1, 2): 1.0,
                                             (2, 3): 1.0, (0, 3): 3.0})
        assert table.route(0, 3).path == (0, 3)
        assert table.route_cost(0, 3) == 3.0

    def test_weighted_ties_break_lexicographically(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (1, 2), (2, 3), (3, 0)])
        weights = {(0, 1): 2.0, (1, 2): 2.0, (2, 3): 2.0, (0, 3): 2.0}
        for _ in range(3):
            table = RoutingTable(graph, weights=weights)
            assert table.route(0, 2).path == (0, 1, 2)
            assert table.route(1, 3).path == (1, 0, 3)

    def test_route_cost_is_weight_sum(self):
        graph = topology_graph("line", 4)
        weights = {(0, 1): 1.5, (1, 2): 2.5, (2, 3): 4.0}
        table = RoutingTable(graph, weights=weights)
        assert table.route_cost(0, 3) == 8.0
        assert table.route_cost(3, 0) == 8.0
        assert table.cost_matrix()[0][2] == 4.0

    def test_unweighted_route_cost_equals_hops(self):
        table = RoutingTable(topology_graph("line", 4))
        assert table.route_cost(0, 3) == 3
        assert not table.weighted

    def test_missing_weight_rejected(self):
        graph = topology_graph("line", 3)
        with pytest.raises(ValueError, match="missing routing weights"):
            RoutingTable(graph, weights={(0, 1): 1.0})

    def test_nonpositive_weight_rejected(self):
        graph = topology_graph("line", 3)
        with pytest.raises(ValueError, match="positive"):
            RoutingTable(graph, weights={(0, 1): 1.0, (1, 2): 0.0})

    def test_reversed_orientation_weights_accepted(self):
        graph = topology_graph("line", 3)
        table = RoutingTable(graph, weights={(1, 0): 3.0, (2, 1): 4.0})
        assert table.route_cost(0, 2) == 7.0


class TestNetworkRouting:
    def test_unrouted_network_defaults(self):
        network = uniform_network(4, 2)
        assert network.routing is None
        assert network.topology_kind == "all-to-all"
        assert network.epr_route(1, 3).path == (1, 3)
        assert network.epr_hops(1, 3) == 1
        assert network.route_links(3, 1) == ((1, 3),)

    def test_apply_topology_attaches_routing(self):
        network = apply_topology(uniform_network(4, 2), "line",
                                 swap_overhead=0.5)
        assert network.routing is not None
        assert network.topology_kind == "line"
        assert network.swap_overhead == 0.5
        assert network.epr_hops(0, 3) == 3
        assert network.route_links(0, 2) == ((0, 1), (1, 2))

    def test_latency_consistent_with_hops(self):
        network = apply_topology(uniform_network(5, 2), "star",
                                 swap_overhead=1.0)
        base = DEFAULT_LATENCY.t_epr
        for a, b in network.node_pairs():
            hops = network.epr_hops(a, b)
            assert network.epr_latency(a, b) == pytest.approx(base * hops)

    def test_same_node_route_rejected(self):
        network = uniform_network(3, 2)
        with pytest.raises(ValueError):
            network.epr_route(1, 1)
        with pytest.raises(ValueError):
            network.epr_hops(2, 2)
