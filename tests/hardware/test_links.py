"""Unit tests for the heterogeneous link model (LinkSpec / LinkModel)."""

import json

import pytest

from repro.hardware import (
    LINK_PROFILES,
    LinkModel,
    LinkSpec,
    combine_link_latencies,
    link_model_from_profile,
    load_link_spec,
    topology_graph,
)


class TestLinkSpec:
    def test_defaults(self):
        spec = LinkSpec(t_epr=12.0)
        assert spec.capacity is None
        assert spec.p_epr == 1.0

    def test_nonpositive_latency_rejected(self):
        with pytest.raises(ValueError):
            LinkSpec(t_epr=0.0)
        with pytest.raises(ValueError):
            LinkSpec(t_epr=-3.0)

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            LinkSpec(t_epr=12.0, capacity=0)

    def test_nan_fields_rejected(self):
        # json.loads accepts the NaN literal, so spec parsing must not.
        nan = float("nan")
        with pytest.raises(ValueError):
            LinkSpec(t_epr=nan)
        with pytest.raises(ValueError):
            LinkSpec(t_epr=12.0, capacity=nan)
        with pytest.raises(ValueError):
            LinkSpec(t_epr=12.0, p_epr=nan)

    def test_bad_p_epr_rejected(self):
        with pytest.raises(ValueError):
            LinkSpec(t_epr=12.0, p_epr=0.0)
        with pytest.raises(ValueError):
            LinkSpec(t_epr=12.0, p_epr=1.5)

    def test_merged_overrides_selected_fields(self):
        spec = LinkSpec(t_epr=12.0, capacity=2)
        merged = spec.merged(t_epr=24.0)
        assert merged.t_epr == 24.0
        assert merged.capacity == 2


class TestLinkModel:
    def test_uniform_model_properties(self):
        model = LinkModel.uniform_model(12.0)
        assert model.uniform
        assert model.uniform_latency
        assert model.deterministic
        assert not model.has_capacities
        assert model.t_epr(3, 7) == 12.0
        assert model.capacity(3, 7) is None
        assert model.p_epr(3, 7) == 1.0

    def test_uniform_capacity_model_is_not_uniform(self):
        model = LinkModel.uniform_model(12.0, capacity=2)
        assert model.has_capacities
        assert not model.uniform
        assert model.uniform_latency

    def test_overrides_normalised_and_queried_both_ways(self):
        model = LinkModel(LinkSpec(12.0), {(2, 1): LinkSpec(36.0)})
        assert model.t_epr(1, 2) == 36.0
        assert model.t_epr(2, 1) == 36.0
        assert model.t_epr(0, 1) == 12.0
        assert (1, 2) in model.overrides

    def test_duplicate_override_rejected(self):
        with pytest.raises(ValueError):
            LinkModel(LinkSpec(12.0), dict([((0, 1), LinkSpec(1.0))])
                      | {(1, 0): LinkSpec(2.0)})

    def test_self_loop_override_rejected(self):
        with pytest.raises(ValueError):
            LinkModel(LinkSpec(12.0), {(1, 1): LinkSpec(1.0)})

    def test_heterogeneous_properties(self):
        model = LinkModel(LinkSpec(12.0),
                          {(0, 1): LinkSpec(12.0, p_epr=0.5)})
        assert model.uniform_latency
        assert not model.deterministic
        assert not model.uniform

    def test_routing_weights_none_when_uniform_latency(self):
        model = LinkModel(LinkSpec(12.0),
                          {(0, 1): LinkSpec(12.0, capacity=1)})
        assert model.routing_weights([(0, 1), (1, 2)]) is None

    def test_routing_weights_cover_requested_links(self):
        model = LinkModel(LinkSpec(12.0), {(0, 1): LinkSpec(30.0)})
        weights = model.routing_weights([(1, 0), (1, 2)])
        assert weights == {(0, 1): 30.0, (1, 2): 12.0}

    def test_validate_for_graph(self):
        graph = topology_graph("line", 4)
        LinkModel(LinkSpec(12.0),
                  {(1, 2): LinkSpec(24.0)}).validate_for_graph(graph)
        with pytest.raises(ValueError):
            LinkModel(LinkSpec(12.0),
                      {(0, 3): LinkSpec(24.0)}).validate_for_graph(graph)

    def test_as_dict_round_trips_through_from_spec(self):
        model = LinkModel(LinkSpec(12.0, capacity=2, p_epr=0.9),
                          {(0, 1): LinkSpec(24.0, capacity=1, p_epr=0.5)})
        rebuilt = LinkModel.from_spec(model.as_dict(), base_t_epr=99.0)
        assert rebuilt.default == model.default
        assert rebuilt.overrides == model.overrides


class TestCombineLinkLatencies:
    def test_single_link_is_its_latency(self):
        assert combine_link_latencies([12.0], 1.0) == 12.0
        assert combine_link_latencies([12.0], 0.0) == 12.0

    def test_uniform_links_match_legacy_formula(self):
        for hops in (1, 2, 3, 5):
            for overhead in (0.0, 0.3, 1.0, 2.5):
                legacy = 12.0 * (1.0 + overhead * (hops - 1))
                assert combine_link_latencies([12.0] * hops,
                                              overhead) == legacy

    def test_default_overhead_is_link_latency_sum(self):
        assert combine_link_latencies([12.0, 36.0, 12.0], 1.0) == 60.0

    def test_slowest_link_charged_in_full(self):
        # overhead 0: only the slowest link's generation matters.
        assert combine_link_latencies([12.0, 36.0, 12.0], 0.0) == 36.0

    def test_empty_route_rejected(self):
        with pytest.raises(ValueError):
            combine_link_latencies([], 1.0)


class TestRouteLatency:
    def test_uses_per_link_latencies(self):
        model = LinkModel(LinkSpec(12.0), {(1, 2): LinkSpec(36.0)})
        assert model.route_latency([(0, 1), (1, 2)], 1.0) == 48.0
        assert model.route_latency([(0, 1), (1, 2)], 0.5) == 42.0


class TestSpecParsing:
    def test_minimal_spec(self):
        model = LinkModel.from_spec({}, base_t_epr=12.0)
        assert model.uniform
        assert model.default.t_epr == 12.0

    def test_default_and_links(self):
        model = LinkModel.from_spec(
            {"default": {"t_epr": 10.0, "capacity": 2},
             "links": {"0-1": {"t_epr": 30.0},
                       "1-2": {"p_epr": 0.5}}},
            base_t_epr=12.0)
        assert model.default == LinkSpec(10.0, capacity=2)
        # Unlisted fields of a link inherit the default spec.
        assert model.spec(0, 1) == LinkSpec(30.0, capacity=2)
        assert model.spec(1, 2) == LinkSpec(10.0, capacity=2, p_epr=0.5)

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ValueError, match="unknown link-spec keys"):
            LinkModel.from_spec({"edges": {}}, base_t_epr=12.0)

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown fields"):
            LinkModel.from_spec({"links": {"0-1": {"latency": 3}}},
                                base_t_epr=12.0)

    def test_bad_link_name_rejected(self):
        for name in ("01", "0-1-2", "a-b", "0"):
            with pytest.raises(ValueError):
                LinkModel.from_spec({"links": {name: {"t_epr": 3}}},
                                    base_t_epr=12.0)

    def test_comma_separated_link_name(self):
        model = LinkModel.from_spec({"links": {"3,1": {"t_epr": 5.0}}},
                                    base_t_epr=12.0)
        assert model.t_epr(1, 3) == 5.0

    def test_load_link_spec_file(self, tmp_path):
        path = tmp_path / "links.json"
        path.write_text(json.dumps(
            {"default": {"capacity": 3}, "links": {"0-2": {"t_epr": 7.5}}}))
        model = load_link_spec(path, base_t_epr=12.0)
        assert model.default == LinkSpec(12.0, capacity=3)
        assert model.t_epr(0, 2) == 7.5

    def test_load_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "links.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_link_spec(path, base_t_epr=12.0)

    def test_load_non_object_rejected(self, tmp_path):
        path = tmp_path / "links.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="JSON object"):
            load_link_spec(path, base_t_epr=12.0)


class TestLoadLinkSpecErrorPaths:
    """Every rejection of :func:`load_link_spec`, through a real file."""

    def _load(self, tmp_path, payload):
        path = tmp_path / "links.json"
        path.write_text(payload if isinstance(payload, str)
                        else json.dumps(payload))
        return load_link_spec(path, base_t_epr=12.0)

    def test_truncated_json_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="not valid JSON"):
            self._load(tmp_path, '{"default": {"t_epr": 12.0')

    @pytest.mark.parametrize("payload", ["[]", '"links"', "42", "null", "true"])
    def test_non_object_top_level_rejected(self, tmp_path, payload):
        with pytest.raises(ValueError, match="JSON object"):
            self._load(tmp_path, payload)

    @pytest.mark.parametrize("name", ["01", "0-1-2", "a-b", "0", "", "x,y"])
    def test_bad_link_name_rejected(self, tmp_path, name):
        with pytest.raises(ValueError, match="not of the form 'a-b'"):
            self._load(tmp_path, {"links": {name: {"t_epr": 3.0}}})

    def test_self_loop_link_name_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="distinct nodes"):
            self._load(tmp_path, {"links": {"2-2": {"t_epr": 3.0}}})

    def test_unknown_top_level_key_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown link-spec keys"):
            self._load(tmp_path, {"default": {"t_epr": 9.0}, "edges": {}})

    @pytest.mark.parametrize("where", ["default", "links"])
    def test_unknown_field_rejected(self, tmp_path, where):
        entry = {"t_epr": 9.0, "latency": 3.0}
        payload = ({"default": entry} if where == "default"
                   else {"links": {"0-1": entry}})
        with pytest.raises(ValueError, match="unknown fields"):
            self._load(tmp_path, payload)

    @pytest.mark.parametrize("entry", [[1, 2], "fast", 7, None])
    def test_non_object_entry_rejected(self, tmp_path, entry):
        with pytest.raises(ValueError, match="must be an object"):
            self._load(tmp_path, {"links": {"0-1": entry}})

    def test_duplicate_link_after_normalisation_rejected(self, tmp_path):
        # JSON keys "0-1" and "1-0" are distinct strings but the same link.
        with pytest.raises(ValueError, match="duplicate link spec"):
            self._load(tmp_path, {"links": {"0-1": {"t_epr": 3.0},
                                            "1-0": {"t_epr": 4.0}}})

    @pytest.mark.parametrize("field, value, match", [
        ("t_epr", 0.0, "t_epr must be positive"),
        ("t_epr", -1.0, "t_epr must be positive"),
        ("capacity", 0, "capacity must be >= 1"),
        ("p_epr", 0.0, "p_epr must be in"),
        ("p_epr", 1.5, "p_epr must be in"),
    ])
    def test_invalid_values_rejected_through_file(self, tmp_path, field,
                                                  value, match):
        with pytest.raises(ValueError, match=match):
            self._load(tmp_path, {"links": {"0-1": {field: value}}})

    def test_nan_value_rejected_through_file(self, tmp_path):
        # json.loads accepts the bare NaN literal; the spec must not.
        with pytest.raises(ValueError):
            self._load(tmp_path, '{"default": {"t_epr": NaN}}')


class TestProfiles:
    def test_registry(self):
        assert set(LINK_PROFILES) == {"distance_scaled", "noisy_spine"}

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown link profile"):
            link_model_from_profile("fast_everything",
                                    topology_graph("line", 3), 12.0)

    def test_distance_scaled_on_ring(self):
        graph = topology_graph("ring", 5)
        model = link_model_from_profile("distance_scaled", graph, 12.0)
        # Adjacent-index links keep the base latency...
        assert model.t_epr(0, 1) == 12.0
        # ... the wrap-around link models the long fibre closing the loop.
        assert model.t_epr(0, 4) == 12.0 * 4
        assert not model.uniform_latency

    def test_distance_scaled_scale_parameter(self):
        graph = topology_graph("ring", 4)
        model = link_model_from_profile("distance_scaled", graph, 12.0,
                                        scale=0.5)
        assert model.t_epr(0, 3) == 12.0 * (1.0 + 0.5 * 2)

    def test_distance_scaled_degenerates_on_line(self):
        model = link_model_from_profile("distance_scaled",
                                        topology_graph("line", 5), 12.0)
        assert model.uniform_latency
        assert model.uniform

    def test_distance_scaled_overrides_only_distant_links(self):
        # Adjacent-index links equal the default and must not be stored as
        # overrides (len(overrides) is reported as the heterogeneity count).
        model = link_model_from_profile("distance_scaled",
                                        topology_graph("ring", 6), 12.0)
        assert set(model.overrides) == {(0, 5)}

    def test_noisy_spine_degrades_hub_links(self):
        graph = topology_graph("star", 4)
        model = link_model_from_profile("noisy_spine", graph, 12.0,
                                        factor=3.0, p_epr=0.5)
        for leaf in (1, 2, 3):
            assert model.t_epr(0, leaf) == 36.0
            assert model.p_epr(0, leaf) == 0.5
        assert not model.deterministic

    def test_noisy_spine_picks_max_degree_node(self):
        # On a 5-node line the centre (node 2, degree 2, lowest index among
        # the degree-2 nodes is 1) — spine is node 1: links (0,1) and (1,2).
        graph = topology_graph("line", 5)
        model = link_model_from_profile("noisy_spine", graph, 12.0)
        assert model.t_epr(0, 1) == 24.0
        assert model.t_epr(1, 2) == 24.0
        assert model.t_epr(2, 3) == 12.0
        assert model.t_epr(3, 4) == 12.0
