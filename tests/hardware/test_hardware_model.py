"""Unit tests for nodes, networks and the latency model."""

import pytest

from repro.hardware import (
    DEFAULT_LATENCY,
    QuantumNetwork,
    QuantumNode,
    uniform_network,
)
from repro.ir import Gate


class TestQuantumNode:
    def test_defaults(self):
        node = QuantumNode(index=0, num_data_qubits=10)
        assert node.num_comm_qubits == 2
        assert node.name == "node0"
        assert node.total_qubits == 12

    def test_custom_name(self):
        node = QuantumNode(index=1, num_data_qubits=5, name="alice")
        assert node.name == "alice"

    def test_can_host(self):
        node = QuantumNode(index=0, num_data_qubits=4)
        assert node.can_host(4)
        assert not node.can_host(5)

    def test_invalid_index_rejected(self):
        with pytest.raises(ValueError):
            QuantumNode(index=-1, num_data_qubits=3)

    def test_zero_data_qubits_rejected(self):
        with pytest.raises(ValueError):
            QuantumNode(index=0, num_data_qubits=0)

    def test_zero_comm_qubits_rejected(self):
        with pytest.raises(ValueError):
            QuantumNode(index=0, num_data_qubits=3, num_comm_qubits=0)


class TestQuantumNetwork:
    def test_uniform_network(self):
        network = uniform_network(3, 5)
        assert network.num_nodes == 3
        assert network.total_data_qubits == 15
        assert network.comm_capacity(0) == 2

    def test_uniform_network_custom_comm_qubits(self):
        network = uniform_network(2, 4, comm_qubits_per_node=3)
        assert network.comm_capacity(1) == 3

    def test_invalid_node_count(self):
        with pytest.raises(ValueError):
            uniform_network(0, 5)

    def test_node_indices_must_be_consecutive(self):
        nodes = [QuantumNode(index=1, num_data_qubits=2)]
        with pytest.raises(ValueError):
            QuantumNetwork(nodes)

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            QuantumNetwork([])

    def test_node_accessor_and_iteration(self):
        network = uniform_network(3, 2)
        assert network.node(2).index == 2
        assert len(list(network)) == 3
        assert len(network) == 3

    def test_epr_latency_default_and_override(self):
        network = uniform_network(3, 2)
        assert network.epr_latency(0, 1) == DEFAULT_LATENCY.t_epr
        network.set_epr_latency(0, 1, 20.0)
        assert network.epr_latency(0, 1) == 20.0
        assert network.epr_latency(1, 0) == 20.0
        assert network.epr_latency(0, 2) == DEFAULT_LATENCY.t_epr

    def test_epr_latency_same_node_rejected(self):
        network = uniform_network(2, 2)
        with pytest.raises(ValueError):
            network.epr_latency(1, 1)
        with pytest.raises(ValueError):
            network.set_epr_latency(0, 0, 5.0)

    def test_nonpositive_epr_latency_rejected(self):
        network = uniform_network(2, 2)
        for latency in (0.0, -1.0, float("nan")):
            with pytest.raises(ValueError):
                network.set_epr_latency(0, 1, latency)

    def test_apply_topology_clobbers_manual_overrides(self):
        # Documented behaviour: apply_topology derives a latency for every
        # pair, replacing earlier manual overrides — set overrides after
        # applying the topology (or use a LinkModel).
        from repro.hardware import apply_topology
        network = uniform_network(3, 2)
        network.set_epr_latency(0, 1, 99.0)
        apply_topology(network, "line")
        assert network.epr_latency(0, 1) == DEFAULT_LATENCY.t_epr
        network.set_epr_latency(0, 1, 99.0)
        assert network.epr_latency(0, 1) == 99.0

    def test_link_helpers_without_model(self):
        network = uniform_network(3, 2)
        assert network.link_model is None
        assert not network.heterogeneous_links
        assert network.link_latency(0, 1) == DEFAULT_LATENCY.t_epr
        assert network.link_capacity(0, 1) is None
        assert network.link_p_epr(0, 1) == 1.0
        for helper in (network.link_latency, network.link_capacity,
                       network.link_p_epr):
            with pytest.raises(ValueError):
                helper(1, 1)

    def test_node_pairs(self):
        network = uniform_network(3, 2)
        assert network.node_pairs() == [(0, 1), (0, 2), (1, 2)]

    def test_validate_capacity(self):
        network = uniform_network(2, 3)
        network.validate_capacity(6)
        with pytest.raises(ValueError):
            network.validate_capacity(7)


class TestLatencyModel:
    def test_paper_defaults(self):
        assert DEFAULT_LATENCY.t_1q == pytest.approx(0.1)
        assert DEFAULT_LATENCY.t_2q == pytest.approx(1.0)
        assert DEFAULT_LATENCY.t_measure == pytest.approx(5.0)
        assert DEFAULT_LATENCY.t_epr == pytest.approx(12.0)
        assert DEFAULT_LATENCY.t_classical_bit == pytest.approx(1.0)

    def test_teleport_latency_about_eight_cx(self):
        # Section 4.4 quotes "about 8 CX time" for one teleportation.
        assert 6.0 <= DEFAULT_LATENCY.t_teleport <= 9.0

    def test_gate_latency(self):
        assert DEFAULT_LATENCY.gate_latency(Gate("h", (0,))) == pytest.approx(0.1)
        assert DEFAULT_LATENCY.gate_latency(Gate("cx", (0, 1))) == pytest.approx(1.0)
        assert DEFAULT_LATENCY.gate_latency(Gate("measure", (0,))) == pytest.approx(5.0)
        assert DEFAULT_LATENCY.gate_latency(Gate("barrier", (0,))) == 0.0

    def test_cat_comm_latency_grows_with_block(self):
        small = DEFAULT_LATENCY.cat_comm_latency(num_local_2q=1)
        large = DEFAULT_LATENCY.cat_comm_latency(num_local_2q=10)
        assert large > small
        assert large - small == pytest.approx(9 * DEFAULT_LATENCY.t_2q)

    def test_tp_comm_latency_includes_two_teleports(self):
        latency = DEFAULT_LATENCY.tp_comm_latency(num_local_2q=0)
        assert latency == pytest.approx(2 * DEFAULT_LATENCY.t_teleport)

    def test_cat_cheaper_than_tp_for_single_gate(self):
        cat = DEFAULT_LATENCY.cat_comm_latency(1)
        tp = DEFAULT_LATENCY.tp_comm_latency(1)
        assert cat < tp

    def test_with_overrides(self):
        model = DEFAULT_LATENCY.with_overrides(t_epr=30.0)
        assert model.t_epr == 30.0
        assert model.t_2q == DEFAULT_LATENCY.t_2q
        assert DEFAULT_LATENCY.t_epr == 12.0  # original untouched

    def test_as_dict_contains_derived_values(self):
        data = DEFAULT_LATENCY.as_dict()
        assert "t_teleport" in data
        assert "t_cat_entangle" in data
        assert data["t_epr"] == 12.0
