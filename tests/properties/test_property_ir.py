"""Property-based tests for the circuit IR (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.ir import Circuit, Gate, decompose_to_cx
from repro.ir.commutation import commutes
from repro.ir.decompose import CX_BASIS
from repro.ir.qasm import from_qasm, to_qasm
from repro.ir.simulator import (
    circuit_unitary,
    random_statevector,
    simulate,
    states_equal_up_to_global_phase,
)

MAX_QUBITS = 5

_1Q = ["x", "y", "z", "h", "s", "sdg", "t", "tdg"]
_1Q_PARAM = ["rx", "ry", "rz", "p"]
_2Q = ["cx", "cz", "swap"]
_2Q_PARAM = ["crz", "cp", "rzz", "rxx"]


@st.composite
def gates(draw, num_qubits=MAX_QUBITS):
    kind = draw(st.sampled_from(["1q", "1qp", "2q", "2qp"]))
    if kind in ("1q", "1qp"):
        qubit = draw(st.integers(0, num_qubits - 1))
        if kind == "1q":
            return Gate(draw(st.sampled_from(_1Q)), (qubit,))
        angle = draw(st.floats(-3.0, 3.0, allow_nan=False))
        return Gate(draw(st.sampled_from(_1Q_PARAM)), (qubit,), (angle,))
    a = draw(st.integers(0, num_qubits - 1))
    b = draw(st.integers(0, num_qubits - 1).filter(lambda x: x != a))
    if kind == "2q":
        return Gate(draw(st.sampled_from(_2Q)), (a, b))
    angle = draw(st.floats(-3.0, 3.0, allow_nan=False))
    return Gate(draw(st.sampled_from(_2Q_PARAM)), (a, b), (angle,))


@st.composite
def circuits(draw, max_gates=25):
    gate_list = draw(st.lists(gates(), min_size=0, max_size=max_gates))
    return Circuit(MAX_QUBITS, gate_list)


class TestCommutationProperties:
    @settings(max_examples=60, deadline=None)
    @given(gates(), gates())
    def test_commutation_is_symmetric(self, a, b):
        assert commutes(a, b) == commutes(b, a)

    @settings(max_examples=60, deadline=None)
    @given(gates())
    def test_every_gate_commutes_with_itself(self, gate):
        assert commutes(gate, gate)

    @settings(max_examples=40, deadline=None)
    @given(gates(), gates())
    def test_commutes_implies_equal_unitaries(self, a, b):
        """If the engine says two gates commute, swapping them is exact."""
        if not commutes(a, b):
            return
        forward = circuit_unitary(Circuit(MAX_QUBITS, [a, b]))
        backward = circuit_unitary(Circuit(MAX_QUBITS, [b, a]))
        assert np.allclose(forward, backward, atol=1e-8)


class TestDecompositionProperties:
    @settings(max_examples=30, deadline=None)
    @given(circuits(max_gates=12))
    def test_decompose_preserves_unitary(self, circuit):
        decomposed = decompose_to_cx(circuit)
        assert all(g.name in CX_BASIS for g in decomposed)
        state = random_statevector(MAX_QUBITS, seed=17)
        assert states_equal_up_to_global_phase(
            simulate(circuit, initial_state=state),
            simulate(decomposed, initial_state=state))

    @settings(max_examples=30, deadline=None)
    @given(circuits(max_gates=15))
    def test_decompose_never_shrinks_cx_count(self, circuit):
        decomposed = decompose_to_cx(circuit)
        assert decomposed.num_cx_gates() >= circuit.num_cx_gates()


class TestCircuitProperties:
    @settings(max_examples=40, deadline=None)
    @given(circuits())
    def test_inverse_composes_to_identity(self, circuit):
        total = circuit.copy().compose(circuit.inverse())
        state = random_statevector(MAX_QUBITS, seed=23)
        final = simulate(total, initial_state=state)
        assert states_equal_up_to_global_phase(final, state)

    @settings(max_examples=40, deadline=None)
    @given(circuits())
    def test_depth_bounds(self, circuit):
        depth = circuit.depth()
        assert depth <= len(circuit)
        if len(circuit):
            assert depth >= 1
        assert circuit.two_qubit_depth() <= depth

    @settings(max_examples=40, deadline=None)
    @given(circuits())
    def test_simulation_preserves_norm(self, circuit):
        state = simulate(circuit)
        assert abs(np.linalg.norm(state) - 1.0) < 1e-8

    @settings(max_examples=30, deadline=None)
    @given(circuits())
    def test_qasm_roundtrip(self, circuit):
        parsed = from_qasm(to_qasm(circuit))
        assert parsed.num_qubits == circuit.num_qubits
        assert len(parsed) == len(circuit)
        assert [g.name for g in parsed] == [g.name for g in circuit]
        for original, reparsed in zip(circuit, parsed):
            assert original.qubits == reparsed.qubits
            assert np.allclose(original.params, reparsed.params, atol=1e-12)
