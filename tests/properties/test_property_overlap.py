"""Property-based tests for zero-bubble (overlapped) phase boundaries.

The two acceptance invariants, over randomly generated phased programs:

* the overlapped schedule is never slower than the barrier schedule — the
  adaptive scheduler keeps the barrier plans in its candidate pool, so
  this must hold by construction on *every* input, not just the benches;
* overlapping preserves per-qubit dependency causality: for any qubit,
  ops of a later phase never start before ops of an earlier phase
  touching the same qubit retire, and every migration teleport falls
  strictly between the two phase windows of its qubit.  (The autoverify
  fixture additionally runs the full static checker suite — including the
  extended ``schedule-causality`` and ``migration-legality`` passes — on
  every program these tests compile.)
"""

from hypothesis import given, settings, strategies as st

from repro.core import AutoCommConfig, MigrationOp, compile_autocomm
from repro.core.scheduling import _item_qubits
from repro.hardware import apply_topology, uniform_network
from repro.ir import Circuit, Gate
from repro.sim.engine import plan_for_program

NUM_QUBITS = 6
NUM_NODES = 3

_TOL = 1e-9


@st.composite
def bursty_circuits(draw):
    """Circuits with repeated remote CX bursts so remap produces phases."""
    gates = []
    num_bursts = draw(st.integers(3, 6))
    for _ in range(num_bursts):
        a = draw(st.integers(0, NUM_QUBITS - 1))
        b = draw(st.integers(0, NUM_QUBITS - 1).filter(lambda x: x != a))
        repeats = draw(st.integers(1, 4))
        gates.extend([Gate("cx", (a, b))] * repeats)
        if draw(st.booleans()):
            gates.append(Gate("h", (draw(st.integers(0, NUM_QUBITS - 1)),)))
    return Circuit(NUM_QUBITS, gates)


def _network():
    network = uniform_network(NUM_NODES, NUM_QUBITS // NUM_NODES)
    apply_topology(network, "line")
    return network


def _compile(circuit, overlap):
    return compile_autocomm(
        circuit, _network(),
        config=AutoCommConfig(remap="bursts", phase_blocks=2,
                              overlap=overlap))


class TestOverlapProperties:
    @settings(max_examples=20, deadline=None)
    @given(bursty_circuits())
    def test_never_slower_than_barrier(self, circuit):
        barrier = _compile(circuit, overlap=False)
        overlapped = _compile(circuit, overlap=True)
        assert overlapped.metrics.latency <= barrier.metrics.latency + _TOL
        assert (overlapped.metrics.boundary_bubble
                <= barrier.metrics.boundary_bubble + _TOL)

    @settings(max_examples=20, deadline=None)
    @given(bursty_circuits())
    def test_per_qubit_phase_causality_preserved(self, circuit):
        program = _compile(circuit, overlap=True)
        plan = plan_for_program(program)
        if plan.item_phases is None:
            return
        per_qubit = {}
        migrations = []
        for op in program.schedule.ops:
            item = plan.items[op.index]
            phase = plan.item_phases[op.index]
            if isinstance(item, MigrationOp):
                migrations.append((item, phase, op))
                per_qubit.setdefault(item.qubit, []).append((phase, op))
            else:
                for qubit in _item_qubits(item, NUM_QUBITS):
                    per_qubit.setdefault(qubit, []).append((phase, op))
        for qubit, entries in per_qubit.items():
            for phase_a, op_a in entries:
                for phase_b, op_b in entries:
                    if phase_a < phase_b:
                        assert op_b.start >= op_a.end - _TOL, (
                            f"qubit {qubit}: phase-{phase_b} op starts at "
                            f"{op_b.start} before phase-{phase_a} op "
                            f"retires at {op_a.end}")
        for move, phase, op in migrations:
            for other_phase, other in per_qubit[move.qubit]:
                if other is op:
                    continue
                if other_phase <= phase - 1:
                    assert other.end <= op.start + _TOL
                else:
                    assert other.start >= op.end - _TOL
