"""Property-based tests for the AutoComm compiler passes (hypothesis).

The central invariants:

* aggregation is a commutation-justified permutation of the input, so the
  flattened result must implement the same unitary;
* every remote gate ends up in exactly one block;
* the assigned communication count is bounded above by the sparse baseline
  (one per remote gate) and below by the number of blocks;
* scheduling respects the two-communication-qubits-per-node constraint and
  never reorders dependent operations.
"""

from hypothesis import given, settings, strategies as st

from repro.core import (
    aggregate_communications,
    assign_communications,
    schedule_communications,
)
from repro.hardware import DEFAULT_LATENCY, uniform_network
from repro.ir import Circuit, Gate
from repro.ir.simulator import (
    random_statevector,
    simulate,
    states_equal_up_to_global_phase,
)
from repro.partition import QubitMapping

NUM_QUBITS = 6
NETWORK = uniform_network(3, 2)
MAPPING = QubitMapping({q: q // 2 for q in range(NUM_QUBITS)}, NETWORK)

_1Q = ["x", "z", "h", "s", "t", "tdg", "rz", "rx"]
_2Q = ["cx", "cz", "rzz"]


@st.composite
def cx_basis_gates(draw):
    if draw(st.booleans()):
        name = draw(st.sampled_from(_1Q))
        qubit = draw(st.integers(0, NUM_QUBITS - 1))
        params = ((draw(st.floats(-3.0, 3.0, allow_nan=False)),)
                  if name in ("rz", "rx") else ())
        return Gate(name, (qubit,), params)
    name = draw(st.sampled_from(_2Q))
    a = draw(st.integers(0, NUM_QUBITS - 1))
    b = draw(st.integers(0, NUM_QUBITS - 1).filter(lambda x: x != a))
    params = ((draw(st.floats(-3.0, 3.0, allow_nan=False)),) if name == "rzz" else ())
    return Gate(name, (a, b), params)


@st.composite
def distributed_circuits(draw, max_gates=30):
    gates = draw(st.lists(cx_basis_gates(), min_size=1, max_size=max_gates))
    return Circuit(NUM_QUBITS, gates)


class TestAggregationProperties:
    @settings(max_examples=40, deadline=None)
    @given(distributed_circuits())
    def test_aggregation_preserves_semantics(self, circuit):
        result = aggregate_communications(circuit, MAPPING)
        state = random_statevector(NUM_QUBITS, seed=7)
        original = simulate(circuit, initial_state=state)
        rewritten = simulate(result.to_circuit(), initial_state=state)
        assert states_equal_up_to_global_phase(original, rewritten)

    @settings(max_examples=40, deadline=None)
    @given(distributed_circuits())
    def test_every_remote_gate_in_exactly_one_block(self, circuit):
        result = aggregate_communications(circuit, MAPPING)
        assert result.remote_gates_in_blocks() == MAPPING.count_remote_gates(circuit)

    @settings(max_examples=40, deadline=None)
    @given(distributed_circuits())
    def test_gate_multiset_preserved(self, circuit):
        result = aggregate_communications(circuit, MAPPING)
        flattened = result.to_circuit()
        assert sorted((g.name, g.qubits, g.params) for g in flattened) \
            == sorted((g.name, g.qubits, g.params) for g in circuit)

    @settings(max_examples=30, deadline=None)
    @given(distributed_circuits())
    def test_no_commutation_variant_also_preserves_semantics(self, circuit):
        result = aggregate_communications(circuit, MAPPING, use_commutation=False)
        state = random_statevector(NUM_QUBITS, seed=9)
        assert states_equal_up_to_global_phase(
            simulate(circuit, initial_state=state),
            simulate(result.to_circuit(), initial_state=state))

    @settings(max_examples=30, deadline=None)
    @given(distributed_circuits())
    def test_blocks_are_single_pair(self, circuit):
        """Every block's remote gates connect its hub to its remote node only."""
        result = aggregate_communications(circuit, MAPPING)
        for block in result.blocks:
            for gate in block.remote_gates(MAPPING):
                assert block.hub_qubit in gate.qubits
                other = [q for q in gate.qubits if q != block.hub_qubit][0]
                assert MAPPING.node_of(other) == block.remote_node
                assert MAPPING.node_of(block.hub_qubit) == block.hub_node


class TestAssignmentProperties:
    @settings(max_examples=40, deadline=None)
    @given(distributed_circuits())
    def test_comm_count_bounds(self, circuit):
        result = assign_communications(aggregate_communications(circuit, MAPPING))
        num_remote = MAPPING.count_remote_gates(circuit)
        assert result.cost.total_comm <= max(num_remote, 2 * len(result.blocks))
        if num_remote:
            assert result.cost.total_comm >= 1
            assert result.cost.total_comm >= len(result.blocks)
        # Hybrid assignment never pays more than 2 EPR pairs per block.
        assert result.cost.total_comm <= 2 * max(1, len(result.blocks))

    @settings(max_examples=40, deadline=None)
    @given(distributed_circuits())
    def test_every_block_assigned(self, circuit):
        result = assign_communications(aggregate_communications(circuit, MAPPING))
        assert all(block.scheme is not None for block in result.blocks)
        assert sum(result.scheme_histogram.values()) == len(result.blocks)


class TestSchedulingProperties:
    @settings(max_examples=25, deadline=None)
    @given(distributed_circuits(max_gates=20))
    def test_schedule_is_complete_and_positive(self, circuit):
        assignment = assign_communications(aggregate_communications(circuit, MAPPING))
        schedule = schedule_communications(assignment, NETWORK)
        # TP fusion merges runs of same-hub TP blocks into a single chain op,
        # so ops map one-to-many onto assignment items; completeness means
        # every item is covered by exactly one scheduled op.
        assert schedule.num_scheduled_items() == len(assignment.items)
        assert len(schedule.ops) <= len(assignment.items)
        assert all(op.num_items >= 1 for op in schedule.ops)
        assert all(op.end >= op.start for op in schedule.ops)
        assert schedule.latency >= max((op.end for op in schedule.ops), default=0.0) - 1e-9

    @settings(max_examples=25, deadline=None)
    @given(distributed_circuits(max_gates=20))
    def test_comm_capacity_never_exceeded(self, circuit):
        assignment = assign_communications(aggregate_communications(circuit, MAPPING))
        schedule = schedule_communications(assignment, NETWORK)
        comm = schedule.comm_ops()
        events = sorted({op.start for op in comm} | {op.end - 1e-9 for op in comm})
        for t in events:
            per_node = {n: 0 for n in range(NETWORK.num_nodes)}
            for op in comm:
                if op.start - DEFAULT_LATENCY.t_epr <= t < op.end:
                    for node in op.nodes:
                        per_node[node] += 1
            assert all(count <= NETWORK.comm_capacity(n) for n, count in per_node.items())

    @settings(max_examples=20, deadline=None)
    @given(distributed_circuits(max_gates=20))
    def test_burst_greedy_not_slower_than_plain_greedy(self, circuit):
        fast = schedule_communications(
            assign_communications(aggregate_communications(circuit, MAPPING)),
            NETWORK, strategy="burst-greedy")
        slow = schedule_communications(
            assign_communications(aggregate_communications(circuit, MAPPING)),
            NETWORK, strategy="greedy")
        assert fast.latency <= slow.latency + 1e-6
