"""Property-based tests for entanglement routing and EPR-pair accounting."""

from hypothesis import given, settings, strategies as st

from repro.circuits import random_circuit
from repro.comm import block_epr_pairs
from repro.core import aggregate_communications, assign_communications
from repro.hardware import (
    LinkModel,
    LinkSpec,
    RoutingTable,
    SUPPORTED_TOPOLOGIES,
    apply_topology,
    hop_counts,
    topology_graph,
    uniform_network,
)
from repro.ir import decompose_to_cx
from repro.partition import QubitMapping


def _mapping_for(num_qubits, num_nodes):
    per = -(-num_qubits // num_nodes)
    return QubitMapping({q: q // per for q in range(num_qubits)})


def _assigned(seed, num_qubits, network, mapping):
    circuit = decompose_to_cx(random_circuit(num_qubits, 60, seed=seed))
    return assign_communications(
        aggregate_communications(circuit, mapping), network=network)


class TestRoutingProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.sampled_from(SUPPORTED_TOPOLOGIES), st.integers(2, 10))
    def test_routes_are_simple_shortest_paths(self, kind, num_nodes):
        graph = topology_graph(kind, num_nodes)
        table = RoutingTable(graph)
        counts = hop_counts(graph)
        for route in table.all_routes():
            # Simple path over existing links...
            assert len(set(route.path)) == len(route.path)
            assert all(graph.has_edge(a, b) for a, b in route.links)
            # ... of minimum length.
            assert route.num_hops == counts[(route.source, route.target)]

    @settings(max_examples=40, deadline=None)
    @given(st.sampled_from(SUPPORTED_TOPOLOGIES), st.integers(2, 10))
    def test_weighted_routing_with_unit_weights_equals_hop_routing(
            self, kind, num_nodes):
        """A weighted table with unit weights IS the hop table, byte for byte."""
        graph = topology_graph(kind, num_nodes)
        plain = RoutingTable(graph)
        unit = {tuple(sorted(edge)): 1 for edge in graph.edges}
        weighted = RoutingTable(graph, weights=unit)
        assert ([r.path for r in weighted.all_routes()]
                == [r.path for r in plain.all_routes()])
        assert weighted.cost_matrix() == plain.hop_matrix()
        assert weighted.max_hops() == plain.max_hops()

    @settings(max_examples=30, deadline=None)
    @given(st.sampled_from(SUPPORTED_TOPOLOGIES), st.integers(2, 8),
           st.floats(1.25, 4.0))
    def test_weighted_routes_never_cost_more_than_hop_routes(
            self, kind, num_nodes, factor):
        """Latency-weighted routing only ever improves the route cost."""
        graph = topology_graph(kind, num_nodes)
        base = 12.0
        overrides = {tuple(sorted(edge)): LinkSpec(base * factor)
                     for i, edge in enumerate(sorted(graph.edges))
                     if i % 2 == 0}
        model = LinkModel(LinkSpec(base), overrides)
        weights = model.routing_weights(
            [tuple(sorted(edge)) for edge in graph.edges])
        if weights is None:  # degenerate: every link got the override
            return
        weighted = RoutingTable(graph, weights=weights)
        plain = RoutingTable(graph)
        for route in plain.all_routes():
            hop_cost = sum(weights[link] for link in route.links)
            assert (weighted.route_cost(route.source, route.target)
                    <= hop_cost + 1e-9)

    @settings(max_examples=40, deadline=None)
    @given(st.sampled_from(SUPPORTED_TOPOLOGIES), st.integers(2, 10))
    def test_physical_pairs_bounded_by_diameter(self, kind, num_nodes):
        network = apply_topology(uniform_network(num_nodes, 2), kind)
        diameter = network.routing.max_hops()
        for a, b in network.node_pairs():
            assert 1 <= network.epr_hops(a, b) <= diameter
            assert len(network.route_links(a, b)) == network.epr_hops(a, b)


class TestEPRPairCountProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000),
           st.sampled_from([k for k in SUPPORTED_TOPOLOGIES
                            if k != "all-to-all"]),
           st.integers(3, 5))
    def test_routed_counts_at_least_all_to_all(self, seed, kind, num_nodes):
        num_qubits = 3 * num_nodes
        mapping = _mapping_for(num_qubits, num_nodes)
        routed_net = apply_topology(uniform_network(num_nodes, 3), kind)
        flat_net = uniform_network(num_nodes, 3)
        routed = _assigned(seed, num_qubits, routed_net, mapping)
        flat = _assigned(seed, num_qubits, flat_net, mapping)
        # Same blocks, same logical communications; swapping can only add
        # physical pairs.
        assert routed.cost.total_comm == flat.cost.total_comm
        assert routed.cost.total_epr_pairs >= flat.cost.total_epr_pairs
        assert flat.cost.total_epr_pairs == flat.cost.total_comm
        # Per block as well, hop counts bound the inflation.
        diameter = routed_net.routing.max_hops()
        for block in routed.blocks:
            logical = block_epr_pairs(block, mapping)
            physical = block_epr_pairs(block, mapping, network=routed_net)
            assert logical <= physical <= logical * max(1, diameter)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 5))
    def test_all_to_all_counts_exactly_equal(self, seed, num_nodes):
        num_qubits = 3 * num_nodes
        mapping = _mapping_for(num_qubits, num_nodes)
        routed_net = apply_topology(uniform_network(num_nodes, 3),
                                    "all-to-all")
        flat_net = uniform_network(num_nodes, 3)
        routed = _assigned(seed, num_qubits, routed_net, mapping)
        flat = _assigned(seed, num_qubits, flat_net, mapping)
        assert routed.cost == flat.cost
        assert routed.cost.total_epr_pairs == routed.cost.total_comm
        assert [b.scheme for b in routed.blocks] \
            == [b.scheme for b in flat.blocks]

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000),
           st.sampled_from(SUPPORTED_TOPOLOGIES), st.integers(2, 5))
    def test_routed_scheme_choice_matches_counting_rule(self, seed, kind,
                                                        num_nodes):
        num_qubits = 3 * num_nodes
        mapping = _mapping_for(num_qubits, num_nodes)
        network = apply_topology(uniform_network(num_nodes, 3), kind,
                                 swap_overhead=2.0)
        routed = _assigned(seed, num_qubits, network, mapping)
        counted = _assigned(seed, num_qubits, None, mapping)
        assert [b.scheme for b in routed.blocks] \
            == [b.scheme for b in counted.blocks]
