"""Property-based equivalence of vectorized and scalar OEE gain math.

The vectorized gain expressions regroup the scalar sums onto matrix
products, which is only safe because the inputs are exact in float64:
interaction weights are integer gate counts and distances are integer hop
counts or dyadic link-latency sums.  These properties pin that argument on
random weight graphs, assignments and distance matrices — uniform and
routed branches, plus full-search equivalence on random circuits.
"""

from collections import defaultdict

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.circuits import random_circuit
from repro.hardware import apply_topology, uniform_network
from repro.partition import (exchange_gain, exchange_gain_vector,
                             oee_partition_reference,
                             oee_repartition_reference, round_robin_mapping)
from repro.partition.oee import _oee_partition, _oee_repartition


@st.composite
def gain_instances(draw):
    """A random weighted graph, node assignment and distance matrix."""
    num_qubits = draw(st.integers(2, 10))
    num_nodes = draw(st.integers(2, 4))
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    weights = rng.integers(0, 6, size=(num_qubits, num_qubits)).astype(float)
    weights = np.triu(weights, 1)
    weights = weights + weights.T
    assignment = rng.integers(0, num_nodes, size=num_qubits)
    # Qubits on a node nobody else uses still exercise the same-node mask.
    dyadic = draw(st.booleans())
    distances = rng.integers(1, 8, size=(num_nodes, num_nodes)).astype(float)
    if dyadic:
        # Dyadic rationals (multiples of 1/4) model link-latency sums;
        # they are exact in float64 so regrouped sums stay bit-identical.
        distances = distances / 4.0
    np.fill_diagonal(distances, 0.0)
    return weights, assignment, distances


def _weights_dict(weights):
    mapping = defaultdict(dict)
    n = weights.shape[0]
    for a in range(n):
        for b in range(n):
            if weights[a, b]:
                mapping[a][b] = float(weights[a, b])
    return mapping

def _scalar_args(weights, assignment):
    return _weights_dict(weights), {q: int(n) for q, n in enumerate(assignment)}


class TestExchangeGainProperties:
    @settings(max_examples=60, deadline=None)
    @given(gain_instances())
    def test_uniform_branch_matches_scalar(self, instance):
        weights, assignment, _ = instance
        weight_map, assign_map = _scalar_args(weights, assignment)
        n = weights.shape[0]
        for qubit_a in range(n):
            gains = exchange_gain_vector(weights, assignment, qubit_a)
            for qubit_b in range(n):
                expected = exchange_gain(weight_map, assign_map,
                                         qubit_a, qubit_b)
                assert gains[qubit_b] == expected

    @settings(max_examples=60, deadline=None)
    @given(gain_instances())
    def test_routed_branch_matches_scalar(self, instance):
        weights, assignment, distances = instance
        weight_map, assign_map = _scalar_args(weights, assignment)
        dist_rows = [list(row) for row in distances]
        n = weights.shape[0]
        for qubit_a in range(n):
            gains = exchange_gain_vector(weights, assignment, qubit_a,
                                         node_distances=distances)
            for qubit_b in range(n):
                expected = exchange_gain(weight_map, assign_map,
                                         qubit_a, qubit_b,
                                         node_distances=dist_rows)
                assert gains[qubit_b] == expected


class TestSearchProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000), st.integers(6, 14), st.integers(2, 4),
           st.sampled_from([None, "line", "ring"]))
    def test_full_search_matches_reference(self, seed, num_qubits, nodes,
                                           topology):
        circuit = random_circuit(num_qubits, 40, seed=seed)
        network = uniform_network(nodes, -(-num_qubits // nodes))
        if topology is not None:
            apply_topology(network, topology)
        initial = round_robin_mapping(num_qubits, network)
        reference = oee_partition_reference(circuit, network, initial=initial)
        vectorized = _oee_partition(circuit, network, initial=initial)
        assert vectorized.mapping.as_dict() == reference.mapping.as_dict()
        assert vectorized.final_cut == reference.final_cut
        assert vectorized.num_exchanges == reference.num_exchanges
        assert vectorized.rounds == reference.rounds

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000), st.integers(6, 14), st.integers(2, 4),
           st.sampled_from([None, "line", "ring"]))
    def test_full_repartition_matches_reference(self, seed, num_qubits, nodes,
                                                topology):
        circuit = random_circuit(num_qubits, 40, seed=seed)
        network = uniform_network(nodes, -(-num_qubits // nodes))
        if topology is not None:
            apply_topology(network, topology)
        previous = round_robin_mapping(num_qubits, network)
        reference = oee_repartition_reference(circuit, network, previous)
        vectorized = _oee_repartition(circuit, network, previous)
        assert vectorized.mapping.as_dict() == reference.mapping.as_dict()
        assert vectorized.final_cut == reference.final_cut
        assert vectorized.num_exchanges == reference.num_exchanges
        assert vectorized.migration_moves == reference.migration_moves
        assert vectorized.migration_cost == reference.migration_cost
