"""Property-based tests for the extension modules (transpile, topology,
collective) and for the paper's Section 3.2 claims."""


import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import qft_inverse_burst_bound
from repro.circuits import random_circuit
from repro.core import aggregate_communications, assign_communications, form_collectives
from repro.core.collective import CollectiveBlock
from repro.comm import CommBlock
from repro.hardware import apply_topology, hop_counts, topology_graph, uniform_network
from repro.ir import optimize_circuit
from repro.ir.simulator import (
    random_statevector,
    simulate,
    states_equal_up_to_global_phase,
)
from repro.partition import QubitMapping


class TestTranspileProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000), st.integers(5, 60))
    def test_optimize_preserves_semantics_and_never_grows(self, seed, num_gates):
        circuit = random_circuit(4, num_gates, seed=seed)
        optimized = optimize_circuit(circuit)
        assert len(optimized) <= len(circuit)
        state = random_statevector(4, seed=seed % 97)
        assert states_equal_up_to_global_phase(
            simulate(circuit, initial_state=state),
            simulate(optimized, initial_state=state))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_optimize_is_idempotent(self, seed):
        circuit = random_circuit(4, 40, seed=seed)
        once = optimize_circuit(circuit)
        twice = optimize_circuit(once)
        assert len(twice) == len(once)


class TestTopologyProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.sampled_from(["line", "ring", "star", "grid", "all-to-all"]),
           st.integers(2, 12))
    def test_topologies_are_connected(self, kind, num_nodes):
        graph = topology_graph(kind, num_nodes)
        assert nx.is_connected(graph)

    @settings(max_examples=30, deadline=None)
    @given(st.sampled_from(["line", "ring", "star", "grid"]), st.integers(2, 10),
           st.floats(0.0, 3.0, allow_nan=False))
    def test_epr_latency_monotone_in_hops(self, kind, num_nodes, overhead):
        network = apply_topology(uniform_network(num_nodes, 2), kind,
                                 swap_overhead=overhead)
        hops = hop_counts(topology_graph(kind, num_nodes))
        base = network.latency.t_epr
        for (a, b), count in hops.items():
            assert network.epr_latency(a, b) == pytest.approx(
                base * (1 + overhead * (count - 1)))
            assert network.epr_latency(a, b) >= base


class TestCollectiveProperties:
    NUM_QUBITS = 6
    MAPPING = QubitMapping({q: q // 2 for q in range(NUM_QUBITS)})

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000), st.integers(5, 25))
    def test_collectivisation_conserves_blocks_and_comms(self, seed, num_gates):
        circuit = random_circuit(self.NUM_QUBITS, num_gates, seed=seed,
                                 two_qubit_prob=0.7)
        assignment = assign_communications(
            aggregate_communications(circuit, self.MAPPING))
        items = form_collectives(assignment)
        blocks_seen = 0
        comms_seen = 0
        for item in items:
            if isinstance(item, CollectiveBlock):
                blocks_seen += len(item)
                comms_seen += item.comm_count(self.MAPPING)
            elif isinstance(item, CommBlock):
                blocks_seen += 1
                comms_seen += item.epr_cost(self.MAPPING)
        assert blocks_seen == len(assignment.blocks)
        assert comms_seen == assignment.cost.total_comm

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_collectives_span_exactly_one_link(self, seed):
        circuit = random_circuit(self.NUM_QUBITS, 20, seed=seed, two_qubit_prob=0.7)
        assignment = assign_communications(
            aggregate_communications(circuit, self.MAPPING))
        for item in form_collectives(assignment):
            if isinstance(item, CollectiveBlock):
                for block in item.blocks:
                    assert tuple(sorted(block.nodes)) == item.nodes


class TestSection32Claims:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 30), st.integers(1, 10), st.integers(1, 5))
    def test_qft_bound_shape(self, qubits_per_node, num_nodes, m):
        """P(2m) bound (m-1)/t is within [0, 1] and decreases with t."""
        num_qubits = qubits_per_node * num_nodes
        bound = qft_inverse_burst_bound(num_qubits, num_nodes, threshold=2 * m)
        assert 0.0 <= bound <= 1.0
        larger_t = qft_inverse_burst_bound(num_qubits * 2, num_nodes, threshold=2 * m)
        assert larger_t <= bound + 1e-12
