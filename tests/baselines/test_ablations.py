"""Unit tests for the ablation compilers (Figure 17 variants)."""


from repro import compile_autocomm
from repro.baselines import compile_cat_only, compile_no_commute, compile_plain_schedule
from repro.circuits import bv_circuit, qft_circuit, rca_circuit_for_width, mctr_circuit
from repro.comm import CommScheme
from repro.hardware import uniform_network
from repro.partition import QubitMapping


def build(num_qubits, num_nodes):
    per = -(-num_qubits // num_nodes)
    network = uniform_network(num_nodes, per)
    mapping = QubitMapping({q: q // per for q in range(num_qubits)}, network)
    return network, mapping


class TestCatOnlyAblation:
    def test_all_blocks_cat(self):
        circuit = qft_circuit(8)
        network, mapping = build(8, 2)
        program = compile_cat_only(circuit, network, mapping=mapping)
        assert all(block.scheme is CommScheme.CAT for block in program.blocks)
        assert program.metrics.tp_comm == 0
        assert program.compiler == "autocomm-catonly"

    def test_cat_only_worse_or_equal_on_qft(self):
        # Figure 17(b): the hybrid assignment beats Cat-only on QFT.
        circuit = qft_circuit(12)
        network, mapping = build(12, 3)
        hybrid = compile_autocomm(circuit, network, mapping=mapping)
        cat_only = compile_cat_only(circuit, network, mapping=mapping)
        assert cat_only.metrics.total_comm > hybrid.metrics.total_comm

    def test_cat_only_equal_on_bv(self):
        # BV blocks are already Cat-friendly, so the ablation costs nothing.
        circuit = bv_circuit(12)
        network, mapping = build(12, 3)
        hybrid = compile_autocomm(circuit, network, mapping=mapping)
        cat_only = compile_cat_only(circuit, network, mapping=mapping)
        assert cat_only.metrics.total_comm == hybrid.metrics.total_comm

    def test_cat_only_on_rca_not_better_than_hybrid(self):
        circuit = rca_circuit_for_width(20)
        network, mapping = build(20, 2)
        hybrid = compile_autocomm(circuit, network, mapping=mapping)
        cat_only = compile_cat_only(circuit, network, mapping=mapping)
        assert cat_only.metrics.total_comm >= hybrid.metrics.total_comm


class TestNoCommuteAblation:
    def test_label(self):
        circuit = bv_circuit(8)
        network, mapping = build(8, 2)
        assert compile_no_commute(circuit, network, mapping=mapping).compiler \
            == "autocomm-nocommute"

    def test_no_commute_worse_on_qft(self):
        # Figure 17(a): commutation-aware aggregation wins on QFT.
        circuit = qft_circuit(12)
        network, mapping = build(12, 3)
        full = compile_autocomm(circuit, network, mapping=mapping)
        ablated = compile_no_commute(circuit, network, mapping=mapping)
        assert ablated.metrics.total_comm > full.metrics.total_comm

    def test_no_commute_never_better(self):
        for circuit, (nq, nn) in [(qft_circuit(10), (10, 2)),
                                  (bv_circuit(10), (10, 2)),
                                  (mctr_circuit(11), (11, 2))]:
            network, mapping = build(nq, nn)
            full = compile_autocomm(circuit, network, mapping=mapping)
            ablated = compile_no_commute(circuit, network, mapping=mapping)
            assert ablated.metrics.total_comm >= full.metrics.total_comm


class TestPlainScheduleAblation:
    def test_label(self):
        circuit = bv_circuit(8)
        network, mapping = build(8, 2)
        assert compile_plain_schedule(circuit, network, mapping=mapping).compiler \
            == "autocomm-greedy"

    def test_same_comm_count_as_full_autocomm(self):
        # Scheduling only affects latency, never the communication count.
        circuit = qft_circuit(12)
        network, mapping = build(12, 3)
        full = compile_autocomm(circuit, network, mapping=mapping)
        plain = compile_plain_schedule(circuit, network, mapping=mapping)
        assert plain.metrics.total_comm == full.metrics.total_comm

    def test_burst_greedy_latency_never_worse(self):
        # Figure 17(c): the burst-aware schedule is at least as fast.
        for circuit, (nq, nn) in [(qft_circuit(12), (12, 3)),
                                  (mctr_circuit(13), (13, 2)),
                                  (bv_circuit(12), (12, 3))]:
            network, mapping = build(nq, nn)
            full = compile_autocomm(circuit, network, mapping=mapping)
            plain = compile_plain_schedule(circuit, network, mapping=mapping)
            assert full.metrics.latency <= plain.metrics.latency + 1e-9

    def test_burst_greedy_strictly_faster_on_qft(self):
        circuit = qft_circuit(12)
        network, mapping = build(12, 3)
        full = compile_autocomm(circuit, network, mapping=mapping)
        plain = compile_plain_schedule(circuit, network, mapping=mapping)
        assert full.metrics.latency < plain.metrics.latency
