"""Unit tests for the GP-TP (qubit movement) baseline compiler."""

import pytest

from repro import compile_autocomm, compile_gp_tp
from repro.baselines.gp_tp import GPTPCompiler
from repro.circuits import bv_circuit, qaoa_maxcut_circuit, qft_circuit
from repro.comm import CommScheme
from repro.hardware import uniform_network
from repro.ir import Circuit
from repro.partition import QubitMapping


class TestGPTPCompiler:
    def test_two_comms_per_swap(self):
        circuit = Circuit(4).cx(0, 2)
        network = uniform_network(2, 2)
        mapping = QubitMapping({0: 0, 1: 0, 2: 1, 3: 1}, network)
        program = compile_gp_tp(circuit, network, mapping=mapping)
        assert program.metrics.total_comm == 2
        assert program.metrics.tp_comm == 2

    def test_no_movement_for_local_circuit(self):
        circuit = Circuit(4).cx(0, 1).cx(2, 3)
        network = uniform_network(2, 2)
        program = compile_gp_tp(circuit, network)
        assert program.metrics.total_comm == 0
        assert program.metrics.peak_rem_cx == 0.0

    def test_swap_blocks_are_tp(self):
        circuit = qft_circuit(8)
        network = uniform_network(2, 4)
        program = compile_gp_tp(circuit, network)
        assert all(block.scheme is CommScheme.TP for block in program.blocks)

    def test_consecutive_gates_on_moved_pair_need_one_move(self):
        # After moving q0 next to q2, repeated interactions are free.
        circuit = Circuit(4).cx(0, 2).cx(0, 2).cx(2, 0).cx(0, 2)
        network = uniform_network(2, 2)
        mapping = QubitMapping({0: 0, 1: 0, 2: 1, 3: 1}, network)
        program = compile_gp_tp(circuit, network, mapping=mapping)
        assert program.metrics.total_comm == 2

    def test_ping_pong_costs_two_moves(self):
        # q0 must visit node 1 and node 2 alternately: at least two moves.
        circuit = Circuit(6).cx(0, 2).cx(0, 4).cx(0, 2)
        network = uniform_network(3, 2)
        mapping = QubitMapping({0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 5: 2}, network)
        program = compile_gp_tp(circuit, network, mapping=mapping)
        assert program.metrics.total_comm >= 4

    def test_peak_rem_cx_is_one_and_a_half(self):
        circuit = qft_circuit(8)
        network = uniform_network(2, 4)
        program = compile_gp_tp(circuit, network)
        assert program.metrics.peak_rem_cx == 1.5

    def test_compiler_label(self):
        network = uniform_network(2, 4)
        assert compile_gp_tp(bv_circuit(8), network).compiler == "gp-tp"

    def test_lookahead_zero_still_works(self):
        circuit = qft_circuit(8)
        network = uniform_network(2, 4)
        program = GPTPCompiler(lookahead=0).compile(circuit, network)
        assert program.metrics.total_comm > 0

    def test_displacement_keeps_node_loads_balanced(self):
        circuit = qft_circuit(8)
        network = uniform_network(2, 4)
        compiler = GPTPCompiler()
        program = compiler.compile(circuit, network)
        # Movement is modelled as swaps, so per-node qubit counts are constant;
        # indirectly verified by the compile finishing and producing blocks
        # whose two endpoints are always distinct nodes.
        for block in program.blocks:
            assert block.hub_node != block.remote_node


class TestGPTPVsAutoComm:
    @pytest.mark.parametrize("builder,num_qubits,num_nodes", [
        (qft_circuit, 12, 3),
        (bv_circuit, 12, 3),
        (qaoa_maxcut_circuit, 12, 3),
    ])
    def test_autocomm_uses_fewer_comms(self, builder, num_qubits, num_nodes):
        per_node = -(-num_qubits // num_nodes)
        circuit = builder(num_qubits)
        network = uniform_network(num_nodes, per_node)
        mapping = QubitMapping({q: q // per_node for q in range(num_qubits)}, network)
        autocomm = compile_autocomm(circuit, network, mapping=mapping)
        gp_tp = compile_gp_tp(circuit, network, mapping=mapping)
        assert autocomm.metrics.total_comm <= gp_tp.metrics.total_comm

    def test_gp_tp_carries_less_information_per_comm(self):
        circuit = qft_circuit(12)
        network = uniform_network(3, 4)
        autocomm = compile_autocomm(circuit, network)
        gp_tp = compile_gp_tp(circuit, network)
        assert gp_tp.metrics.peak_rem_cx < autocomm.metrics.peak_rem_cx
