"""Unit tests for the sparse (Ferrari-style) baseline compiler."""

import pytest

from repro import compile_autocomm, compile_sparse
from repro.circuits import bv_circuit, qaoa_maxcut_circuit, qft_circuit
from repro.comm import CommScheme
from repro.hardware import uniform_network
from repro.ir import Circuit
from repro.partition import QubitMapping


class TestSparseCompiler:
    def test_one_comm_per_remote_cx(self):
        circuit = qft_circuit(8)
        network = uniform_network(2, 4)
        program = compile_sparse(circuit, network)
        assert program.metrics.total_comm == program.metrics.num_remote_gates

    def test_all_blocks_are_singleton_cat(self):
        circuit = qft_circuit(8)
        network = uniform_network(2, 4)
        program = compile_sparse(circuit, network)
        assert all(block.scheme is CommScheme.CAT for block in program.blocks)
        assert all(len(block.gates) == 1 for block in program.blocks)
        assert program.metrics.tp_comm == 0

    def test_peak_remote_cx_is_one(self):
        circuit = qft_circuit(8)
        network = uniform_network(2, 4)
        program = compile_sparse(circuit, network)
        assert program.metrics.peak_rem_cx == 1.0

    def test_no_remote_gates_means_no_comm(self):
        circuit = Circuit(4).h(0).cx(0, 1).cx(2, 3)
        network = uniform_network(2, 2)
        program = compile_sparse(circuit, network)
        assert program.metrics.total_comm == 0
        assert program.metrics.latency > 0

    def test_compiler_label(self):
        network = uniform_network(2, 4)
        program = compile_sparse(bv_circuit(8), network)
        assert program.compiler == "sparse-cat"

    def test_explicit_mapping_respected(self):
        circuit = bv_circuit(8)
        network = uniform_network(2, 4)
        mapping = QubitMapping({q: q // 4 for q in range(8)}, network)
        program = compile_sparse(circuit, network, mapping=mapping)
        assert program.mapping == mapping

    def test_capacity_validation(self):
        network = uniform_network(2, 3)
        with pytest.raises(ValueError):
            compile_sparse(qft_circuit(8), network)

    def test_latency_accounts_for_epr_per_gate(self):
        # With all comms serialised on a single hub qubit, the baseline pays
        # at least (cat protocol) per remote gate on the critical path.
        circuit = Circuit(4).cx(0, 2).cx(0, 3).cx(0, 2).cx(0, 3)
        network = uniform_network(2, 2)
        mapping = QubitMapping({0: 0, 1: 0, 2: 1, 3: 1}, network)
        program = compile_sparse(circuit, network, mapping=mapping)
        per_gate = network.latency.cat_comm_latency(1)
        assert program.metrics.latency >= 4 * per_gate


class TestSparseVsAutoComm:
    @pytest.mark.parametrize("builder,num_qubits,num_nodes", [
        (qft_circuit, 12, 3),
        (bv_circuit, 12, 3),
        (qaoa_maxcut_circuit, 12, 3),
    ])
    def test_autocomm_never_issues_more_comms(self, builder, num_qubits, num_nodes):
        circuit = builder(num_qubits)
        network = uniform_network(num_nodes, -(-num_qubits // num_nodes))
        mapping = QubitMapping({q: q // (-(-num_qubits // num_nodes))
                                for q in range(num_qubits)}, network)
        autocomm = compile_autocomm(circuit, network, mapping=mapping)
        sparse = compile_sparse(circuit, network, mapping=mapping)
        assert autocomm.metrics.total_comm <= sparse.metrics.total_comm

    def test_same_remote_gate_count_reported(self):
        circuit = qft_circuit(10)
        network = uniform_network(2, 5)
        mapping = QubitMapping({q: q // 5 for q in range(10)}, network)
        autocomm = compile_autocomm(circuit, network, mapping=mapping)
        sparse = compile_sparse(circuit, network, mapping=mapping)
        assert (autocomm.metrics.num_remote_gates
                == sparse.metrics.num_remote_gates)
