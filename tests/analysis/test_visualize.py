"""Unit tests for the text visualisation helpers."""

import pytest

from repro import compile_autocomm
from repro.analysis import burst_histogram, schedule_timeline
from repro.circuits import qft_circuit
from repro.hardware import uniform_network
from repro.ir import Circuit
from repro.partition import QubitMapping


@pytest.fixture
def compiled_qft():
    circuit = qft_circuit(8)
    network = uniform_network(2, 4)
    return compile_autocomm(circuit, network)


class TestScheduleTimeline:
    def test_one_row_per_node(self, compiled_qft):
        text = schedule_timeline(compiled_qft)
        node_lines = [line for line in text.splitlines() if line.startswith("node")]
        assert len(node_lines) == 2

    def test_width_respected(self, compiled_qft):
        text = schedule_timeline(compiled_qft, width=40)
        for line in text.splitlines():
            if line.startswith("node"):
                assert len(line) == len("node 0: ") + 40

    def test_symbols_are_valid(self, compiled_qft):
        text = schedule_timeline(compiled_qft)
        for line in text.splitlines():
            if line.startswith("node"):
                body = line.split(": ", 1)[1]
                assert set(body) <= {".", "C", "T", "#"}

    def test_communication_visible_on_both_endpoints(self, compiled_qft):
        text = schedule_timeline(compiled_qft)
        node_lines = [line.split(": ", 1)[1] for line in text.splitlines()
                      if line.startswith("node")]
        assert all(set(line) != {"."} for line in node_lines)

    def test_local_only_program(self):
        circuit = Circuit(4).h(0).cx(0, 1).cx(2, 3)
        network = uniform_network(2, 2)
        mapping = QubitMapping({0: 0, 1: 0, 2: 1, 3: 1}, network)
        program = compile_autocomm(circuit, network, mapping=mapping)
        text = schedule_timeline(program)
        assert "no remote communication" in text

    def test_missing_schedule_rejected(self, compiled_qft):
        compiled_qft.schedule = None
        with pytest.raises(ValueError):
            schedule_timeline(compiled_qft)


class TestBurstHistogram:
    def test_histogram_counts_blocks(self, compiled_qft):
        text = burst_histogram(compiled_qft)
        total = sum(int(line.rsplit(" ", 1)[1]) for line in text.splitlines())
        assert total == len(compiled_qft.blocks)

    def test_histogram_empty_program(self):
        circuit = Circuit(4).h(0)
        network = uniform_network(2, 2)
        mapping = QubitMapping({0: 0, 1: 0, 2: 1, 3: 1}, network)
        program = compile_autocomm(circuit, network, mapping=mapping)
        assert burst_histogram(program) == "(no burst blocks)"

    def test_bar_width_bounded(self, compiled_qft):
        text = burst_histogram(compiled_qft, max_width=10)
        for line in text.splitlines():
            bar = line.split("| ", 1)[1].split(" ", 1)[0]
            assert len(bar) <= 10
