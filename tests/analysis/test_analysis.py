"""Unit tests for the analysis utilities (burst stats, table builders)."""

import pytest

from repro import compile_autocomm, compile_sparse
from repro.analysis import (
    geometric_mean,
    inverse_burst_distribution,
    mean_remote_cx_per_comm,
    qaoa_inverse_burst_bound,
    qft_inverse_burst_bound,
    render_table,
    table2_row,
    table3_row,
)
from repro.circuits import qft_circuit
from repro.comm import CommBlock, CommScheme
from repro.hardware import uniform_network
from repro.ir import Gate, decompose_to_cx
from repro.partition import QubitMapping, oee_partition


@pytest.fixture
def mapping():
    return QubitMapping({0: 0, 1: 0, 2: 1, 3: 1})


def block_of(gates, scheme, mapping):
    block = CommBlock(hub_qubit=0, hub_node=0, remote_node=1)
    block.extend(gates)
    block.scheme = scheme
    return block


class TestBurstStats:
    def test_inverse_burst_distribution(self, mapping):
        blocks = [
            block_of([Gate("cx", (0, 2))], CommScheme.CAT, mapping),
            block_of([Gate("cx", (0, 2)), Gate("cx", (0, 3)),
                      Gate("cx", (0, 2)), Gate("cx", (0, 3))], CommScheme.CAT, mapping),
        ]
        dist = inverse_burst_distribution(blocks, mapping, thresholds=(2, 4, 6))
        # 1 of 5 remote gates sits in a block smaller than 2; all 5 < 6.
        assert dist[2] == pytest.approx(0.2)
        assert dist[4] == pytest.approx(0.2)
        assert dist[6] == pytest.approx(1.0)

    def test_inverse_burst_empty(self, mapping):
        assert inverse_burst_distribution([], mapping) == {2: 0.0, 4: 0.0, 6: 0.0, 8: 0.0}

    def test_qft_bound_decreases_with_qubits_per_node(self):
        loose = qft_inverse_burst_bound(20, 10, threshold=4)
        tight = qft_inverse_burst_bound(100, 10, threshold=4)
        assert tight < loose
        assert 0 <= tight <= 1

    def test_qft_bound_requires_even_threshold(self):
        with pytest.raises(ValueError):
            qft_inverse_burst_bound(20, 2, threshold=3)

    def test_qaoa_bound_cases(self):
        assert qaoa_inverse_burst_bound(5, 0) == 0.0
        assert qaoa_inverse_burst_bound(5, 3) == 1.0            # r <= t: no guarantee
        assert qaoa_inverse_burst_bound(3, 4) == pytest.approx((3 - 2 * 1) / 4)
        with pytest.raises(ValueError):
            qaoa_inverse_burst_bound(3, 7, threshold=6)

    def test_measured_qft_burstiness_beats_paper_bound(self):
        # Section 3.2: at least 1 - 1/t of QFT's remote gates live in blocks
        # of 4+ remote CX gates.  Our measured distribution must respect it.
        circuit = decompose_to_cx(qft_circuit(16))
        network = uniform_network(2, 8)
        program = compile_autocomm(circuit, network)
        measured = inverse_burst_distribution(program.blocks, program.mapping,
                                              thresholds=(4,))
        bound = qft_inverse_burst_bound(16, 2, threshold=4)
        assert measured[4] <= bound + 0.05

    def test_mean_remote_cx_per_comm(self, mapping):
        blocks = [block_of([Gate("cx", (0, 2)), Gate("cx", (0, 3))],
                           CommScheme.CAT, mapping)]
        assert mean_remote_cx_per_comm(blocks, mapping) == 2.0
        assert mean_remote_cx_per_comm([], mapping) == 0.0


class TestTables:
    def test_table2_row(self):
        circuit = qft_circuit(12)
        decomposed = decompose_to_cx(circuit)
        network = uniform_network(3, 4)
        mapping = oee_partition(decomposed, network).mapping
        row = table2_row("QFT-12-3", circuit, decomposed, mapping, 3)
        assert row["num_qubits"] == 12
        assert row["num_nodes"] == 3
        assert row["num_cx"] == decomposed.num_cx_gates()
        assert 0 < row["num_remote_cx"] <= row["num_cx"]

    def test_table3_row(self):
        circuit = qft_circuit(12)
        network = uniform_network(3, 4)
        autocomm = compile_autocomm(circuit, network)
        sparse = compile_sparse(circuit, network)
        row = table3_row(autocomm, sparse)
        assert row["tot_comm"] == autocomm.metrics.total_comm
        assert row["improv_factor"] >= 1.0
        assert row["lat_dec_factor"] > 0

    def test_render_table_alignment(self):
        rows = [{"name": "QFT", "value": 1.2345}, {"name": "BV", "value": 10.0}]
        text = render_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert "QFT" in lines[2]
        assert "1.23" in text

    def test_render_table_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = render_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_render_empty_table(self):
        assert render_table([]) == "(empty table)"

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([5.0]) == pytest.approx(5.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([0.0, 4.0]) == pytest.approx(4.0)
