"""Unit tests for the fidelity / error model."""

import math

import pytest

from repro import compile_autocomm, compile_sparse
from repro.analysis import DEFAULT_ERROR_MODEL, ErrorModel, estimate_fidelity, fidelity_breakdown
from repro.circuits import bv_circuit, qft_circuit
from repro.hardware import uniform_network
from repro.ir import Circuit
from repro.partition import QubitMapping


@pytest.fixture
def compiled_pair():
    circuit = qft_circuit(12)
    network = uniform_network(3, 4)
    autocomm = compile_autocomm(circuit, network)
    sparse = compile_sparse(circuit, network, mapping=autocomm.mapping)
    return autocomm, sparse


class TestErrorModel:
    def test_defaults_are_sane(self):
        assert 0 < DEFAULT_ERROR_MODEL.epr_error < 0.1
        assert DEFAULT_ERROR_MODEL.epr_error > DEFAULT_ERROR_MODEL.two_qubit_error
        assert DEFAULT_ERROR_MODEL.two_qubit_error > DEFAULT_ERROR_MODEL.one_qubit_error

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            ErrorModel(epr_error=1.5)
        with pytest.raises(ValueError):
            ErrorModel(two_qubit_error=-0.1)
        with pytest.raises(ValueError):
            ErrorModel(coherence_time=0)

    def test_custom_model(self):
        model = ErrorModel(epr_error=0.1, coherence_time=1000.0)
        assert model.epr_error == 0.1
        assert model.two_qubit_error == DEFAULT_ERROR_MODEL.two_qubit_error


class TestFidelityEstimation:
    def test_breakdown_factors_multiply_to_total(self, compiled_pair):
        autocomm, _ = compiled_pair
        breakdown = fidelity_breakdown(autocomm)
        product = (breakdown["communication"] * breakdown["local_two_qubit"]
                   * breakdown["local_single_qubit"] * breakdown["decoherence"])
        assert breakdown["total"] == pytest.approx(product)

    def test_fidelity_in_unit_interval(self, compiled_pair):
        autocomm, sparse = compiled_pair
        for program in compiled_pair:
            fidelity = estimate_fidelity(program)
            assert 0.0 <= fidelity <= 1.0

    def test_autocomm_fidelity_beats_baseline(self, compiled_pair):
        autocomm, sparse = compiled_pair
        assert estimate_fidelity(autocomm) > estimate_fidelity(sparse)

    def test_fewer_comms_means_higher_comm_factor(self, compiled_pair):
        autocomm, sparse = compiled_pair
        assert (fidelity_breakdown(autocomm)["communication"]
                > fidelity_breakdown(sparse)["communication"])

    def test_zero_comm_program_has_unit_comm_factor(self):
        circuit = Circuit(4).h(0).cx(0, 1).cx(2, 3)
        network = uniform_network(2, 2)
        mapping = QubitMapping({0: 0, 1: 0, 2: 1, 3: 1}, network)
        program = compile_autocomm(circuit, network, mapping=mapping)
        breakdown = fidelity_breakdown(program)
        assert breakdown["communication"] == pytest.approx(1.0)
        assert breakdown["total"] < 1.0  # local gates and decoherence remain

    def test_noiseless_model_gives_decoherence_only(self, compiled_pair):
        autocomm, _ = compiled_pair
        model = ErrorModel(epr_error=0.0, two_qubit_error=0.0, one_qubit_error=0.0,
                           coherence_time=10_000.0)
        breakdown = fidelity_breakdown(autocomm, model)
        assert breakdown["communication"] == 1.0
        assert breakdown["total"] == pytest.approx(
            math.exp(-autocomm.metrics.latency / 10_000.0))

    def test_shorter_coherence_time_lowers_fidelity(self, compiled_pair):
        autocomm, _ = compiled_pair
        long_coh = estimate_fidelity(autocomm, ErrorModel(coherence_time=100_000.0))
        short_coh = estimate_fidelity(autocomm, ErrorModel(coherence_time=1_000.0))
        assert short_coh < long_coh

    def test_bv_fidelity_gap_grows_with_epr_error(self):
        circuit = bv_circuit(12)
        network = uniform_network(3, 4)
        autocomm = compile_autocomm(circuit, network)
        sparse = compile_sparse(circuit, network, mapping=autocomm.mapping)
        small = ErrorModel(epr_error=0.01)
        large = ErrorModel(epr_error=0.05)
        gap_small = (estimate_fidelity(autocomm, small)
                     - estimate_fidelity(sparse, small))
        gap_large = (estimate_fidelity(autocomm, large)
                     - estimate_fidelity(sparse, large))
        assert gap_large > gap_small
