"""Unit tests for burst-communication blocks and their pattern analysis."""

import pytest

from repro.comm import CommBlock, CommPattern, CommScheme, cat_comm_segments
from repro.ir import Gate
from repro.partition import QubitMapping


@pytest.fixture
def mapping():
    # Node 0: qubits 0-2, node 1: qubits 3-5.
    return QubitMapping({0: 0, 1: 0, 2: 0, 3: 1, 4: 1, 5: 1})


def make_block(gates, hub=0, hub_node=0, remote_node=1):
    block = CommBlock(hub_qubit=hub, hub_node=hub_node, remote_node=remote_node)
    block.extend(gates)
    return block


class TestContent:
    def test_remote_gates_and_partners(self, mapping):
        block = make_block([
            Gate("cx", (0, 3)),
            Gate("rz", (3,), (0.1,)),
            Gate("cx", (0, 4)),
        ])
        assert block.num_remote_gates(mapping) == 2
        assert block.partner_qubits(mapping) == (3, 4)
        assert block.touched_qubits() == (0, 3, 4)
        assert len(block) == 3

    def test_nodes(self, mapping):
        block = make_block([Gate("cx", (0, 3))])
        assert block.nodes == (0, 1)

    def test_local_gates_not_counted_as_remote(self, mapping):
        block = make_block([Gate("cx", (0, 3)), Gate("cx", (3, 4))])
        assert block.num_remote_gates(mapping) == 1


class TestPatternClassification:
    def test_unidirectional_control(self, mapping):
        block = make_block([Gate("cx", (0, 3)), Gate("cx", (0, 4))])
        assert block.pattern(mapping) is CommPattern.UNIDIRECTIONAL_CONTROL

    def test_unidirectional_target(self, mapping):
        block = make_block([Gate("cx", (3, 0)), Gate("cx", (4, 0))])
        assert block.pattern(mapping) is CommPattern.UNIDIRECTIONAL_TARGET

    def test_bidirectional(self, mapping):
        block = make_block([Gate("cx", (0, 3)), Gate("cx", (4, 0))])
        assert block.pattern(mapping) is CommPattern.BIDIRECTIONAL

    def test_symmetric_diagonal_counts_as_control(self, mapping):
        block = make_block([Gate("rzz", (0, 3), (0.4,)), Gate("cx", (0, 4))])
        assert block.pattern(mapping) is CommPattern.UNIDIRECTIONAL_CONTROL


class TestBlockingGates:
    def test_diagonal_hub_gate_does_not_block_control_pattern(self, mapping):
        block = make_block([
            Gate("cx", (0, 3)), Gate("rz", (0,), (0.3,)), Gate("cx", (0, 4)),
        ])
        assert block.hub_blocking_gates(mapping) == []
        assert block.cat_comm_cost(mapping) == 1

    def test_hadamard_on_hub_blocks_control_pattern(self, mapping):
        block = make_block([
            Gate("cx", (0, 3)), Gate("h", (0,)), Gate("cx", (0, 4)),
        ])
        blocking = block.hub_blocking_gates(mapping)
        assert len(blocking) == 1
        assert blocking[0].name == "h"
        assert block.cat_comm_cost(mapping) == 2

    def test_tdg_on_hub_blocks_control_pattern(self, mapping):
        # The Figure 8 block-3 case: T† between two remote CX gates.
        block = make_block([
            Gate("cx", (0, 3)), Gate("tdg", (0,)), Gate("cx", (0, 4)),
        ])
        # Tdg is diagonal, so it does NOT block a control-pattern block.
        assert block.cat_comm_cost(mapping) == 1

    def test_tdg_on_hub_blocks_target_pattern(self, mapping):
        block = make_block([
            Gate("cx", (3, 0)), Gate("tdg", (0,)), Gate("cx", (4, 0)),
        ])
        assert len(block.hub_blocking_gates(mapping)) == 1
        assert block.cat_comm_cost(mapping) == 2

    def test_x_on_hub_transparent_for_target_pattern(self, mapping):
        block = make_block([
            Gate("cx", (3, 0)), Gate("x", (0,)), Gate("cx", (4, 0)),
        ])
        assert block.hub_blocking_gates(mapping) == []
        assert block.cat_comm_cost(mapping) == 1

    def test_partner_side_gates_never_block(self, mapping):
        block = make_block([
            Gate("cx", (0, 3)), Gate("h", (3,)), Gate("t", (4,)),
            Gate("cx", (3, 4)), Gate("cx", (0, 4)),
        ])
        assert block.hub_blocking_gates(mapping) == []
        assert block.cat_comm_cost(mapping) == 1

    def test_leading_and_trailing_hub_gates_do_not_block(self, mapping):
        block = make_block([
            Gate("h", (0,)), Gate("cx", (0, 3)), Gate("cx", (0, 4)), Gate("h", (0,)),
        ])
        assert block.hub_blocking_gates(mapping) == []
        assert block.cat_comm_cost(mapping) == 1

    def test_single_remote_gate_never_blocked(self, mapping):
        block = make_block([Gate("cx", (0, 3))])
        assert block.hub_blocking_gates(mapping) == []
        assert block.cat_comm_cost(mapping) == 1


class TestCatSegments:
    def test_direction_change_starts_new_segment(self, mapping):
        block = make_block([Gate("cx", (0, 3)), Gate("cx", (3, 0)), Gate("cx", (0, 4))])
        segments = cat_comm_segments(block, mapping)
        assert len(segments) == 3

    def test_same_direction_one_segment(self, mapping):
        block = make_block([Gate("cx", (0, 3)), Gate("cx", (0, 4)), Gate("cx", (0, 5))])
        assert len(cat_comm_segments(block, mapping)) == 1

    def test_blocked_control_pattern_two_segments(self, mapping):
        block = make_block([Gate("cx", (0, 3)), Gate("h", (0,)), Gate("cx", (0, 4))])
        assert len(cat_comm_segments(block, mapping)) == 2

    def test_bidirectional_costs_more_than_tp(self, mapping):
        block = make_block([
            Gate("cx", (0, 3)), Gate("cx", (3, 0)), Gate("cx", (0, 4)), Gate("cx", (4, 0)),
        ])
        assert block.cat_comm_cost(mapping) >= 3
        assert block.tp_comm_cost() == 2


class TestCosts:
    def test_epr_cost_cat(self, mapping):
        block = make_block([Gate("cx", (0, 3)), Gate("cx", (0, 4))])
        block.scheme = CommScheme.CAT
        assert block.epr_cost(mapping) == 1

    def test_epr_cost_tp(self, mapping):
        block = make_block([Gate("cx", (0, 3)), Gate("cx", (3, 0))])
        block.scheme = CommScheme.TP
        assert block.epr_cost(mapping) == 2

    def test_epr_cost_unassigned_takes_minimum(self, mapping):
        block = make_block([Gate("cx", (0, 3)), Gate("cx", (3, 0)), Gate("cx", (0, 4))])
        assert block.epr_cost(mapping) == 2  # TP wins over 3 Cat segments

    def test_repr_mentions_scheme(self, mapping):
        block = make_block([Gate("cx", (0, 3))])
        assert "unassigned" in repr(block)
        block.scheme = CommScheme.CAT
        assert "cat" in repr(block)
