"""Unit tests for communication cost accounting."""

import pytest

from repro.comm import CommBlock, CommScheme
from repro.comm.cost import (
    block_comm_count,
    block_latency,
    peak_remote_cx_per_comm,
    total_comm_count,
)
from repro.hardware import DEFAULT_LATENCY
from repro.ir import Gate
from repro.partition import QubitMapping


@pytest.fixture
def mapping():
    return QubitMapping({0: 0, 1: 0, 2: 1, 3: 1})


def cat_block(gates, mapping):
    block = CommBlock(hub_qubit=0, hub_node=0, remote_node=1)
    block.extend(gates)
    block.scheme = CommScheme.CAT
    return block


def tp_block(gates, mapping):
    block = CommBlock(hub_qubit=0, hub_node=0, remote_node=1)
    block.extend(gates)
    block.scheme = CommScheme.TP
    return block


class TestCommCounts:
    def test_cat_block_single_comm(self, mapping):
        block = cat_block([Gate("cx", (0, 2)), Gate("cx", (0, 3))], mapping)
        assert block_comm_count(block, mapping) == 1

    def test_tp_block_two_comms(self, mapping):
        block = tp_block([Gate("cx", (0, 2)), Gate("cx", (2, 0))], mapping)
        assert block_comm_count(block, mapping) == 2

    def test_unassigned_block_raises(self, mapping):
        block = CommBlock(hub_qubit=0, hub_node=0, remote_node=1,
                          gates=[Gate("cx", (0, 2))])
        with pytest.raises(ValueError):
            block_comm_count(block, mapping)

    def test_cat_block_with_blocker_costs_segments(self, mapping):
        block = cat_block([Gate("cx", (0, 2)), Gate("h", (0,)), Gate("cx", (0, 3))],
                          mapping)
        assert block_comm_count(block, mapping) == 2

    def test_total_comm_count_aggregates(self, mapping):
        blocks = [
            cat_block([Gate("cx", (0, 2)), Gate("cx", (0, 3))], mapping),
            tp_block([Gate("cx", (0, 2)), Gate("cx", (2, 0))], mapping),
        ]
        cost = total_comm_count(blocks, mapping)
        assert cost.total_comm == 3
        assert cost.cat_comm == 1
        assert cost.tp_comm == 2
        assert cost.as_dict()["total_comm"] == 3

    def test_total_comm_empty(self, mapping):
        cost = total_comm_count([], mapping)
        assert cost.total_comm == 0
        assert cost.peak_remote_cx == 0.0


class TestPeakRemoteCX:
    def test_cat_block_peak(self, mapping):
        blocks = [cat_block([Gate("cx", (0, 2)), Gate("cx", (0, 3)),
                             Gate("cx", (0, 2))], mapping)]
        assert peak_remote_cx_per_comm(blocks, mapping) == 3.0

    def test_tp_block_peak_averaged_over_two_comms(self, mapping):
        blocks = [tp_block([Gate("cx", (0, 2)), Gate("cx", (2, 0)),
                            Gate("cx", (0, 3)), Gate("cx", (3, 0))], mapping)]
        assert peak_remote_cx_per_comm(blocks, mapping) == 2.0

    def test_peak_takes_maximum(self, mapping):
        blocks = [
            cat_block([Gate("cx", (0, 2))], mapping),
            cat_block([Gate("cx", (0, 2)), Gate("cx", (0, 3)),
                       Gate("cx", (0, 2)), Gate("cx", (0, 3))], mapping),
        ]
        assert peak_remote_cx_per_comm(blocks, mapping) == 4.0

    def test_peak_empty(self, mapping):
        assert peak_remote_cx_per_comm([], mapping) == 0.0


class TestBlockLatency:
    def test_cat_latency_includes_entangler_and_body(self, mapping):
        block = cat_block([Gate("cx", (0, 2)), Gate("cx", (0, 3))], mapping)
        latency = block_latency(block, mapping, DEFAULT_LATENCY)
        expected = (DEFAULT_LATENCY.t_cat_entangle + DEFAULT_LATENCY.t_cat_disentangle
                    + 2 * DEFAULT_LATENCY.t_2q)
        assert latency == pytest.approx(expected)

    def test_tp_latency_includes_two_teleports(self, mapping):
        block = tp_block([Gate("cx", (0, 2)), Gate("cx", (2, 0))], mapping)
        latency = block_latency(block, mapping, DEFAULT_LATENCY)
        expected = 2 * DEFAULT_LATENCY.t_teleport + 2 * DEFAULT_LATENCY.t_2q
        assert latency == pytest.approx(expected)

    def test_single_qubit_gates_add_latency(self, mapping):
        bare = cat_block([Gate("cx", (0, 2))], mapping)
        with_1q = cat_block([Gate("cx", (0, 2)), Gate("rz", (2,), (0.3,))], mapping)
        assert (block_latency(with_1q, mapping) - block_latency(bare, mapping)
                == pytest.approx(DEFAULT_LATENCY.t_1q))

    def test_tp_latency_bigger_than_cat_for_single_gate(self, mapping):
        gates = [Gate("cx", (0, 2))]
        assert (block_latency(tp_block(gates, mapping), mapping)
                > block_latency(cat_block(gates, mapping), mapping))

    def test_multi_segment_cat_latency_scales_with_segments(self, mapping):
        one = cat_block([Gate("cx", (0, 2)), Gate("cx", (0, 3))], mapping)
        two = cat_block([Gate("cx", (0, 2)), Gate("h", (0,)), Gate("cx", (0, 3))],
                        mapping)
        extra = (block_latency(two, mapping) - block_latency(one, mapping))
        expected = (DEFAULT_LATENCY.t_cat_entangle + DEFAULT_LATENCY.t_cat_disentangle
                    + DEFAULT_LATENCY.t_1q)
        assert extra == pytest.approx(expected)


class TestPhysicalEPRPairs:
    def test_cost_defaults_physical_to_logical(self, mapping):
        from repro.comm.cost import CommCost

        cost = CommCost(total_comm=7, tp_comm=4, cat_comm=3,
                        peak_remote_cx=2.0)
        assert cost.total_epr_pairs == 7
        assert cost.as_dict()["total_epr_pairs"] == 7

    def test_block_epr_pairs_without_network(self, mapping):
        from repro.comm import block_epr_pairs

        block = tp_block([Gate("cx", (0, 2))], mapping)
        assert block_epr_pairs(block, mapping) == 2

    def test_block_epr_pairs_scale_with_route_hops(self):
        from repro.comm import block_epr_pairs
        from repro.hardware import apply_topology, uniform_network

        network = apply_topology(uniform_network(4, 1), "line")
        mapping = QubitMapping({0: 0, 1: 3})
        block = CommBlock(hub_qubit=0, hub_node=0, remote_node=3,
                          gates=[Gate("cx", (0, 1))])
        block.scheme = CommScheme.TP
        # 2 logical communications x 3 hops on the 0-1-2-3 route.
        assert block_epr_pairs(block, mapping, network=network) == 6

    def test_total_comm_count_with_network(self):
        from repro.hardware import apply_topology, uniform_network

        network = apply_topology(uniform_network(3, 2), "line")
        mapping = QubitMapping({0: 0, 1: 2, 2: 1})
        far = CommBlock(hub_qubit=0, hub_node=0, remote_node=2,
                        gates=[Gate("cx", (0, 1))])
        far.scheme = CommScheme.CAT
        near = CommBlock(hub_qubit=0, hub_node=0, remote_node=1,
                         gates=[Gate("cx", (0, 2))])
        near.scheme = CommScheme.TP
        cost = total_comm_count([far, near], mapping, network=network)
        assert cost.total_comm == 3        # 1 Cat + 2 TP
        assert cost.total_epr_pairs == 4   # Cat spans 2 hops, TP is adjacent
