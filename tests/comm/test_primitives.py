"""Protocol correctness tests for Cat-Comm and TP-Comm circuits.

Every protocol is verified by statevector simulation: applying the protocol
circuit to (random data state) ⊗ |0...0> on the communication qubits must
produce the same data-qubit state as applying the logical block directly,
with the data register left unentangled from the communication qubits.
"""

import numpy as np
import pytest

from repro.comm import (
    CommBlock,
    cat_comm_block_circuit,
    epr_pair_circuit,
    release_comm_qubit,
    remote_cx_via_cat,
    remote_cx_via_tp,
    teleport_circuit,
    tp_comm_block_circuit,
)
from repro.ir import Circuit, Gate
from repro.ir.simulator import (
    fidelity,
    purity,
    random_statevector,
    reduced_density_matrix,
    simulate,
    zero_state,
)
from repro.partition import QubitMapping


def embed_data_state(data_state, num_data, num_total):
    """Tensor a data-qubit state with |0> communication qubits."""
    comm = zero_state(num_total - num_data)
    return np.kron(data_state, comm)


def data_state_matches(final_state, expected_data_state, data_qubits, num_total,
                       atol=1e-8):
    """Check the data qubits hold ``expected_data_state`` and are unentangled."""
    rho = reduced_density_matrix(final_state, list(data_qubits), num_total)
    if abs(purity(rho) - 1.0) > atol:
        return False
    return abs(fidelity(expected_data_state, rho) - 1.0) < atol


class TestEPRAndTeleport:
    def test_epr_pair_state(self):
        state = simulate(epr_pair_circuit(0, 1, 2))
        expected = np.zeros(4, dtype=complex)
        expected[0] = expected[3] = 1 / np.sqrt(2)
        assert np.allclose(state, expected)

    def test_teleport_moves_state(self):
        data = random_statevector(1, seed=1)
        # Qubit 0 = source, 1 = near EPR half, 2 = far EPR half.
        circuit = teleport_circuit(0, 1, 2, num_qubits=3)
        initial = np.kron(data, zero_state(2))
        final = simulate(circuit, initial_state=initial)
        assert data_state_matches(final, data, [2], 3)

    def test_teleport_leaves_source_in_plus(self):
        data = random_statevector(1, seed=2)
        circuit = teleport_circuit(0, 1, 2, num_qubits=3)
        final = simulate(circuit, initial_state=np.kron(data, zero_state(2)))
        plus = np.array([1, 1], dtype=complex) / np.sqrt(2)
        assert data_state_matches(final, plus, [0], 3)
        assert data_state_matches(final, plus, [1], 3)

    def test_release_comm_qubit_restores_zero(self):
        data = random_statevector(1, seed=3)
        circuit = teleport_circuit(0, 1, 2, num_qubits=3)
        release_comm_qubit(circuit, 0)
        release_comm_qubit(circuit, 1)
        final = simulate(circuit, initial_state=np.kron(data, zero_state(2)))
        assert data_state_matches(final, zero_state(1), [0], 3)
        assert data_state_matches(final, zero_state(1), [1], 3)

    def test_teleport_without_epr_prep(self):
        # Caller prepares the EPR pair explicitly, then teleports.
        data = random_statevector(1, seed=4)
        circuit = Circuit(3)
        circuit.compose(epr_pair_circuit(1, 2, 3))
        circuit.compose(teleport_circuit(0, 1, 2, 3, include_epr=False))
        final = simulate(circuit, initial_state=np.kron(data, zero_state(2)))
        assert data_state_matches(final, data, [2], 3)


class TestRemoteCX:
    def test_remote_cx_via_cat_matches_direct_cx(self):
        # Data qubits 0 (control, node A) and 1 (target, node B); comm 2, 3.
        data = random_statevector(2, seed=5)
        protocol = remote_cx_via_cat(0, 1, 2, 3, num_qubits=4)
        final = simulate(protocol, initial_state=embed_data_state(data, 2, 4))
        expected = simulate(Circuit(2).cx(0, 1), initial_state=data)
        assert data_state_matches(final, expected, [0, 1], 4)

    def test_remote_cx_via_tp_matches_direct_cx(self):
        # Data 0,1; outbound comm 2,3; return comm 4,5.
        data = random_statevector(2, seed=6)
        protocol = remote_cx_via_tp(0, 1, comm_near=2, comm_far=3,
                                    return_near=4, return_far=5, num_qubits=6)
        final = simulate(protocol, initial_state=embed_data_state(data, 2, 6))
        expected = simulate(Circuit(2).cx(0, 1), initial_state=data)
        # After TP-Comm the control's state lands on return_near (qubit 4).
        rho = reduced_density_matrix(final, [4, 1], 6)
        assert abs(purity(rho) - 1.0) < 1e-8
        assert abs(fidelity(expected, rho) - 1.0) < 1e-8


@pytest.fixture
def mapping_two_nodes():
    # Data qubits: 0, 1 on node 0; 2, 3 on node 1 (comm qubits are separate).
    return QubitMapping({0: 0, 1: 0, 2: 1, 3: 1})


def build_block(gates, hub, hub_node, remote_node):
    block = CommBlock(hub_qubit=hub, hub_node=hub_node, remote_node=remote_node)
    block.extend(gates)
    return block


class TestCatCommBlock:
    def cat_check(self, gates, hub, mapping, seed):
        """Verify the Cat-Comm expansion of a block against direct execution."""
        block = build_block(gates, hub=hub, hub_node=mapping.node_of(hub),
                            remote_node=1 - mapping.node_of(hub))
        num_data = mapping.num_qubits
        num_total = num_data + 2
        protocol = cat_comm_block_circuit(block, mapping, comm_near=num_data,
                                          comm_far=num_data + 1,
                                          num_qubits=num_total)
        data = random_statevector(num_data, seed=seed)
        final = simulate(protocol, initial_state=embed_data_state(data, num_data, num_total))
        expected = simulate(Circuit(num_data, gates), initial_state=data)
        assert data_state_matches(final, expected, list(range(num_data)), num_total)

    def test_control_pattern_block(self, mapping_two_nodes):
        gates = [Gate("cx", (0, 2)), Gate("cx", (0, 3))]
        self.cat_check(gates, hub=0, mapping=mapping_two_nodes, seed=11)

    def test_control_pattern_with_partner_side_unitaries(self, mapping_two_nodes):
        # The Figure 3 controlled-unitary block: C-U1-U2 with local unitaries.
        gates = [
            Gate("cx", (0, 2)), Gate("h", (3,)), Gate("rz", (2,), (0.7,)),
            Gate("cx", (0, 3)), Gate("cx", (2, 3)),
        ]
        self.cat_check(gates, hub=0, mapping=mapping_two_nodes, seed=12)

    def test_control_pattern_with_diagonal_hub_gate(self, mapping_two_nodes):
        gates = [Gate("cx", (0, 2)), Gate("t", (0,)), Gate("cx", (0, 3))]
        self.cat_check(gates, hub=0, mapping=mapping_two_nodes, seed=13)

    def test_control_pattern_with_leading_trailing_hub_gates(self, mapping_two_nodes):
        gates = [Gate("h", (0,)), Gate("cx", (0, 2)), Gate("cx", (0, 3)),
                 Gate("h", (0,))]
        self.cat_check(gates, hub=0, mapping=mapping_two_nodes, seed=14)

    def test_target_pattern_block(self, mapping_two_nodes):
        gates = [Gate("cx", (2, 0)), Gate("cx", (3, 0))]
        self.cat_check(gates, hub=0, mapping=mapping_two_nodes, seed=15)

    def test_target_pattern_with_x_on_hub(self, mapping_two_nodes):
        gates = [Gate("cx", (2, 0)), Gate("x", (0,)), Gate("cx", (3, 0))]
        self.cat_check(gates, hub=0, mapping=mapping_two_nodes, seed=16)

    def test_single_remote_cx(self, mapping_two_nodes):
        self.cat_check([Gate("cx", (1, 3))], hub=1, mapping=mapping_two_nodes, seed=17)

    def test_remote_diagonal_gate(self, mapping_two_nodes):
        gates = [Gate("crz", (0, 2), (0.9,)), Gate("cx", (0, 3))]
        self.cat_check(gates, hub=0, mapping=mapping_two_nodes, seed=18)

    def test_multi_segment_block_rejected(self, mapping_two_nodes):
        block = build_block([Gate("cx", (0, 2)), Gate("h", (0,)), Gate("cx", (0, 3))],
                            hub=0, hub_node=0, remote_node=1)
        with pytest.raises(ValueError):
            cat_comm_block_circuit(block, mapping_two_nodes, 4, 5, 6)


class TestTPCommBlock:
    def tp_check(self, gates, hub, mapping, seed):
        block = build_block(gates, hub=hub, hub_node=mapping.node_of(hub),
                            remote_node=1 - mapping.node_of(hub))
        num_data = mapping.num_qubits
        num_total = num_data + 4
        protocol = tp_comm_block_circuit(
            block, mapping, comm_near=num_data, comm_far=num_data + 1,
            return_near=num_data + 2, return_far=num_data + 3,
            num_qubits=num_total)
        data = random_statevector(num_data, seed=seed)
        final = simulate(protocol, initial_state=embed_data_state(data, num_data, num_total))
        expected = simulate(Circuit(num_data, gates), initial_state=data)
        assert data_state_matches(final, expected, list(range(num_data)), num_total)

    def test_bidirectional_block(self, mapping_two_nodes):
        gates = [Gate("cx", (0, 2)), Gate("cx", (2, 0)), Gate("cx", (0, 3))]
        self.tp_check(gates, hub=0, mapping=mapping_two_nodes, seed=21)

    def test_blocked_unidirectional_block(self, mapping_two_nodes):
        gates = [Gate("cx", (2, 0)), Gate("t", (0,)), Gate("cx", (3, 0))]
        self.tp_check(gates, hub=0, mapping=mapping_two_nodes, seed=22)

    def test_block_with_arbitrary_hub_gates(self, mapping_two_nodes):
        gates = [Gate("cx", (0, 2)), Gate("h", (0,)), Gate("cx", (3, 0)),
                 Gate("ry", (0,), (0.4,)), Gate("cx", (0, 3))]
        self.tp_check(gates, hub=0, mapping=mapping_two_nodes, seed=23)

    def test_block_with_partner_side_gates(self, mapping_two_nodes):
        gates = [Gate("cx", (0, 2)), Gate("cx", (2, 3)), Gate("h", (3,)),
                 Gate("cx", (3, 0))]
        self.tp_check(gates, hub=0, mapping=mapping_two_nodes, seed=24)
