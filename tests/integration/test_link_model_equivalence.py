"""Link-model equivalence and heterogeneous-replay guarantees.

Two acceptance-level invariants of the heterogeneous link model:

* **Uniform equivalence** — compiling and simulating on a network whose
  topology carries an explicit *uniform* :class:`~repro.hardware.links.LinkModel`
  is byte-identical to the pre-link-model behaviour (a plain
  ``apply_topology``), on every supported topology: same mapping, same
  schemes, same metrics, same schedule ops, same deterministic replay and
  same stochastic Monte-Carlo stream.
* **Heterogeneous replay** — with per-link latencies (one non-uniform link
  configuration per topology kind) the discrete-event replay at
  ``p_epr = 1.0`` still reproduces the analytical schedule latency
  *exactly*, op for op.
"""


import pytest

from repro.circuits import qft_circuit
from repro.core import compile_autocomm
from repro.hardware import (
    DEFAULT_LATENCY,
    LinkModel,
    LinkSpec,
    SUPPORTED_TOPOLOGIES,
    apply_topology,
    topology_graph,
    uniform_network,
)
from repro.sim import (SimulationConfig, run_monte_carlo, simulate_program,
                       validate_schedule)

NUM_NODES = 4
QUBITS_PER_NODE = 3


def _compiled(kind, link_model=None):
    network = uniform_network(NUM_NODES, QUBITS_PER_NODE)
    apply_topology(network, kind, link_model=link_model)
    return compile_autocomm(qft_circuit(NUM_NODES * QUBITS_PER_NODE), network)


def _hetero_model(kind):
    """One non-uniform link configuration per topology kind."""
    graph = topology_graph(kind, NUM_NODES)
    links = sorted(tuple(sorted(edge)) for edge in graph.edges)
    base = DEFAULT_LATENCY.t_epr
    # Alternate slow / fast links so every kind gets real heterogeneity.
    overrides = {}
    for index, link in enumerate(links):
        if index % 2 == 0:
            overrides[link] = LinkSpec(t_epr=base * 3.0)
        elif index % 3 == 0:
            overrides[link] = LinkSpec(t_epr=base * 0.5)
    model = LinkModel(LinkSpec(t_epr=base), overrides)
    assert not model.uniform_latency, kind
    return model


class TestUniformLinkModelEquivalence:
    @pytest.mark.parametrize("kind", SUPPORTED_TOPOLOGIES)
    def test_compile_byte_identical(self, kind):
        plain = _compiled(kind)
        explicit = _compiled(kind,
                             LinkModel.uniform_model(DEFAULT_LATENCY.t_epr))
        assert explicit.mapping.as_dict() == plain.mapping.as_dict()
        assert ([b.scheme for b in explicit.blocks]
                == [b.scheme for b in plain.blocks])
        assert explicit.metrics.as_dict() == plain.metrics.as_dict()
        assert ([(op.kind, op.start, op.end) for op in explicit.schedule.ops]
                == [(op.kind, op.start, op.end) for op in plain.schedule.ops])

    @pytest.mark.parametrize("kind", SUPPORTED_TOPOLOGIES)
    def test_deterministic_replay_byte_identical(self, kind):
        plain = simulate_program(_compiled(kind))
        explicit = simulate_program(
            _compiled(kind, LinkModel.uniform_model(DEFAULT_LATENCY.t_epr)))
        assert explicit.latency == plain.latency
        assert ([(op.kind, op.prep_start, op.start, op.end, op.epr_pairs)
                 for op in explicit.ops]
                == [(op.kind, op.prep_start, op.start, op.end, op.epr_pairs)
                    for op in plain.ops])

    @pytest.mark.parametrize("kind", SUPPORTED_TOPOLOGIES)
    def test_stochastic_stream_byte_identical(self, kind):
        """Uniform models must keep pair-level sampling: same RNG stream."""
        config = SimulationConfig(p_epr=0.6, seed=123, trials=4,
                                  record_trace=False)
        plain = run_monte_carlo(_compiled(kind), config)
        explicit = run_monte_carlo(
            _compiled(kind, LinkModel.uniform_model(DEFAULT_LATENCY.t_epr)),
            config)
        assert explicit.latencies == plain.latencies
        assert explicit.epr_attempts == plain.epr_attempts

    def test_uniform_capacity_model_matches_global_flag(self):
        """--link-capacity's uniform-LinkModel mapping changes nothing."""
        config_flag = SimulationConfig(p_epr=0.7, seed=9, trials=3,
                                       link_capacity=1, record_trace=False)
        flag = run_monte_carlo(_compiled("line"), config_flag)
        model = LinkModel.uniform_model(DEFAULT_LATENCY.t_epr, capacity=1)
        config_model = SimulationConfig(p_epr=0.7, seed=9, trials=3,
                                        record_trace=False)
        modelled = run_monte_carlo(_compiled("line", model), config_model)
        assert modelled.latencies == flag.latencies
        assert modelled.epr_attempts == flag.epr_attempts


class TestHeterogeneousReplayExactness:
    @pytest.mark.parametrize("kind", SUPPORTED_TOPOLOGIES)
    def test_deterministic_replay_matches_analytical(self, kind):
        program = _compiled(kind, _hetero_model(kind))
        assert program.network.heterogeneous_links
        report = validate_schedule(program)
        assert report.matches, report.describe()
        assert report.latency_delta == 0.0
        assert report.max_op_end_delta == 0.0

    def test_heterogeneous_line_exact(self):
        model = LinkModel(LinkSpec(12.0), {(1, 2): LinkSpec(36.0)})
        program = _compiled("line", model)
        result = simulate_program(program)
        assert result.latency == program.schedule.latency

    def test_heterogeneous_grid_exact(self):
        model = LinkModel(LinkSpec(12.0), {(0, 1): LinkSpec(30.0),
                                           (2, 3): LinkSpec(6.0)})
        program = _compiled("grid", model)
        result = simulate_program(program)
        assert result.latency == program.schedule.latency

    @pytest.mark.parametrize("kind", SUPPORTED_TOPOLOGIES)
    def test_ideal_replay_unaffected_by_capacity_and_loss(self, kind):
        """Capacities and per-link p_epr must not leak into validation."""
        graph = topology_graph(kind, NUM_NODES)
        link = tuple(sorted(next(iter(graph.edges))))
        model = LinkModel(
            LinkSpec(12.0),
            {link: LinkSpec(36.0, capacity=1, p_epr=0.5)})
        program = _compiled(kind, model)
        report = validate_schedule(program)
        assert report.matches, report.describe()


class TestPerLinkStochastics:
    def test_per_link_attempts_scale_with_route_length(self):
        """Every physical link runs its own attempt process."""
        model = LinkModel(LinkSpec(12.0), {(1, 2): LinkSpec(24.0)})
        program = _compiled("line", model)
        deterministic = simulate_program(program)
        stochastic = simulate_program(
            program, SimulationConfig(p_epr=0.999999, seed=1))
        # With p ~ 1 almost every attempt succeeds: the attempt count then
        # equals the number of physical link generations, which exceeds the
        # end-to-end pair count whenever a route has more than one hop.
        assert stochastic.total_epr_attempts >= deterministic.total_epr_pairs

    def test_link_p_epr_slows_execution(self):
        base = LinkModel(LinkSpec(12.0), {(1, 2): LinkSpec(24.0)})
        lossy = LinkModel(LinkSpec(12.0),
                          {(1, 2): LinkSpec(24.0, p_epr=0.25)})
        clean_program = _compiled("line", base)
        lossy_program = _compiled("line", lossy)
        config = SimulationConfig(seed=11, trials=10, record_trace=False)
        clean = run_monte_carlo(clean_program, config)
        noisy = run_monte_carlo(lossy_program, config)
        assert (sum(noisy.latencies) / len(noisy.latencies)
                > sum(clean.latencies) / len(clean.latencies))
        assert sum(noisy.epr_attempts) > sum(clean.epr_attempts)

    def test_capacity_conflict_rejected(self):
        model = LinkModel.uniform_model(12.0, capacity=2)
        program = _compiled("line", model)
        with pytest.raises(ValueError, match="ambiguous link capacities"):
            simulate_program(program, SimulationConfig(link_capacity=1))

    def test_per_link_capacity_serialises_generations(self):
        """A capacity-1 link stretches ops that revisit it; unlimited
        links elsewhere stay untouched."""
        unlimited = LinkModel(LinkSpec(12.0), {(1, 2): LinkSpec(13.0)})
        capped = LinkModel(LinkSpec(12.0),
                           {(1, 2): LinkSpec(13.0, capacity=1)})
        free_run = simulate_program(_compiled("line", unlimited))
        capped_run = simulate_program(_compiled("line", capped))
        assert capped_run.latency >= free_run.latency
