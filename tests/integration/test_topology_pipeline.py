"""Topology-aware pipeline integration tests.

Three guarantees anchor the entanglement-routing layer:

* **All-to-all equivalence** — compiling on a routed all-to-all network is
  byte-identical to compiling on an unrouted network (mapping, schemes,
  metrics, every scheduled op), so the paper's results are untouched.
* **Deterministic replay** — for every supported topology and both
  scheduling strategies, the discrete-event simulator at ``p_epr = 1.0``
  reproduces the analytical topology-aware schedule latency exactly.
* **Physical-pair accounting** — routed ``total_epr_pairs`` is never below
  the logical ``total_comm`` and equals it exactly on all-to-all.
"""

import pytest

from repro.circuits import bv_circuit, qaoa_maxcut_circuit, qft_circuit
from repro.core import AutoCommConfig, compile_autocomm
from repro.hardware import (
    SUPPORTED_TOPOLOGIES,
    apply_topology,
    uniform_network,
)
from repro.partition import oee_partition
from repro.sim import simulate_program, validate_schedule

CIRCUITS = [
    pytest.param(lambda: qft_circuit(16), id="qft16"),
    pytest.param(lambda: bv_circuit(16), id="bv16"),
    pytest.param(lambda: qaoa_maxcut_circuit(16, layers=1, degree=3),
                 id="qaoa16"),
]


def _ops_signature(schedule):
    return [(op.index, op.kind, op.start, op.end, op.nodes, op.num_items)
            for op in schedule.ops]


class TestAllToAllEquivalence:
    @pytest.mark.parametrize("builder", CIRCUITS)
    def test_routed_all_to_all_is_byte_identical(self, builder):
        circuit = builder()
        unrouted = compile_autocomm(circuit, uniform_network(4, 4))
        routed = compile_autocomm(
            circuit, apply_topology(uniform_network(4, 4), "all-to-all"))
        assert routed.mapping.as_dict() == unrouted.mapping.as_dict()
        assert [b.scheme for b in routed.blocks] \
            == [b.scheme for b in unrouted.blocks]
        assert routed.metrics.as_dict() == unrouted.metrics.as_dict()
        assert routed.schedule.latency == unrouted.schedule.latency
        assert routed.schedule.mode == unrouted.schedule.mode
        assert _ops_signature(routed.schedule) \
            == _ops_signature(unrouted.schedule)

    def test_all_to_all_epr_pairs_equal_comm(self):
        program = compile_autocomm(
            qft_circuit(16), apply_topology(uniform_network(4, 4),
                                            "all-to-all"))
        assert program.metrics.total_epr_pairs == program.metrics.total_comm

    def test_routed_assignment_matches_counting_rule(self):
        """choose_scheme_routed coincides with the paper's counting rule.

        Both schemes ride the same hub<->remote pair, so the per-pair EPR
        latency scales both estimates identically; with the Table 1 latency
        structure the decision is provably latency-independent.
        """
        from repro.core import aggregate_communications, assign_communications
        from repro.ir import decompose_to_cx

        circuit = decompose_to_cx(qft_circuit(16))
        for kind in SUPPORTED_TOPOLOGIES:
            network = apply_topology(uniform_network(4, 4), kind,
                                     swap_overhead=2.0)
            mapping = oee_partition(circuit, network).mapping
            routed = assign_communications(
                aggregate_communications(circuit, mapping), network=network)
            counted = assign_communications(
                aggregate_communications(circuit, mapping))
            assert [b.scheme for b in routed.blocks] \
                == [b.scheme for b in counted.blocks], kind


class TestDeterministicReplayAcrossTopologies:
    @pytest.mark.parametrize("kind", SUPPORTED_TOPOLOGIES)
    @pytest.mark.parametrize("strategy", ["burst-greedy", "greedy"])
    @pytest.mark.parametrize("builder", CIRCUITS)
    def test_replay_matches_analytical(self, kind, strategy, builder):
        network = apply_topology(uniform_network(4, 4), kind)
        config = AutoCommConfig(schedule_strategy=strategy)
        program = compile_autocomm(builder(), network, config=config)
        report = validate_schedule(program)
        assert report.matches, report.describe()
        # Exact equality, not approximate: the engine replays the same
        # plan and books the same windows the analytical scheduler did.
        assert report.simulated_latency == report.analytical_latency

    @pytest.mark.parametrize("kind", SUPPORTED_TOPOLOGIES)
    def test_stochastic_never_beats_deterministic(self, kind):
        from repro.sim import SimulationConfig, run_monte_carlo

        network = apply_topology(uniform_network(4, 4), kind)
        program = compile_autocomm(qft_circuit(16), network)
        mc = run_monte_carlo(program, SimulationConfig(p_epr=0.6, trials=5,
                                                       seed=7))
        for latency in mc.latencies:
            assert latency >= program.schedule.latency - 1e-9


class TestLineTopologyAcceptance:
    """The ISSUE's acceptance scenario: 4 nodes on a line."""

    @pytest.fixture(scope="class")
    def line_program(self):
        network = apply_topology(uniform_network(4, 4), "line")
        return compile_autocomm(qft_circuit(16), network)

    def test_replay_reproduces_routed_latency_exactly(self, line_program):
        result = simulate_program(line_program)
        assert result.latency == line_program.schedule.latency

    def test_swap_inclusive_pairs_exceed_logical_comm(self, line_program):
        metrics = line_program.metrics
        assert metrics.total_epr_pairs > metrics.total_comm

    def test_line_costs_at_least_all_to_all(self, line_program):
        base = compile_autocomm(qft_circuit(16), uniform_network(4, 4),
                                mapping=line_program.mapping)
        assert line_program.metrics.latency >= base.metrics.latency
        assert line_program.metrics.total_epr_pairs \
            >= base.metrics.total_epr_pairs


class TestTopologyAwarePartitioning:
    def test_all_to_all_routing_preserves_mapping(self):
        from repro.ir import decompose_to_cx

        circuit = decompose_to_cx(qft_circuit(16))
        unrouted = oee_partition(circuit, uniform_network(4, 4))
        routed = oee_partition(
            circuit, apply_topology(uniform_network(4, 4), "all-to-all"))
        assert routed.mapping.as_dict() == unrouted.mapping.as_dict()
        assert routed.final_cut == unrouted.final_cut

    def test_line_partition_weights_cut_by_hops(self):
        from repro.ir import decompose_to_cx
        from repro.partition.interaction_graph import (cut_weight,
                                                       interaction_graph)

        circuit = decompose_to_cx(qft_circuit(16))
        network = apply_topology(uniform_network(4, 4), "line")
        result = oee_partition(circuit, network)
        graph = interaction_graph(circuit)
        distances = network.routing.hop_matrix()
        assert result.final_cut == pytest.approx(cut_weight(
            graph, result.mapping.as_dict(), node_distances=distances))

    def test_opt_out_restores_unweighted_objective(self):
        from repro.ir import decompose_to_cx

        circuit = decompose_to_cx(qft_circuit(16))
        line = apply_topology(uniform_network(4, 4), "line")
        plain = oee_partition(circuit, uniform_network(4, 4))
        opted_out = oee_partition(circuit, line, use_link_distances=False)
        assert opted_out.mapping.as_dict() == plain.mapping.as_dict()

    def test_distance_weighting_requires_routing(self):
        from repro.ir import decompose_to_cx

        circuit = decompose_to_cx(qft_circuit(8))
        with pytest.raises(ValueError):
            oee_partition(circuit, uniform_network(4, 2),
                          use_link_distances=True)

    def test_hop_weighted_partition_not_worse_on_line(self):
        """Hop-weighted OEE yields a hop-weighted cut no worse than the
        mapping produced by hop-blind OEE from the same start."""
        from repro.ir import decompose_to_cx
        from repro.partition.interaction_graph import (cut_weight,
                                                       interaction_graph)

        circuit = decompose_to_cx(qft_circuit(16))
        line = apply_topology(uniform_network(4, 4), "line")
        graph = interaction_graph(circuit)
        distances = line.routing.hop_matrix()
        aware = oee_partition(circuit, line)
        blind = oee_partition(circuit, line, use_link_distances=False)
        aware_cut = cut_weight(graph, aware.mapping.as_dict(),
                               node_distances=distances)
        blind_cut = cut_weight(graph, blind.mapping.as_dict(),
                               node_distances=distances)
        assert aware_cut <= blind_cut + 1e-9
