"""Phase-structured compilation equivalence and replay guarantees.

Three acceptance-level invariants of dynamic inter-phase remapping:

* **Never-remap equivalence** — compiling with an explicit
  ``AutoCommConfig(remap="never")`` is byte-identical to the default
  pipeline on every supported topology: same mapping, same schemes, same
  metrics, same schedule ops, same deterministic replay and same stochastic
  Monte-Carlo stream.
* **Bursts-remap replay exactness** — with ``remap="bursts"`` the
  discrete-event replay at ``p_epr = 1.0`` reproduces the analytical
  schedule latency *exactly*, op for op, on every supported topology
  (migration teleports included).
* **Remap pays off** — on the committed phase-shifted workload, dynamic
  remapping strictly lowers both ``total_epr_latency`` and the scheduled
  program latency versus the static mapping.
"""

import importlib.util
from pathlib import Path

import pytest

from repro.circuits import qft_circuit
from repro.core import AutoCommConfig, compile_autocomm
from repro.hardware import SUPPORTED_TOPOLOGIES, apply_topology, uniform_network
from repro.sim import (SimulationConfig, run_monte_carlo, simulate_program,
                       validate_schedule)

NUM_NODES = 4
QUBITS_PER_NODE = 3

# The committed "remap pays off" scenario lives in the worked example; the
# test imports the builder so the two can never drift apart.
_EXAMPLE_PATH = (Path(__file__).resolve().parents[2] / "examples"
                 / "dynamic_remapping_study.py")
_spec = importlib.util.spec_from_file_location("dynamic_remapping_study",
                                               _EXAMPLE_PATH)
_example = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_example)
phase_shift_circuit = _example.phase_shift_circuit


def _compiled(kind, config=None):
    network = uniform_network(NUM_NODES, QUBITS_PER_NODE)
    apply_topology(network, kind)
    return compile_autocomm(qft_circuit(NUM_NODES * QUBITS_PER_NODE), network,
                            config=config)


class TestRemapNeverEquivalence:
    @pytest.mark.parametrize("kind", SUPPORTED_TOPOLOGIES)
    def test_compile_byte_identical(self, kind):
        plain = _compiled(kind)
        explicit = _compiled(kind, AutoCommConfig(remap="never"))
        assert explicit.mapping.as_dict() == plain.mapping.as_dict()
        assert ([b.scheme for b in explicit.blocks]
                == [b.scheme for b in plain.blocks])
        assert explicit.metrics.as_dict() == plain.metrics.as_dict()
        assert ([(op.kind, op.start, op.end) for op in explicit.schedule.ops]
                == [(op.kind, op.start, op.end) for op in plain.schedule.ops])
        assert explicit.phases is None
        assert explicit.remap == "never"
        assert explicit.metrics.num_phases == 1
        assert explicit.metrics.migration_moves == 0

    @pytest.mark.parametrize("kind", SUPPORTED_TOPOLOGIES)
    def test_deterministic_replay_byte_identical(self, kind):
        plain = simulate_program(_compiled(kind))
        explicit = simulate_program(_compiled(kind, AutoCommConfig(remap="never")))
        assert explicit.latency == plain.latency
        assert ([(op.kind, op.prep_start, op.start, op.end, op.epr_pairs)
                 for op in explicit.ops]
                == [(op.kind, op.prep_start, op.start, op.end, op.epr_pairs)
                    for op in plain.ops])

    @pytest.mark.parametrize("kind", SUPPORTED_TOPOLOGIES)
    def test_stochastic_stream_byte_identical(self, kind):
        config = SimulationConfig(p_epr=0.6, seed=123, trials=4,
                                  record_trace=False)
        plain = run_monte_carlo(_compiled(kind), config)
        explicit = run_monte_carlo(_compiled(kind, AutoCommConfig(remap="never")),
                                   config)
        assert explicit.latencies == plain.latencies
        assert explicit.epr_attempts == plain.epr_attempts


class TestRemapBurstsReplayExactness:
    @pytest.mark.parametrize("kind", SUPPORTED_TOPOLOGIES)
    def test_deterministic_replay_matches_analytical(self, kind):
        program = _compiled(kind, AutoCommConfig(remap="bursts",
                                                 phase_blocks=3))
        assert program.metrics.num_phases > 1
        report = validate_schedule(program)
        assert report.matches, report.describe()
        assert report.latency_delta == 0.0
        assert report.max_op_end_delta == 0.0

    @pytest.mark.parametrize("kind", ("line", "grid"))
    def test_monte_carlo_reproducible(self, kind):
        program = _compiled(kind, AutoCommConfig(remap="bursts",
                                                 phase_blocks=3))
        config = SimulationConfig(p_epr=0.7, seed=7, trials=3,
                                  record_trace=False)
        first = run_monte_carlo(program, config)
        second = run_monte_carlo(program, config)
        assert first.latencies == second.latencies
        assert first.epr_attempts == second.epr_attempts

    def test_migration_ops_executed_as_teleports(self):
        """Replayed executions generate the migrations' extra EPR pairs."""
        program = _compiled("line", AutoCommConfig(remap="bursts",
                                                   phase_blocks=3))
        assert program.metrics.migration_moves > 0
        result = simulate_program(program)
        migration_ops = [op for op in result.ops if op.kind == "migration"]
        assert len(migration_ops) == program.metrics.migration_moves
        assert all(op.epr_pairs >= 1 for op in migration_ops)


class TestRemapPaysOff:
    def test_remap_strictly_lowers_epr_latency_and_latency(self):
        circuit = phase_shift_circuit()
        static_net = uniform_network(4, 2)
        apply_topology(static_net, "line")
        static = compile_autocomm(circuit, static_net)

        remap_net = uniform_network(4, 2)
        apply_topology(remap_net, "line")
        remapped = compile_autocomm(
            circuit, remap_net,
            config=AutoCommConfig(remap="bursts", phase_blocks=4))

        assert remapped.metrics.migration_moves > 0
        assert remapped.metrics.num_phases > 1
        assert (remapped.metrics.total_epr_latency
                < static.metrics.total_epr_latency)
        assert remapped.metrics.latency < static.metrics.latency
        report = validate_schedule(remapped)
        assert report.matches, report.describe()

    def test_phases_cover_every_gate(self):
        circuit = phase_shift_circuit()
        network = uniform_network(4, 2)
        apply_topology(network, "line")
        program = compile_autocomm(
            circuit, network,
            config=AutoCommConfig(remap="bursts", phase_blocks=4))
        phase_gates = sum(len(phase.aggregation.circuit)
                          for phase in program.phases)
        assert phase_gates == len(program.circuit)

    def test_migrations_match_mapping_deltas(self):
        circuit = phase_shift_circuit()
        network = uniform_network(4, 2)
        apply_topology(network, "line")
        program = compile_autocomm(
            circuit, network,
            config=AutoCommConfig(remap="bursts", phase_blocks=4))
        for boundary, moves in enumerate(program.migrations):
            before = program.phases[boundary].mapping
            after = program.phases[boundary + 1].mapping
            expected = {q for q in range(circuit.num_qubits)
                        if before.node_of(q) != after.node_of(q)}
            assert {m.qubit for m in moves} == expected
            for move in moves:
                assert move.source == before.node_of(move.qubit)
                assert move.target == after.node_of(move.qubit)


class TestZeroBubbleBoundaries:
    """Overlapped boundaries beat the barrier on the committed scenario."""

    def _compile(self, overlap):
        circuit = phase_shift_circuit()
        network = uniform_network(4, 2)
        apply_topology(network, "line")
        return compile_autocomm(
            circuit, network,
            config=AutoCommConfig(remap="bursts", phase_blocks=4,
                                  overlap=overlap))

    def test_overlap_strictly_reduces_latency(self):
        barrier = self._compile(overlap=False)
        overlapped = self._compile(overlap=True)
        assert barrier.metrics.latency == pytest.approx(170.9, abs=0.1)
        assert overlapped.metrics.latency < barrier.metrics.latency
        assert (overlapped.metrics.boundary_bubble
                < barrier.metrics.boundary_bubble)
        assert overlapped.schedule.overlap

    def test_overlap_replay_is_exact(self):
        overlapped = self._compile(overlap=True)
        report = validate_schedule(overlapped)
        assert report.matches, report.describe()
        replay = simulate_program(overlapped, SimulationConfig())
        assert replay.latency == pytest.approx(overlapped.metrics.latency,
                                               abs=1e-9)

    def test_overlap_monte_carlo_never_slower_mean(self):
        barrier = self._compile(overlap=False)
        overlapped = self._compile(overlap=True)
        config = SimulationConfig(p_epr=1.0, seed=7, trials=3,
                                  record_trace=False)
        barrier_mc = run_monte_carlo(barrier, config).summary()
        overlap_mc = run_monte_carlo(overlapped, config).summary()
        assert overlap_mc["mean"] <= barrier_mc["mean"] + 1e-9
