"""End-to-end integration tests across the whole compilation stack."""

import pytest

from repro import (
    AutoCommConfig,
    compile_autocomm,
    compile_gp_tp,
    compile_sparse,
    comparison_factors,
)
from repro.analysis import geometric_mean
from repro.baselines import compile_cat_only, compile_no_commute, compile_plain_schedule
from repro.circuits import build_benchmark, scaled_configurations
from repro.hardware import uniform_network
from repro.ir import decompose_to_cx
from repro.partition import oee_partition


ALL_COMPILERS = {
    "autocomm": compile_autocomm,
    "sparse": compile_sparse,
    "gp-tp": compile_gp_tp,
    "cat-only": compile_cat_only,
    "no-commute": compile_no_commute,
    "plain-schedule": compile_plain_schedule,
}


@pytest.mark.parametrize("family", ["MCTR", "RCA", "QFT", "BV", "QAOA"])
def test_full_pipeline_on_every_family(family):
    """Every compiler runs end to end on every benchmark family."""
    circuit, network = build_benchmark(family, 12, 3)
    mapping = oee_partition(decompose_to_cx(circuit), network).mapping
    results = {}
    for name, compiler in ALL_COMPILERS.items():
        program = compiler(circuit, network, mapping=mapping)
        results[name] = program
        assert program.metrics.latency > 0
        assert program.metrics.total_comm >= 0
    # AutoComm never issues more communications than any baseline/ablation.
    autocomm = results["autocomm"].metrics.total_comm
    for name in ("sparse", "gp-tp", "cat-only", "no-commute"):
        assert autocomm <= results[name].metrics.total_comm


def test_uccsd_full_pipeline():
    circuit, network = build_benchmark("UCCSD", 8, 4)
    autocomm = compile_autocomm(circuit, network)
    sparse = compile_sparse(circuit, network)
    factors = comparison_factors(sparse.metrics, autocomm.metrics)
    assert factors["improv_factor"] >= 1.0
    assert factors["lat_dec_factor"] >= 1.0


def test_paper_headline_ordering_of_benchmarks():
    """QFT and BV benefit the most from AutoComm; UCCSD the least (Table 3)."""
    improvements = {}
    for family in ("QFT", "BV", "QAOA"):
        circuit, network = build_benchmark(family, 20, 2)
        mapping = oee_partition(decompose_to_cx(circuit), network).mapping
        autocomm = compile_autocomm(circuit, network, mapping=mapping)
        sparse = compile_sparse(circuit, network, mapping=mapping)
        improvements[family] = (sparse.metrics.total_comm
                                / max(1, autocomm.metrics.total_comm))
    assert improvements["QFT"] > improvements["QAOA"]
    assert improvements["BV"] > improvements["QAOA"]


def test_average_improvement_factor_is_substantial():
    """Across the scaled suite AutoComm reduces communications by >= 2x on
    average (the paper reports 4.1x on the full-size suite)."""
    factors = []
    for spec in scaled_configurations("small"):
        if spec.family in ("UCCSD",):
            continue
        circuit, network = spec.build()
        mapping = oee_partition(decompose_to_cx(circuit), network).mapping
        autocomm = compile_autocomm(circuit, network, mapping=mapping)
        sparse = compile_sparse(circuit, network, mapping=mapping)
        factors.append(sparse.metrics.total_comm / max(1, autocomm.metrics.total_comm))
    assert geometric_mean(factors) >= 2.0


def test_mapping_consistency_across_compilers():
    """With a shared mapping every compiler sees the same remote gate count."""
    circuit, network = build_benchmark("QAOA", 16, 4)
    mapping = oee_partition(decompose_to_cx(circuit), network).mapping
    counts = set()
    for compiler in (compile_autocomm, compile_sparse, compile_gp_tp):
        program = compiler(circuit, network, mapping=mapping)
        counts.add(program.metrics.num_remote_gates)
    assert len(counts) == 1


def test_more_comm_qubits_never_hurt_latency():
    """Scheduling with four comm qubits per node is at least as fast as two."""
    circuit, _ = build_benchmark("QFT", 16, 4)
    tight = uniform_network(4, 4, comm_qubits_per_node=2)
    roomy = uniform_network(4, 4, comm_qubits_per_node=4)
    mapping = oee_partition(decompose_to_cx(circuit), tight).mapping
    lat_tight = compile_autocomm(circuit, tight, mapping=mapping).metrics.latency
    lat_roomy = compile_autocomm(circuit, roomy, mapping=mapping).metrics.latency
    assert lat_roomy <= lat_tight + 1e-9


def test_config_combinations_all_run():
    circuit, network = build_benchmark("RCA", 12, 3)
    for use_commutation in (True, False):
        for cat_only in (True, False):
            for strategy in ("burst-greedy", "greedy"):
                config = AutoCommConfig(use_commutation=use_commutation,
                                        cat_only=cat_only,
                                        schedule_strategy=strategy)
                program = compile_autocomm(circuit, network, config=config)
                assert program.metrics.total_comm >= 0
