"""Tracing and metrics are observation-only.

The structured-observability guard: compiling with span tracing disabled
and simulating with the metrics registry (and trace recorder) disabled
must produce byte-identical results to the default-on configuration —
same mapping, schemes, metrics, schedule ops, deterministic replay and
stochastic Monte-Carlo streams.  Instrumentation may record, never steer.
"""

import pytest

from repro.circuits import qft_circuit
from repro.core import AutoCommConfig, compile_autocomm
from repro.hardware import apply_topology, uniform_network
from repro.obs import set_tracing
from repro.sim import SimulationConfig, run_monte_carlo, simulate_program

NUM_NODES = 4
QUBITS_PER_NODE = 3


@pytest.fixture(params=["never", "bursts"])
def remap(request):
    return request.param


def _compiled(remap):
    network = uniform_network(NUM_NODES, QUBITS_PER_NODE)
    apply_topology(network, "line")
    config = AutoCommConfig(remap=remap, phase_blocks=3)
    return compile_autocomm(qft_circuit(NUM_NODES * QUBITS_PER_NODE), network,
                            config=config)


def _compiled_untraced(remap):
    previous = set_tracing(False)
    try:
        return _compiled(remap)
    finally:
        set_tracing(previous)


class TestCompileEquivalence:
    def test_output_byte_identical_with_tracing_off(self, remap):
        traced = _compiled(remap)
        untraced = _compiled_untraced(remap)

        assert traced.spans is not None
        assert untraced.spans is None

        assert untraced.mapping.as_dict() == traced.mapping.as_dict()
        assert ([b.scheme for b in untraced.blocks]
                == [b.scheme for b in traced.blocks])
        assert untraced.metrics.as_dict() == traced.metrics.as_dict()
        assert ([(op.kind, op.start, op.end) for op in untraced.schedule.ops]
                == [(op.kind, op.start, op.end) for op in traced.schedule.ops])

    def test_span_tree_covers_the_pipeline(self, remap):
        spans = _compiled(remap).spans
        stages = {span.name for span in spans.walk()}
        if remap == "bursts":
            assert "migration-planning" in stages
            assert any(name.startswith("phase-") for name in stages)
        else:
            for expected in ("decompose", "oee-partition", "aggregation",
                             "assignment", "scheduling"):
                assert expected in stages, stages

    def test_stage_durations_sum_within_root(self, remap):
        root = _compiled(remap).spans
        child_total = sum(child.duration for child in root.children)
        assert child_total <= root.duration + 1e-9


class TestSimulationEquivalence:
    def test_deterministic_replay_identical_without_metrics(self, remap):
        program = _compiled(remap)
        on = simulate_program(program, SimulationConfig(p_epr=1.0, seed=0))
        off = simulate_program(program, SimulationConfig(
            p_epr=1.0, seed=0, record_metrics=False, record_trace=False))

        assert on.metrics is not None and len(on.metrics) > 0
        assert len(off.metrics) == 0
        assert off.latency == on.latency
        assert ([(op.kind, op.start, op.end) for op in off.ops]
                == [(op.kind, op.start, op.end) for op in on.ops])

    def test_monte_carlo_streams_bit_identical(self, remap):
        program = _compiled(remap)
        on = run_monte_carlo(program, SimulationConfig(
            p_epr=0.5, seed=7, trials=6))
        off = run_monte_carlo(program, SimulationConfig(
            p_epr=0.5, seed=7, trials=6, record_metrics=False,
            record_trace=False))

        assert off.latencies == on.latencies
        assert off.epr_attempts == on.epr_attempts
        assert off.trial_seeds == on.trial_seeds
        assert len(off.metrics) == 0

    def test_monte_carlo_metrics_aggregate_across_trials(self, remap):
        program = _compiled(remap)
        result = run_monte_carlo(program, SimulationConfig(
            p_epr=0.5, seed=7, trials=6))
        metrics = result.metrics
        assert metrics.counter_values().get("sim.trials") == 6
        assert metrics.histogram("sim.latency").count == 6
        # EPR bookkeeping is consistent with the per-trial stream.
        assert (metrics.counter("epr.attempts").value
                == sum(result.epr_attempts))
