"""Unit tests for the discrete-event execution engine."""

import pytest

from repro import compile_autocomm
from repro.circuits import qft_circuit
from repro.hardware import DEFAULT_LATENCY, uniform_network
from repro.ir import Circuit, decompose_to_cx
from repro.partition import QubitMapping
from repro.sim import (
    MonteCarloResult,
    SimulationConfig,
    run_monte_carlo,
    simulate_program,
)


def block_mapping_for(num_qubits, num_nodes):
    per = -(-num_qubits // num_nodes)
    return QubitMapping({q: q // per for q in range(num_qubits)})


@pytest.fixture
def qft_program():
    network = uniform_network(2, 4)
    return compile_autocomm(qft_circuit(8), network)


class TestDeterministicExecution:
    def test_empty_program(self):
        network = uniform_network(2, 2)
        program = compile_autocomm(Circuit(4), network,
                                   mapping=block_mapping_for(4, 2))
        result = simulate_program(program)
        assert result.latency == 0.0
        assert result.ops == []

    def test_single_remote_gate_latency(self):
        network = uniform_network(2, 2)
        program = compile_autocomm(Circuit(4).cx(0, 2), network,
                                   mapping=block_mapping_for(4, 2))
        result = simulate_program(program)
        expected = DEFAULT_LATENCY.t_epr + DEFAULT_LATENCY.cat_comm_latency(1)
        assert result.latency == pytest.approx(expected)
        (op,) = result.comm_ops()
        assert op.prep_start == 0.0
        assert op.start == pytest.approx(DEFAULT_LATENCY.t_epr)

    def test_matches_analytical_latency(self, qft_program):
        result = simulate_program(qft_program)
        assert result.latency == pytest.approx(qft_program.schedule.latency)
        assert result.mode == qft_program.schedule.mode

    def test_all_items_covered(self, qft_program):
        result = simulate_program(qft_program)
        assert result.num_scheduled_items() \
            == len(qft_program.assignment.items)

    def test_comm_qubit_capacity_respected(self):
        network = uniform_network(3, 4)
        program = compile_autocomm(decompose_to_cx(qft_circuit(12)), network,
                                   mapping=block_mapping_for(12, 3))
        result = simulate_program(program)
        comm = result.comm_ops()
        for t in [i * result.latency / 200 for i in range(200)]:
            per_node = {n: 0 for n in range(3)}
            for op in comm:
                if op.prep_start <= t < op.end:
                    for node in op.nodes:
                        per_node[node] += 1
            assert all(count <= 2 for count in per_node.values())

    def test_node_utilisation_bounded(self, qft_program):
        result = simulate_program(qft_program)
        for value in result.node_utilisation().values():
            assert 0.0 <= value <= 1.0

    @pytest.mark.no_autoverify  # deliberately corrupts the shared program
    def test_assignment_required(self, qft_program):
        qft_program.assignment = None
        with pytest.raises(ValueError):
            simulate_program(qft_program)


class TestTrace:
    def test_comm_ops_traced(self, qft_program):
        result = simulate_program(qft_program)
        starts = result.trace.events_of("op-start")
        assert len(starts) == len(result.comm_ops())
        assert result.trace.events_of("epr-start")
        # Every protocol emits at least one classical message or teleport.
        assert (result.trace.events_of("classical-msg")
                or result.trace.events_of("teleport"))

    def test_trace_timeline_sorted(self, qft_program):
        result = simulate_program(qft_program)
        times = [event.time for event in result.trace.timeline()]
        assert times == sorted(times)

    def test_trace_can_be_disabled(self, qft_program):
        result = simulate_program(qft_program,
                                  SimulationConfig(record_trace=False))
        assert result.trace.num_events() == 0
        assert result.latency > 0

    def test_link_utilisation_recorded(self, qft_program):
        result = simulate_program(qft_program)
        utilisation = result.link_utilisation()
        assert (0, 1) in utilisation
        assert 0.0 < utilisation[(0, 1)] <= 1.0


class TestStochasticExecution:
    def test_latency_never_below_deterministic(self, qft_program):
        deterministic = simulate_program(qft_program)
        for seed in range(5):
            noisy = simulate_program(
                qft_program, SimulationConfig(p_epr=0.5, seed=seed))
            assert noisy.latency >= deterministic.latency - 1e-9

    def test_same_seed_same_execution(self, qft_program):
        config = SimulationConfig(p_epr=0.4, seed=99)
        a = simulate_program(qft_program, config)
        b = simulate_program(qft_program, config)
        assert a.latency == b.latency
        assert a.ops == b.ops

    def test_different_seeds_differ(self, qft_program):
        latencies = {simulate_program(
            qft_program, SimulationConfig(p_epr=0.3, seed=seed)).latency
            for seed in range(8)}
        assert len(latencies) > 1

    def test_epr_attempts_accumulate(self, qft_program):
        noisy = simulate_program(qft_program,
                                 SimulationConfig(p_epr=0.3, seed=1))
        assert noisy.total_epr_attempts > len(noisy.comm_ops())


class TestLinkContention:
    def test_capacity_one_serialises_parallel_preps(self):
        network = uniform_network(2, 4)
        circuit = Circuit(8).cx(0, 4).cx(1, 5)
        mapping = QubitMapping({q: q // 4 for q in range(8)})
        program = compile_autocomm(circuit, network, mapping=mapping)
        base = simulate_program(program)
        capped = simulate_program(program,
                                  SimulationConfig(link_capacity=1))
        assert capped.latency > base.latency
        preps = sorted((op.prep_start, op.start) for op in capped.comm_ops())
        # Second prep may only begin once the first has finished.
        assert preps[1][0] >= preps[0][1] - 1e-9


class TestMonteCarlo:
    def test_summary_and_reproducibility(self, qft_program):
        config = SimulationConfig(p_epr=0.5, trials=12, seed=21)
        first = run_monte_carlo(qft_program, config)
        second = run_monte_carlo(qft_program, config)
        assert isinstance(first, MonteCarloResult)
        assert first.latencies == second.latencies
        summary = first.summary()
        assert summary["trials"] == 12
        assert summary["min"] <= summary["p50"] <= summary["p95"] <= summary["max"]
        assert summary["analytical"] == pytest.approx(
            qft_program.schedule.latency)
        assert summary["slowdown"] >= 1.0 - 1e-9

    def test_deterministic_trials_collapse(self, qft_program):
        result = run_monte_carlo(qft_program,
                                 SimulationConfig(p_epr=1.0, trials=3, seed=0))
        assert len(set(result.latencies)) == 1
        assert result.latencies[0] == pytest.approx(
            qft_program.schedule.latency)

    def test_sample_trial_carries_trace(self, qft_program):
        result = run_monte_carlo(qft_program,
                                 SimulationConfig(p_epr=0.5, trials=4, seed=3))
        assert result.sample_trial is not None
        assert result.sample_trial.trace.num_events() > 0

    def test_invalid_trials_rejected(self, qft_program):
        with pytest.raises(ValueError):
            run_monte_carlo(qft_program,
                            SimulationConfig(trials=0))


class TestChainLinkBooking:
    """tp-chain ops book and trace only the itinerary's (routed) links."""

    @staticmethod
    def _chain_plan(remote_nodes, hub_node=0):
        from repro.comm import CommBlock, CommScheme
        from repro.core import FusedTPChain, SchedulePlan

        blocks = []
        for remote in remote_nodes:
            block = CommBlock(hub_qubit=0, hub_node=hub_node,
                              remote_node=remote)
            block.scheme = CommScheme.TP
            blocks.append(block)
        chain = FusedTPChain(blocks=blocks)
        return SchedulePlan(items=[chain], preds=[[]], num_fused_chains=1,
                            burst=True)

    def test_only_itinerary_pairs_traced(self):
        from repro.sim.engine import ExecutionEngine

        network = uniform_network(4, 2)
        plan = self._chain_plan([1, 3, 2])
        engine = ExecutionEngine(plan, network, QubitMapping({0: 0}))
        result = engine.run()
        # Itinerary 0 -> 1 -> 3 -> 2 -> 0; the unused pairs (0, 3) and
        # (1, 2) of the chain's node set must not appear in the link trace.
        assert set(result.trace.link_busy) \
            == {(0, 1), (1, 3), (2, 3), (0, 2)}
        assert result.total_epr_pairs == 4

    def test_routed_chain_traces_physical_links(self):
        from repro.hardware import apply_topology
        from repro.sim.engine import ExecutionEngine

        network = apply_topology(uniform_network(4, 2), "line")
        plan = self._chain_plan([1, 3, 2])
        engine = ExecutionEngine(plan, network, QubitMapping({0: 0}))
        result = engine.run()
        # Every itinerary hop expands to the physical links of its route;
        # on a line those are exactly the three adjacent links.
        assert set(result.trace.link_busy) == {(0, 1), (1, 2), (2, 3)}
        # 0-1 (1 hop) + 1-3 (2) + 3-2 (1) + 2-0 (2) = 6 physical pairs.
        assert result.total_epr_pairs == 6

    def test_capacity_one_serialises_shared_link_batches(self):
        from repro.hardware import apply_topology
        from repro.sim.engine import ExecutionEngine

        network = apply_topology(uniform_network(4, 2), "line")
        plan = self._chain_plan([1, 3, 2])
        mapping = QubitMapping({0: 0})
        free = ExecutionEngine(plan, network, mapping).run()
        capped = ExecutionEngine(plan, network, mapping,
                                 SimulationConfig(link_capacity=1)).run()
        # Links (0, 1) and (1, 2) each host two concurrent generations;
        # with capacity 1 they serialise into two batches.
        assert capped.latency > free.latency
        (op_free,) = free.comm_ops()
        (op_capped,) = capped.comm_ops()
        assert (op_capped.start - op_capped.prep_start) == pytest.approx(
            2 * (op_free.start - op_free.prep_start))

    def test_blockwise_op_books_route_links(self):
        from repro.hardware import apply_topology

        network = apply_topology(uniform_network(4, 3), "line")
        circuit = Circuit(12).cx(0, 11)  # node 0 <-> node 3, 3 hops
        mapping = QubitMapping({q: q // 3 for q in range(12)})
        program = compile_autocomm(circuit, network, mapping=mapping)
        result = simulate_program(program)
        assert set(result.trace.link_busy) == {(0, 1), (1, 2), (2, 3)}
        assert result.total_epr_pairs == 3
