"""Unit tests for the stochastic EPR-generation process."""

import random

import pytest

from repro.hardware import DEFAULT_LATENCY, apply_topology, uniform_network
from repro.sim import EPRProcess, EPRSample


@pytest.fixture
def network():
    return uniform_network(3, 4)


class TestValidation:
    def test_zero_probability_rejected(self, network):
        with pytest.raises(ValueError):
            EPRProcess(network, p_success=0.0)

    def test_above_one_rejected(self, network):
        with pytest.raises(ValueError):
            EPRProcess(network, p_success=1.5)

    def test_negative_retry_latency_rejected(self, network):
        with pytest.raises(ValueError):
            EPRProcess(network, p_success=0.5, retry_latency=-1.0)


class TestDeterministicMode:
    def test_single_attempt_at_p_one(self, network):
        process = EPRProcess(network, p_success=1.0)
        sample = process.sample_pair(random.Random(0), 0, 1)
        assert sample == EPRSample(attempts=1, duration=DEFAULT_LATENCY.t_epr)

    def test_no_randomness_consumed_at_p_one(self, network):
        process = EPRProcess(network, p_success=1.0)
        rng = random.Random(123)
        before = rng.getstate()
        process.sample(rng, (0, 1, 2))
        assert rng.getstate() == before

    def test_sample_equals_expected_prep_at_p_one(self, network):
        process = EPRProcess(network, p_success=1.0)
        for nodes in [(0, 1), (0, 2), (0, 1, 2)]:
            sample = process.sample(random.Random(1), nodes)
            assert sample.duration == process.expected_prep(nodes)

    def test_topology_overrides_respected(self):
        network = apply_topology(uniform_network(4, 2), "line",
                                 swap_overhead=1.0)
        process = EPRProcess(network, p_success=1.0)
        assert process.pair_latency(0, 3) == pytest.approx(
            3 * DEFAULT_LATENCY.t_epr)
        assert process.expected_prep((0, 1, 3)) == pytest.approx(
            3 * DEFAULT_LATENCY.t_epr)


class TestStochasticMode:
    def test_seeded_samples_reproducible(self, network):
        process = EPRProcess(network, p_success=0.3)
        a = [process.sample_pair(random.Random(9), 0, 1) for _ in range(5)]
        b = [process.sample_pair(random.Random(9), 0, 1) for _ in range(5)]
        assert a == b

    def test_duration_matches_attempt_count(self, network):
        process = EPRProcess(network, p_success=0.4, retry_latency=3.0)
        rng = random.Random(11)
        for _ in range(50):
            sample = process.sample_pair(rng, 0, 1)
            expected = (sample.attempts - 1) * 3.0 + DEFAULT_LATENCY.t_epr
            assert sample.duration == pytest.approx(expected)

    def test_duration_never_below_deterministic(self, network):
        process = EPRProcess(network, p_success=0.5)
        rng = random.Random(5)
        for _ in range(100):
            assert process.sample_pair(rng, 0, 1).duration \
                >= DEFAULT_LATENCY.t_epr

    def test_mean_attempts_close_to_geometric(self, network):
        process = EPRProcess(network, p_success=0.5)
        rng = random.Random(1234)
        samples = [process.sample_pair(rng, 0, 1).attempts
                   for _ in range(4000)]
        # Geometric with p=0.5 has mean 2; allow generous sampling slack.
        assert sum(samples) / len(samples) == pytest.approx(2.0, rel=0.1)

    def test_mean_generation_time_formula(self, network):
        process = EPRProcess(network, p_success=0.25, retry_latency=4.0)
        expected = DEFAULT_LATENCY.t_epr + 4.0 * 0.75 / 0.25
        assert process.mean_generation_time(0, 1) == pytest.approx(expected)

    def test_multi_node_sample_takes_slowest_pair(self, network):
        process = EPRProcess(network, p_success=0.5)
        rng = random.Random(3)
        sample = process.sample(rng, (0, 1, 2))
        # Three pairs generate concurrently; at least one attempt each.
        assert sample.attempts >= 3
        assert sample.duration >= DEFAULT_LATENCY.t_epr
