"""Process-parallel Monte-Carlo: identical output for any worker count.

Every trial's randomness comes only from its own seed (derived from the
master generator in the parent), so chunking trials across a
``ProcessPoolExecutor`` and merging the per-worker metric registries must
reproduce the sequential run exactly: latencies, attempts, trial seeds,
counters, gauges, histogram percentiles and ``top_counters`` order.
"""

import pickle
from dataclasses import replace

import pytest

from repro.circuits import qft_circuit
from repro.core import AutoCommConfig, compile_autocomm
from repro.hardware import apply_topology, uniform_network
from repro.sim import SimulationConfig, run_monte_carlo
from repro.sim.engine import _chunk_seeds, _mapping_for, _plan_for


@pytest.fixture(scope="module")
def program():
    network = uniform_network(4, 3)
    apply_topology(network, "line")
    return compile_autocomm(qft_circuit(12), network)


@pytest.fixture(scope="module")
def phased_program():
    network = uniform_network(4, 3)
    apply_topology(network, "line")
    return compile_autocomm(qft_circuit(12), network,
                            config=AutoCommConfig(remap="bursts",
                                                  phase_blocks=3))


BASE = SimulationConfig(p_epr=0.6, seed=11, trials=12)


class TestChunking:
    def test_chunks_partition_seeds_in_order(self):
        seeds = list(range(10))
        chunks = _chunk_seeds(seeds, 3)
        assert chunks == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]
        assert [s for chunk in chunks for s in chunk] == seeds

    def test_single_worker_single_chunk(self):
        assert _chunk_seeds([5, 6], 1) == [[5, 6]]


class TestParallelEquality:
    @pytest.mark.parametrize("workers", [2, 3, 5])
    def test_identical_to_sequential(self, program, workers):
        sequential = run_monte_carlo(program, BASE)
        parallel = run_monte_carlo(program, replace(BASE, workers=workers))
        assert parallel.latencies == sequential.latencies
        assert parallel.epr_attempts == sequential.epr_attempts
        assert parallel.trial_seeds == sequential.trial_seeds
        assert parallel.metrics.as_dict() == sequential.metrics.as_dict()
        assert parallel.analytical_latency == sequential.analytical_latency

    def test_phased_program_identical(self, phased_program):
        sequential = run_monte_carlo(phased_program, BASE)
        parallel = run_monte_carlo(phased_program, replace(BASE, workers=3))
        assert parallel.latencies == sequential.latencies
        assert parallel.epr_attempts == sequential.epr_attempts
        assert parallel.metrics.as_dict() == sequential.metrics.as_dict()

    def test_merged_registry_percentiles_and_top_counters(self, program):
        """Satellite: lossless merge under process-pool aggregation."""
        sequential = run_monte_carlo(program, BASE)
        parallel = run_monte_carlo(program, replace(BASE, workers=4))
        seq_reg, par_reg = sequential.metrics, parallel.metrics
        assert par_reg.counter_values() == seq_reg.counter_values()
        # Histograms merged chunk-by-chunk keep the sequential trial order,
        # so raw samples — and therefore exact percentiles — coincide.
        assert set(par_reg._histograms) == set(seq_reg._histograms)
        for key, seq_hist in seq_reg._histograms.items():
            par_hist = par_reg._histograms[key]
            assert par_hist.values == seq_hist.values
            for q in (0, 25, 50, 90, 95, 99, 100):
                assert par_hist.percentile(q) == seq_hist.percentile(q)
        for prefix in ("link.", "comm.", "sim."):
            assert (par_reg.top_counters(prefix, n=10)
                    == seq_reg.top_counters(prefix, n=10))

    def test_sample_trial_points_at_merged_registry(self, program):
        parallel = run_monte_carlo(program, replace(BASE, workers=3))
        assert parallel.sample_trial is not None
        assert parallel.sample_trial.metrics is parallel.metrics
        # The first trial carries the run's trace, as in the sequential path.
        assert len(parallel.sample_trial.trace.events) > 0

    def test_metrics_disabled_still_identical(self, program):
        config = replace(BASE, record_metrics=False)
        sequential = run_monte_carlo(program, config)
        parallel = run_monte_carlo(program, replace(config, workers=2))
        assert parallel.latencies == sequential.latencies
        assert len(parallel.metrics) == 0

    def test_more_workers_than_trials(self, program):
        config = replace(BASE, trials=3, workers=16)
        sequential = run_monte_carlo(program, replace(BASE, trials=3))
        parallel = run_monte_carlo(program, config)
        assert parallel.latencies == sequential.latencies
        assert parallel.config.workers == 16

    def test_result_config_keeps_master_seed(self, program):
        parallel = run_monte_carlo(program, replace(BASE, workers=2))
        assert parallel.config.seed == BASE.seed
        assert parallel.trial_seeds != [BASE.seed] * BASE.trials
        assert parallel.sample_trial.seed == parallel.trial_seeds[0]

    def test_workers_validation(self, program):
        with pytest.raises(ValueError, match="workers"):
            run_monte_carlo(program, replace(BASE, workers=0))


class TestPlanPickling:
    def test_schedule_plan_drops_lazy_caches(self, program):
        plan = _plan_for(program)
        mapping = _mapping_for(program)
        plan.successors()
        plan.op_profiles(mapping, program.network.latency)
        assert plan._succs is not None and plan._profiles is not None
        restored = pickle.loads(pickle.dumps(plan))
        assert restored._succs is None and restored._profiles is None
        assert len(restored.items) == len(plan.items)
        assert restored.preds == plan.preds
        assert restored.successors() == plan.successors()

    def test_unpickled_program_simulates_identically(self, phased_program):
        restored = pickle.loads(pickle.dumps(phased_program))
        original = run_monte_carlo(phased_program, BASE)
        roundtrip = run_monte_carlo(restored, BASE)
        assert roundtrip.latencies == original.latencies
        assert roundtrip.epr_attempts == original.epr_attempts
        assert roundtrip.metrics.as_dict() == original.metrics.as_dict()
