"""Cross-checks: deterministic execution must reproduce analytical schedules.

This is the load-bearing guarantee of the simulation subsystem — for every
benchmark family and every compiler, replaying the compiled program through
the discrete-event engine with ``p_epr = 1.0`` yields exactly the latency
the analytical scheduler reported.
"""

import pytest

from repro import compile_autocomm
from repro.circuits import BENCHMARK_FAMILIES, build_benchmark
from repro.cli import COMPILERS
from repro.core import AutoCommConfig
from repro.hardware import uniform_network
from repro.ir import Circuit
from repro.sim import validate_schedule

# Small instances: (qubits, nodes) per family, seconds for the whole module.
FAMILY_SIZES = {
    "MCTR": (20, 2),
    "RCA": (20, 2),
    "QFT": (16, 2),
    "BV": (20, 2),
    "QAOA": (16, 2),
    "UCCSD": (6, 3),
}


class TestEveryBenchmarkFamily:
    @pytest.mark.parametrize("family", sorted(BENCHMARK_FAMILIES))
    def test_deterministic_simulation_matches_analytical(self, family):
        num_qubits, num_nodes = FAMILY_SIZES[family]
        circuit, network = build_benchmark(family, num_qubits, num_nodes)
        program = compile_autocomm(circuit, network)
        report = validate_schedule(program)
        assert report.matches, report.describe()
        assert report.max_op_end_delta == 0.0

    @pytest.mark.parametrize("family", sorted(BENCHMARK_FAMILIES))
    def test_three_node_machines_also_match(self, family):
        num_qubits, _ = FAMILY_SIZES[family]
        circuit, network = build_benchmark(family, num_qubits, 3)
        program = compile_autocomm(circuit, network)
        report = validate_schedule(program)
        assert report.matches, report.describe()


class TestEveryCompiler:
    @pytest.mark.parametrize("compiler", sorted(COMPILERS))
    def test_deterministic_simulation_matches_analytical(self, compiler):
        circuit, network = build_benchmark("QFT", 16, 2)
        program = COMPILERS[compiler](circuit, network)
        report = validate_schedule(program)
        assert report.matches, report.describe()


class TestScheduleVariants:
    def test_plain_strategy_replayed(self):
        circuit, network = build_benchmark("QFT", 16, 2)
        program = compile_autocomm(
            circuit, network,
            config=AutoCommConfig(schedule_strategy="greedy"))
        assert program.schedule.mode == "plain"
        report = validate_schedule(program)
        assert report.matches, report.describe()

    def test_report_requires_schedule(self):
        circuit, network = build_benchmark("BV", 10, 2)
        program = compile_autocomm(circuit, network)
        program.schedule = None
        with pytest.raises(ValueError):
            validate_schedule(program)

    def test_report_describe_mentions_status(self):
        circuit, network = build_benchmark("BV", 10, 2)
        program = compile_autocomm(circuit, network)
        report = validate_schedule(program)
        assert report.describe().startswith("OK")
        assert f"{report.simulated_latency:.2f}" in report.describe()

    def test_local_only_program_matches(self):
        network = uniform_network(2, 3)
        circuit = Circuit(6).h(0).cx(0, 1).cx(4, 5)
        program = compile_autocomm(circuit, network)
        report = validate_schedule(program)
        assert report.matches
