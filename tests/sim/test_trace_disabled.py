"""Trace-recorder disabled mode and degenerate-horizon guards.

Covers the observability satellites: a disabled :class:`TraceRecorder`
collects nothing and reports empty utilisation; ``record_trace=False``
leaves Monte-Carlo streams bit-identical; ``link_utilisation`` tolerates
zero, negative and non-finite horizons; and the JSONL export round-trips.
"""

import json
import math

from repro.circuits import qft_circuit
from repro.core import compile_autocomm
from repro.hardware import apply_topology, uniform_network
from repro.sim import SimulationConfig, run_monte_carlo, simulate_program
from repro.sim.trace import TraceRecorder


def _line_program():
    network = uniform_network(num_nodes=4, qubits_per_node=3)
    apply_topology(network, "line")
    return compile_autocomm(qft_circuit(12), network)


class TestDisabledRecorder:
    def test_records_nothing(self):
        recorder = TraceRecorder(enabled=False)
        recorder.record(1.0, "epr-start", index=0, nodes=(0, 1))
        recorder.record_link(0, 1, 0.0, 2.0)
        assert recorder.events == []
        assert recorder.num_events() == 0
        assert recorder.timeline() == []
        assert recorder.link_busy == {}
        assert recorder.link_utilisation(10.0) == {}

    def test_record_trace_false_drops_trace_but_keeps_result(self):
        program = _line_program()
        result = simulate_program(program, SimulationConfig(
            p_epr=1.0, seed=0, record_trace=False))
        assert result.trace.num_events() == 0
        assert result.trace.link_utilisation(result.latency) == {}
        assert result.latency > 0

    def test_monte_carlo_bit_identical_without_trace(self):
        program = _line_program()
        config = dict(p_epr=0.6, seed=11, trials=5)
        on = run_monte_carlo(program, SimulationConfig(**config))
        off = run_monte_carlo(program, SimulationConfig(
            record_trace=False, **config))
        assert off.latencies == on.latencies
        assert off.epr_attempts == on.epr_attempts


class TestLinkUtilisationGuards:
    def _recorder(self):
        recorder = TraceRecorder()
        recorder.record_link(0, 1, 0.0, 2.0)
        recorder.record_link(2, 1, 1.0, 3.0)  # normalised to (1, 2)
        return recorder

    def test_positive_horizon(self):
        utilisation = self._recorder().link_utilisation(4.0)
        assert utilisation == {(0, 1): 0.5, (1, 2): 0.5}

    def test_degenerate_horizons_yield_zero(self):
        recorder = self._recorder()
        for horizon in (0.0, -1.0, float("nan"), float("inf"),
                        float("-inf")):
            utilisation = recorder.link_utilisation(horizon)
            assert utilisation == {(0, 1): 0.0, (1, 2): 0.0}, horizon

    def test_empty_program_zero_makespan(self):
        # An empty recorder (no links) is safe at any horizon.
        recorder = TraceRecorder()
        assert recorder.link_utilisation(0.0) == {}
        assert recorder.link_utilisation(math.inf) == {}


class TestJsonlExport:
    def test_write_jsonl_roundtrip(self, tmp_path):
        program = _line_program()
        result = simulate_program(program, SimulationConfig(p_epr=1.0, seed=0))
        path = tmp_path / "run.trace.jsonl"
        count = result.trace.write_jsonl(path)
        lines = path.read_text().splitlines()
        assert count == len(lines) == result.trace.num_events()
        parsed = [json.loads(line) for line in lines]
        assert parsed == result.trace.event_dicts()
        times = [event["time"] for event in parsed]
        assert times == sorted(times)
        assert {"time", "kind", "index", "nodes", "detail"} <= set(parsed[0])

    def test_disabled_recorder_writes_empty_file(self, tmp_path):
        recorder = TraceRecorder(enabled=False)
        path = tmp_path / "empty.jsonl"
        assert recorder.write_jsonl(path) == 0
        assert path.read_text() == ""
