"""Batched EPR-attempt sampling must be bitwise-identical to the loop.

The vectorised sampler replays the exact ``random.Random`` Mersenne-Twister
double stream through numpy (state transplant, or direct multi-word-key
seeding for fresh generators), so attempt counts — and therefore every
seeded Monte-Carlo latency — must match the per-attempt rejection loop
exactly, not just in distribution.
"""

import random

import pytest

from repro.circuits import qft_circuit
from repro.core import compile_autocomm
from repro.hardware import uniform_network
from repro.ir import decompose_to_cx
from repro.sim import SimulationConfig, run_monte_carlo, simulate_program
from repro.sim.epr_process import BatchedAttemptSampler, EPRProcess


def _loop_attempts(rng: random.Random, p: float) -> int:
    attempts = 1
    while rng.random() >= p:
        attempts += 1
    return attempts


class TestUniformStream:
    def test_transplanted_stream_matches_python(self):
        sampler = BatchedAttemptSampler(random.Random(2024), 0.5, chunk=64)
        reference = random.Random(2024)
        expected = [reference.random() for _ in range(512)]
        produced = []
        # Consume through refills and reconstruct the uniform count: each
        # attempt consumes exactly one uniform.
        while len(produced) < 400:
            produced.append(sampler.next_attempts())
        consumed = sum(produced)
        replay = random.Random(2024)
        attempts = [_loop_attempts(replay, 0.5) for _ in range(400)]
        assert produced == attempts
        assert consumed == sum(attempts)
        assert expected[:8] == [e for e in expected[:8]]  # sanity

    @pytest.mark.parametrize("p", [0.05, 0.3, 0.5, 0.9])
    def test_attempt_stream_matches_loop(self, p):
        seed = 2 ** 40 + 12345  # multi-word seed: direct-seeding fast path
        sampler = BatchedAttemptSampler(random.Random(seed), p, chunk=128,
                                        seed=seed)
        replay = random.Random(seed)
        for _ in range(2000):
            assert sampler.next_attempts() == _loop_attempts(replay, p)

    def test_small_seed_uses_state_transplant(self):
        # Single-word seeds cannot use direct numpy seeding; the transplant
        # path must still reproduce the stream.
        sampler = BatchedAttemptSampler(random.Random(7), 0.4, chunk=32,
                                        seed=7)
        replay = random.Random(7)
        for _ in range(500):
            assert sampler.next_attempts() == _loop_attempts(replay, 0.4)

    def test_private_generator_fallback_is_seamless(self):
        # A tiny chunk forces the eager shared-scratch draw to run dry and
        # the sampler to fast-forward a private generator mid-stream.
        seed = 2 ** 50 + 99
        sampler = BatchedAttemptSampler(random.Random(seed), 0.5, chunk=8,
                                        seed=seed)
        replay = random.Random(seed)
        for _ in range(300):
            assert sampler.next_attempts() == _loop_attempts(replay, 0.5)

    def test_rejects_degenerate_probability(self):
        with pytest.raises(ValueError):
            BatchedAttemptSampler(random.Random(1), 1.0)
        with pytest.raises(ValueError):
            BatchedAttemptSampler(random.Random(1), 0.5, chunk=0)


class TestEPRProcessBatching:
    def test_sample_pair_matches_loop(self, two_node_network):
        seed = 2 ** 45 + 5
        batched = EPRProcess(two_node_network, p_success=0.5)
        rng_batched = random.Random(seed)
        assert batched.use_batched_sampling(rng_batched, seed=seed)

        plain = EPRProcess(two_node_network, p_success=0.5)
        rng_plain = random.Random(seed)
        for _ in range(300):
            a = batched.sample_pair(rng_batched, 0, 1)
            b = plain.sample_pair(rng_plain, 0, 1)
            assert a == b

    def test_foreign_rng_falls_back_to_loop(self, two_node_network):
        process = EPRProcess(two_node_network, p_success=0.5)
        assert process.use_batched_sampling(random.Random(2 ** 40), seed=2 ** 40)
        # A different generator must not consume from the batched stream.
        other = random.Random(123)
        expected = random.Random(123)
        sample = process.sample_pair(other, 0, 1)
        assert sample.attempts == _loop_attempts(expected, 0.5)

    def test_deterministic_process_declines_batching(self, two_node_network):
        process = EPRProcess(two_node_network, p_success=1.0)
        assert not process.use_batched_sampling(random.Random(2 ** 40))


class TestMonteCarloEquivalence:
    @pytest.fixture(scope="class")
    def program(self):
        circuit = decompose_to_cx(qft_circuit(12))
        network = uniform_network(3, 4)
        return compile_autocomm(circuit, network)

    @pytest.mark.parametrize("p_epr", [0.25, 0.5])
    def test_batched_and_loop_latencies_identical(self, program, p_epr):
        batched = run_monte_carlo(program, SimulationConfig(
            p_epr=p_epr, trials=20, seed=42, record_trace=False,
            batch_epr=True))
        loop = run_monte_carlo(program, SimulationConfig(
            p_epr=p_epr, trials=20, seed=42, record_trace=False,
            batch_epr=False))
        assert batched.latencies == loop.latencies
        assert batched.epr_attempts == loop.epr_attempts
        assert batched.trial_seeds == loop.trial_seeds

    def test_single_trial_reproduces_from_recorded_seed(self, program):
        config = SimulationConfig(p_epr=0.5, trials=3, seed=9,
                                  record_trace=False)
        monte_carlo = run_monte_carlo(program, config)
        for trial, trial_seed in enumerate(monte_carlo.trial_seeds):
            replay = simulate_program(program, SimulationConfig(
                p_epr=0.5, seed=trial_seed, record_trace=False))
            assert replay.latency == monte_carlo.latencies[trial]

    def test_deterministic_replay_unaffected(self, program):
        result = simulate_program(program)
        assert result.latency == pytest.approx(program.schedule.latency)
