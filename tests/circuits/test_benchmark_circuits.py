"""Unit tests for the benchmark circuit generators."""

import math

import numpy as np
import pytest

from repro.circuits import (
    arithmetic_snippet,
    arithmetic_snippet_layout,
    bv_circuit,
    mctr_circuit,
    qaoa_circuit_for_graph,
    qaoa_maxcut_circuit,
    qft_circuit,
    random_circuit,
    random_clifford_t_circuit,
    random_maxcut_graph,
    random_secret,
    ripple_carry_adder,
    rca_circuit_for_width,
    uccsd_circuit,
)
from repro.ir import Circuit, decompose_to_cx
from repro.ir.simulator import simulate


class TestQFT:
    def test_gate_count(self):
        # n H gates plus n(n-1)/2 controlled rotations.
        n = 10
        circuit = qft_circuit(n)
        ops = circuit.count_ops()
        assert ops["h"] == n
        assert ops["crz"] == n * (n - 1) // 2

    def test_minimum_size(self):
        assert len(qft_circuit(1)) == 1
        with pytest.raises(ValueError):
            qft_circuit(0)

    def test_angles_follow_distance(self):
        circuit = qft_circuit(4)
        crz = [g for g in circuit if g.name == "crz"]
        for gate in crz:
            distance = gate.qubits[0] - gate.qubits[1]
            assert gate.params[0] == pytest.approx(math.pi / 2 ** distance)

    def test_optional_swaps(self):
        with_swaps = qft_circuit(5, include_swaps=True)
        assert with_swaps.count_ops().get("swap", 0) == 2

    def test_qft_on_zero_state_gives_uniform_superposition(self):
        state = simulate(decompose_to_cx(qft_circuit(4)))
        assert np.allclose(np.abs(state), 0.25)

    def test_custom_name(self):
        assert qft_circuit(4, name="QFT-4").name == "QFT-4"


class TestBV:
    def test_structure(self):
        secret = [1, 0, 1, 1]
        circuit = bv_circuit(5, secret=secret)
        ops = circuit.count_ops()
        assert ops["cx"] == 3
        assert ops["h"] == 2 * 4 + 1
        assert ops["x"] == 1

    def test_all_cx_target_ancilla(self):
        circuit = bv_circuit(8, secret=[1] * 7)
        for gate in circuit:
            if gate.name == "cx":
                assert gate.target == 7

    def test_secret_length_checked(self):
        with pytest.raises(ValueError):
            bv_circuit(5, secret=[1, 0])

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            bv_circuit(1)

    def test_random_secret_reproducible(self):
        assert random_secret(10, seed=3) == random_secret(10, seed=3)
        assert any(random_secret(10, seed=3))

    def test_bv_recovers_secret(self):
        # Measuring the input register in the computational basis after the
        # algorithm yields the secret string.
        secret = (1, 0, 1)
        circuit = bv_circuit(4, secret=secret)
        state = simulate(circuit)
        index = int(np.argmax(np.abs(state)))
        bits = [(index >> (4 - 1 - q)) & 1 for q in range(3)]
        assert tuple(bits) == secret


class TestRCA:
    def test_qubit_count(self):
        assert ripple_carry_adder(4).num_qubits == 10

    def test_gate_mix(self):
        ops = ripple_carry_adder(3).count_ops()
        assert ops["ccx"] == 6          # one MAJ + one UMA per bit
        assert ops["cx"] == 2 * 3 * 2 + 1

    def test_width_padding(self):
        circuit = rca_circuit_for_width(20)
        assert circuit.num_qubits == 20
        assert max(q for g in circuit for q in g.qubits) <= 19

    def test_too_small_width_rejected(self):
        with pytest.raises(ValueError):
            rca_circuit_for_width(3)
        with pytest.raises(ValueError):
            ripple_carry_adder(0)

    @pytest.mark.parametrize("a,b", [(0, 0), (1, 2), (3, 3), (2, 1)])
    def test_addition_is_correct(self, a, b):
        # 2-bit Cuccaro adder: result lands in the b register (qubits 1, 3)
        # with the carry-out in the last qubit.
        num_bits = 2
        adder = ripple_carry_adder(num_bits)
        n = adder.num_qubits
        prep = Circuit(n)
        for i in range(num_bits):
            if (b >> i) & 1:
                prep.x(1 + 2 * i)
            if (a >> i) & 1:
                prep.x(2 + 2 * i)
        prep.extend(decompose_to_cx(adder).gates)
        state = simulate(prep)
        index = int(np.argmax(np.abs(state)))
        bits = [(index >> (n - 1 - q)) & 1 for q in range(n)]
        result = sum(bits[1 + 2 * i] << i for i in range(num_bits))
        carry = bits[n - 1]
        assert result + (carry << num_bits) == a + b


class TestMCTR:
    def test_builds_for_paper_sizes(self):
        for n in (11, 21, 51):
            circuit = mctr_circuit(n)
            assert circuit.num_qubits == n
            assert circuit.count_ops().get("ccx", 0) > 0

    def test_small_sizes(self):
        assert mctr_circuit(3).count_ops() == {"ccx": 1}
        with pytest.raises(ValueError):
            mctr_circuit(2)

    def test_repetitions_scale_gate_count(self):
        single = mctr_circuit(15, repetitions=1)
        double = mctr_circuit(15, repetitions=2)
        assert len(double) == 2 * len(single)

    def test_all_qubits_within_register(self):
        circuit = mctr_circuit(25)
        assert max(q for g in circuit for q in g.qubits) < 25


class TestQAOA:
    def test_gate_structure_single_layer(self):
        graph = random_maxcut_graph(10, degree=3, seed=1)
        circuit = qaoa_circuit_for_graph(graph, layers=1)
        ops = circuit.count_ops()
        assert ops["h"] == 10
        assert ops["rzz"] == graph.number_of_edges()
        assert ops["rx"] == 10

    def test_layers_multiply_interactions(self):
        graph = random_maxcut_graph(8, degree=3, seed=2)
        two_layers = qaoa_circuit_for_graph(graph, layers=2)
        assert two_layers.count_ops()["rzz"] == 2 * graph.number_of_edges()

    def test_parameter_validation(self):
        graph = random_maxcut_graph(6, degree=3, seed=3)
        with pytest.raises(ValueError):
            qaoa_circuit_for_graph(graph, layers=2, gamma=[0.1], beta=[0.2, 0.3])

    def test_random_graph_reproducible(self):
        a = random_maxcut_graph(12, degree=3, seed=5)
        b = random_maxcut_graph(12, degree=3, seed=5)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_fallback_for_impossible_regular_graph(self):
        # 5 nodes of degree 3 has odd total degree; the generator must fall
        # back to an Erdős–Rényi graph rather than fail.
        graph = random_maxcut_graph(5, degree=3, seed=7)
        assert graph.number_of_nodes() == 5

    def test_top_level_builder(self):
        circuit = qaoa_maxcut_circuit(10, layers=1, seed=2)
        assert circuit.num_qubits == 10
        assert circuit.count_ops()["rzz"] > 0

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            qaoa_maxcut_circuit(1)


class TestUCCSD:
    def test_qubit_minimum(self):
        with pytest.raises(ValueError):
            uccsd_circuit(3)

    def test_reference_state_x_gates(self):
        circuit = uccsd_circuit(8, include_doubles=False)
        x_gates = [g for g in circuit if g.name == "x"]
        assert len(x_gates) == 4
        assert {g.qubits[0] for g in x_gates} == {0, 1, 2, 3}

    def test_singles_only_smaller_than_full(self):
        singles = uccsd_circuit(8, include_doubles=False)
        full = uccsd_circuit(8, include_doubles=True)
        assert len(full) > len(singles)

    def test_gate_alphabet_is_cx_friendly(self):
        circuit = uccsd_circuit(8)
        allowed = {"x", "h", "s", "sdg", "rz", "cx"}
        assert set(circuit.count_ops()) <= allowed

    def test_occupied_count_validated(self):
        with pytest.raises(ValueError):
            uccsd_circuit(8, num_occupied=8)

    def test_size_grows_with_register(self):
        assert len(uccsd_circuit(12)) > len(uccsd_circuit(8))


class TestArithmeticSnippet:
    def test_size_and_layout(self):
        circuit = arithmetic_snippet()
        layout = arithmetic_snippet_layout()
        assert circuit.num_qubits == 7
        assert set(layout) == set(range(7))
        assert max(layout.values()) == 2

    def test_q3_dominates_remote_interaction_with_node_a(self):
        from repro.partition import QubitMapping
        circuit = arithmetic_snippet()
        mapping = QubitMapping(arithmetic_snippet_layout())
        histogram = mapping.remote_pair_histogram(circuit)
        assert histogram[(3, 0)] >= 5
        assert histogram[(3, 0)] == max(histogram.values())


class TestRandomCircuits:
    def test_reproducible(self):
        a = random_circuit(5, 30, seed=1)
        b = random_circuit(5, 30, seed=1)
        assert a == b

    def test_gate_count(self):
        assert len(random_circuit(5, 30, seed=2)) == 30

    def test_single_qubit_register(self):
        circuit = random_circuit(1, 10, seed=3)
        assert all(g.num_qubits == 1 for g in circuit)

    def test_clifford_t_alphabet(self):
        circuit = random_clifford_t_circuit(6, 50, seed=4)
        allowed = {"x", "z", "h", "s", "sdg", "t", "tdg", "cx", "cz"}
        assert set(circuit.count_ops()) <= allowed

    def test_invalid_register_rejected(self):
        with pytest.raises(ValueError):
            random_circuit(0, 5)
