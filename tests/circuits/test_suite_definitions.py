"""Unit tests for the benchmark-suite definitions (Table 2 configurations)."""

import pytest

from repro.circuits import (
    BENCHMARK_FAMILIES,
    BenchmarkSpec,
    build_benchmark,
    paper_configurations,
    scaled_configurations,
)


class TestBenchmarkSpec:
    def test_name_format(self):
        spec = BenchmarkSpec("QFT", 100, 10)
        assert spec.name == "QFT-100-10"
        assert spec.qubits_per_node == 10

    def test_ceiling_division(self):
        assert BenchmarkSpec("BV", 10, 3).qubits_per_node == 4

    def test_build_returns_matching_network(self):
        spec = BenchmarkSpec("BV", 20, 4)
        circuit, network = spec.build()
        assert circuit.num_qubits == 20
        assert network.num_nodes == 4
        assert network.total_data_qubits >= 20

    def test_build_custom_comm_qubits(self):
        spec = BenchmarkSpec("BV", 12, 3)
        _, network = spec.build(comm_qubits_per_node=4)
        assert network.comm_capacity(0) == 4


class TestBuildBenchmark:
    @pytest.mark.parametrize("family", sorted(BENCHMARK_FAMILIES))
    def test_every_family_builds_small_instance(self, family):
        num_qubits = 8 if family == "UCCSD" else 12
        circuit, network = build_benchmark(family, num_qubits, 2)
        assert circuit.num_qubits == num_qubits
        assert len(circuit) > 0
        assert network.num_nodes == 2

    def test_family_name_case_insensitive(self):
        circuit, _ = build_benchmark("qft", 8, 2)
        assert circuit.num_qubits == 8

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            build_benchmark("GROVER", 8, 2)


class TestConfigurations:
    def test_paper_configurations_match_table2(self):
        specs = paper_configurations()
        assert len(specs) == 18
        names = {spec.name for spec in specs}
        assert "QFT-100-10" in names
        assert "QFT-300-30" in names
        assert "UCCSD-8-4" in names
        assert "UCCSD-16-8" in names

    def test_paper_configurations_qubits_per_node(self):
        for spec in paper_configurations():
            if spec.family == "UCCSD":
                assert spec.qubits_per_node == 2
            else:
                assert spec.qubits_per_node == 10

    def test_scaled_small(self):
        specs = scaled_configurations("small")
        assert all(spec.num_qubits <= 30 for spec in specs)
        families = {spec.family for spec in specs}
        assert families == set(BENCHMARK_FAMILIES)

    def test_scaled_medium_larger_than_small(self):
        small = max(s.num_qubits for s in scaled_configurations("small"))
        medium = max(s.num_qubits for s in scaled_configurations("medium"))
        assert medium > small

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            scaled_configurations("huge")

    def test_scaled_instances_build(self):
        for spec in scaled_configurations("small"):
            circuit, network = spec.build()
            assert circuit.num_qubits == spec.num_qubits
            network.validate_capacity(circuit.num_qubits)
