"""Unit tests for the local optimisation passes."""

import math

import pytest

from repro.circuits import random_circuit
from repro.ir import (
    Circuit,
    cancel_adjacent_inverses,
    drop_identities,
    merge_rotations,
    optimize_circuit,
)
from repro.ir.simulator import (
    random_statevector,
    simulate,
    states_equal_up_to_global_phase,
)


def equivalent(a, b, seed=0):
    state = random_statevector(a.num_qubits, seed=seed)
    return states_equal_up_to_global_phase(
        simulate(a, initial_state=state), simulate(b, initial_state=state))


class TestCancelAdjacentInverses:
    def test_double_h_removed(self):
        circuit = Circuit(1).h(0).h(0)
        assert len(cancel_adjacent_inverses(circuit)) == 0

    def test_double_cx_removed(self):
        circuit = Circuit(2).cx(0, 1).cx(0, 1)
        assert len(cancel_adjacent_inverses(circuit)) == 0

    def test_s_sdg_pair_removed(self):
        circuit = Circuit(1).s(0).sdg(0)
        assert len(cancel_adjacent_inverses(circuit)) == 0

    def test_opposite_rotations_removed(self):
        circuit = Circuit(1).rz(0.5, 0).rz(-0.5, 0)
        assert len(cancel_adjacent_inverses(circuit)) == 0

    def test_non_adjacent_not_removed(self):
        circuit = Circuit(1).h(0).t(0).h(0)
        assert len(cancel_adjacent_inverses(circuit)) == 3

    def test_intervening_gate_on_other_qubit_does_not_matter(self):
        circuit = Circuit(2).h(0).x(1).h(0)
        out = cancel_adjacent_inverses(circuit)
        assert [g.name for g in out] == ["x"]

    def test_cx_pair_different_direction_not_removed(self):
        circuit = Circuit(2).cx(0, 1).cx(1, 0)
        assert len(cancel_adjacent_inverses(circuit)) == 2

    def test_barrier_blocks_cancellation(self):
        circuit = Circuit(1).h(0).barrier().h(0)
        assert len(cancel_adjacent_inverses(circuit)) == 3

    def test_partial_overlap_two_qubit_not_cancelled(self):
        circuit = Circuit(3).cx(0, 1).cx(0, 2).cx(0, 1)
        assert len(cancel_adjacent_inverses(circuit)) == 3

    def test_preserves_semantics(self):
        circuit = Circuit(3).h(0).h(0).cx(0, 1).t(2).cx(0, 1).s(1).sdg(1).x(2)
        out = cancel_adjacent_inverses(circuit)
        assert equivalent(circuit, out)
        assert len(out) < len(circuit)


class TestMergeRotations:
    def test_adjacent_rz_merged(self):
        circuit = Circuit(1).rz(0.3, 0).rz(0.4, 0)
        out = merge_rotations(circuit)
        assert len(out) == 1
        assert out[0].params[0] == pytest.approx(0.7)

    def test_adjacent_rzz_merged(self):
        circuit = Circuit(2).rzz(0.3, 0, 1).rzz(0.2, 0, 1)
        out = merge_rotations(circuit)
        assert len(out) == 1
        assert out[0].params[0] == pytest.approx(0.5)

    def test_different_axes_not_merged(self):
        circuit = Circuit(1).rz(0.3, 0).rx(0.4, 0)
        assert len(merge_rotations(circuit)) == 2

    def test_different_qubit_order_not_merged(self):
        circuit = Circuit(2).crz(0.3, 0, 1).crz(0.2, 1, 0)
        assert len(merge_rotations(circuit)) == 2

    def test_interleaved_gate_prevents_merge(self):
        circuit = Circuit(1).rz(0.3, 0).h(0).rz(0.4, 0)
        assert len(merge_rotations(circuit)) == 3

    def test_triple_merge(self):
        circuit = Circuit(1).rz(0.1, 0).rz(0.2, 0).rz(0.3, 0)
        out = merge_rotations(circuit)
        assert len(out) == 1
        assert out[0].params[0] == pytest.approx(0.6)

    def test_preserves_semantics(self):
        circuit = Circuit(2).rz(0.2, 0).rz(0.5, 0).rzz(0.4, 0, 1).rzz(-0.1, 0, 1).h(1)
        assert equivalent(circuit, merge_rotations(circuit))


class TestDropIdentities:
    def test_id_gate_removed(self):
        circuit = Circuit(1).add("id", [0]).h(0)
        assert [g.name for g in drop_identities(circuit)] == ["h"]

    def test_zero_rotation_removed(self):
        circuit = Circuit(1).rz(0.0, 0).x(0)
        assert [g.name for g in drop_identities(circuit)] == ["x"]

    def test_two_pi_rotation_removed(self):
        circuit = Circuit(1).rz(2 * math.pi, 0).x(0)
        assert [g.name for g in drop_identities(circuit)] == ["x"]

    def test_nonzero_rotation_kept(self):
        circuit = Circuit(1).rz(0.1, 0)
        assert len(drop_identities(circuit)) == 1


class TestOptimizeCircuit:
    def test_fixed_point_combines_passes(self):
        # H X X H collapses to nothing over two iterations.
        circuit = Circuit(1).h(0).x(0).x(0).h(0)
        assert len(optimize_circuit(circuit)) == 0

    def test_rotation_chain_cancels_to_nothing(self):
        circuit = Circuit(1).rz(0.4, 0).rz(-0.1, 0).rz(-0.3, 0)
        assert len(optimize_circuit(circuit)) == 0

    def test_already_optimal_unchanged(self):
        circuit = Circuit(2).h(0).cx(0, 1).t(1)
        assert optimize_circuit(circuit) == circuit

    @pytest.mark.parametrize("seed", range(3))
    def test_random_circuits_preserved(self, seed):
        circuit = random_circuit(5, 40, seed=seed)
        optimized = optimize_circuit(circuit)
        assert len(optimized) <= len(circuit)
        assert equivalent(circuit, optimized, seed=seed)

    def test_never_increases_gate_count(self):
        circuit = random_circuit(4, 60, seed=9, two_qubit_prob=0.3)
        assert len(optimize_circuit(circuit)) <= len(circuit)
