"""Unit tests for the gate registry and Gate instances."""


import numpy as np
import pytest

from repro.ir.gates import (
    DIAGONAL_GATES,
    GATE_REGISTRY,
    Gate,
    gate_spec,
    is_supported_gate,
    standard_gate_names,
)


class TestRegistry:
    def test_standard_names_sorted_and_unique(self):
        names = standard_gate_names()
        assert list(names) == sorted(set(names))

    def test_common_gates_registered(self):
        for name in ("x", "y", "z", "h", "s", "t", "rx", "ry", "rz", "cx", "cz",
                     "crz", "swap", "rzz", "ccx", "measure", "barrier"):
            assert is_supported_gate(name)

    def test_unknown_gate_not_supported(self):
        assert not is_supported_gate("frobnicate")

    def test_gate_spec_raises_for_unknown(self):
        with pytest.raises(KeyError):
            gate_spec("frobnicate")

    def test_spec_qubit_counts(self):
        assert gate_spec("h").num_qubits == 1
        assert gate_spec("cx").num_qubits == 2
        assert gate_spec("ccx").num_qubits == 3

    def test_spec_param_counts(self):
        assert gate_spec("rz").num_params == 1
        assert gate_spec("u3").num_params == 3
        assert gate_spec("cx").num_params == 0

    def test_diagonal_set_contents(self):
        assert "rz" in DIAGONAL_GATES
        assert "cz" in DIAGONAL_GATES
        assert "rzz" in DIAGONAL_GATES
        assert "x" not in DIAGONAL_GATES
        assert "cx" not in DIAGONAL_GATES

    @pytest.mark.parametrize("name", sorted(
        n for n, s in GATE_REGISTRY.items() if s.unitary is not None))
    def test_every_unitary_is_unitary(self, name):
        spec = GATE_REGISTRY[name]
        params = tuple(0.37 * (i + 1) for i in range(spec.num_params))
        matrix = spec.unitary(*params)
        dim = 2 ** spec.num_qubits
        assert matrix.shape == (dim, dim)
        assert np.allclose(matrix @ matrix.conj().T, np.eye(dim), atol=1e-10)

    @pytest.mark.parametrize("name", sorted(DIAGONAL_GATES))
    def test_diagonal_flag_matches_matrix(self, name):
        spec = GATE_REGISTRY[name]
        if spec.unitary is None:
            pytest.skip("non-unitary")
        params = tuple(0.53 for _ in range(spec.num_params))
        matrix = spec.unitary(*params)
        assert np.allclose(matrix, np.diag(np.diag(matrix)), atol=1e-10)

    @pytest.mark.parametrize("name", sorted(
        n for n, s in GATE_REGISTRY.items() if s.self_inverse))
    def test_self_inverse_flag_matches_matrix(self, name):
        matrix = GATE_REGISTRY[name].unitary()
        dim = matrix.shape[0]
        assert np.allclose(matrix @ matrix, np.eye(dim), atol=1e-10)


class TestGateConstruction:
    def test_basic_construction(self):
        gate = Gate("cx", (0, 1))
        assert gate.name == "cx"
        assert gate.qubits == (0, 1)
        assert gate.params == ()

    def test_parameters_coerced_to_float(self):
        gate = Gate("rz", (2,), (1,))
        assert gate.params == (1.0,)
        assert isinstance(gate.params[0], float)

    def test_qubits_coerced_to_int(self):
        gate = Gate("h", (np.int64(3),))
        assert gate.qubits == (3,)
        assert isinstance(gate.qubits[0], int)

    def test_wrong_qubit_count_rejected(self):
        with pytest.raises(ValueError):
            Gate("cx", (0,))

    def test_wrong_param_count_rejected(self):
        with pytest.raises(ValueError):
            Gate("rz", (0,), ())

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError):
            Gate("cx", (1, 1))

    def test_negative_qubit_rejected(self):
        with pytest.raises(ValueError):
            Gate("h", (-1,))

    def test_unknown_gate_rejected(self):
        with pytest.raises(KeyError):
            Gate("nope", (0,))

    def test_gates_are_hashable_and_equal_by_value(self):
        a = Gate("crz", (0, 1), (0.5,))
        b = Gate("crz", (0, 1), (0.5,))
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1


class TestGateProperties:
    def test_control_target_of_cx(self):
        gate = Gate("cx", (3, 5))
        assert gate.control == 3
        assert gate.target == 5

    def test_control_none_for_symmetric_gates(self):
        assert Gate("rzz", (0, 1), (0.3,)).control is None
        assert Gate("swap", (0, 1)).control is None
        assert Gate("h", (0,)).control is None

    def test_single_and_two_qubit_flags(self):
        assert Gate("h", (0,)).is_single_qubit
        assert not Gate("h", (0,)).is_two_qubit
        assert Gate("cx", (0, 1)).is_two_qubit
        assert Gate("ccx", (0, 1, 2)).is_multi_qubit
        assert not Gate("ccx", (0, 1, 2)).is_two_qubit

    def test_measurement_and_barrier_flags(self):
        assert Gate("measure", (0,)).is_measurement
        assert not Gate("measure", (0,)).is_unitary
        assert Gate("barrier", (0, 1)).is_barrier

    def test_axis_classification(self):
        assert Gate("rx", (0,), (0.3,)).axis == "x"
        assert Gate("rz", (0,), (0.3,)).axis == "z"
        assert Gate("t", (0,)).axis == "z"
        assert Gate("h", (0,)).axis is None

    def test_overlaps(self):
        a = Gate("cx", (0, 1))
        assert a.overlaps(Gate("h", (1,)))
        assert not a.overlaps(Gate("h", (2,)))

    def test_acts_on(self):
        gate = Gate("cx", (0, 4))
        assert gate.acts_on(4)
        assert not gate.acts_on(2)

    def test_remap(self):
        gate = Gate("cx", (0, 1))
        remapped = gate.remap({0: 5, 1: 3})
        assert remapped.qubits == (5, 3)
        assert remapped.name == "cx"


class TestGateAlgebra:
    def test_unitary_of_cx(self):
        expected = np.array([[1, 0, 0, 0], [0, 1, 0, 0],
                             [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex)
        assert np.allclose(Gate("cx", (0, 1)).unitary(), expected)

    def test_unitary_raises_for_measure(self):
        with pytest.raises(ValueError):
            Gate("measure", (0,)).unitary()

    @pytest.mark.parametrize("name,params", [
        ("h", ()), ("x", ()), ("s", ()), ("t", ()), ("sdg", ()), ("tdg", ()),
        ("rx", (0.7,)), ("ry", (1.1,)), ("rz", (2.2,)), ("p", (0.9,)),
        ("cx", ()), ("cz", ()), ("crz", (0.4,)), ("swap", ()),
        ("rzz", (1.3,)), ("ccx", ()), ("u3", (0.1, 0.2, 0.3)),
    ])
    def test_inverse_cancels(self, name, params):
        qubits = tuple(range(Gate(name, tuple(range(3)), params).num_qubits)) \
            if name == "ccx" else tuple(range(len(params) and 1 or 1))
        spec_qubits = {"cx": (0, 1), "cz": (0, 1), "crz": (0, 1), "swap": (0, 1),
                       "rzz": (0, 1), "ccx": (0, 1, 2)}
        qubits = spec_qubits.get(name, (0,))
        gate = Gate(name, qubits, params)
        inverse = gate.inverse()
        product = gate.unitary() @ inverse.unitary()
        assert np.allclose(product, np.eye(product.shape[0]), atol=1e-10)

    def test_inverse_of_s_is_sdg(self):
        assert Gate("s", (0,)).inverse().name == "sdg"
        assert Gate("tdg", (0,)).inverse().name == "t"

    def test_inverse_of_rotation_negates_angle(self):
        assert Gate("rz", (0,), (0.5,)).inverse().params == (-0.5,)

    def test_inverse_of_self_inverse_is_same(self):
        gate = Gate("cx", (0, 1))
        assert gate.inverse() is gate

    def test_rz_p_phase_relation(self):
        # P(theta) equals RZ(theta) up to a global phase of theta/2.
        theta = 0.77
        rz = Gate("rz", (0,), (theta,)).unitary()
        p = Gate("p", (0,), (theta,)).unitary()
        phase = np.exp(1j * theta / 2)
        assert np.allclose(p, phase * rz, atol=1e-10)

    def test_crz_matches_manual_construction(self):
        theta = 1.23
        crz = Gate("crz", (0, 1), (theta,)).unitary()
        expected = np.eye(4, dtype=complex)
        expected[2, 2] = np.exp(-1j * theta / 2)
        expected[3, 3] = np.exp(1j * theta / 2)
        assert np.allclose(crz, expected)
