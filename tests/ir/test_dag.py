"""Unit tests for the circuit dependency DAG."""

import pytest

from repro.hardware import DEFAULT_LATENCY
from repro.ir import Circuit, CircuitDAG


class TestConstruction:
    def test_empty_circuit(self):
        dag = CircuitDAG(Circuit(3))
        assert dag.topological_order() == []
        assert dag.front_layer() == []

    def test_independent_gates_have_no_edges(self):
        dag = CircuitDAG(Circuit(2).h(0).h(1))
        assert dag.predecessors(0) == []
        assert dag.predecessors(1) == []
        assert sorted(dag.front_layer()) == [0, 1]

    def test_chain_on_one_qubit(self):
        dag = CircuitDAG(Circuit(1).h(0).x(0).z(0))
        assert dag.predecessors(1) == [0]
        assert dag.predecessors(2) == [1]
        assert dag.successors(0) == [1]

    def test_two_qubit_gate_joins_chains(self):
        circuit = Circuit(2).h(0).x(1).cx(0, 1)
        dag = CircuitDAG(circuit)
        assert dag.predecessors(2) == [0, 1]

    def test_barrier_fences_all_qubits(self):
        circuit = Circuit(2).h(0).barrier().h(1)
        dag = CircuitDAG(circuit)
        assert dag.predecessors(1) == [0]
        assert dag.predecessors(2) == [1]

    def test_gate_accessor(self):
        circuit = Circuit(2).cx(0, 1)
        dag = CircuitDAG(circuit)
        assert dag.gate(0).name == "cx"


class TestLevelsAndLayers:
    def test_asap_levels_simple(self):
        circuit = Circuit(2).h(0).cx(0, 1).h(1)
        dag = CircuitDAG(circuit)
        levels = dag.asap_levels()
        assert levels[0] == 0
        assert levels[1] == 1
        assert levels[2] == 2

    def test_layers_grouping(self):
        circuit = Circuit(3).h(0).h(1).h(2).cx(0, 1)
        layers = CircuitDAG(circuit).layers()
        assert layers[0] == [0, 1, 2]
        assert layers[1] == [3]

    def test_topological_order_is_valid(self):
        circuit = Circuit(3).h(0).cx(0, 1).cx(1, 2).h(2)
        dag = CircuitDAG(circuit)
        order = dag.topological_order()
        position = {node: i for i, node in enumerate(order)}
        for node in order:
            for pred in dag.predecessors(node):
                assert position[pred] < position[node]


class TestTiming:
    def test_critical_path_serial(self):
        circuit = Circuit(1).h(0).h(0).h(0)
        dag = CircuitDAG(circuit)
        length = dag.critical_path_length(lambda g: 2.0)
        assert length == pytest.approx(6.0)

    def test_critical_path_parallel(self):
        circuit = Circuit(2).h(0).h(1)
        dag = CircuitDAG(circuit)
        assert dag.critical_path_length(lambda g: 2.0) == pytest.approx(2.0)

    def test_critical_path_with_latency_model(self):
        circuit = Circuit(2).h(0).cx(0, 1)
        dag = CircuitDAG(circuit)
        length = dag.critical_path_length(DEFAULT_LATENCY.gate_latency)
        assert length == pytest.approx(DEFAULT_LATENCY.t_1q + DEFAULT_LATENCY.t_2q)

    def test_asap_start_times(self):
        circuit = Circuit(2).h(0).cx(0, 1).h(1)
        dag = CircuitDAG(circuit)
        starts = dag.asap_start_times(lambda g: 1.0)
        assert starts[0] == 0.0
        assert starts[1] == 1.0
        assert starts[2] == 2.0

    def test_empty_critical_path_is_zero(self):
        assert CircuitDAG(Circuit(2)).critical_path_length(lambda g: 1.0) == 0.0


class TestNetworkxView:
    """The lazily built networkx graph mirrors the list-based adjacency."""

    def test_graph_matches_adjacency(self):
        circuit = Circuit(3).h(0).cx(0, 1).cx(1, 2).h(2).barrier().h(0)
        dag = CircuitDAG(circuit)
        graph = dag.graph
        assert sorted(graph.nodes) == list(range(len(circuit)))
        for node in graph.nodes:
            assert sorted(graph.predecessors(node)) == dag.predecessors(node)
            assert sorted(graph.successors(node)) == dag.successors(node)
            assert graph.nodes[node]["gate"] == dag.gate(node)

    def test_graph_is_cached(self):
        dag = CircuitDAG(Circuit(2).h(0).cx(0, 1))
        assert dag.graph is dag.graph

    def test_len_counts_instructions(self):
        assert len(CircuitDAG(Circuit(2).h(0).cx(0, 1))) == 2

    def test_graph_not_built_for_plain_analyses(self):
        dag = CircuitDAG(Circuit(2).h(0).cx(0, 1).h(1))
        dag.asap_levels()
        dag.critical_path_length(lambda g: 1.0)
        dag.layers()
        assert dag._nx_graph is None
