"""Unit tests for the Circuit container."""


import numpy as np
import pytest

from repro.ir import Circuit, Gate
from repro.ir.simulator import circuit_unitary, unitaries_equal_up_to_global_phase


class TestConstruction:
    def test_empty_circuit(self):
        circuit = Circuit(3)
        assert circuit.num_qubits == 3
        assert len(circuit) == 0
        assert circuit.gates == ()

    def test_negative_qubits_rejected(self):
        with pytest.raises(ValueError):
            Circuit(-1)

    def test_construct_from_gates(self):
        gates = [Gate("h", (0,)), Gate("cx", (0, 1))]
        circuit = Circuit(2, gates)
        assert len(circuit) == 2
        assert circuit[0].name == "h"

    def test_append_validates_qubit_range(self):
        circuit = Circuit(2)
        with pytest.raises(ValueError):
            circuit.append(Gate("h", (5,)))

    def test_append_rejects_non_gate(self):
        with pytest.raises(TypeError):
            Circuit(2).append("h 0")

    def test_builder_methods_chain(self):
        circuit = Circuit(3).h(0).cx(0, 1).rz(0.5, 2).barrier().measure(1)
        assert [g.name for g in circuit] == ["h", "cx", "rz", "barrier", "measure"]

    def test_add_by_name(self):
        circuit = Circuit(2).add("crz", [0, 1], [0.25])
        assert circuit[0].params == (0.25,)

    def test_copy_is_independent(self):
        original = Circuit(2).h(0)
        clone = original.copy()
        clone.x(1)
        assert len(original) == 1
        assert len(clone) == 2

    def test_equality(self):
        a = Circuit(2).h(0).cx(0, 1)
        b = Circuit(2).h(0).cx(0, 1)
        c = Circuit(2).h(1)
        assert a == b
        assert a != c

    def test_iteration_order(self):
        circuit = Circuit(2).x(0).y(1).z(0)
        assert [g.name for g in circuit] == ["x", "y", "z"]


class TestComposition:
    def test_compose_identity_map(self):
        a = Circuit(2).h(0)
        b = Circuit(2).cx(0, 1)
        a.compose(b)
        assert [g.name for g in a] == ["h", "cx"]

    def test_compose_with_qubit_map(self):
        a = Circuit(4)
        b = Circuit(2).cx(0, 1)
        a.compose(b, qubit_map={0: 2, 1: 3})
        assert a[0].qubits == (2, 3)

    def test_compose_too_large_rejected(self):
        a = Circuit(1)
        b = Circuit(3).h(2)
        with pytest.raises(ValueError):
            a.compose(b)

    def test_inverse_reverses_and_inverts(self):
        circuit = Circuit(2).h(0).s(1).cx(0, 1)
        inverse = circuit.inverse()
        assert [g.name for g in inverse] == ["cx", "sdg", "h"]

    def test_inverse_is_actual_inverse(self):
        circuit = Circuit(2).h(0).t(1).cx(0, 1).rz(0.3, 0)
        total = circuit.copy().compose(circuit.inverse())
        unitary = circuit_unitary(total)
        assert unitaries_equal_up_to_global_phase(unitary, np.eye(4))

    def test_remapped(self):
        circuit = Circuit(2).cx(0, 1)
        remapped = circuit.remapped({0: 3, 1: 1}, num_qubits=4)
        assert remapped.num_qubits == 4
        assert remapped[0].qubits == (3, 1)

    def test_without_barriers(self):
        circuit = Circuit(2).h(0).barrier().x(1)
        stripped = circuit.without_barriers()
        assert [g.name for g in stripped] == ["h", "x"]
        assert len(circuit) == 3


class TestAnalysis:
    def test_count_ops(self):
        circuit = Circuit(3).h(0).h(1).cx(0, 1).cx(1, 2)
        assert circuit.count_ops() == {"h": 2, "cx": 2}

    def test_num_two_qubit_and_cx(self):
        circuit = Circuit(3).h(0).cx(0, 1).crz(0.1, 1, 2).ccx(0, 1, 2)
        assert circuit.num_two_qubit_gates() == 3
        assert circuit.num_cx_gates() == 1

    def test_used_qubits(self):
        circuit = Circuit(5).h(1).cx(3, 1)
        assert circuit.used_qubits() == (1, 3)

    def test_depth_serial_chain(self):
        circuit = Circuit(1).h(0).x(0).z(0)
        assert circuit.depth() == 3

    def test_depth_parallel_gates(self):
        circuit = Circuit(2).h(0).h(1)
        assert circuit.depth() == 1

    def test_depth_ignores_barriers(self):
        circuit = Circuit(2).h(0).barrier().h(1)
        assert circuit.depth() == 1

    def test_two_qubit_depth(self):
        circuit = Circuit(3).h(0).cx(0, 1).cx(1, 2).cx(0, 1)
        assert circuit.two_qubit_depth() == 3

    def test_interaction_pairs(self):
        circuit = Circuit(3).cx(0, 1).cx(1, 0).cx(1, 2)
        pairs = circuit.interaction_pairs()
        assert pairs[(0, 1)] == 2
        assert pairs[(1, 2)] == 1

    def test_interaction_pairs_for_three_qubit_gate(self):
        pairs = Circuit(3).ccx(0, 1, 2).interaction_pairs()
        assert pairs[(0, 1)] == 1
        assert pairs[(0, 2)] == 1
        assert pairs[(1, 2)] == 1

    def test_summary_fields(self):
        summary = Circuit(2, name="demo").h(0).cx(0, 1).summary()
        assert summary["name"] == "demo"
        assert summary["num_qubits"] == 2
        assert summary["num_gates"] == 2
        assert summary["num_cx"] == 1
        assert summary["depth"] == 2

    def test_empty_circuit_depth_zero(self):
        assert Circuit(4).depth() == 0
        assert Circuit(4).two_qubit_depth() == 0
