"""Unit tests for the commutation engine.

Every structural rule is cross-checked against the exact matrix criterion so
a wrong fast path cannot silently corrupt the aggregation pass.
"""

import numpy as np
import pytest

from repro.ir import Circuit, Gate, commutes, commutes_through, commutes_with_all
from repro.ir.commutation import _matrix_commutes, clear_commutation_cache
from repro.ir.simulator import circuit_unitary


def matrix_says(gate_a, gate_b):
    """Ground truth: compare the two orderings on the joint unitary."""
    qubits = sorted(set(gate_a.qubits) | set(gate_b.qubits))
    index = {q: i for i, q in enumerate(qubits)}
    a = gate_a.remap(index)
    b = gate_b.remap(index)
    n = len(qubits)
    ab = circuit_unitary(Circuit(n, [a, b]))
    ba = circuit_unitary(Circuit(n, [b, a]))
    return np.allclose(ab, ba, atol=1e-9)


class TestTrivialCases:
    def test_disjoint_qubits_commute(self):
        assert commutes(Gate("cx", (0, 1)), Gate("cx", (2, 3)))

    def test_same_gate_commutes_with_itself(self):
        gate = Gate("cx", (0, 1))
        assert commutes(gate, gate)

    def test_measure_blocks_everything_on_its_qubit(self):
        assert not commutes(Gate("measure", (0,)), Gate("h", (0,)))
        assert commutes(Gate("measure", (0,)), Gate("h", (1,)))

    def test_barrier_blocks_shared_qubits(self):
        assert not commutes(Gate("barrier", (0, 1)), Gate("h", (0,)))

    def test_identity_commutes_with_everything(self):
        assert commutes(Gate("id", (0,)), Gate("h", (0,)))
        assert commutes(Gate("id", (1,)), Gate("cx", (0, 1)))


class TestSingleQubitRules:
    @pytest.mark.parametrize("a,b,expected", [
        (Gate("z", (0,)), Gate("rz", (0,), (0.3,)), True),
        (Gate("t", (0,)), Gate("s", (0,)), True),
        (Gate("x", (0,)), Gate("rx", (0,), (0.3,)), True),
        (Gate("x", (0,)), Gate("z", (0,)), False),
        (Gate("h", (0,)), Gate("t", (0,)), False),
        (Gate("h", (0,)), Gate("x", (0,)), False),
        (Gate("rz", (0,), (0.2,)), Gate("rz", (0,), (1.2,)), True),
        (Gate("ry", (0,), (0.2,)), Gate("ry", (0,), (1.2,)), True),
        (Gate("rx", (0,), (0.2,)), Gate("rz", (0,), (1.2,)), False),
    ])
    def test_single_qubit_pairs(self, a, b, expected):
        assert commutes(a, b) is expected
        assert matrix_says(a, b) is expected


class TestControlTargetRules:
    @pytest.mark.parametrize("single,expected", [
        (Gate("z", (0,)), True),
        (Gate("rz", (0,), (0.4,)), True),
        (Gate("t", (0,)), True),
        (Gate("s", (0,)), True),
        (Gate("x", (0,)), False),
        (Gate("h", (0,)), False),
    ])
    def test_single_qubit_on_cx_control(self, single, expected):
        cx = Gate("cx", (0, 1))
        assert commutes(single, cx) is expected
        assert matrix_says(single, cx) is expected

    @pytest.mark.parametrize("single,expected", [
        (Gate("x", (1,)), True),
        (Gate("rx", (1,), (0.4,)), True),
        (Gate("sx", (1,)), True),
        (Gate("z", (1,)), False),
        (Gate("t", (1,)), False),
        (Gate("h", (1,)), False),
    ])
    def test_single_qubit_on_cx_target(self, single, expected):
        cx = Gate("cx", (0, 1))
        assert commutes(single, cx) is expected
        assert matrix_says(single, cx) is expected

    def test_rz_on_cz_either_qubit(self):
        cz = Gate("cz", (0, 1))
        assert commutes(Gate("rz", (0,), (0.3,)), cz)
        assert commutes(Gate("rz", (1,), (0.3,)), cz)

    def test_rz_on_rzz_either_qubit(self):
        rzz = Gate("rzz", (0, 1), (0.5,))
        assert commutes(Gate("t", (0,)), rzz)
        assert commutes(Gate("rz", (1,), (0.1,)), rzz)

    def test_x_on_rzz_does_not_commute(self):
        assert not commutes(Gate("x", (0,)), Gate("rzz", (0, 1), (0.5,)))

    def test_z_on_ccx_controls(self):
        ccx = Gate("ccx", (0, 1, 2))
        assert commutes(Gate("t", (0,)), ccx)
        assert commutes(Gate("t", (1,)), ccx)
        assert not commutes(Gate("t", (2,)), ccx)
        assert commutes(Gate("x", (2,)), ccx)


class TestTwoQubitRules:
    def test_cx_same_control(self):
        assert commutes(Gate("cx", (0, 1)), Gate("cx", (0, 2)))

    def test_cx_same_target(self):
        assert commutes(Gate("cx", (0, 2)), Gate("cx", (1, 2)))

    def test_cx_control_meets_target(self):
        assert not commutes(Gate("cx", (0, 1)), Gate("cx", (1, 2)))

    def test_cx_reversed_pair(self):
        assert not commutes(Gate("cx", (0, 1)), Gate("cx", (1, 0)))

    def test_diagonal_two_qubit_gates_commute(self):
        assert commutes(Gate("cz", (0, 1)), Gate("crz", (1, 2), (0.3,)))
        assert commutes(Gate("rzz", (0, 1), (0.2,)), Gate("rzz", (1, 2), (0.4,)))
        assert commutes(Gate("cp", (0, 1), (0.2,)), Gate("cz", (0, 1)))

    def test_crz_with_cx_sharing_control(self):
        # CRZ is diagonal, so it commutes through the CX control.
        assert commutes(Gate("crz", (0, 2), (0.3,)), Gate("cx", (0, 1)))

    def test_rzz_with_cx_on_cx_target_does_not_commute(self):
        a = Gate("rzz", (1, 2), (0.3,))
        b = Gate("cx", (0, 1))
        assert commutes(a, b) is matrix_says(a, b)

    def test_swap_with_cx(self):
        a = Gate("swap", (0, 1))
        b = Gate("cx", (0, 1))
        assert commutes(a, b) is matrix_says(a, b)

    @pytest.mark.parametrize("a,b", [
        (Gate("cx", (0, 1)), Gate("cz", (0, 1))),
        (Gate("cx", (0, 1)), Gate("cz", (1, 2))),
        (Gate("cx", (0, 1)), Gate("rzz", (0, 2), (0.7,))),
        (Gate("crz", (0, 1), (0.5,)), Gate("crz", (1, 0), (0.5,))),
        (Gate("cy", (0, 1)), Gate("cx", (0, 1))),
        (Gate("rxx", (0, 1), (0.3,)), Gate("cx", (0, 1))),
        (Gate("ccx", (0, 1, 2)), Gate("cx", (0, 1))),
        (Gate("ccx", (0, 1, 2)), Gate("cx", (2, 3))),
    ])
    def test_mixed_pairs_match_matrix_ground_truth(self, a, b):
        assert commutes(a, b) is matrix_says(a, b)


class TestHelpers:
    def test_commutes_with_all(self):
        gate = Gate("rz", (0,), (0.4,))
        others = [Gate("cx", (0, 1)), Gate("t", (0,)), Gate("h", (2,))]
        assert commutes_with_all(gate, others)
        assert not commutes_with_all(Gate("h", (0,)), others)

    def test_commutes_through_sequence(self):
        sequence = [Gate("cx", (0, 1)), Gate("cx", (0, 2))]
        assert commutes_through(Gate("t", (0,)), sequence)
        assert not commutes_through(Gate("x", (0,)), sequence)

    def test_cache_can_be_cleared(self):
        assert commutes(Gate("cy", (0, 1)), Gate("ch", (0, 1))) is matrix_says(
            Gate("cy", (0, 1)), Gate("ch", (0, 1)))
        clear_commutation_cache()
        # Same query still answers consistently after a cache clear.
        assert commutes(Gate("cy", (0, 1)), Gate("ch", (0, 1))) is matrix_says(
            Gate("cy", (0, 1)), Gate("ch", (0, 1)))

    def test_matrix_fallback_direct(self):
        assert _matrix_commutes(Gate("t", (0,)), Gate("rz", (0,), (0.1,)))
        assert not _matrix_commutes(Gate("h", (0,)), Gate("t", (0,)))
