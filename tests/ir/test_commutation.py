"""Unit tests for the commutation engine.

Every structural rule is cross-checked against the exact matrix criterion so
a wrong fast path cannot silently corrupt the aggregation pass.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import Circuit, Gate, commutes, commutes_through, commutes_with_all
from repro.ir.commutation import (_matrix_commutes, clear_commutation_cache,
                                  commutation_cache_stats,
                                  set_commutation_cache_enabled)
from repro.ir.commutation_reference import commutes_reference
from repro.ir.simulator import circuit_unitary


def matrix_says(gate_a, gate_b):
    """Ground truth: compare the two orderings on the joint unitary."""
    qubits = sorted(set(gate_a.qubits) | set(gate_b.qubits))
    index = {q: i for i, q in enumerate(qubits)}
    a = gate_a.remap(index)
    b = gate_b.remap(index)
    n = len(qubits)
    ab = circuit_unitary(Circuit(n, [a, b]))
    ba = circuit_unitary(Circuit(n, [b, a]))
    return np.allclose(ab, ba, atol=1e-9)


class TestTrivialCases:
    def test_disjoint_qubits_commute(self):
        assert commutes(Gate("cx", (0, 1)), Gate("cx", (2, 3)))

    def test_same_gate_commutes_with_itself(self):
        gate = Gate("cx", (0, 1))
        assert commutes(gate, gate)

    def test_measure_blocks_everything_on_its_qubit(self):
        assert not commutes(Gate("measure", (0,)), Gate("h", (0,)))
        assert commutes(Gate("measure", (0,)), Gate("h", (1,)))

    def test_barrier_blocks_shared_qubits(self):
        assert not commutes(Gate("barrier", (0, 1)), Gate("h", (0,)))

    def test_identity_commutes_with_everything(self):
        assert commutes(Gate("id", (0,)), Gate("h", (0,)))
        assert commutes(Gate("id", (1,)), Gate("cx", (0, 1)))


class TestSingleQubitRules:
    @pytest.mark.parametrize("a,b,expected", [
        (Gate("z", (0,)), Gate("rz", (0,), (0.3,)), True),
        (Gate("t", (0,)), Gate("s", (0,)), True),
        (Gate("x", (0,)), Gate("rx", (0,), (0.3,)), True),
        (Gate("x", (0,)), Gate("z", (0,)), False),
        (Gate("h", (0,)), Gate("t", (0,)), False),
        (Gate("h", (0,)), Gate("x", (0,)), False),
        (Gate("rz", (0,), (0.2,)), Gate("rz", (0,), (1.2,)), True),
        (Gate("ry", (0,), (0.2,)), Gate("ry", (0,), (1.2,)), True),
        (Gate("rx", (0,), (0.2,)), Gate("rz", (0,), (1.2,)), False),
    ])
    def test_single_qubit_pairs(self, a, b, expected):
        assert commutes(a, b) is expected
        assert matrix_says(a, b) is expected


class TestControlTargetRules:
    @pytest.mark.parametrize("single,expected", [
        (Gate("z", (0,)), True),
        (Gate("rz", (0,), (0.4,)), True),
        (Gate("t", (0,)), True),
        (Gate("s", (0,)), True),
        (Gate("x", (0,)), False),
        (Gate("h", (0,)), False),
    ])
    def test_single_qubit_on_cx_control(self, single, expected):
        cx = Gate("cx", (0, 1))
        assert commutes(single, cx) is expected
        assert matrix_says(single, cx) is expected

    @pytest.mark.parametrize("single,expected", [
        (Gate("x", (1,)), True),
        (Gate("rx", (1,), (0.4,)), True),
        (Gate("sx", (1,)), True),
        (Gate("z", (1,)), False),
        (Gate("t", (1,)), False),
        (Gate("h", (1,)), False),
    ])
    def test_single_qubit_on_cx_target(self, single, expected):
        cx = Gate("cx", (0, 1))
        assert commutes(single, cx) is expected
        assert matrix_says(single, cx) is expected

    def test_rz_on_cz_either_qubit(self):
        cz = Gate("cz", (0, 1))
        assert commutes(Gate("rz", (0,), (0.3,)), cz)
        assert commutes(Gate("rz", (1,), (0.3,)), cz)

    def test_rz_on_rzz_either_qubit(self):
        rzz = Gate("rzz", (0, 1), (0.5,))
        assert commutes(Gate("t", (0,)), rzz)
        assert commutes(Gate("rz", (1,), (0.1,)), rzz)

    def test_x_on_rzz_does_not_commute(self):
        assert not commutes(Gate("x", (0,)), Gate("rzz", (0, 1), (0.5,)))

    def test_z_on_ccx_controls(self):
        ccx = Gate("ccx", (0, 1, 2))
        assert commutes(Gate("t", (0,)), ccx)
        assert commutes(Gate("t", (1,)), ccx)
        assert not commutes(Gate("t", (2,)), ccx)
        assert commutes(Gate("x", (2,)), ccx)


class TestTwoQubitRules:
    def test_cx_same_control(self):
        assert commutes(Gate("cx", (0, 1)), Gate("cx", (0, 2)))

    def test_cx_same_target(self):
        assert commutes(Gate("cx", (0, 2)), Gate("cx", (1, 2)))

    def test_cx_control_meets_target(self):
        assert not commutes(Gate("cx", (0, 1)), Gate("cx", (1, 2)))

    def test_cx_reversed_pair(self):
        assert not commutes(Gate("cx", (0, 1)), Gate("cx", (1, 0)))

    def test_diagonal_two_qubit_gates_commute(self):
        assert commutes(Gate("cz", (0, 1)), Gate("crz", (1, 2), (0.3,)))
        assert commutes(Gate("rzz", (0, 1), (0.2,)), Gate("rzz", (1, 2), (0.4,)))
        assert commutes(Gate("cp", (0, 1), (0.2,)), Gate("cz", (0, 1)))

    def test_crz_with_cx_sharing_control(self):
        # CRZ is diagonal, so it commutes through the CX control.
        assert commutes(Gate("crz", (0, 2), (0.3,)), Gate("cx", (0, 1)))

    def test_rzz_with_cx_on_cx_target_does_not_commute(self):
        a = Gate("rzz", (1, 2), (0.3,))
        b = Gate("cx", (0, 1))
        assert commutes(a, b) is matrix_says(a, b)

    def test_swap_with_cx(self):
        a = Gate("swap", (0, 1))
        b = Gate("cx", (0, 1))
        assert commutes(a, b) is matrix_says(a, b)

    @pytest.mark.parametrize("a,b", [
        (Gate("cx", (0, 1)), Gate("cz", (0, 1))),
        (Gate("cx", (0, 1)), Gate("cz", (1, 2))),
        (Gate("cx", (0, 1)), Gate("rzz", (0, 2), (0.7,))),
        (Gate("crz", (0, 1), (0.5,)), Gate("crz", (1, 0), (0.5,))),
        (Gate("cy", (0, 1)), Gate("cx", (0, 1))),
        (Gate("rxx", (0, 1), (0.3,)), Gate("cx", (0, 1))),
        (Gate("ccx", (0, 1, 2)), Gate("cx", (0, 1))),
        (Gate("ccx", (0, 1, 2)), Gate("cx", (2, 3))),
    ])
    def test_mixed_pairs_match_matrix_ground_truth(self, a, b):
        assert commutes(a, b) is matrix_says(a, b)


class TestHelpers:
    def test_commutes_with_all(self):
        gate = Gate("rz", (0,), (0.4,))
        others = [Gate("cx", (0, 1)), Gate("t", (0,)), Gate("h", (2,))]
        assert commutes_with_all(gate, others)
        assert not commutes_with_all(Gate("h", (0,)), others)

    def test_commutes_through_sequence(self):
        sequence = [Gate("cx", (0, 1)), Gate("cx", (0, 2))]
        assert commutes_through(Gate("t", (0,)), sequence)
        assert not commutes_through(Gate("x", (0,)), sequence)

    def test_cache_can_be_cleared(self):
        assert commutes(Gate("cy", (0, 1)), Gate("ch", (0, 1))) is matrix_says(
            Gate("cy", (0, 1)), Gate("ch", (0, 1)))
        clear_commutation_cache()
        # Same query still answers consistently after a cache clear.
        assert commutes(Gate("cy", (0, 1)), Gate("ch", (0, 1))) is matrix_says(
            Gate("cy", (0, 1)), Gate("ch", (0, 1)))

    def test_matrix_fallback_direct(self):
        assert _matrix_commutes(Gate("t", (0,)), Gate("rz", (0,), (0.1,)))
        assert not _matrix_commutes(Gate("h", (0,)), Gate("t", (0,)))


# ---------------------------------------------------------------------------
# Property test: rule paths agree with the exact matrix criterion
# ---------------------------------------------------------------------------

_PARAM_POOL = (0.3, 0.7, np.pi / 4, np.pi, -1.1)
_GATE_POOL = ("id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx",
              "rx", "ry", "rz", "p", "u3",
              "cx", "cz", "cy", "ch", "crz", "crx", "cry", "cp", "swap",
              "rzz", "rxx", "ccx", "ccz", "cswap")


@st.composite
def _random_gate(draw):
    from repro.ir import gate_spec

    name = draw(st.sampled_from(_GATE_POOL))
    spec = gate_spec(name)
    qubits = tuple(draw(st.permutations(range(4)))[:spec.num_qubits])
    params = tuple(draw(st.sampled_from(_PARAM_POOL))
                   for _ in range(spec.num_params))
    return Gate(name, qubits, params)


class TestRuleMatrixAgreement:
    """The rule-based fast paths must agree with the matrix ground truth."""

    @settings(max_examples=120, deadline=None)
    @given(_random_gate(), _random_gate())
    def test_commutes_matches_matrix(self, a, b):
        assert commutes(a, b) is matrix_says(a, b)

    @settings(max_examples=60, deadline=None)
    @given(_random_gate(), _random_gate())
    def test_optimized_matches_reference(self, a, b):
        assert commutes(a, b) is commutes_reference(a, b)

    @settings(max_examples=60, deadline=None)
    @given(_random_gate(), _random_gate())
    def test_cache_disabled_matches_enabled(self, a, b):
        enabled = commutes(a, b)
        previous = set_commutation_cache_enabled(False)
        try:
            assert commutes(a, b) is enabled
        finally:
            set_commutation_cache_enabled(previous)


class TestCacheStatistics:
    def setup_method(self):
        clear_commutation_cache()

    def teardown_method(self):
        clear_commutation_cache()

    def test_stats_track_hits_and_misses(self):
        # cy/ch has no structural rule, so it exercises the cached tier.
        a, b = Gate("cy", (0, 1)), Gate("ch", (0, 1))
        baseline = commutation_cache_stats()
        assert baseline["hits"] == baseline["misses"] == 0

        commutes(a, b)
        after_first = commutation_cache_stats()
        assert after_first["misses"] == 1
        assert after_first["matrix_decided"] == 1
        assert after_first["size"] == 1

        commutes(a, b)
        after_second = commutation_cache_stats()
        assert after_second["hits"] == 1
        assert after_second["misses"] == 1

    def test_same_pattern_shares_one_entry(self):
        commutes(Gate("cy", (0, 1)), Gate("ch", (0, 1)))
        # Same structural overlap on different concrete qubits: cache hit.
        commutes(Gate("cy", (5, 9)), Gate("ch", (5, 9)))
        stats = commutation_cache_stats()
        assert stats["hits"] == 1
        assert stats["size"] == 1

    def test_fast_rules_bypass_cache(self):
        commutes(Gate("cx", (0, 1)), Gate("cx", (0, 2)))
        commutes(Gate("rz", (0,), (0.2,)), Gate("rz", (0,), (0.4,)))
        stats = commutation_cache_stats()
        assert stats["hits"] == stats["misses"] == 0

    def test_clear_resets_everything(self):
        commutes(Gate("cy", (0, 1)), Gate("ch", (0, 1)))
        clear_commutation_cache()
        stats = commutation_cache_stats()
        assert stats == {"hits": 0, "misses": 0, "rule_decided": 0,
                         "matrix_decided": 0, "size": 0,
                         "matrix_cache_size": 0}

    def test_disabling_cache_stops_population(self):
        previous = set_commutation_cache_enabled(False)
        try:
            commutes(Gate("cy", (0, 1)), Gate("ch", (0, 1)))
            assert commutation_cache_stats()["size"] == 0
        finally:
            set_commutation_cache_enabled(previous)
