"""Unit tests for OpenQASM 2.0 import/export."""

import math

import pytest

from repro.ir import Circuit, from_qasm, to_qasm
from repro.ir.qasm import QasmError
from repro.ir.simulator import circuit_unitary, unitaries_equal_up_to_global_phase


class TestExport:
    def test_header_and_register(self):
        text = to_qasm(Circuit(3).h(0))
        assert "OPENQASM 2.0;" in text
        assert "qreg q[3];" in text

    def test_gate_lines(self):
        text = to_qasm(Circuit(2).h(0).cx(0, 1))
        assert "h q[0];" in text
        assert "cx q[0],q[1];" in text

    def test_parameterised_gate(self):
        text = to_qasm(Circuit(1).rz(0.5, 0))
        assert "rz(0.5) q[0];" in text

    def test_pi_fraction_rendering(self):
        text = to_qasm(Circuit(1).rz(math.pi / 4, 0))
        assert "rz(pi/4) q[0];" in text

    def test_negative_pi_fraction(self):
        text = to_qasm(Circuit(1).rz(-math.pi / 2, 0))
        assert "rz(-pi/2) q[0];" in text

    def test_p_exported_as_u1(self):
        text = to_qasm(Circuit(1).p(0.3, 0))
        assert "u1(0.3) q[0];" in text

    def test_measure_creates_creg(self):
        text = to_qasm(Circuit(2).measure(1))
        assert "creg c[2];" in text
        assert "measure q[1] -> c[1];" in text

    def test_barrier(self):
        text = to_qasm(Circuit(2).barrier([0, 1]))
        assert "barrier q[0],q[1];" in text


class TestImport:
    def test_simple_roundtrip(self):
        circuit = Circuit(3).h(0).cx(0, 1).rz(0.25, 2).crz(0.5, 0, 2)
        parsed = from_qasm(to_qasm(circuit))
        assert parsed == circuit

    def test_roundtrip_preserves_unitary(self):
        circuit = (Circuit(3).h(0).t(1).cx(0, 1).rz(math.pi / 8, 2)
                   .crz(0.7, 2, 0).swap(1, 2))
        parsed = from_qasm(to_qasm(circuit))
        assert unitaries_equal_up_to_global_phase(
            circuit_unitary(circuit), circuit_unitary(parsed))

    def test_u1_imported_as_p(self):
        circuit = from_qasm('OPENQASM 2.0;\nqreg q[1];\nu1(0.5) q[0];\n')
        assert circuit[0].name == "p"

    def test_cnot_alias(self):
        circuit = from_qasm('OPENQASM 2.0;\nqreg q[2];\ncnot q[0],q[1];\n')
        assert circuit[0].name == "cx"

    def test_comments_and_blank_lines_skipped(self):
        text = 'OPENQASM 2.0;\n\n// a comment\nqreg q[1];\nh q[0]; // trailing\n'
        circuit = from_qasm(text)
        assert len(circuit) == 1

    def test_pi_expression_parsing(self):
        circuit = from_qasm('OPENQASM 2.0;\nqreg q[1];\nrz(pi/2) q[0];\n')
        assert circuit[0].params[0] == pytest.approx(math.pi / 2)

    def test_measure_parsing(self):
        circuit = from_qasm('OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\n'
                            'measure q[1] -> c[1];\n')
        assert circuit[0].name == "measure"
        assert circuit[0].qubits == (1,)

    def test_missing_qreg_rejected(self):
        with pytest.raises(QasmError):
            from_qasm('OPENQASM 2.0;\nh q[0];\n')

    def test_unknown_gate_rejected(self):
        with pytest.raises(QasmError):
            from_qasm('OPENQASM 2.0;\nqreg q[1];\nmystery q[0];\n')

    def test_malicious_angle_rejected(self):
        with pytest.raises(QasmError):
            from_qasm('OPENQASM 2.0;\nqreg q[1];\nrz(__import__) q[0];\n')

    def test_empty_program_rejected(self):
        with pytest.raises(QasmError):
            from_qasm('OPENQASM 2.0;\n')
