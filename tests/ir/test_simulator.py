"""Unit tests for the statevector simulator."""

import math

import numpy as np
import pytest

from repro.ir import Circuit, Gate
from repro.ir.simulator import (
    apply_gate,
    circuit_unitary,
    fidelity,
    purity,
    random_statevector,
    reduced_density_matrix,
    simulate,
    states_equal_up_to_global_phase,
    unitaries_equal_up_to_global_phase,
    zero_state,
)


class TestBasics:
    def test_zero_state(self):
        state = zero_state(3)
        assert state.shape == (8,)
        assert state[0] == 1.0
        assert np.count_nonzero(state) == 1

    def test_random_statevector_is_normalised(self):
        state = random_statevector(4, seed=3)
        assert abs(np.linalg.norm(state) - 1.0) < 1e-12

    def test_random_statevector_reproducible(self):
        assert np.allclose(random_statevector(3, seed=5),
                           random_statevector(3, seed=5))

    def test_h_gate_creates_superposition(self):
        state = simulate(Circuit(1).h(0))
        assert np.allclose(state, np.array([1, 1]) / math.sqrt(2))

    def test_x_gate_flips(self):
        state = simulate(Circuit(1).x(0))
        assert np.allclose(state, [0, 1])

    def test_bell_state(self):
        state = simulate(Circuit(2).h(0).cx(0, 1))
        expected = np.zeros(4, dtype=complex)
        expected[0] = expected[3] = 1 / math.sqrt(2)
        assert np.allclose(state, expected)

    def test_qubit_ordering_msb_first(self):
        # X on qubit 0 of two qubits should set index 2 (binary 10).
        state = simulate(Circuit(2).x(0))
        assert np.argmax(np.abs(state)) == 2

    def test_initial_state_respected(self):
        initial = np.array([0, 1], dtype=complex)
        state = simulate(Circuit(1).x(0), initial_state=initial)
        assert np.allclose(state, [1, 0])

    def test_initial_state_dimension_checked(self):
        with pytest.raises(ValueError):
            simulate(Circuit(2), initial_state=np.array([1, 0]))

    def test_too_many_qubits_rejected(self):
        with pytest.raises(ValueError):
            simulate(Circuit(21))

    def test_barrier_is_noop(self):
        a = simulate(Circuit(2).h(0).barrier().cx(0, 1))
        b = simulate(Circuit(2).h(0).cx(0, 1))
        assert np.allclose(a, b)


class TestMeasurement:
    def test_measurement_requires_seed(self):
        with pytest.raises(ValueError):
            simulate(Circuit(1).h(0).measure(0))

    def test_measurement_collapses_to_basis_state(self):
        state = simulate(Circuit(1).h(0).measure(0), seed=11)
        assert np.count_nonzero(np.abs(state) > 1e-9) == 1

    def test_measurement_on_definite_state_is_deterministic(self):
        state = simulate(Circuit(1).x(0).measure(0), seed=0)
        assert np.allclose(np.abs(state), [0, 1])

    def test_reset_returns_to_zero(self):
        state = simulate(Circuit(1).x(0).reset(0), seed=1)
        assert np.allclose(np.abs(state), [1, 0])

    def test_reset_after_superposition(self):
        state = simulate(Circuit(2).h(0).reset(0), seed=2)
        # Qubit 0 is |0>; full state should have support only on indices 0..1.
        assert np.allclose(np.abs(state[2:]), 0)


class TestUnitary:
    def test_circuit_unitary_of_cx(self):
        unitary = circuit_unitary(Circuit(2).cx(0, 1))
        assert np.allclose(unitary, Gate("cx", (0, 1)).unitary())

    def test_circuit_unitary_respects_order(self):
        circuit = Circuit(1).h(0).s(0)
        unitary = circuit_unitary(circuit)
        expected = Gate("s", (0,)).unitary() @ Gate("h", (0,)).unitary()
        assert np.allclose(unitary, expected)

    def test_circuit_unitary_rejects_measure(self):
        with pytest.raises(ValueError):
            circuit_unitary(Circuit(1).measure(0))

    def test_circuit_unitary_rejects_large(self):
        with pytest.raises(ValueError):
            circuit_unitary(Circuit(11))

    def test_swap_unitary_via_three_cx(self):
        swapped = circuit_unitary(Circuit(2).cx(0, 1).cx(1, 0).cx(0, 1))
        assert np.allclose(swapped, Gate("swap", (0, 1)).unitary())

    def test_gate_on_nonadjacent_qubits(self):
        # CX between qubits 0 and 2 of a 3-qubit register.
        unitary = circuit_unitary(Circuit(3).cx(0, 2))
        state = unitary @ zero_state(3)
        assert np.allclose(state, zero_state(3))
        flipped = unitary[:, 0b100]
        assert abs(flipped[0b101]) == pytest.approx(1.0)


class TestDensityMatrixHelpers:
    def test_reduced_density_matrix_of_product_state(self):
        state = simulate(Circuit(2).x(1))
        rho = reduced_density_matrix(state, [0], 2)
        assert np.allclose(rho, [[1, 0], [0, 0]])

    def test_reduced_density_matrix_of_bell_state_is_mixed(self):
        state = simulate(Circuit(2).h(0).cx(0, 1))
        rho = reduced_density_matrix(state, [0], 2)
        assert np.allclose(rho, np.eye(2) / 2)
        assert purity(rho) == pytest.approx(0.5)

    def test_purity_of_pure_state(self):
        state = random_statevector(2, seed=4)
        rho = np.outer(state, state.conj())
        assert purity(rho) == pytest.approx(1.0)

    def test_fidelity_pure_pure(self):
        a = zero_state(1)
        b = simulate(Circuit(1).h(0))
        assert fidelity(a, a) == pytest.approx(1.0)
        assert fidelity(a, b) == pytest.approx(0.5)

    def test_fidelity_pure_mixed(self):
        state = simulate(Circuit(2).h(0).cx(0, 1))
        rho = reduced_density_matrix(state, [0], 2)
        assert fidelity(zero_state(1), rho) == pytest.approx(0.5)


class TestEquivalenceChecks:
    def test_states_equal_up_to_global_phase(self):
        state = random_statevector(3, seed=9)
        assert states_equal_up_to_global_phase(state, np.exp(1j * 0.7) * state)

    def test_states_not_equal(self):
        assert not states_equal_up_to_global_phase(zero_state(1),
                                                   np.array([0, 1], dtype=complex))

    def test_states_different_shapes(self):
        assert not states_equal_up_to_global_phase(zero_state(1), zero_state(2))

    def test_unitaries_equal_up_to_global_phase(self):
        theta = 0.9
        rz = Gate("rz", (0,), (theta,)).unitary()
        p = Gate("p", (0,), (theta,)).unitary()
        assert unitaries_equal_up_to_global_phase(rz, p)

    def test_unitaries_not_equal(self):
        assert not unitaries_equal_up_to_global_phase(
            Gate("x", (0,)).unitary(), Gate("z", (0,)).unitary())


class TestApplyGate:
    def test_apply_gate_matches_unitary(self):
        state = random_statevector(3, seed=21)
        gate = Gate("crz", (2, 0), (0.8,))
        direct = apply_gate(state.copy(), gate, 3)
        via_unitary = circuit_unitary(Circuit(3, [gate])) @ state
        assert np.allclose(direct, via_unitary)

    def test_apply_preserves_norm(self):
        state = random_statevector(4, seed=22)
        for gate in [Gate("h", (2,)), Gate("cx", (1, 3)), Gate("rzz", (0, 2), (0.4,))]:
            state = apply_gate(state, gate, 4)
        assert abs(np.linalg.norm(state) - 1.0) < 1e-10
