"""Unit tests for CX-basis decomposition."""

import numpy as np
import pytest

from repro.ir import Circuit, Gate, decompose_gate, decompose_to_cx, mct_v_chain
from repro.ir.decompose import CX_BASIS
from repro.ir.simulator import (
    circuit_unitary,
    simulate,
    unitaries_equal_up_to_global_phase,
)

DECOMPOSABLE = [
    Gate("cz", (0, 1)),
    Gate("cy", (0, 1)),
    Gate("ch", (0, 1)),
    Gate("crz", (0, 1), (0.73,)),
    Gate("crx", (0, 1), (1.21,)),
    Gate("cry", (0, 1), (0.31,)),
    Gate("cp", (0, 1), (2.2,)),
    Gate("swap", (0, 1)),
    Gate("rzz", (0, 1), (0.9,)),
    Gate("rxx", (0, 1), (0.4,)),
    Gate("ccx", (0, 1, 2)),
    Gate("ccz", (0, 1, 2)),
    Gate("cswap", (0, 1, 2)),
]


class TestGateDecompositions:
    @pytest.mark.parametrize("gate", DECOMPOSABLE, ids=lambda g: g.name)
    def test_decomposition_preserves_unitary(self, gate):
        n = max(gate.qubits) + 1
        original = circuit_unitary(Circuit(n, [gate]))
        decomposed = circuit_unitary(Circuit(n, decompose_gate(gate)))
        assert unitaries_equal_up_to_global_phase(original, decomposed)

    @pytest.mark.parametrize("gate", DECOMPOSABLE, ids=lambda g: g.name)
    def test_decomposition_only_uses_cx_basis(self, gate):
        for sub in decompose_gate(gate):
            assert sub.name in CX_BASIS

    def test_basis_gates_pass_through(self):
        gate = Gate("rz", (0,), (0.5,))
        assert decompose_gate(gate) == [gate]

    def test_cx_passes_through(self):
        gate = Gate("cx", (1, 0))
        assert decompose_gate(gate) == [gate]

    def test_measure_passes_through(self):
        gate = Gate("measure", (0,))
        assert decompose_gate(gate) == [gate]

    def test_crz_uses_two_cx(self):
        gates = decompose_gate(Gate("crz", (0, 1), (0.3,)))
        assert sum(1 for g in gates if g.name == "cx") == 2

    def test_rzz_uses_two_cx(self):
        gates = decompose_gate(Gate("rzz", (0, 1), (0.3,)))
        assert sum(1 for g in gates if g.name == "cx") == 2

    def test_swap_uses_three_cx(self):
        gates = decompose_gate(Gate("swap", (0, 1)))
        assert [g.name for g in gates] == ["cx", "cx", "cx"]

    def test_ccx_uses_six_cx(self):
        gates = decompose_gate(Gate("ccx", (0, 1, 2)))
        assert sum(1 for g in gates if g.name == "cx") == 6

    def test_decomposition_respects_qubit_labels(self):
        gates = decompose_gate(Gate("crz", (4, 2), (0.3,)))
        touched = {q for g in gates for q in g.qubits}
        assert touched == {2, 4}


class TestCircuitDecomposition:
    def test_decompose_to_cx_structure(self):
        circuit = Circuit(3).h(0).crz(0.4, 0, 1).rzz(0.2, 1, 2).ccx(0, 1, 2)
        out = decompose_to_cx(circuit)
        assert all(g.name in CX_BASIS for g in out)
        assert out.num_qubits == 3

    def test_decompose_to_cx_preserves_unitary(self):
        circuit = (Circuit(3).h(0).crz(0.4, 0, 1).swap(1, 2)
                   .rzz(0.2, 0, 2).cp(0.7, 2, 1).ccx(0, 1, 2))
        original = circuit_unitary(circuit)
        decomposed = circuit_unitary(decompose_to_cx(circuit))
        assert unitaries_equal_up_to_global_phase(original, decomposed)

    def test_decompose_preserves_name(self):
        circuit = Circuit(2, name="my-prog").cz(0, 1)
        assert decompose_to_cx(circuit).name == "my-prog"

    def test_decompose_empty_circuit(self):
        out = decompose_to_cx(Circuit(4))
        assert len(out) == 0
        assert out.num_qubits == 4

    def test_decompose_is_idempotent(self):
        circuit = Circuit(3).crz(0.4, 0, 1).ccx(0, 1, 2)
        once = decompose_to_cx(circuit)
        twice = decompose_to_cx(once)
        assert once == twice


class TestMCTVChain:
    def test_single_control_is_cx(self):
        circuit = mct_v_chain([0], 1, [])
        assert [g.name for g in circuit] == ["cx"]

    def test_two_controls_is_ccx(self):
        circuit = mct_v_chain([0, 1], 2, [])
        assert [g.name for g in circuit] == ["ccx"]

    def test_missing_ancillas_rejected(self):
        with pytest.raises(ValueError):
            mct_v_chain([0, 1, 2, 3], 4, [])

    def test_no_controls_rejected(self):
        with pytest.raises(ValueError):
            mct_v_chain([], 1, [])

    @pytest.mark.parametrize("num_controls", [3, 4, 5])
    def test_v_chain_computes_logical_and(self, num_controls):
        controls = list(range(num_controls))
        ancillas = list(range(num_controls, 2 * num_controls - 2))
        target = 2 * num_controls - 2
        circuit = mct_v_chain(controls, target, ancillas)
        n = circuit.num_qubits

        # All controls set: the target flips and the ancillas are restored.
        prep = Circuit(n)
        for c in controls:
            prep.x(c)
        prep.extend(circuit.gates)
        state = simulate(prep)
        index = np.argmax(np.abs(state))
        bits = [(index >> (n - 1 - q)) & 1 for q in range(n)]
        assert bits[target] == 1
        assert all(bits[a] == 0 for a in ancillas)

    def test_v_chain_does_not_fire_with_one_control_missing(self):
        controls, ancillas, target = [0, 1, 2], [3], 4
        circuit = mct_v_chain(controls, target, ancillas)
        prep = Circuit(circuit.num_qubits)
        prep.x(0).x(1)  # control 2 left at |0>
        prep.extend(circuit.gates)
        state = simulate(prep)
        index = np.argmax(np.abs(state))
        target_bit = (index >> (circuit.num_qubits - 1 - target)) & 1
        assert target_bit == 0

    def test_v_chain_ancillas_restored_on_random_control_pattern(self):
        controls, ancillas, target = [0, 1, 2, 3], [4, 5], 6
        circuit = mct_v_chain(controls, target, ancillas)
        prep = Circuit(circuit.num_qubits)
        prep.x(0).x(2)
        prep.extend(circuit.gates)
        state = simulate(prep)
        index = np.argmax(np.abs(state))
        bits = [(index >> (circuit.num_qubits - 1 - q)) & 1
                for q in range(circuit.num_qubits)]
        assert bits[4] == 0 and bits[5] == 0
        assert bits[target] == 0
