"""Unit tests for qubit-to-node mappings."""

import pytest

from repro.hardware import uniform_network
from repro.ir import Circuit, Gate
from repro.partition import QubitMapping, block_mapping, round_robin_mapping


class TestConstruction:
    def test_basic(self):
        mapping = QubitMapping({0: 0, 1: 0, 2: 1, 3: 1})
        assert mapping.num_qubits == 4
        assert mapping.num_nodes == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            QubitMapping({})

    def test_gap_in_qubits_rejected(self):
        with pytest.raises(ValueError):
            QubitMapping({0: 0, 2: 1})

    def test_capacity_validated_against_network(self):
        network = uniform_network(2, 2)
        QubitMapping({0: 0, 1: 0, 2: 1, 3: 1}, network)  # fits
        with pytest.raises(ValueError):
            QubitMapping({0: 0, 1: 0, 2: 0, 3: 1}, network)  # node 0 over capacity

    def test_unknown_node_rejected(self):
        network = uniform_network(2, 4)
        with pytest.raises(ValueError):
            QubitMapping({0: 0, 1: 5}, network)

    def test_equality(self):
        a = QubitMapping({0: 0, 1: 1})
        b = QubitMapping({0: 0, 1: 1})
        c = QubitMapping({0: 1, 1: 0})
        assert a == b
        assert a != c


class TestQueries:
    @pytest.fixture
    def mapping(self):
        return QubitMapping({0: 0, 1: 0, 2: 1, 3: 1, 4: 2})

    def test_node_of(self, mapping):
        assert mapping.node_of(0) == 0
        assert mapping.node_of(4) == 2

    def test_qubits_on(self, mapping):
        assert mapping.qubits_on(0) == (0, 1)
        assert mapping.qubits_on(2) == (4,)

    def test_as_dict_is_copy(self, mapping):
        data = mapping.as_dict()
        data[0] = 99
        assert mapping.node_of(0) == 0

    def test_is_remote(self, mapping):
        assert mapping.is_remote(Gate("cx", (0, 2)))
        assert not mapping.is_remote(Gate("cx", (0, 1)))
        assert not mapping.is_remote(Gate("h", (0,)))

    def test_nodes_of(self, mapping):
        assert mapping.nodes_of(Gate("cx", (1, 4))) == (0, 2)
        assert mapping.nodes_of(Gate("ccx", (0, 2, 4))) == (0, 1, 2)

    def test_remote_gates_and_count(self, mapping):
        circuit = Circuit(5).cx(0, 1).cx(0, 2).cx(2, 3).cx(3, 4).h(0)
        remote = mapping.remote_gates(circuit)
        assert [i for i, _ in remote] == [1, 3]
        assert mapping.count_remote_gates(circuit) == 2

    def test_remote_pair_histogram(self, mapping):
        circuit = Circuit(5).cx(0, 2).cx(1, 2).cx(0, 3)
        histogram = mapping.remote_pair_histogram(circuit)
        assert histogram[(2, 0)] == 2      # q2 interacts twice with node 0
        assert histogram[(0, 1)] == 2      # q0 interacts twice with node 1
        assert histogram[(3, 0)] == 1

    def test_with_swapped(self, mapping):
        swapped = mapping.with_swapped(0, 4)
        assert swapped.node_of(0) == 2
        assert swapped.node_of(4) == 0
        assert mapping.node_of(0) == 0  # original untouched


class TestFactories:
    def test_round_robin(self):
        network = uniform_network(3, 4)
        mapping = round_robin_mapping(9, network)
        assert mapping.node_of(0) == 0
        assert mapping.node_of(1) == 1
        assert mapping.node_of(3) == 0
        assert mapping.node_of(8) == 2

    def test_block_mapping(self):
        network = uniform_network(3, 4)
        mapping = block_mapping(10, network)
        assert mapping.qubits_on(0) == (0, 1, 2, 3)
        assert mapping.qubits_on(1) == (4, 5, 6, 7)
        assert mapping.qubits_on(2) == (8, 9)

    def test_block_mapping_capacity_exceeded(self):
        network = uniform_network(2, 3)
        with pytest.raises(ValueError):
            block_mapping(7, network)
