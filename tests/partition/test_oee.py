"""Unit tests for the interaction graph and OEE partitioner."""

import pytest

from repro.circuits import qft_circuit, bv_circuit
from repro.hardware import apply_topology, uniform_network
from repro.ir import Circuit
from repro.partition import (
    block_mapping,
    cut_weight,
    exchange_gain,
    interaction_graph,
    interaction_matrix,
    migration_distance_matrix,
    oee_partition,
    oee_repartition,
    round_robin_mapping,
)


class TestInteractionGraph:
    def test_all_qubits_present(self):
        graph = interaction_graph(Circuit(5).cx(0, 1))
        assert set(graph.nodes) == {0, 1, 2, 3, 4}

    def test_edge_weights_count_interactions(self):
        circuit = Circuit(3).cx(0, 1).cx(1, 0).crz(0.3, 1, 2)
        graph = interaction_graph(circuit)
        assert graph[0][1]["weight"] == 2
        assert graph[1][2]["weight"] == 1
        assert not graph.has_edge(0, 2)

    def test_single_qubit_gates_ignored(self):
        graph = interaction_graph(Circuit(3).h(0).rz(0.3, 1))
        assert graph.number_of_edges() == 0

    def test_interaction_matrix_symmetric(self):
        circuit = Circuit(3).cx(0, 2).cx(0, 2).cx(1, 2)
        matrix = interaction_matrix(circuit)
        assert matrix[0, 2] == 2
        assert matrix[2, 0] == 2
        assert matrix[1, 2] == 1
        assert matrix[0, 1] == 0

    def test_cut_weight(self):
        circuit = Circuit(4).cx(0, 1).cx(1, 2).cx(2, 3)
        graph = interaction_graph(circuit)
        same_node = {0: 0, 1: 0, 2: 0, 3: 0}
        split = {0: 0, 1: 0, 2: 1, 3: 1}
        assert cut_weight(graph, same_node) == 0
        assert cut_weight(graph, split) == 1


class TestExchangeGain:
    def test_positive_gain_for_obvious_improvement(self):
        # Chain 0-1 2-3 but 1 and 2 are swapped across nodes.
        circuit = Circuit(4).cx(0, 1).cx(0, 1).cx(2, 3).cx(2, 3)
        graph = interaction_graph(circuit)
        weights = {q: dict(graph[q]) for q in graph.nodes}
        weights = {q: {n: d["weight"] for n, d in graph[q].items()} for q in graph.nodes}
        bad = {0: 0, 1: 1, 2: 0, 3: 1}
        gain = exchange_gain(weights, bad, 1, 2)
        assert gain == pytest.approx(4.0)

    def test_zero_gain_same_node(self):
        circuit = Circuit(4).cx(0, 1)
        graph = interaction_graph(circuit)
        weights = {q: {n: d["weight"] for n, d in graph[q].items()} for q in graph.nodes}
        assignment = {0: 0, 1: 0, 2: 1, 3: 1}
        assert exchange_gain(weights, assignment, 0, 1) == 0.0


class TestOEE:
    def test_oee_never_worse_than_initial(self):
        circuit = qft_circuit(12)
        network = uniform_network(3, 4)
        result = oee_partition(circuit, network)
        assert result.final_cut <= result.initial_cut

    def test_oee_recovers_obvious_clusters(self):
        # Two independent fully-local clusters scrambled by a round-robin start.
        circuit = Circuit(8)
        for _ in range(3):
            for (a, b) in [(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7)]:
                circuit.cx(a, b)
        network = uniform_network(2, 4)
        scrambled = round_robin_mapping(8, network)
        result = oee_partition(circuit, network, initial=scrambled)
        assert result.final_cut == 0

    def test_oee_respects_capacity(self):
        circuit = qft_circuit(9)
        network = uniform_network(3, 3)
        result = oee_partition(circuit, network)
        for node in range(3):
            assert len(result.mapping.qubits_on(node)) <= 3

    def test_oee_capacity_error(self):
        circuit = qft_circuit(10)
        network = uniform_network(2, 4)
        with pytest.raises(ValueError):
            oee_partition(circuit, network)

    def test_oee_mapping_covers_all_qubits(self):
        circuit = bv_circuit(12)
        network = uniform_network(3, 4)
        mapping = oee_partition(circuit, network).mapping
        assert mapping.num_qubits == 12

    def test_oee_counts_match_cut(self):
        circuit = qft_circuit(10)
        network = uniform_network(2, 5)
        result = oee_partition(circuit, network)
        graph = interaction_graph(circuit)
        assert cut_weight(graph, result.mapping.as_dict()) == result.final_cut

    def test_oee_on_circuit_with_no_interactions(self):
        circuit = Circuit(6).h(0).h(1).h(2)
        network = uniform_network(2, 3)
        result = oee_partition(circuit, network)
        assert result.initial_cut == 0
        assert result.final_cut == 0
        assert result.num_exchanges == 0

    def test_repr_mentions_cut(self):
        circuit = qft_circuit(8)
        network = uniform_network(2, 4)
        result = oee_partition(circuit, network)
        assert "cut" in repr(result)


class TestMigrationDistanceMatrix:
    def test_unrouted_network_charges_unit_moves(self):
        network = uniform_network(3, 2)
        matrix = migration_distance_matrix(network)
        assert matrix == [[0.0, 1.0, 1.0], [1.0, 0.0, 1.0], [1.0, 1.0, 0.0]]

    def test_routed_network_uses_cost_matrix(self):
        network = uniform_network(4, 2)
        apply_topology(network, "line")
        matrix = migration_distance_matrix(network)
        assert matrix == network.routing.cost_matrix()
        assert matrix[0][3] == 3


class TestOEERepartition:
    def _line_network(self):
        network = uniform_network(4, 2)
        apply_topology(network, "line")
        return network

    def test_no_interactions_returns_previous_mapping(self):
        network = self._line_network()
        previous = block_mapping(8, network)
        circuit = Circuit(8).h(0).h(5)
        result = oee_repartition(circuit, network, previous)
        assert result.mapping.as_dict() == previous.as_dict()
        assert result.migration_moves == 0
        assert result.migration_cost == 0.0

    def test_small_gain_does_not_beat_migration_bill(self):
        # One lone remote CX between adjacent nodes: colocating would save
        # distance 1 per endpoint moved but cost at least 1 per move.
        network = self._line_network()
        previous = block_mapping(8, network)
        circuit = Circuit(8).cx(1, 2)
        result = oee_repartition(circuit, network, previous)
        assert result.migration_moves == 0
        assert result.mapping.as_dict() == previous.as_dict()

    def test_heavy_phase_traffic_triggers_migration(self):
        # Many bursts between the line's far ends: savings of 3 hops per
        # gate dwarf the migration distance, so the qubits converge.
        network = self._line_network()
        previous = block_mapping(8, network)
        circuit = Circuit(8)
        for _ in range(10):
            circuit.cx(0, 7)
        result = oee_repartition(circuit, network, previous)
        assert result.migration_moves > 0
        mapping = result.mapping
        distance = network.routing.cost_matrix()
        assert (distance[mapping.node_of(0)][mapping.node_of(7)]
                < distance[previous.node_of(0)][previous.node_of(7)])

    def test_migration_cost_matches_moved_distances(self):
        network = self._line_network()
        previous = block_mapping(8, network)
        circuit = Circuit(8)
        for _ in range(10):
            circuit.cx(0, 7)
        result = oee_repartition(circuit, network, previous)
        matrix = migration_distance_matrix(network)
        expected = sum(
            matrix[previous.node_of(q)][result.mapping.node_of(q)]
            for q in range(8)
            if result.mapping.node_of(q) != previous.node_of(q))
        assert result.migration_cost == pytest.approx(expected)
        assert result.migration_moves == sum(
            1 for q in range(8)
            if result.mapping.node_of(q) != previous.node_of(q))

    def test_exchanges_preserve_node_loads(self):
        network = self._line_network()
        previous = block_mapping(8, network)
        circuit = qft_circuit(8)
        result = oee_repartition(circuit, network, previous)
        for node in range(4):
            assert (len(result.mapping.qubits_on(node))
                    == len(previous.qubits_on(node)))

    def test_free_moves_with_zero_migration_costs(self):
        # With the migration bill zeroed out the pass degenerates to a
        # plain OEE improvement of the seed, so an obviously bad seed on
        # heavy far-end traffic must be repaired.
        network = self._line_network()
        previous = block_mapping(8, network)
        circuit = Circuit(8)
        for _ in range(3):
            circuit.cx(0, 7)
        zero = [[0.0] * 4 for _ in range(4)]
        free = oee_repartition(circuit, network, previous,
                               migration_costs=zero)
        billed = oee_repartition(circuit, network, previous)
        assert free.final_cut <= billed.final_cut
        assert free.migration_cost == 0.0

    def test_qubit_count_mismatch_rejected(self):
        network = self._line_network()
        previous = block_mapping(6, network)
        with pytest.raises(ValueError):
            oee_repartition(Circuit(8), network, previous)
