"""Equivalence of the vectorized OEE search against the scalar reference.

The numpy search in :mod:`repro.partition.oee` must reproduce the preserved
scalar implementation bit-for-bit: same mappings, cuts, exchange counts,
rounds and migration bills on every benchmark family, topology and remap
mode — that is what guarantees every compiled program downstream is
unchanged by the rewrite.
"""

import pytest

from repro.circuits import (bv_circuit, mctr_circuit, qaoa_maxcut_circuit,
                            qft_circuit, rca_circuit_for_width)
from repro.core import AutoCommConfig, compile_autocomm
from repro.hardware import LinkModel, LinkSpec, apply_topology, uniform_network
from repro.partition import (
    exchange_gain,
    exchange_gain_vector,
    interaction_matrix,
    oee_partition,
    oee_partition_reference,
    oee_repartition_reference,
    round_robin_mapping,
)
from repro.partition.oee import _oee_partition, _oee_repartition
from repro.partition.interaction_graph import interaction_graph

FAMILIES = [
    ("qft", lambda: qft_circuit(18)),
    ("bv", lambda: bv_circuit(20)),
    ("qaoa", lambda: qaoa_maxcut_circuit(16, seed=3)),
    ("rca", lambda: rca_circuit_for_width(17)),
    ("mctr", lambda: mctr_circuit(18)),
]
TOPOLOGIES = [None, "line", "ring", "grid", "star"]


def _network(num_qubits, nodes, topology):
    network = uniform_network(nodes, -(-num_qubits // nodes))
    if topology is not None:
        apply_topology(network, topology)
    return network


def assert_results_equal(reference, vectorized):
    assert vectorized.mapping.as_dict() == reference.mapping.as_dict()
    assert vectorized.initial_cut == reference.initial_cut
    assert vectorized.final_cut == reference.final_cut
    assert vectorized.num_exchanges == reference.num_exchanges
    assert vectorized.rounds == reference.rounds
    assert vectorized.migration_moves == reference.migration_moves
    assert vectorized.migration_cost == reference.migration_cost


class TestPartitionEquivalence:
    @pytest.mark.parametrize("family,make", FAMILIES,
                             ids=[f[0] for f in FAMILIES])
    @pytest.mark.parametrize("topology", TOPOLOGIES,
                             ids=[t or "all-to-all" for t in TOPOLOGIES])
    @pytest.mark.parametrize("nodes", [2, 4])
    def test_partition_matches_reference(self, family, make, topology, nodes):
        circuit = make()
        network = _network(circuit.num_qubits, nodes, topology)
        assert_results_equal(oee_partition_reference(circuit, network),
                             _oee_partition(circuit, network))

    @pytest.mark.parametrize("family,make", FAMILIES,
                             ids=[f[0] for f in FAMILIES])
    @pytest.mark.parametrize("topology", TOPOLOGIES,
                             ids=[t or "all-to-all" for t in TOPOLOGIES])
    def test_repartition_matches_reference(self, family, make, topology):
        circuit = make()
        network = _network(circuit.num_qubits, 4, topology)
        # Round-robin scatters qubits, so the search has real work to do
        # both as a fresh partition seed and a migration-priced seed.
        seed = round_robin_mapping(circuit.num_qubits, network)
        assert_results_equal(
            oee_partition_reference(circuit, network, initial=seed),
            _oee_partition(circuit, network, initial=seed))
        assert_results_equal(
            oee_repartition_reference(circuit, network, seed),
            _oee_repartition(circuit, network, seed))

    def test_heterogeneous_links_match(self):
        circuit = qft_circuit(16)
        network = uniform_network(4, 4)
        model = LinkModel(LinkSpec(12.0), {(0, 1): LinkSpec(36.0),
                                           (2, 3): LinkSpec(18.5)})
        apply_topology(network, "line", link_model=model)
        assert_results_equal(oee_partition_reference(circuit, network),
                             _oee_partition(circuit, network))
        seed = round_robin_mapping(16, network)
        assert_results_equal(oee_repartition_reference(circuit, network, seed),
                             _oee_repartition(circuit, network, seed))

    def test_migration_cost_override_with_nonzero_diagonal(self):
        # The scalar move_cost charges nothing at a qubit's home node even
        # when the override matrix carries a nonzero diagonal; the
        # vectorized effective-cost matrix must do the same.
        circuit = qaoa_maxcut_circuit(12, seed=9)
        network = uniform_network(3, 4)
        costs = [[5.0 if i == j else float(2 + i + j) for j in range(3)]
                 for i in range(3)]
        seed = round_robin_mapping(12, network)
        assert_results_equal(
            oee_repartition_reference(circuit, network, seed,
                                      migration_costs=costs),
            _oee_repartition(circuit, network, seed, migration_costs=costs))

    def test_idle_circuit_has_no_exchanges(self):
        from repro.ir import Circuit

        circuit = Circuit(6, name="idle")
        network = uniform_network(3, 2)
        assert_results_equal(oee_partition_reference(circuit, network),
                             _oee_partition(circuit, network))


class TestPipelineEquivalence:
    def test_phased_compile_identical_under_either_search(self, monkeypatch):
        circuit = qft_circuit(14)
        network = uniform_network(4, 4)
        apply_topology(network, "line")
        config = AutoCommConfig(remap="bursts", phase_blocks=3)
        vectorized = compile_autocomm(circuit, network, config=config)
        monkeypatch.setenv("REPRO_OEE_REFERENCE", "1")
        reference = compile_autocomm(circuit, network, config=config)
        assert (vectorized.mapping.as_dict()
                == reference.mapping.as_dict())
        assert len(vectorized.phases) == len(reference.phases)
        for vec_phase, ref_phase in zip(vectorized.phases, reference.phases):
            assert (vec_phase.mapping.as_dict()
                    == ref_phase.mapping.as_dict())
        vec_moves = [(m.qubit, m.source, m.target)
                     for boundary in (vectorized.migrations or [])
                     for m in boundary]
        ref_moves = [(m.qubit, m.source, m.target)
                     for boundary in (reference.migrations or [])
                     for m in boundary]
        assert vec_moves == ref_moves
        assert (vectorized.schedule.latency == reference.schedule.latency)


class TestReferenceEscapeHatch:
    def test_env_var_routes_through_reference(self, monkeypatch):
        calls = []
        from repro.partition import oee_reference

        original = oee_reference.oee_partition_reference

        def spy(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(oee_reference, "oee_partition_reference", spy)
        circuit = qft_circuit(10)
        network = uniform_network(2, 5)
        baseline = oee_partition(circuit, network)
        assert not calls
        monkeypatch.setenv("REPRO_OEE_REFERENCE", "1")
        routed = oee_partition(circuit, network)
        assert calls
        assert routed.mapping.as_dict() == baseline.mapping.as_dict()

    def test_env_var_falsey_values_stay_vectorized(self, monkeypatch):
        from repro.partition.oee import _use_reference

        for value in ("", "0", "false", "no"):
            monkeypatch.setenv("REPRO_OEE_REFERENCE", value)
            assert not _use_reference()
        monkeypatch.setenv("REPRO_OEE_REFERENCE", "1")
        assert _use_reference()


class TestGainVector:
    def test_matches_scalar_uniform_and_routed(self):
        circuit = qaoa_maxcut_circuit(10, seed=4)
        network = uniform_network(3, 4)
        apply_topology(network, "line")
        weights_matrix = interaction_matrix(circuit)
        graph = interaction_graph(circuit)
        weights = {q: {n: d["weight"]
                       for n, d in graph.adj[q].items()}
                   for q in graph.nodes}
        assignment = round_robin_mapping(10, network).as_dict()
        assignment_vec = [assignment[q] for q in range(10)]
        distances = network.routing.cost_matrix()
        for node_distances in (None, distances):
            for qubit_a in range(10):
                gains = exchange_gain_vector(weights_matrix, assignment_vec,
                                             qubit_a,
                                             node_distances=node_distances)
                for qubit_b in range(10):
                    expected = exchange_gain(weights, assignment, qubit_a,
                                             qubit_b,
                                             node_distances=node_distances)
                    assert gains[qubit_b] == expected
