"""Unit tests for the command-line interface."""

import pytest

from repro.cli import COMPILERS, build_parser, main
from repro.circuits import qft_circuit
from repro.ir import from_qasm, to_qasm


@pytest.fixture
def qasm_file(tmp_path):
    path = tmp_path / "qft.qasm"
    path.write_text(to_qasm(qft_circuit(8)))
    return path


class TestParser:
    def test_compile_arguments(self):
        args = build_parser().parse_args(["compile", "prog.qasm", "--nodes", "4"])
        assert args.command == "compile"
        assert args.nodes == 4
        assert args.compiler == "autocomm"

    def test_compiler_choices_cover_registry(self):
        parser = build_parser()
        for name in COMPILERS:
            args = parser.parse_args(["compile", "p.qasm", "--nodes", "2",
                                      "--compiler", name])
            assert args.compiler == name

    def test_missing_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_compiler_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compile", "p.qasm", "--nodes", "2",
                                       "--compiler", "magic"])


class TestCompileCommand:
    def test_basic_report(self, qasm_file, capsys):
        exit_code = main(["compile", str(qasm_file), "--nodes", "2"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "communications" in captured
        assert "latency" in captured

    def test_fidelity_flag(self, qasm_file, capsys):
        main(["compile", str(qasm_file), "--nodes", "2", "--fidelity"])
        assert "estimated fidelity" in capsys.readouterr().out

    def test_alternative_compiler(self, qasm_file, capsys):
        main(["compile", str(qasm_file), "--nodes", "2", "--compiler", "sparse"])
        assert "sparse-cat" in capsys.readouterr().out

    def test_missing_file_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["compile", str(tmp_path / "nope.qasm"), "--nodes", "2"])

    def test_explicit_qubits_per_node(self, qasm_file, capsys):
        exit_code = main(["compile", str(qasm_file), "--nodes", "2",
                          "--qubits-per-node", "6"])
        assert exit_code == 0


class TestCompareCommand:
    def test_all_compilers_listed(self, qasm_file, capsys):
        exit_code = main(["compare", str(qasm_file), "--nodes", "2"])
        out = capsys.readouterr().out
        assert exit_code == 0
        for name in COMPILERS:
            assert name in out
        assert "sim_mean" not in out

    def test_monte_carlo_columns(self, qasm_file, capsys):
        exit_code = main(["compare", str(qasm_file), "--nodes", "2",
                          "--trials", "4", "--p-epr", "0.6", "--seed", "7"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "sim_mean" in out
        assert "sim_p95" in out

    def test_workers_flag_leaves_output_identical(self, qasm_file, capsys):
        argv = ["compare", str(qasm_file), "--nodes", "2",
                "--trials", "4", "--p-epr", "0.6", "--seed", "7"]
        main(argv)
        sequential = capsys.readouterr().out
        main(argv + ["--workers", "2"])
        parallel = capsys.readouterr().out
        assert parallel == sequential

    @pytest.mark.parametrize("flags", [
        ["--p-epr", "0"],
        ["--trials", "-1"],
        ["--workers", "0"],
    ])
    def test_invalid_arguments_rejected(self, qasm_file, flags):
        with pytest.raises(SystemExit):
            main(["compare", str(qasm_file), "--nodes", "2", *flags])


class TestSimulateCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["simulate", "p.qasm", "--nodes", "2"])
        assert args.command == "simulate"
        assert args.p_epr == 1.0
        assert args.trials == 1
        assert args.seed == 0

    def test_deterministic_run_validates(self, qasm_file, capsys):
        exit_code = main(["simulate", str(qasm_file), "--nodes", "2"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "simulated_latency" in out
        assert "yes" in out

    def test_stochastic_run_prints_distribution(self, qasm_file, capsys):
        exit_code = main(["simulate", str(qasm_file), "--nodes", "2",
                          "--p-epr", "0.5", "--trials", "5", "--seed", "3"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "sim_mean" in out
        assert "slowdown" in out

    def test_seed_makes_runs_reproducible(self, qasm_file, capsys):
        argv = ["simulate", str(qasm_file), "--nodes", "2",
                "--p-epr", "0.4", "--trials", "4", "--seed", "11"]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        second = capsys.readouterr().out
        assert first == second

    def test_timeline_and_trace_flags(self, qasm_file, capsys):
        exit_code = main(["simulate", str(qasm_file), "--nodes", "2",
                          "--timeline", "--trace", "5"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "node 0:" in out
        assert "legend:" in out
        assert "epr-start" in out

    def test_alternative_compiler(self, qasm_file, capsys):
        exit_code = main(["simulate", str(qasm_file), "--nodes", "2",
                          "--compiler", "sparse"])
        assert exit_code == 0

    @pytest.mark.parametrize("flags", [
        ["--p-epr", "0"],
        ["--p-epr", "1.5"],
        ["--trials", "0"],
        ["--retry-latency", "-1", "--p-epr", "0.5"],
        ["--link-capacity", "0"],
        ["--workers", "0"],
    ])
    def test_invalid_simulation_arguments_rejected(self, qasm_file, flags):
        with pytest.raises(SystemExit):
            main(["simulate", str(qasm_file), "--nodes", "2", *flags])

    def test_workers_flag_leaves_output_identical(self, qasm_file, capsys):
        argv = ["simulate", str(qasm_file), "--nodes", "2",
                "--p-epr", "0.5", "--trials", "6", "--seed", "3"]
        main(argv)
        sequential = capsys.readouterr().out
        main(argv + ["--workers", "3"])
        parallel = capsys.readouterr().out
        assert parallel == sequential


class TestProfileCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["profile", "p.qasm", "--nodes", "2"])
        assert args.command == "profile"
        assert args.repeat == 3
        assert args.top == 15
        assert args.simulate_trials == 0

    def test_compile_profile_report(self, qasm_file, capsys):
        exit_code = main(["profile", str(qasm_file), "--nodes", "2",
                          "--repeat", "2", "--top", "5"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "compile median [ms]" in out
        assert "hotspots by cumulative time" in out
        assert "commutation cache hits/misses" in out

    def test_simulation_trials_included(self, qasm_file, capsys):
        exit_code = main(["profile", str(qasm_file), "--nodes", "2",
                          "--repeat", "1", "--simulate-trials", "3",
                          "--p-epr", "0.5"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "simulate 3 trials median [ms]" in out

    def test_json_output(self, qasm_file, tmp_path, capsys):
        import json

        target = tmp_path / "BENCH_compiler.json"
        exit_code = main(["profile", str(qasm_file), "--nodes", "2",
                          "--repeat", "2", "--json", str(target)])
        assert exit_code == 0
        payload = json.loads(target.read_text())
        assert payload["command"] == "profile"
        assert payload["compile_s"]["median"] > 0
        assert len(payload["compile_s"]["runs"]) == 2
        assert payload["hotspots"]
        assert {"function", "ncalls", "tottime_s", "cumtime_s"} <= \
            set(payload["hotspots"][0])

    @pytest.mark.parametrize("flags", [
        ["--repeat", "0"],
        ["--p-epr", "0"],
        ["--p-epr", "1.5"],
    ])
    def test_invalid_arguments_rejected(self, qasm_file, flags):
        with pytest.raises(SystemExit):
            main(["profile", str(qasm_file), "--nodes", "2", *flags])


class TestGenerateCommand:
    def test_generate_to_stdout(self, capsys):
        exit_code = main(["generate", "bv", "--qubits", "10"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "OPENQASM 2.0" in out
        circuit = from_qasm(out)
        assert circuit.num_qubits == 10

    def test_generate_to_file(self, tmp_path, capsys):
        target = tmp_path / "qaoa.qasm"
        exit_code = main(["generate", "qaoa", "--qubits", "12",
                          "--output", str(target)])
        assert exit_code == 0
        assert target.exists()
        assert from_qasm(target.read_text()).num_qubits == 12

    def test_generated_qft_roundtrips_through_compile(self, tmp_path, capsys):
        target = tmp_path / "qft.qasm"
        main(["generate", "qft", "--qubits", "8", "--output", str(target)])
        exit_code = main(["compile", str(target), "--nodes", "2"])
        assert exit_code == 0

    def test_unknown_family_rejected(self):
        with pytest.raises(SystemExit):
            main(["generate", "grover", "--qubits", "8"])


class TestTopologyFlags:
    @pytest.fixture
    def wide_qasm(self, tmp_path):
        path = tmp_path / "qft16.qasm"
        path.write_text(to_qasm(qft_circuit(16)))
        return path

    def test_topology_arguments_parsed(self):
        args = build_parser().parse_args(
            ["compile", "p.qasm", "--nodes", "4", "--topology", "line",
             "--swap-overhead", "0.5"])
        assert args.topology == "line"
        assert args.swap_overhead == 0.5
        assert args.grid_columns is None

    def test_unknown_topology_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compile", "p.qasm", "--nodes", "4",
                                       "--topology", "torus"])

    def test_compile_reports_physical_epr_pairs(self, wide_qasm, capsys):
        exit_code = main(["compile", str(wide_qasm), "--nodes", "4",
                          "--topology", "line"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "topology" in captured
        assert "physical EPR pairs" in captured

    def test_all_to_all_report_unchanged(self, wide_qasm, capsys):
        exit_code = main(["compile", str(wide_qasm), "--nodes", "4"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "physical EPR pairs" not in captured

    def test_simulate_line_topology_validates(self, wide_qasm, capsys):
        exit_code = main(["simulate", str(wide_qasm), "--nodes", "4",
                          "--topology", "line"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "yes" in captured  # deterministic replay validated
        assert "total_epr_pairs" in captured

    def test_simulate_grid_with_columns(self, wide_qasm, capsys):
        exit_code = main(["simulate", str(wide_qasm), "--nodes", "4",
                          "--topology", "grid", "--grid-columns", "2",
                          "--p-epr", "0.7", "--trials", "3", "--seed", "5"])
        assert exit_code == 0
        assert "sim_mean" in capsys.readouterr().out

    def test_profile_accepts_topology(self, wide_qasm, capsys, tmp_path):
        import json

        out = tmp_path / "bench.json"
        exit_code = main(["profile", str(wide_qasm), "--nodes", "4",
                          "--topology", "ring", "--repeat", "1",
                          "--json", str(out)])
        assert exit_code == 0
        assert json.loads(out.read_text())["topology"] == "ring"

    def test_grid_columns_without_grid_topology_rejected(self, wide_qasm):
        with pytest.raises(SystemExit, match="grid"):
            main(["compile", str(wide_qasm), "--nodes", "4",
                  "--topology", "line", "--grid-columns", "2"])

    def test_simulate_reports_executed_pair_count(self, wide_qasm, capsys):
        exit_code = main(["simulate", str(wide_qasm), "--nodes", "4",
                          "--topology", "line"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "sim_epr_pairs" in out


class TestLinkModelFlags:
    @pytest.fixture
    def wide_qasm(self, tmp_path):
        path = tmp_path / "qft16.qasm"
        path.write_text(to_qasm(qft_circuit(16)))
        return path

    @pytest.fixture
    def spec_file(self, tmp_path):
        import json

        path = tmp_path / "links.json"
        path.write_text(json.dumps({
            "default": {"t_epr": 12.0},
            "links": {"1-2": {"t_epr": 36.0, "p_epr": 0.8, "capacity": 1}},
        }))
        return path

    def test_link_arguments_parsed(self):
        args = build_parser().parse_args(
            ["compile", "p.qasm", "--nodes", "4", "--topology", "line",
             "--link-spec", "links.json"])
        assert str(args.link_spec) == "links.json"
        assert args.link_profile is None

    def test_unknown_link_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compile", "p.qasm", "--nodes", "4",
                                       "--link-profile", "magic"])

    def test_compile_reports_heterogeneous_links(self, wide_qasm, spec_file,
                                                 capsys):
        exit_code = main(["compile", str(wide_qasm), "--nodes", "4",
                          "--topology", "line", "--link-spec",
                          str(spec_file)])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "heterogeneous (1 link override)" in out
        assert "EPR latency volume" in out

    def test_link_profile_preset(self, wide_qasm, capsys):
        exit_code = main(["compile", str(wide_qasm), "--nodes", "4",
                          "--topology", "star", "--link-profile",
                          "noisy_spine"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "heterogeneous" in out

    def test_simulate_link_spec_validates_and_studies(self, wide_qasm,
                                                      spec_file, capsys):
        # A capacity- and loss-bearing spec triggers the Monte-Carlo study
        # even at p_epr = 1.0, and the ideal-links validation still passes.
        exit_code = main(["simulate", str(wide_qasm), "--nodes", "4",
                          "--topology", "line", "--link-spec",
                          str(spec_file), "--seed", "3"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "yes" in out
        assert "sim_mean" in out

    def test_link_spec_conflicts_with_link_capacity(self, wide_qasm,
                                                    spec_file):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(["simulate", str(wide_qasm), "--nodes", "4",
                  "--topology", "line", "--link-spec", str(spec_file),
                  "--link-capacity", "2"])

    def test_link_spec_conflicts_with_link_profile(self, wide_qasm,
                                                   spec_file):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(["compile", str(wide_qasm), "--nodes", "4",
                  "--topology", "line", "--link-spec", str(spec_file),
                  "--link-profile", "noisy_spine"])

    def test_missing_spec_file_errors(self, wide_qasm, tmp_path):
        with pytest.raises(SystemExit, match="no such link-spec"):
            main(["compile", str(wide_qasm), "--nodes", "4",
                  "--topology", "line",
                  "--link-spec", str(tmp_path / "nope.json")])

    def test_invalid_spec_file_errors(self, wide_qasm, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SystemExit, match="not valid JSON"):
            main(["compile", str(wide_qasm), "--nodes", "4",
                  "--topology", "line", "--link-spec", str(bad)])

    def test_spec_link_outside_topology_errors(self, wide_qasm, tmp_path):
        import json

        spec = tmp_path / "offgrid.json"
        spec.write_text(json.dumps({"links": {"0-3": {"t_epr": 24.0}}}))
        with pytest.raises(SystemExit, match="not a link"):
            main(["compile", str(wide_qasm), "--nodes", "4",
                  "--topology", "line", "--link-spec", str(spec)])

    def test_link_capacity_alone_still_works(self, wide_qasm, capsys):
        exit_code = main(["simulate", str(wide_qasm), "--nodes", "4",
                          "--topology", "line", "--link-capacity", "1",
                          "--seed", "2"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "sim_mean" in out


class TestRemapFlags:
    @pytest.fixture
    def wide_qasm(self, tmp_path):
        path = tmp_path / "qft12.qasm"
        path.write_text(to_qasm(qft_circuit(12)))
        return path

    def test_remap_arguments_parsed(self):
        args = build_parser().parse_args(
            ["compile", "p.qasm", "--nodes", "4", "--remap", "bursts",
             "--phase-blocks", "3"])
        assert args.remap == "bursts"
        assert args.phase_blocks == 3

    def test_remap_defaults(self):
        for command in ("compile", "compare", "simulate", "profile"):
            args = build_parser().parse_args(
                [command, "p.qasm", "--nodes", "4"])
            assert args.remap == "never"
            assert args.phase_blocks == 8

    def test_unknown_remap_mode_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compile", "p.qasm", "--nodes", "4",
                                       "--remap", "sometimes"])

    def test_compile_reports_remap_rows(self, wide_qasm, capsys):
        exit_code = main(["compile", str(wide_qasm), "--nodes", "4",
                          "--topology", "line", "--remap", "bursts",
                          "--phase-blocks", "3"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "autocomm-remap" in out
        assert "phases" in out
        assert "migration moves" in out
        assert "migration latency" in out
        assert "EPR latency volume" in out

    def test_compile_remap_never_report_unchanged(self, wide_qasm, capsys):
        main(["compile", str(wide_qasm), "--nodes", "4", "--topology", "line"])
        plain = capsys.readouterr().out
        main(["compile", str(wide_qasm), "--nodes", "4", "--topology", "line",
              "--remap", "never"])
        explicit = capsys.readouterr().out
        assert explicit == plain
        assert "migration" not in plain

    def test_remap_rejected_for_other_compilers(self, wide_qasm):
        with pytest.raises(SystemExit, match="only applies to the autocomm"):
            main(["compile", str(wide_qasm), "--nodes", "4",
                  "--remap", "bursts", "--compiler", "sparse"])

    def test_bad_phase_blocks_rejected(self, wide_qasm):
        with pytest.raises(SystemExit, match="--phase-blocks"):
            main(["compile", str(wide_qasm), "--nodes", "4",
                  "--remap", "bursts", "--phase-blocks", "0"])

    def test_compare_remap_adds_contender_row(self, wide_qasm, capsys):
        exit_code = main(["compare", str(wide_qasm), "--nodes", "4",
                          "--topology", "line", "--remap", "bursts"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "autocomm-remap" in out
        assert "epr_latency" in out
        assert "migrations" in out

    def test_simulate_remap_validates(self, wide_qasm, capsys):
        exit_code = main(["simulate", str(wide_qasm), "--nodes", "4",
                          "--topology", "line", "--remap", "bursts",
                          "--phase-blocks", "3"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "yes" in out

    def test_profile_accepts_remap(self, wide_qasm, capsys, tmp_path):
        report = tmp_path / "profile.json"
        exit_code = main(["profile", str(wide_qasm), "--nodes", "4",
                          "--remap", "bursts", "--repeat", "1",
                          "--json", str(report)])
        assert exit_code == 0
        import json
        assert json.loads(report.read_text())["remap"] == "bursts"


class TestCompareFidelity:
    def test_fidelity_column(self, qasm_file, capsys):
        exit_code = main(["compare", str(qasm_file), "--nodes", "2",
                          "--fidelity"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "fidelity" in out

    def test_no_fidelity_column_by_default(self, qasm_file, capsys):
        main(["compare", str(qasm_file), "--nodes", "2"])
        out = capsys.readouterr().out
        assert "fidelity" not in out


class TestRunReportFlag:
    def test_report_argument_parsed(self):
        for command in ("compile", "compare", "simulate"):
            args = build_parser().parse_args(
                [command, "p.qasm", "--nodes", "2", "--report", "out.json"])
            assert str(args.report) == "out.json"

    def test_compile_report_roundtrips(self, qasm_file, tmp_path, capsys):
        from repro.obs import RunReport

        target = tmp_path / "compile.json"
        exit_code = main(["compile", str(qasm_file), "--nodes", "2",
                          "--report", str(target)])
        assert exit_code == 0
        assert f"wrote {target}" in capsys.readouterr().out
        report = RunReport.load(target)
        assert report.kind == "compile"
        assert report.meta["qasm"] == str(qasm_file)
        assert report.metrics is not None
        assert report.span_tree().find("aggregation") is not None
        # Saved bytes reload into an equal object.
        assert RunReport.from_dict(report.as_dict()) == report

    def test_compare_report_lists_all_contenders(self, qasm_file, tmp_path,
                                                 capsys):
        from repro.obs import RunReport

        target = tmp_path / "compare.json"
        exit_code = main(["compare", str(qasm_file), "--nodes", "2",
                          "--report", str(target)])
        assert exit_code == 0
        report = RunReport.load(target)
        assert report.kind == "compare"
        assert {entry["compiler"] for entry in report.programs} \
            >= set(COMPILERS)

    def test_simulate_report_includes_simulation_section(self, qasm_file,
                                                         tmp_path, capsys):
        from repro.obs import RunReport

        target = tmp_path / "simulate.json"
        exit_code = main(["simulate", str(qasm_file), "--nodes", "2",
                          "--p-epr", "0.5", "--trials", "3", "--seed", "1",
                          "--report", str(target)])
        assert exit_code == 0
        report = RunReport.load(target)
        assert report.kind == "simulate"
        validation = report.simulation["validation"]
        assert validation["matches"] is True
        assert validation["analytical_latency"] > 0
        assert report.simulation["monte_carlo"]["trials"] == 3.0
        sim_metrics = report.simulation["sim_metrics"]
        assert sim_metrics["counters"]["sim.trials"] == 3


class TestTraceCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["trace", "p.qasm", "--nodes", "2"])
        assert args.command == "trace"
        assert args.p_epr == 1.0
        assert args.seed == 0
        assert args.out is None
        assert args.no_sim is False

    def test_writes_valid_trace_next_to_input(self, qasm_file, capsys):
        import json

        from repro.obs import validate_trace_events

        exit_code = main(["trace", str(qasm_file), "--nodes", "2"])
        out = capsys.readouterr().out
        assert exit_code == 0
        target = qasm_file.with_name(qasm_file.stem + ".trace.json")
        assert target.exists()
        assert str(target) in out
        events = json.loads(target.read_text())["traceEvents"]
        assert events
        assert validate_trace_events(events) == []
        # Compile spans and simulated ops are both present.
        assert {e["pid"] for e in events} >= {1, 2}

    def test_explicit_out_and_no_sim(self, qasm_file, tmp_path, capsys):
        import json

        target = tmp_path / "compile-only.trace.json"
        exit_code = main(["trace", str(qasm_file), "--nodes", "2",
                          "--no-sim", "--out", str(target)])
        assert exit_code == 0
        events = json.loads(target.read_text())["traceEvents"]
        assert {e["pid"] for e in events} == {1}  # compile spans only

    def test_remap_scenario_validates(self, qasm_file, tmp_path, capsys):
        exit_code = main(["trace", str(qasm_file), "--nodes", "4",
                          "--qubits-per-node", "2", "--topology", "line",
                          "--remap", "bursts", "--phase-blocks", "3",
                          "--out", str(tmp_path / "remap.trace.json")])
        assert exit_code == 0

    def test_invalid_p_epr_rejected(self, qasm_file):
        with pytest.raises(SystemExit):
            main(["trace", str(qasm_file), "--nodes", "2", "--p-epr", "0"])


class TestTraceOutFlag:
    def test_simulate_trace_out_writes_jsonl(self, qasm_file, tmp_path,
                                             capsys):
        import json

        target = tmp_path / "events.jsonl"
        exit_code = main(["simulate", str(qasm_file), "--nodes", "2",
                          "--trace-out", str(target)])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert f"wrote {target}" in out
        events = [json.loads(line)
                  for line in target.read_text().splitlines()]
        assert events
        assert {"time", "kind", "index", "nodes", "detail"} <= set(events[0])
        assert any(event["kind"] == "epr-start" for event in events)


class TestProfileStageRows:
    def test_stage_rows_and_tree_in_report(self, qasm_file, capsys):
        exit_code = main(["profile", str(qasm_file), "--nodes", "2",
                          "--repeat", "1"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "stage aggregation [ms]" in out
        assert "stage scheduling [ms]" in out
        assert "compile stage tree (profiled run):" in out

    def test_json_payload_has_versioned_stage_tree(self, qasm_file, tmp_path,
                                                   capsys):
        import json

        target = tmp_path / "bench.json"
        exit_code = main(["profile", str(qasm_file), "--nodes", "2",
                          "--repeat", "1", "--json", str(target)])
        assert exit_code == 0
        payload = json.loads(target.read_text())
        # Existing keys are untouched; the stage tree is additive.
        assert payload["command"] == "profile"
        assert payload["compile_s"]["median"] > 0
        assert payload["schema"] == 1
        stages = payload["stages"]
        assert stages["name"].startswith("compile/")
        assert {child["name"] for child in stages["children"]} \
            >= {"aggregation", "assignment", "scheduling"}


class TestIdealLinksFlag:
    @pytest.fixture
    def wide_qasm(self, tmp_path):
        path = tmp_path / "qft12.qasm"
        path.write_text(to_qasm(qft_circuit(12)))
        return path

    @pytest.fixture
    def capped_spec(self, tmp_path):
        import json

        path = tmp_path / "capped.json"
        path.write_text(json.dumps(
            {"default": {"capacity": 1, "p_epr": 0.5}}))
        return path

    def test_ideal_links_parsed(self):
        args = build_parser().parse_args(
            ["simulate", "p.qasm", "--nodes", "4", "--ideal-links"])
        assert args.ideal_links is True
        args = build_parser().parse_args(["simulate", "p.qasm", "--nodes", "4"])
        assert args.ideal_links is False

    def test_ideal_links_match_analytical(self, wide_qasm, capped_spec,
                                          capsys):
        """Under --ideal-links a capacity/loss-constrained study collapses
        onto the analytical schedule."""
        exit_code = main(["simulate", str(wide_qasm), "--nodes", "4",
                          "--topology", "line", "--link-spec",
                          str(capped_spec), "--trials", "2", "--seed", "5",
                          "--ideal-links"])
        out = capsys.readouterr().out
        assert exit_code == 0
        row = [line for line in out.splitlines() if "yes" in line]
        assert row, out
        # sim_mean equals the analytical latency when links are idealised:
        # columns are latency, simulated_latency, p_epr, sim_mean, ...
        import re
        numbers = re.findall(r"\d+\.\d+", row[0])
        assert float(numbers[3]) == pytest.approx(float(numbers[0]))

    def test_constrained_study_differs_without_flag(self, wide_qasm,
                                                    capped_spec, capsys):
        exit_code = main(["simulate", str(wide_qasm), "--nodes", "4",
                          "--topology", "line", "--link-spec",
                          str(capped_spec), "--trials", "2", "--seed", "5"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "sim_mean" in out
