"""Unit tests for the schedule-pass pipeline and zero-bubble boundaries."""

import pytest

from repro.circuits import qft_circuit
from repro.core import (AutoCommConfig, MigrationOp, SCHEDULE_PASSES,
                        ScheduleDraft, compile_autocomm, default_passes,
                        plan_phased_schedule, register_schedule_pass,
                        run_schedule_passes)
from repro.core.scheduling import _execute_plan
from repro.hardware import apply_topology, uniform_network


def _compiled_remap(phase_blocks=3, kind="line", qubits=12, overlap=False):
    network = uniform_network(4, qubits // 4)
    apply_topology(network, kind)
    program = compile_autocomm(
        qft_circuit(qubits), network,
        config=AutoCommConfig(remap="bursts", phase_blocks=phase_blocks,
                              overlap=overlap))
    return program, network


class TestRegistry:
    def test_builtin_passes_registered(self):
        for name in ("fuse-chains", "build-deps", "barrier-phases",
                     "overlap-boundaries"):
            assert name in SCHEDULE_PASSES

    def test_unknown_pass_rejected_with_listing(self):
        program, _ = _compiled_remap()
        draft = ScheduleDraft.from_phases(
            program.phases, program.migrations, burst=True, overlap=False,
            num_qubits=program.circuit.num_qubits)
        with pytest.raises(ValueError, match="barrier-phases"):
            run_schedule_passes(draft, ["no-such-pass"])

    def test_default_pipeline_switches_on_overlap(self):
        program, _ = _compiled_remap()
        barrier = ScheduleDraft.from_phases(
            program.phases, program.migrations, burst=True, overlap=False,
            num_qubits=program.circuit.num_qubits)
        overlapped = ScheduleDraft.from_phases(
            program.phases, program.migrations, burst=True, overlap=True,
            num_qubits=program.circuit.num_qubits)
        assert default_passes(barrier)[-1] == "barrier-phases"
        assert default_passes(overlapped)[-1] == "overlap-boundaries"

    def test_custom_pass_runs_in_pipeline(self):
        calls = []

        @register_schedule_pass("test-probe")
        def probe(draft):
            calls.append(len(draft.phase_items))

        try:
            program, _ = _compiled_remap()
            draft = ScheduleDraft.from_phases(
                program.phases, program.migrations, burst=True,
                overlap=False, num_qubits=program.circuit.num_qubits)
            run_schedule_passes(draft, ["test-probe"] +
                                default_passes(draft))
            assert calls == [len(program.phases)]
        finally:
            del SCHEDULE_PASSES["test-probe"]


class TestStitchPasses:
    def _drafts(self):
        program, network = _compiled_remap()
        kwargs = dict(num_qubits=program.circuit.num_qubits)
        barrier = run_schedule_passes(ScheduleDraft.from_phases(
            program.phases, program.migrations, burst=True, overlap=False,
            **kwargs))
        overlapped = run_schedule_passes(ScheduleDraft.from_phases(
            program.phases, program.migrations, burst=True, overlap=True,
            **kwargs))
        return barrier, overlapped, program, network

    def test_same_items_either_stitch(self):
        barrier, overlapped, _, _ = self._drafts()
        assert len(barrier.items) == len(overlapped.items)
        assert [type(a) for a in barrier.items] == \
               [type(b) for b in overlapped.items]
        assert barrier.item_phases == overlapped.item_phases

    def test_item_phases_cover_every_phase(self):
        barrier, _, program, _ = self._drafts()
        compute_phases = {phase for item, phase in
                          zip(barrier.items, barrier.item_phases)
                          if not isinstance(item, MigrationOp)}
        assert compute_phases == set(range(len(program.phases)))
        for item, phase in zip(barrier.items, barrier.item_phases):
            if isinstance(item, MigrationOp):
                # Migrations carry the phase they move into.
                assert 1 <= phase < len(program.phases)

    def test_overlap_migration_preds_touch_only_its_qubit(self):
        from repro.core.scheduling import _item_qubits
        _, overlapped, program, _ = self._drafts()
        num_qubits = program.circuit.num_qubits
        checked = 0
        for index, item in enumerate(overlapped.items):
            if not isinstance(item, MigrationOp):
                continue
            for pred in overlapped.preds[index]:
                pred_item = overlapped.items[pred]
                if isinstance(pred_item, MigrationOp):
                    assert pred_item.qubit == item.qubit
                else:
                    assert item.qubit in _item_qubits(pred_item, num_qubits)
                checked += 1
        assert checked > 0

    def test_overlap_never_worse_when_executed(self):
        barrier, overlapped, program, network = self._drafts()
        mapping = program.phases[0].mapping
        barrier_plan = plan_phased_schedule(program.phases,
                                            program.migrations, burst=True,
                                            overlap=False)
        overlap_plan = plan_phased_schedule(program.phases,
                                            program.migrations, burst=True,
                                            overlap=True)
        barrier_latency = _execute_plan(barrier_plan, network,
                                        mapping).latency
        overlap_latency = _execute_plan(overlap_plan, network,
                                        mapping).latency
        assert overlap_latency <= barrier_latency + 1e-9


class TestPlannedOverlap:
    def test_plan_records_overlap_and_phases(self):
        program, _ = _compiled_remap(overlap=True)
        plan = plan_phased_schedule(program.phases, program.migrations,
                                    burst=True, overlap=True)
        assert plan.overlap
        assert plan.item_phases is not None
        assert len(plan.item_phases) == len(plan.items)

    def test_overlap_variants_memoised_separately(self):
        program, _ = _compiled_remap()
        barrier = plan_phased_schedule(program.phases, program.migrations,
                                       burst=True, overlap=False)
        overlapped = plan_phased_schedule(program.phases, program.migrations,
                                          burst=True, overlap=True)
        assert barrier is not overlapped
        assert barrier is plan_phased_schedule(
            program.phases, program.migrations, burst=True, overlap=False)
        assert overlapped is plan_phased_schedule(
            program.phases, program.migrations, burst=True, overlap=True)

    def test_compiled_overlap_schedule_flagged(self):
        program, _ = _compiled_remap(overlap=True)
        assert program.schedule.overlap
        assert program.compiler == "autocomm-remap-overlap"
        assert program.metrics.boundary_bubble >= 0.0

    def test_overlap_never_worse_through_pipeline(self):
        barrier, _ = _compiled_remap()
        overlapped, _ = _compiled_remap(overlap=True)
        assert overlapped.metrics.latency <= barrier.metrics.latency + 1e-9
        assert (overlapped.metrics.boundary_bubble
                <= barrier.metrics.boundary_bubble + 1e-9)
