"""Unit tests for the communication scheduling pass."""

import pytest

from repro.circuits import qft_circuit
from repro.comm import CommBlock, CommScheme
from repro.core import (
    FusedTPChain,
    ScheduledOp,
    ScheduleResult,
    aggregate_communications,
    assign_communications,
    fuse_tp_chains,
    schedule_communications,
)
from repro.hardware import DEFAULT_LATENCY, uniform_network
from repro.ir import Circuit, Gate, decompose_to_cx
from repro.partition import QubitMapping


def compile_assignment(circuit, mapping):
    return assign_communications(aggregate_communications(circuit, mapping))


def mapping_for(num_qubits, num_nodes):
    per = -(-num_qubits // num_nodes)
    return QubitMapping({q: q // per for q in range(num_qubits)})


class TestScheduleBasics:
    def test_empty_circuit(self):
        network = uniform_network(2, 2)
        assignment = compile_assignment(Circuit(4), mapping_for(4, 2))
        schedule = schedule_communications(assignment, network)
        assert schedule.latency == 0.0
        assert schedule.ops == []

    def test_local_only_circuit_has_no_comm_ops(self):
        network = uniform_network(2, 2)
        circuit = Circuit(4).h(0).cx(0, 1).cx(2, 3)
        schedule = schedule_communications(compile_assignment(circuit, mapping_for(4, 2)),
                                           network)
        assert schedule.num_comm_ops == 0
        assert schedule.latency > 0

    def test_unknown_strategy_rejected(self):
        network = uniform_network(2, 2)
        assignment = compile_assignment(Circuit(4).cx(0, 2), mapping_for(4, 2))
        with pytest.raises(ValueError):
            schedule_communications(assignment, network, strategy="random")

    def test_single_remote_gate_latency(self):
        network = uniform_network(2, 2)
        circuit = Circuit(4).cx(0, 2)
        schedule = schedule_communications(compile_assignment(circuit, mapping_for(4, 2)),
                                           network)
        # EPR prep + one Cat-Comm carrying a single CX.
        expected = (DEFAULT_LATENCY.t_epr + DEFAULT_LATENCY.cat_comm_latency(1))
        assert schedule.latency == pytest.approx(expected)

    def test_ops_cover_all_items(self):
        network = uniform_network(2, 3)
        circuit = Circuit(6).h(0).cx(0, 3).cx(1, 4).cx(2, 5)
        assignment = compile_assignment(circuit, mapping_for(6, 2))
        schedule = schedule_communications(assignment, network)
        assert len(schedule.ops) >= 4

    def test_latency_is_makespan(self):
        network = uniform_network(2, 3)
        circuit = decompose_to_cx(qft_circuit(6))
        schedule = schedule_communications(compile_assignment(circuit, mapping_for(6, 2)),
                                           network)
        assert schedule.latency == pytest.approx(max(op.end for op in schedule.ops))


class TestDependencyCorrectness:
    def test_dependent_ops_do_not_overlap(self):
        network = uniform_network(2, 3)
        circuit = decompose_to_cx(qft_circuit(6))
        assignment = compile_assignment(circuit, mapping_for(6, 2))
        schedule = schedule_communications(assignment, network)
        items = list(assignment.items)
        # Plain-gate items sharing a qubit and appearing in program order must
        # not be scheduled out of order.
        by_index = {op.index: op for op in schedule.ops}
        last_seen = {}
        for index, item in enumerate(items):
            if not isinstance(item, Gate):
                continue
            op = by_index[index]
            for qubit in item.qubits:
                if qubit in last_seen:
                    assert op.start >= by_index[last_seen[qubit]].start - 1e-9
                last_seen[qubit] = index

    def test_comm_qubit_capacity_respected(self):
        network = uniform_network(3, 4)
        circuit = decompose_to_cx(qft_circuit(12))
        assignment = compile_assignment(circuit, mapping_for(12, 3))
        schedule = schedule_communications(assignment, network)
        comm = schedule.comm_ops()
        # At any sampled time, each node hosts at most two live communications
        # (including their EPR preparation window).
        for t in [i * schedule.latency / 200 for i in range(200)]:
            per_node = {0: 0, 1: 0, 2: 0}
            for op in comm:
                if op.start - DEFAULT_LATENCY.t_epr <= t < op.end:
                    for node in op.nodes:
                        per_node[node] += 1
            assert all(count <= 2 for count in per_node.values())


class TestFusion:
    def make_tp_block(self, hub, partner, hub_node, remote_node):
        block = CommBlock(hub_qubit=hub, hub_node=hub_node, remote_node=remote_node)
        block.extend([Gate("cx", (hub, partner)), Gate("cx", (partner, hub))])
        block.scheme = CommScheme.TP
        return block

    def test_fuse_consecutive_tp_blocks_same_hub(self):
        a = self.make_tp_block(0, 2, 0, 1)
        b = self.make_tp_block(0, 4, 0, 2)
        mapping = QubitMapping({0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 5: 2})
        fused = fuse_tp_chains([a, b], mapping)
        assert len(fused) == 1
        assert isinstance(fused[0], FusedTPChain)
        assert fused[0].num_teleports() == 3  # n + 1 with n = 2 blocks

    def test_no_fusion_for_different_hubs(self):
        a = self.make_tp_block(0, 2, 0, 1)
        b = self.make_tp_block(1, 3, 0, 1)
        mapping = QubitMapping({0: 0, 1: 0, 2: 1, 3: 1})
        fused = fuse_tp_chains([a, b], mapping)
        assert all(isinstance(item, CommBlock) for item in fused)

    def test_no_fusion_across_intervening_hub_gate(self):
        a = self.make_tp_block(0, 2, 0, 1)
        b = self.make_tp_block(0, 3, 0, 1)
        mapping = QubitMapping({0: 0, 1: 0, 2: 1, 3: 1})
        fused = fuse_tp_chains([a, Gate("h", (0,)), b], mapping)
        assert not any(isinstance(item, FusedTPChain) for item in fused)

    def test_fusion_ignores_unrelated_gates(self):
        a = self.make_tp_block(0, 2, 0, 1)
        b = self.make_tp_block(0, 3, 0, 1)
        mapping = QubitMapping({0: 0, 1: 0, 2: 1, 3: 1})
        fused = fuse_tp_chains([a, b, Gate("h", (1,))], mapping)
        assert any(isinstance(item, FusedTPChain) for item in fused)

    def test_cat_blocks_never_fused(self):
        a = self.make_tp_block(0, 2, 0, 1)
        cat = CommBlock(hub_qubit=0, hub_node=0, remote_node=1,
                        gates=[Gate("cx", (0, 3))])
        cat.scheme = CommScheme.CAT
        mapping = QubitMapping({0: 0, 1: 0, 2: 1, 3: 1})
        fused = fuse_tp_chains([a, cat], mapping)
        assert not any(isinstance(item, FusedTPChain) for item in fused)

    def test_non_commuting_intervening_gate_closes_chain(self):
        # h(2) touches a chain qubit (not the hub) and does not commute with
        # the chain's gates, so deferring the pending TP block past it would
        # reorder non-commuting operations.
        a = self.make_tp_block(0, 2, 0, 1)
        b = self.make_tp_block(0, 3, 0, 1)
        mapping = QubitMapping({0: 0, 1: 0, 2: 1, 3: 1})
        fused = fuse_tp_chains([a, Gate("h", (2,)), b], mapping)
        assert not any(isinstance(item, FusedTPChain) for item in fused)
        # Program order is preserved: the first TP block stays before h(2).
        assert fused[0] is a

    def test_commuting_intervening_gate_keeps_chain_open(self):
        # rz on a chain qubit commutes with every CX control, so the chain
        # may legally absorb both TP blocks around it.
        a = CommBlock(hub_qubit=0, hub_node=0, remote_node=1,
                      gates=[Gate("cx", (2, 0))], scheme=CommScheme.TP)
        b = CommBlock(hub_qubit=0, hub_node=0, remote_node=1,
                      gates=[Gate("cx", (3, 0))], scheme=CommScheme.TP)
        mapping = QubitMapping({0: 0, 1: 0, 2: 1, 3: 1})
        fused = fuse_tp_chains([a, Gate("rz", (2,), (0.3,)), b], mapping)
        assert any(isinstance(item, FusedTPChain) for item in fused)

    def test_barrier_closes_chain(self):
        a = self.make_tp_block(0, 2, 0, 1)
        b = self.make_tp_block(0, 3, 0, 1)
        mapping = QubitMapping({0: 0, 1: 0, 2: 1, 3: 1})
        fused = fuse_tp_chains([a, Gate("barrier", (1,)), b], mapping)
        assert not any(isinstance(item, FusedTPChain) for item in fused)

    def test_chain_duration_less_than_sum_of_blocks(self):
        mapping = QubitMapping({0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 5: 2})
        a = self.make_tp_block(0, 2, 0, 1)
        b = self.make_tp_block(0, 4, 0, 2)
        chain = FusedTPChain(blocks=[a, b])
        from repro.comm.cost import block_latency
        separate = (block_latency(a, mapping) + block_latency(b, mapping))
        assert chain.duration(mapping, DEFAULT_LATENCY) < separate


class TestStrategies:
    def test_burst_greedy_never_slower_than_greedy(self):
        network = uniform_network(3, 4)
        circuit = decompose_to_cx(qft_circuit(12))
        mapping = mapping_for(12, 3)
        greedy = schedule_communications(compile_assignment(circuit, mapping),
                                         network, strategy="greedy")
        burst = schedule_communications(compile_assignment(circuit, mapping),
                                        network, strategy="burst-greedy")
        assert burst.latency <= greedy.latency + 1e-9

    def test_commutable_blocks_overlap_under_burst_greedy(self):
        # Two commutable Cat blocks sharing the hub qubit can run in parallel.
        network = uniform_network(3, 2)
        circuit = Circuit(6).cx(0, 2).cx(0, 3).cx(0, 4).cx(0, 5)
        mapping = QubitMapping({0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 5: 2})
        assignment = compile_assignment(circuit, mapping)
        schedule = schedule_communications(assignment, network, strategy="burst-greedy")
        comm = schedule.comm_ops()
        assert len(comm) == 2
        overlap = min(comm[0].end, comm[1].end) - max(comm[0].start, comm[1].start)
        assert overlap > 0

    def test_greedy_serialises_blocks_sharing_a_qubit(self):
        network = uniform_network(3, 2)
        circuit = Circuit(6).cx(0, 2).cx(0, 3).cx(0, 4).cx(0, 5)
        mapping = QubitMapping({0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 5: 2})
        assignment = compile_assignment(circuit, mapping)
        schedule = schedule_communications(assignment, network, strategy="greedy")
        comm = sorted(schedule.comm_ops(), key=lambda op: op.start)
        assert comm[1].start >= comm[0].end - 1e-9

    def test_fused_chain_reported(self):
        network = uniform_network(3, 2)
        # Bidirectional blocks toward two different nodes with the same hub.
        circuit = (Circuit(6).cx(0, 2).cx(2, 0).cx(0, 3)
                   .cx(0, 4).cx(4, 0).cx(0, 5))
        mapping = QubitMapping({0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 5: 2})
        assignment = compile_assignment(circuit, mapping)
        if assignment.num_tp_blocks() >= 2:
            schedule = schedule_communications(assignment, network)
            assert schedule.num_fused_chains >= 1

    def test_ops_cover_every_assignment_item(self):
        network = uniform_network(3, 2)
        circuit = (Circuit(6).cx(0, 2).cx(2, 0).cx(0, 3)
                   .cx(0, 4).cx(4, 0).cx(0, 5))
        mapping = QubitMapping({0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 5: 2})
        assignment = compile_assignment(circuit, mapping)
        schedule = schedule_communications(assignment, network)
        assert schedule.num_scheduled_items() == len(assignment.items)

    def test_mode_recorded(self):
        network = uniform_network(2, 3)
        circuit = decompose_to_cx(qft_circuit(6))
        assignment = compile_assignment(circuit, mapping_for(6, 2))
        burst = schedule_communications(assignment, network,
                                        strategy="burst-greedy")
        plain = schedule_communications(assignment, network,
                                        strategy="greedy")
        assert burst.mode in ("burst", "plain")
        assert plain.mode == "plain"

    def test_parallelism_profile_shape(self):
        network = uniform_network(2, 4)
        circuit = decompose_to_cx(qft_circuit(8))
        schedule = schedule_communications(compile_assignment(circuit, mapping_for(8, 2)),
                                           network)
        profile = schedule.parallelism_profile(resolution=50)
        assert len(profile) == 51
        assert max(profile) >= 1

    def test_parallelism_profile_covers_horizon_and_instant_ops(self):
        """Regression: the final sample and zero-duration ops must count.

        The old bucketing sampled ``t < latency`` only, so the op finishing
        the schedule never appeared at the horizon, and ops with
        ``start == end`` (instantaneous in the cost model) were invisible
        at every sample.
        """
        ops = [ScheduledOp(index=0, kind="comm", start=0.0, end=10.0,
                           nodes=(0, 1)),
               ScheduledOp(index=1, kind="comm", start=5.0, end=5.0,
                           nodes=(0,)),
               ScheduledOp(index=2, kind="comm", start=10.0, end=10.0,
                           nodes=(1,))]
        schedule = ScheduleResult(ops=ops, latency=10.0, resources=None,
                                  num_comm_ops=3, num_fused_chains=0)
        profile = schedule.parallelism_profile(resolution=10)
        assert len(profile) == 11
        # Sample at t=5.0 sees the long op plus the instantaneous one.
        assert profile[5] == 2
        # The horizon sample still sees the op that ends the schedule,
        # plus the instantaneous op sitting exactly at the horizon.
        assert profile[10] == 2


class TestFusedChainItinerary:
    """The fused-chain EPR accounting follows the teleport itinerary.

    Pre-fix, a chain was charged (and, in the simulator, booked) the
    all-pairs closure of its node set — including pairs the hub's
    home -> remote_1 -> ... -> home itinerary never links.
    """

    @staticmethod
    def _chain(remote_nodes, hub_node=0):
        blocks = []
        for remote in remote_nodes:
            block = CommBlock(hub_qubit=0, hub_node=hub_node,
                              remote_node=remote)
            block.scheme = CommScheme.TP
            blocks.append(block)
        return FusedTPChain(blocks=blocks)

    def test_itinerary_orders_stops(self):
        chain = self._chain([1, 3, 2])
        assert chain.itinerary() == (0, 1, 3, 2, 0)
        assert chain.hop_pairs() == ((0, 1), (1, 3), (3, 2), (2, 0))

    def test_colocated_stops_need_no_hop_pair(self):
        chain = self._chain([1, 1, 2])
        assert chain.itinerary() == (0, 1, 1, 2, 0)
        assert chain.hop_pairs() == ((0, 1), (1, 2), (2, 0))

    def test_line_topology_charges_itinerary_not_diameter(self):
        from repro.core.scheduling import (_epr_prep_latency,
                                           prep_latency_for_pairs)
        from repro.hardware import apply_topology

        network = apply_topology(uniform_network(4, 2), "line",
                                 swap_overhead=1.0)
        # Itinerary 0 -> 1 -> 3 -> 2 -> 0 never links the diameter pair
        # (0, 3): its slowest hop spans 2 hops, not 3.
        chain = self._chain([1, 3, 2])
        t_epr = DEFAULT_LATENCY.t_epr
        fixed = prep_latency_for_pairs(network, chain.hop_pairs())
        assert fixed == pytest.approx(2 * t_epr)
        # The preserved pre-fix accounting overcharges via the unused pair.
        legacy = _epr_prep_latency(network, chain.nodes())
        assert legacy == pytest.approx(3 * t_epr)
        assert fixed < legacy

    def test_uniform_latency_unchanged_by_fix(self):
        from repro.core.scheduling import (_epr_prep_latency,
                                           prep_latency_for_pairs)

        network = uniform_network(4, 2)
        chain = self._chain([1, 3, 2])
        assert prep_latency_for_pairs(network, chain.hop_pairs()) \
            == _epr_prep_latency(network, chain.nodes())

    def test_plan_profiles_carry_prep_pairs(self):
        from repro.core import plan_schedule

        circuit = decompose_to_cx(qft_circuit(12))
        mapping = mapping_for(12, 3)
        assignment = compile_assignment(circuit, mapping)
        plan = plan_schedule(assignment, burst=True)
        profiles = plan.op_profiles(mapping, DEFAULT_LATENCY)
        for item, profile in zip(plan.items, profiles):
            if profile.kind == "gate":
                assert profile.prep_pairs == ()
            elif profile.kind == "tp-chain":
                assert profile.prep_pairs == item.hop_pairs()
            else:
                assert profile.prep_pairs == (tuple(item.nodes),)
