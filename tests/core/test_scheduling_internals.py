"""White-box tests for scheduler and aggregator internals."""

import pytest

from repro.comm import CommBlock, CommScheme
from repro.core.aggregation import CommAggregator
from repro.core.scheduling import (
    FusedTPChain,
    _build_dependencies,
    _epr_prep_latency,
    _items_commute,
)
from repro.hardware import DEFAULT_LATENCY, apply_topology, uniform_network
from repro.ir import Circuit, Gate
from repro.partition import QubitMapping


def cat_block(gates, hub, hub_node, remote_node, scheme=CommScheme.CAT):
    block = CommBlock(hub_qubit=hub, hub_node=hub_node, remote_node=remote_node)
    block.extend(gates)
    block.scheme = scheme
    return block


class TestDependencyConstruction:
    def test_program_order_chaining_without_commutation(self):
        items = [Gate("h", (0,)), Gate("cx", (0, 1)), Gate("h", (1,))]
        preds = _build_dependencies(items, 2, commutation_aware=False)
        assert preds == [[], [0], [1]]

    def test_disjoint_items_have_no_dependencies(self):
        items = [Gate("h", (0,)), Gate("h", (1,)), Gate("h", (2,))]
        preds = _build_dependencies(items, 3, commutation_aware=True)
        assert preds == [[], [], []]

    def test_commuting_blocks_are_independent(self):
        a = cat_block([Gate("cx", (0, 2))], 0, 0, 1)
        b = cat_block([Gate("cx", (0, 3))], 0, 0, 1)
        preds = _build_dependencies([a, b], 4, commutation_aware=True)
        assert preds[1] == []

    def test_commuting_blocks_kept_ordered_without_commutation(self):
        a = cat_block([Gate("cx", (0, 2))], 0, 0, 1)
        b = cat_block([Gate("cx", (0, 3))], 0, 0, 1)
        preds = _build_dependencies([a, b], 4, commutation_aware=False)
        assert preds[1] == [0]

    def test_non_commuting_blocks_stay_ordered(self):
        a = cat_block([Gate("cx", (0, 2))], 0, 0, 1)
        b = cat_block([Gate("cx", (2, 0))], 2, 1, 0)
        preds = _build_dependencies([a, b], 4, commutation_aware=True)
        assert preds[1] == [0]

    def test_gate_after_block_depends_on_it(self):
        a = cat_block([Gate("cx", (0, 2))], 0, 0, 1)
        gate = Gate("h", (0,))
        preds = _build_dependencies([a, gate], 4, commutation_aware=True)
        assert preds[1] == [0]

    def test_barrier_depends_on_everything(self):
        items = [Gate("h", (0,)), Gate("h", (1,)), Gate("barrier", (0, 1))]
        preds = _build_dependencies(items, 2, commutation_aware=True)
        assert preds[2] == [0, 1]

    def test_lookback_limit_adds_conservative_edge(self):
        # 15 pairwise-commuting blocks on the same hub exceed the lookback
        # window, so the last one is anchored on an older block instead of
        # being left floating.
        blocks = [cat_block([Gate("cx", (0, 2 + (i % 2)))], 0, 0, 1)
                  for i in range(15)]
        preds = _build_dependencies(blocks, 4, commutation_aware=True, lookback=4)
        assert preds[-1]  # not empty


class TestItemsCommute:
    def test_blocks_with_shared_commuting_gates(self):
        a = cat_block([Gate("cx", (0, 2))], 0, 0, 1)
        b = cat_block([Gate("cx", (0, 3))], 0, 0, 1)
        assert _items_commute(a, b)

    def test_block_vs_gate(self):
        a = cat_block([Gate("cx", (0, 2))], 0, 0, 1)
        assert _items_commute(a, Gate("t", (0,)))
        assert not _items_commute(a, Gate("h", (0,)))

    def test_fused_chain_participates(self):
        a = cat_block([Gate("cx", (0, 2))], 0, 0, 1, scheme=CommScheme.TP)
        b = cat_block([Gate("cx", (0, 3))], 0, 0, 2, scheme=CommScheme.TP)
        chain = FusedTPChain(blocks=[a, b])
        assert _items_commute(chain, Gate("rz", (0,), (0.2,)))
        assert not _items_commute(chain, Gate("h", (2,)))


class TestEprPrepLatency:
    def test_uniform_network_uses_base_latency(self):
        network = uniform_network(3, 2)
        assert _epr_prep_latency(network, (0, 1)) == DEFAULT_LATENCY.t_epr

    def test_topology_scaled_latency(self):
        network = apply_topology(uniform_network(4, 2), "line", swap_overhead=1.0)
        assert _epr_prep_latency(network, (0, 3)) == pytest.approx(
            3 * DEFAULT_LATENCY.t_epr)

    def test_chain_charged_slowest_pair(self):
        network = apply_topology(uniform_network(4, 2), "line", swap_overhead=1.0)
        assert _epr_prep_latency(network, (0, 1, 3)) == pytest.approx(
            3 * DEFAULT_LATENCY.t_epr)

    def test_single_node_falls_back_to_base(self):
        network = uniform_network(3, 2)
        assert _epr_prep_latency(network, (1,)) == DEFAULT_LATENCY.t_epr


class TestAggregatorInternals:
    @pytest.fixture
    def aggregator(self):
        circuit = Circuit(4).cx(0, 2).cx(0, 3).cx(1, 2)
        mapping = QubitMapping({0: 0, 1: 0, 2: 1, 3: 1})
        return CommAggregator(circuit, mapping)

    def test_pairs_ordered_by_weight(self, aggregator):
        pairs = aggregator._pairs_by_weight(list(aggregator.circuit.gates))
        assert pairs[0] == (0, 1)  # qubit 0 toward node 1 has two remote gates

    def test_eligible_checks_pair_membership(self, aggregator):
        gate = Gate("cx", (0, 2))
        assert aggregator._eligible(gate, 0, 1)
        assert aggregator._eligible(gate, 2, 0)
        assert not aggregator._eligible(gate, 0, 0)
        assert not aggregator._eligible(gate, 1, 1)
        assert not aggregator._eligible(Gate("cx", (0, 1)), 0, 0)

    def test_allowed_in_block_rules(self, aggregator):
        remote_qubits = {2, 3}
        assert aggregator._allowed_in_block(Gate("t", (0,)), 0, remote_qubits)
        assert aggregator._allowed_in_block(Gate("cx", (2, 3)), 0, remote_qubits)
        assert not aggregator._allowed_in_block(Gate("cx", (1, 0)), 0, remote_qubits)
        assert not aggregator._allowed_in_block(Gate("measure", (0,)), 0, remote_qubits)
        assert not aggregator._allowed_in_block(Gate("barrier", (0, 1)), 0, remote_qubits)

    def test_allowed_in_block_hub_gate_requires_commutation_mode(self):
        circuit = Circuit(4).cx(0, 2)
        mapping = QubitMapping({0: 0, 1: 0, 2: 1, 3: 1})
        no_commute = CommAggregator(circuit, mapping, use_commutation=False)
        assert not no_commute._allowed_in_block(Gate("t", (0,)), 0, {2, 3})

    def test_mismatched_qubit_count_rejected(self):
        with pytest.raises(ValueError):
            CommAggregator(Circuit(4), QubitMapping({0: 0, 1: 1}))
