"""Unit tests for metrics and the AutoComm pipeline."""

import pytest

from repro import AutoCommCompiler, AutoCommConfig, compile_autocomm, compile_sparse
from repro.circuits import arithmetic_snippet, arithmetic_snippet_layout, bv_circuit, qft_circuit
from repro.comm import CommBlock, CommScheme
from repro.core import burst_distribution, communication_loads, comparison_factors
from repro.core.metrics import CompilationMetrics
from repro.hardware import uniform_network
from repro.ir import Gate
from repro.partition import QubitMapping


@pytest.fixture
def mapping():
    return QubitMapping({0: 0, 1: 0, 2: 1, 3: 1})


def cat_block(gates, scheme=CommScheme.CAT):
    block = CommBlock(hub_qubit=0, hub_node=0, remote_node=1)
    block.extend(gates)
    block.scheme = scheme
    return block


class TestMetrics:
    def test_comparison_factors(self):
        baseline = CompilationMetrics("x", total_comm=100, tp_comm=0, cat_comm=100,
                                      peak_rem_cx=1, latency=500.0, num_blocks=100,
                                      num_remote_gates=100)
        optimized = CompilationMetrics("x", total_comm=25, tp_comm=10, cat_comm=15,
                                       peak_rem_cx=4, latency=125.0, num_blocks=20,
                                       num_remote_gates=100)
        factors = comparison_factors(baseline, optimized)
        assert factors["improv_factor"] == pytest.approx(4.0)
        assert factors["lat_dec_factor"] == pytest.approx(4.0)

    def test_comparison_factors_zero_divisor(self):
        baseline = CompilationMetrics("x", 10, 0, 10, 1, 10.0, 10, 10)
        optimized = CompilationMetrics("x", 0, 0, 0, 0, 0.0, 0, 0)
        factors = comparison_factors(baseline, optimized)
        assert factors["improv_factor"] == float("inf")

    def test_communication_loads_cat(self, mapping):
        blocks = [cat_block([Gate("cx", (0, 2)), Gate("cx", (0, 3))])]
        assert communication_loads(blocks, mapping) == [2.0]

    def test_communication_loads_tp_split_in_half(self, mapping):
        blocks = [cat_block([Gate("cx", (0, 2)), Gate("cx", (2, 0)),
                             Gate("cx", (0, 3)), Gate("cx", (3, 0))],
                            scheme=CommScheme.TP)]
        assert communication_loads(blocks, mapping) == [2.0, 2.0]

    def test_burst_distribution_monotone_decreasing(self, mapping):
        blocks = [
            cat_block([Gate("cx", (0, 2))]),
            cat_block([Gate("cx", (0, 2)), Gate("cx", (0, 3))]),
            cat_block([Gate("cx", (0, 2)), Gate("cx", (0, 3)), Gate("cx", (0, 2))]),
        ]
        dist = burst_distribution(blocks, mapping)
        assert dist[1] == pytest.approx(1.0)
        values = [dist[x] for x in sorted(dist)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_burst_distribution_empty(self, mapping):
        assert burst_distribution([], mapping) == {}

    def test_metrics_as_dict(self):
        metrics = CompilationMetrics("demo", 5, 2, 3, 2.5, 42.0, 4, 9)
        data = metrics.as_dict()
        assert data["name"] == "demo"
        assert data["total_comm"] == 5
        assert data["latency"] == 42.0


class TestPipeline:
    def test_compile_returns_all_stages(self):
        circuit = qft_circuit(8)
        network = uniform_network(2, 4)
        program = compile_autocomm(circuit, network)
        assert program.aggregation is not None
        assert program.assignment is not None
        assert program.schedule is not None
        assert program.metrics.total_comm > 0
        assert program.compiler == "autocomm"

    def test_compile_with_explicit_mapping(self):
        circuit = bv_circuit(8)
        network = uniform_network(2, 4)
        mapping = QubitMapping({q: q // 4 for q in range(8)}, network)
        program = compile_autocomm(circuit, network, mapping=mapping)
        assert program.mapping == mapping

    def test_capacity_check(self):
        circuit = qft_circuit(10)
        network = uniform_network(2, 4)
        with pytest.raises(ValueError):
            compile_autocomm(circuit, network)

    def test_config_labels(self):
        assert AutoCommCompiler(AutoCommConfig(cat_only=True))._compiler_label() \
            == "autocomm-catonly"
        assert AutoCommCompiler(AutoCommConfig(use_commutation=False))._compiler_label() \
            == "autocomm-nocommute"
        assert AutoCommCompiler(AutoCommConfig(schedule_strategy="greedy"))._compiler_label() \
            == "autocomm-greedy"

    def test_summary_contains_compiler(self):
        circuit = bv_circuit(8)
        network = uniform_network(2, 4)
        program = compile_autocomm(circuit, network)
        summary = program.summary()
        assert summary["compiler"] == "autocomm"
        assert summary["total_comm"] == program.metrics.total_comm

    def test_burst_distribution_accessor(self):
        circuit = qft_circuit(8)
        network = uniform_network(2, 4)
        program = compile_autocomm(circuit, network)
        dist = program.burst_distribution()
        assert dist[1] == pytest.approx(1.0)

    def test_autocomm_beats_sparse_on_qft(self):
        circuit = qft_circuit(12)
        network = uniform_network(3, 4)
        autocomm = compile_autocomm(circuit, network)
        sparse = compile_sparse(circuit, network)
        assert autocomm.metrics.total_comm < sparse.metrics.total_comm
        assert autocomm.metrics.latency < sparse.metrics.latency
        assert autocomm.metrics.peak_rem_cx > sparse.metrics.peak_rem_cx

    def test_decompose_flag(self):
        circuit = qft_circuit(6)
        network = uniform_network(2, 3)
        program = compile_autocomm(circuit, network,
                                   config=AutoCommConfig(decompose=False))
        # Without decomposition the compiled circuit still contains CRZ gates.
        assert any(g.name == "crz" for g in program.circuit)

    def test_compiled_program_against_snippet_latency_claim(self):
        # Section 4.4: the walk-through achieves a sizeable latency saving
        # over executing each remote CX independently.  The margin here is
        # below the paper's 2x because the fusion pass may only defer a
        # pending TP block past intervening items that commute with it; the
        # earlier 1.5x calibration relied on an unsound deferral that
        # reordered non-commuting blocks (caught by the execution simulator).
        circuit = arithmetic_snippet()
        network = uniform_network(3, 3)
        mapping = QubitMapping(arithmetic_snippet_layout(), network)
        autocomm = compile_autocomm(circuit, network, mapping=mapping)
        sparse = compile_sparse(circuit, network, mapping=mapping)
        assert sparse.metrics.latency / autocomm.metrics.latency > 1.3
