"""Unit tests for phase-structured compilation internals."""

import pytest

from repro.circuits import qft_circuit
from repro.comm.blocks import CommBlock
from repro.core import (AutoCommCompiler, AutoCommConfig, MigrationOp,
                        compile_autocomm, plan_phased_schedule)
from repro.core.pipeline import _phase_circuit, _segment_items
from repro.hardware import apply_topology, uniform_network
from repro.ir.circuit import Circuit
from repro.ir.gates import Gate


def _compiled_remap(phase_blocks=3, kind="line", qubits=12):
    network = uniform_network(4, qubits // 4)
    apply_topology(network, kind)
    return compile_autocomm(
        qft_circuit(qubits), network,
        config=AutoCommConfig(remap="bursts", phase_blocks=phase_blocks))


class TestConfigValidation:
    def test_unknown_remap_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown remap mode"):
            AutoCommCompiler(AutoCommConfig(remap="sometimes"))

    def test_bad_phase_blocks_rejected(self):
        with pytest.raises(ValueError, match="phase_blocks"):
            AutoCommCompiler(AutoCommConfig(remap="bursts", phase_blocks=0))

    def test_remap_label(self):
        compiler = AutoCommCompiler(AutoCommConfig(remap="bursts"))
        assert compiler._compiler_label() == "autocomm-remap"


class TestSegmentation:
    def _items(self, pattern):
        """Build a schedulable item list from 'g' (gate) / 'B' (block)."""
        items = []
        for char in pattern:
            if char == "B":
                items.append(CommBlock(hub_qubit=0, hub_node=0, remote_node=1,
                                       gates=[Gate("cx", (0, 4))]))
            else:
                items.append(Gate("h", (0,)))
        return items

    def test_boundary_before_block_after_quota(self):
        segments = _segment_items(self._items("BBgBB"), phase_blocks=2)
        assert [len(s) for s in segments] == [3, 2]
        assert sum(isinstance(i, CommBlock) for i in segments[0]) == 2

    def test_trailing_gates_join_last_phase(self):
        segments = _segment_items(self._items("BBBgg"), phase_blocks=2)
        assert [len(s) for s in segments] == [2, 3]
        assert isinstance(segments[1][0], CommBlock)

    def test_single_phase_when_under_quota(self):
        segments = _segment_items(self._items("gBg"), phase_blocks=8)
        assert len(segments) == 1

    def test_blockless_program_single_phase(self):
        segments = _segment_items(self._items("ggg"), phase_blocks=1)
        assert len(segments) == 1

    def test_segments_partition_items(self):
        items = self._items("BgBBgBBBg")
        segments = _segment_items(items, phase_blocks=2)
        flattened = [item for segment in segments for item in segment]
        assert flattened == items

    def test_phase_circuit_flattens_blocks(self):
        items = self._items("gB")
        circuit = _phase_circuit(Circuit(8, name="prog"), items, 1)
        assert circuit.name == "prog-phase1"
        assert [g.name for g in circuit] == ["h", "cx"]


class TestPhasedPlan:
    def test_single_phase_plan_matches_static(self):
        network = uniform_network(4, 3)
        apply_topology(network, "line")
        # Huge phase quota -> one phase, no migrations.
        program = compile_autocomm(
            qft_circuit(12), network,
            config=AutoCommConfig(remap="bursts", phase_blocks=10_000))
        assert program.metrics.num_phases == 1
        assert program.metrics.migration_moves == 0
        static_network = uniform_network(4, 3)
        apply_topology(static_network, "line")
        static = compile_autocomm(qft_circuit(12), static_network)
        assert program.metrics.latency == static.metrics.latency
        assert (program.metrics.total_epr_latency
                == static.metrics.total_epr_latency)

    def test_plan_is_memoised(self):
        program = _compiled_remap()
        burst = program.schedule.mode == "burst"
        first = plan_phased_schedule(program.phases, program.migrations,
                                     burst=burst)
        second = plan_phased_schedule(program.phases, program.migrations,
                                      burst=burst)
        assert first is second

    def test_migrations_form_barriers(self):
        program = _compiled_remap()
        plan = plan_phased_schedule(program.phases, program.migrations,
                                    burst=program.schedule.mode == "burst")
        migration_indices = [i for i, item in enumerate(plan.items)
                             if isinstance(item, MigrationOp)]
        assert migration_indices, "expected migrations in this workload"
        for index in migration_indices:
            # A migration waits for the previous phase...
            assert plan.preds[index]
            assert all(p < index for p in plan.preds[index])
        # ... and every item is ordered: no item may precede index 0 items
        # of its own phase barrier (sanity: preds sorted and acyclic).
        for index, plist in enumerate(plan.preds):
            assert all(p < index for p in plist)

    def test_item_mappings_track_phases(self):
        program = _compiled_remap()
        plan = plan_phased_schedule(program.phases, program.migrations,
                                    burst=program.schedule.mode == "burst")
        assert plan.item_mappings is not None
        assert len(plan.item_mappings) == len(plan.items)
        phase_mappings = {id(phase.mapping) for phase in program.phases}
        assert all(id(m) in phase_mappings for m in plan.item_mappings)

    def test_boundary_count_validated(self):
        program = _compiled_remap()
        with pytest.raises(ValueError, match="per phase boundary"):
            plan_phased_schedule(program.phases, [], burst=False)


class TestPhasedProgram:
    def test_blocks_concatenate_phases(self):
        program = _compiled_remap()
        assert program.blocks == [block for phase in program.phases
                                  for block in phase.blocks]

    def test_metrics_aggregate_phase_costs(self):
        program = _compiled_remap()
        costs = [phase.assignment.cost for phase in program.phases]
        assert program.metrics.total_comm == sum(c.total_comm for c in costs)
        assert program.metrics.total_epr_pairs == sum(c.total_epr_pairs
                                                      for c in costs)
        assert program.metrics.peak_rem_cx == max(c.peak_remote_cx
                                                  for c in costs)
        assert program.metrics.num_phases == len(program.phases)

    def test_migration_latency_prices_routed_teleports(self):
        program = _compiled_remap()
        network = program.network
        expected = sum(
            network.epr_latency(m.source, m.target)
            + network.latency.t_teleport
            for boundary in program.migrations for m in boundary)
        assert program.metrics.migration_latency == pytest.approx(expected)

    def test_burst_distribution_pools_phases(self):
        program = _compiled_remap()
        distribution = program.burst_distribution()
        assert distribution[1] == pytest.approx(1.0)
        values = [distribution[x] for x in sorted(distribution)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_summary_reports_phases(self):
        program = _compiled_remap()
        summary = program.summary()
        assert summary["compiler"] == "autocomm-remap"
        assert summary["num_phases"] == program.metrics.num_phases
        assert summary["migration_moves"] == program.metrics.migration_moves


class TestOverlapConfig:
    def test_overlap_requires_remap(self):
        with pytest.raises(ValueError, match='overlap requires'):
            AutoCommCompiler(AutoCommConfig(overlap=True))

    def test_auto_sizing_requires_remap(self):
        with pytest.raises(ValueError, match='phase_sizing'):
            AutoCommCompiler(AutoCommConfig(phase_sizing="auto"))

    def test_unknown_phase_sizing_rejected(self):
        with pytest.raises(ValueError, match="unknown phase sizing"):
            AutoCommCompiler(AutoCommConfig(remap="bursts",
                                            phase_sizing="sometimes"))

    def test_overlap_label(self):
        compiler = AutoCommCompiler(AutoCommConfig(remap="bursts",
                                                   overlap=True))
        assert compiler._compiler_label() == "autocomm-remap-overlap"

    def test_autosize_label(self):
        compiler = AutoCommCompiler(AutoCommConfig(remap="bursts",
                                                   overlap=True,
                                                   phase_sizing="auto"))
        assert compiler._compiler_label() == "autocomm-remap-overlap-autosize"


class TestAutoSizing:
    def _compiled_auto(self, phase_blocks=3, kind="line", qubits=12):
        network = uniform_network(4, qubits // 4)
        apply_topology(network, kind)
        return compile_autocomm(
            qft_circuit(qubits), network,
            config=AutoCommConfig(remap="bursts", phase_blocks=phase_blocks,
                                  phase_sizing="auto"))

    def test_auto_sizing_compiles_and_verifies(self):
        program = self._compiled_auto()
        assert program.metrics.num_phases >= 1
        assert program.compiler == "autocomm-remap-autosize"

    def test_segments_partition_items_and_respect_slack(self):
        from repro.core.pipeline import (_phase_circuit, _segment_items_auto,
                                         _segment_items)
        from repro.partition import oee_partition
        network = uniform_network(4, 3)
        apply_topology(network, "line")
        circuit = qft_circuit(12)
        from repro.ir.decompose import decompose_to_cx
        working = decompose_to_cx(circuit)
        mapping = oee_partition(working, network).mapping
        from repro.core import aggregate_communications
        base = aggregate_communications(working, mapping)
        phase_blocks = 3
        segments, decisions = _segment_items_auto(
            base.items, phase_blocks, working, network, mapping)
        flattened = [item for segment in segments for item in segment]
        assert flattened == list(base.items)
        slack = max(1, phase_blocks // 2)
        for decision in decisions:
            assert (phase_blocks - slack <= decision["chosen_blocks"]
                    <= phase_blocks + slack)
            costs = [c["migration_cost"] for c in decision["candidates"]]
            assert decision["migration_cost"] == min(costs)

    def test_auto_sizing_decisions_prefer_cheaper_boundaries(self):
        fixed = _compiled_remap(phase_blocks=3)
        auto = self._compiled_auto(phase_blocks=3)
        # The sizing search minimises each boundary's priced migration
        # bill, so across the program the auto compile never pays more
        # migration latency than it priced; both must stay legal programs.
        assert auto.metrics.migration_latency >= 0.0
        assert auto.metrics.num_phases >= 1
        assert fixed.metrics.num_phases >= 1
