"""Unit tests for the communication aggregation pass."""

import pytest

from repro.circuits import arithmetic_snippet, arithmetic_snippet_layout, bv_circuit, qft_circuit
from repro.comm import CommBlock
from repro.core import aggregate_communications
from repro.ir import Circuit, decompose_to_cx
from repro.ir.simulator import (
    random_statevector,
    simulate,
    states_equal_up_to_global_phase,
)
from repro.partition import QubitMapping


def two_node_mapping(num_qubits):
    half = num_qubits // 2
    return QubitMapping({q: (0 if q < half else 1) for q in range(num_qubits)})


def assert_equivalent(original, rewritten, seed=0):
    """The rewritten circuit must implement the same unitary as the original."""
    assert original.num_qubits == rewritten.num_qubits
    state = random_statevector(original.num_qubits, seed=seed)
    a = simulate(original, initial_state=state)
    b = simulate(rewritten, initial_state=state)
    assert states_equal_up_to_global_phase(a, b)


class TestBasicGrouping:
    def test_adjacent_remote_gates_grouped(self):
        circuit = Circuit(4).cx(0, 2).cx(0, 3)
        mapping = two_node_mapping(4)
        result = aggregate_communications(circuit, mapping)
        assert result.num_blocks() == 1
        assert result.blocks[0].num_remote_gates(mapping) == 2

    def test_local_gates_left_alone(self):
        circuit = Circuit(4).h(0).cx(0, 1).cx(2, 3)
        mapping = two_node_mapping(4)
        result = aggregate_communications(circuit, mapping)
        assert result.num_blocks() == 0
        assert len(result.items) == 3

    def test_every_remote_gate_lands_in_a_block(self):
        circuit = Circuit(4).cx(0, 2).h(2).cx(1, 3).cx(3, 0).cx(2, 1)
        mapping = two_node_mapping(4)
        result = aggregate_communications(circuit, mapping)
        in_blocks = result.remote_gates_in_blocks()
        assert in_blocks == mapping.count_remote_gates(circuit)

    def test_intervening_local_gate_on_remote_node_absorbed(self):
        circuit = Circuit(4).cx(0, 2).rz(0.3, 2).cx(0, 3)
        mapping = two_node_mapping(4)
        result = aggregate_communications(circuit, mapping)
        assert result.num_blocks() == 1
        assert len(result.blocks[0].gates) == 3

    def test_intervening_diagonal_hub_gate_absorbed(self):
        circuit = Circuit(4).cx(0, 2).t(0).cx(0, 3)
        mapping = two_node_mapping(4)
        result = aggregate_communications(circuit, mapping)
        assert result.num_blocks() == 1

    def test_commutable_local_gate_deferred(self):
        # The t(1) on a node-0 qubit unrelated to the block commutes past it.
        circuit = Circuit(4).cx(0, 2).t(1).cx(0, 3)
        mapping = two_node_mapping(4)
        result = aggregate_communications(circuit, mapping)
        assert result.num_blocks() == 1
        assert result.blocks[0].num_remote_gates(mapping) == 2

    def test_hub_gate_absorbed_in_place_keeps_block_together(self):
        # h(0) on the hub is absorbed without any reordering, so all three
        # remote gates stay in one (TP-bound) block.
        circuit = Circuit(4).cx(2, 0).h(0).cx(0, 2).cx(2, 0)
        mapping = two_node_mapping(4)
        result = aggregate_communications(circuit, mapping)
        assert result.block_sizes() == [3]

    def test_noncommuting_local_gate_breaks_block(self):
        # cx(1, 0) is local to the hub's node, cannot be absorbed into the
        # communication window, and does not commute with the block, so the
        # run of remote gates is split (the Algorithm 1 "break" case).
        circuit = Circuit(4).cx(0, 2).cx(1, 0).cx(0, 2)
        mapping = two_node_mapping(4)
        result = aggregate_communications(circuit, mapping)
        assert sorted(result.block_sizes()) == [1, 1]

    def test_commutable_remote_gate_of_other_pair_deferred(self):
        # CX(1,3) commutes with CX(0,2)/CX(0,3)? It shares qubit 3 with
        # CX(0,3) (same target) so it commutes and can be deferred.
        circuit = Circuit(4).cx(0, 2).cx(1, 3).cx(0, 3)
        mapping = two_node_mapping(4)
        result = aggregate_communications(circuit, mapping)
        assert 2 in result.block_sizes()

    def test_blocks_report_hub_and_nodes(self):
        circuit = Circuit(4).cx(0, 2).cx(0, 3)
        mapping = two_node_mapping(4)
        block = aggregate_communications(circuit, mapping).blocks[0]
        assert isinstance(block, CommBlock)
        assert block.hub_qubit == 0
        assert block.hub_node == 0
        assert block.remote_node == 1


class TestSemanticsPreservation:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_clifford_t_circuits_preserved(self, seed):
        from repro.circuits import random_clifford_t_circuit
        circuit = random_clifford_t_circuit(6, 40, seed=seed)
        mapping = two_node_mapping(6)
        result = aggregate_communications(circuit, mapping)
        assert_equivalent(circuit, result.to_circuit(), seed=seed)

    def test_qft_preserved(self):
        circuit = decompose_to_cx(qft_circuit(6))
        mapping = two_node_mapping(6)
        result = aggregate_communications(circuit, mapping)
        assert_equivalent(circuit, result.to_circuit(), seed=3)

    def test_bv_preserved(self):
        circuit = decompose_to_cx(bv_circuit(7))
        mapping = QubitMapping({0: 0, 1: 0, 2: 0, 3: 1, 4: 1, 5: 1, 6: 1})
        result = aggregate_communications(circuit, mapping)
        assert_equivalent(circuit, result.to_circuit(), seed=4)

    def test_arithmetic_snippet_preserved(self):
        circuit = decompose_to_cx(arithmetic_snippet())
        mapping = QubitMapping(arithmetic_snippet_layout())
        result = aggregate_communications(circuit, mapping)
        assert_equivalent(circuit, result.to_circuit(), seed=5)

    def test_gate_multiset_is_preserved(self):
        circuit = decompose_to_cx(qft_circuit(8))
        mapping = two_node_mapping(8)
        result = aggregate_communications(circuit, mapping)
        flattened = result.to_circuit()
        assert sorted(g.name for g in flattened) == sorted(g.name for g in circuit)
        assert len(flattened) == len(circuit)


class TestCommutationAblation:
    def test_no_commutation_never_produces_more_blocks_gates(self):
        circuit = decompose_to_cx(qft_circuit(8))
        mapping = two_node_mapping(8)
        with_comm = aggregate_communications(circuit, mapping, use_commutation=True)
        without = aggregate_communications(circuit, mapping, use_commutation=False)
        assert without.remote_gates_in_blocks() == with_comm.remote_gates_in_blocks()
        assert without.num_blocks() >= with_comm.num_blocks()

    def test_no_commutation_still_groups_truly_adjacent_gates(self):
        circuit = Circuit(4).cx(0, 2).cx(0, 3)
        mapping = two_node_mapping(4)
        result = aggregate_communications(circuit, mapping, use_commutation=False)
        assert result.num_blocks() == 1

    def test_no_commutation_preserves_semantics(self):
        circuit = decompose_to_cx(qft_circuit(6))
        mapping = two_node_mapping(6)
        result = aggregate_communications(circuit, mapping, use_commutation=False)
        assert_equivalent(circuit, result.to_circuit(), seed=6)


class TestPaperWalkthrough:
    """Checks on the Figure 4 / Figure 8 arithmetic example."""

    @pytest.fixture
    def snippet_result(self):
        circuit = arithmetic_snippet()
        mapping = QubitMapping(arithmetic_snippet_layout())
        return aggregate_communications(circuit, mapping), mapping

    def test_hub_pair_is_q3_node_a(self, snippet_result):
        result, mapping = snippet_result
        largest = max(result.blocks, key=lambda b: b.num_remote_gates(mapping))
        assert largest.hub_qubit == 3
        assert largest.remote_node == 0

    def test_multiple_remote_gates_per_block(self, snippet_result):
        result, mapping = snippet_result
        assert max(result.block_sizes()) >= 2

    def test_all_remote_gates_covered(self, snippet_result):
        result, mapping = snippet_result
        assert result.remote_gates_in_blocks() == mapping.count_remote_gates(result.circuit)


class TestValidation:
    def test_mapping_mismatch_rejected(self):
        circuit = Circuit(4).cx(0, 2)
        mapping = QubitMapping({0: 0, 1: 1})
        with pytest.raises(ValueError):
            aggregate_communications(circuit, mapping)

    def test_empty_circuit(self):
        mapping = two_node_mapping(4)
        result = aggregate_communications(Circuit(4), mapping)
        assert result.num_blocks() == 0
        assert len(result.items) == 0

    def test_circuit_without_remote_gates(self):
        circuit = Circuit(4).cx(0, 1).cx(2, 3).h(0)
        mapping = two_node_mapping(4)
        result = aggregate_communications(circuit, mapping)
        assert result.num_blocks() == 0
        assert result.to_circuit() == circuit
