"""Unit tests for the communication assignment pass."""

import pytest

from repro.circuits import arithmetic_snippet, arithmetic_snippet_layout, bv_circuit, qft_circuit
from repro.comm import CommBlock, CommPattern, CommScheme
from repro.core import aggregate_communications, assign_communications, choose_scheme
from repro.ir import Circuit, Gate, decompose_to_cx
from repro.partition import QubitMapping


@pytest.fixture
def mapping():
    return QubitMapping({0: 0, 1: 0, 2: 1, 3: 1})


def make_block(gates, hub=0):
    block = CommBlock(hub_qubit=hub, hub_node=0, remote_node=1)
    block.extend(gates)
    return block


class TestChooseScheme:
    def test_clean_control_block_gets_cat(self, mapping):
        block = make_block([Gate("cx", (0, 2)), Gate("cx", (0, 3))])
        assert choose_scheme(block, mapping) is CommScheme.CAT

    def test_clean_target_block_gets_cat(self, mapping):
        block = make_block([Gate("cx", (2, 0)), Gate("cx", (3, 0))])
        assert choose_scheme(block, mapping) is CommScheme.CAT

    def test_single_remote_cx_gets_cat(self, mapping):
        block = make_block([Gate("cx", (2, 0))])
        assert choose_scheme(block, mapping) is CommScheme.CAT

    def test_bidirectional_block_gets_tp(self, mapping):
        block = make_block([Gate("cx", (0, 2)), Gate("cx", (2, 0)), Gate("cx", (0, 3))])
        assert choose_scheme(block, mapping) is CommScheme.TP

    def test_blocked_unidirectional_gets_tp(self, mapping):
        # Non-diagonal hub gate between two remote CXs: Cat would need 2 EPR
        # pairs, the tie is resolved in favour of TP (paper, block 3).
        block = make_block([Gate("cx", (2, 0)), Gate("tdg", (0,)), Gate("cx", (3, 0))])
        assert choose_scheme(block, mapping) is CommScheme.TP

    def test_cat_only_forces_cat(self, mapping):
        block = make_block([Gate("cx", (0, 2)), Gate("cx", (2, 0))])
        assert choose_scheme(block, mapping, cat_only=True) is CommScheme.CAT

    def test_diagonal_hub_gate_keeps_cat(self, mapping):
        block = make_block([Gate("cx", (0, 2)), Gate("rz", (0,), (0.3,)),
                            Gate("cx", (0, 3))])
        assert choose_scheme(block, mapping) is CommScheme.CAT


class TestAssignCommunications:
    def aggregate(self, circuit, mapping):
        return aggregate_communications(circuit, mapping)

    def test_all_blocks_get_schemes(self, mapping):
        circuit = Circuit(4).cx(0, 2).cx(0, 3).cx(2, 1).cx(1, 3)
        result = assign_communications(self.aggregate(circuit, mapping))
        assert all(block.scheme is not None for block in result.blocks)

    def test_cost_matches_scheme_histogram(self, mapping):
        circuit = Circuit(4).cx(0, 2).cx(0, 3).cx(2, 0).cx(3, 0)
        result = assign_communications(self.aggregate(circuit, mapping))
        expected = (result.num_cat_blocks() * 1 + result.num_tp_blocks() * 2)
        # Cat blocks in this circuit are single-segment, so cost is exact.
        assert result.cost.total_comm == expected

    def test_pattern_histogram_populated(self, mapping):
        circuit = Circuit(4).cx(0, 2).cx(0, 3)
        result = assign_communications(self.aggregate(circuit, mapping))
        assert sum(result.pattern_histogram.values()) == len(result.blocks)
        assert CommPattern.UNIDIRECTIONAL_CONTROL in result.pattern_histogram

    def test_bv_uses_only_cat(self):
        # Table 3 reports zero TP-Comm for BV at every size.
        circuit = decompose_to_cx(bv_circuit(12, secret=[1] * 11))
        mapping = QubitMapping({q: q // 4 for q in range(12)})
        result = assign_communications(aggregate_communications(circuit, mapping))
        assert result.num_tp_blocks() == 0
        assert result.cost.tp_comm == 0
        assert result.cost.total_comm == result.num_cat_blocks()

    def test_qft_uses_mostly_tp(self):
        # Table 3 reports that most QFT communications are TP-Comm.
        circuit = decompose_to_cx(qft_circuit(8))
        mapping = QubitMapping({q: q // 4 for q in range(8)})
        result = assign_communications(aggregate_communications(circuit, mapping))
        assert result.cost.tp_comm > result.cost.total_comm / 2

    def test_cat_only_never_beats_hybrid(self):
        circuit = decompose_to_cx(qft_circuit(8))
        mapping = QubitMapping({q: q // 4 for q in range(8)})
        aggregation = aggregate_communications(circuit, mapping)
        hybrid = assign_communications(aggregation)
        # Re-aggregate because assignment mutates block schemes in place.
        aggregation2 = aggregate_communications(circuit, mapping)
        cat_only = assign_communications(aggregation2, cat_only=True)
        assert cat_only.cost.total_comm >= hybrid.cost.total_comm

    def test_assignment_total_never_exceeds_remote_gate_count(self):
        # One communication per remote gate is the sparse worst case.
        circuit = decompose_to_cx(qft_circuit(10))
        mapping = QubitMapping({q: q // 5 for q in range(10)})
        result = assign_communications(aggregate_communications(circuit, mapping))
        assert result.cost.total_comm <= mapping.count_remote_gates(circuit)

    def test_arithmetic_snippet_mixes_schemes(self):
        circuit = arithmetic_snippet()
        mapping = QubitMapping(arithmetic_snippet_layout())
        result = assign_communications(aggregate_communications(circuit, mapping))
        assert result.num_cat_blocks() >= 1
        assert result.num_tp_blocks() >= 1
