"""Equivalence of the optimized compile pipeline and its preserved reference.

The hot-path overhaul (indexed aggregation, pair-level commutation cache,
memoised plan construction, profile-driven scheduling) must be a pure
performance change: the optimized passes have to produce byte-identical
results to the preserved pre-optimization implementations in
``repro.core.aggregation_reference`` / ``assignment_reference`` /
``scheduling_reference``.  These tests diff the two pipelines structurally
over several benchmark families, ablations and mappings.
"""

import pytest

from repro.circuits import (bv_circuit, qaoa_maxcut_circuit, qft_circuit,
                            random_clifford_t_circuit, uccsd_circuit)
from repro.comm.blocks import CommBlock
from repro.core import (
    aggregate_communications,
    aggregate_communications_reference,
    assign_communications,
    assign_communications_reference,
    plan_schedule,
    plan_schedule_reference,
    schedule_communications,
    schedule_communications_reference,
)
from repro.hardware import uniform_network
from repro.ir import decompose_to_cx
from repro.partition import oee_partition, round_robin_mapping


def _items_signature(items):
    """Structural signature of an aggregated item list."""
    signature = []
    for item in items:
        if isinstance(item, CommBlock):
            signature.append(("block", item.hub_qubit, item.hub_node,
                              item.remote_node, tuple(item.gates)))
        else:
            signature.append(("gate", item))
    return signature


def _prepare(builder, num_qubits, num_nodes, partitioner="oee"):
    circuit = decompose_to_cx(builder(num_qubits))
    network = uniform_network(num_nodes, -(-num_qubits // num_nodes))
    if partitioner == "oee":
        mapping = oee_partition(circuit, network).mapping
    else:
        mapping = round_robin_mapping(num_qubits, network)
    return circuit, network, mapping


CASES = [
    pytest.param(qft_circuit, 16, 4, id="qft16"),
    pytest.param(bv_circuit, 20, 4, id="bv20"),
    pytest.param(lambda n: qaoa_maxcut_circuit(n, layers=1, degree=3), 18, 3,
                 id="qaoa18"),
    pytest.param(uccsd_circuit, 8, 4, id="uccsd8"),
    pytest.param(lambda n: random_clifford_t_circuit(n, num_gates=160, seed=11),
                 14, 3, id="random14"),
]


class TestAggregationEquivalence:
    @pytest.mark.parametrize("builder,num_qubits,num_nodes", CASES)
    def test_items_identical(self, builder, num_qubits, num_nodes):
        circuit, _, mapping = _prepare(builder, num_qubits, num_nodes)
        optimized = aggregate_communications(circuit, mapping)
        reference = aggregate_communications_reference(circuit, mapping)
        assert _items_signature(optimized.items) == \
            _items_signature(reference.items)
        assert optimized.block_sizes() == reference.block_sizes()
        assert optimized.to_circuit().gates == reference.to_circuit().gates

    @pytest.mark.parametrize("use_commutation", [True, False])
    @pytest.mark.parametrize("max_sweeps", [1, 3])
    def test_ablation_parameters(self, use_commutation, max_sweeps):
        circuit, _, mapping = _prepare(qft_circuit, 12, 3)
        optimized = aggregate_communications(
            circuit, mapping, use_commutation=use_commutation,
            max_sweeps=max_sweeps)
        reference = aggregate_communications_reference(
            circuit, mapping, use_commutation=use_commutation,
            max_sweeps=max_sweeps)
        assert _items_signature(optimized.items) == \
            _items_signature(reference.items)

    def test_round_robin_mapping(self):
        circuit, _, mapping = _prepare(bv_circuit, 16, 4,
                                       partitioner="round-robin")
        optimized = aggregate_communications(circuit, mapping)
        reference = aggregate_communications_reference(circuit, mapping)
        assert _items_signature(optimized.items) == \
            _items_signature(reference.items)


class TestFullPipelineEquivalence:
    @pytest.mark.parametrize("builder,num_qubits,num_nodes", CASES)
    def test_metrics_identical(self, builder, num_qubits, num_nodes):
        circuit, network, mapping = _prepare(builder, num_qubits, num_nodes)

        opt_assignment = assign_communications(
            aggregate_communications(circuit, mapping))
        opt_schedule = schedule_communications(opt_assignment, network)

        ref_assignment = assign_communications_reference(
            aggregate_communications_reference(circuit, mapping))
        ref_schedule = schedule_communications_reference(
            ref_assignment, network)

        assert opt_assignment.cost == ref_assignment.cost
        assert opt_assignment.pattern_histogram == \
            ref_assignment.pattern_histogram
        assert opt_assignment.scheme_histogram == \
            ref_assignment.scheme_histogram
        assert [b.scheme for b in opt_assignment.blocks] == \
            [b.scheme for b in ref_assignment.blocks]
        assert opt_schedule.latency == ref_schedule.latency
        assert opt_schedule.mode == ref_schedule.mode
        assert opt_schedule.num_comm_ops == ref_schedule.num_comm_ops
        assert opt_schedule.num_fused_chains == ref_schedule.num_fused_chains

    @pytest.mark.parametrize("burst", [True, False])
    def test_plans_identical(self, burst):
        circuit, network, mapping = _prepare(qft_circuit, 16, 4)
        assignment = assign_communications(
            aggregate_communications(circuit, mapping))
        optimized = plan_schedule(assignment, burst=burst)
        reference = plan_schedule_reference(assignment, burst=burst)
        assert optimized.preds == reference.preds
        assert optimized.num_fused_chains == reference.num_fused_chains
        assert len(optimized.items) == len(reference.items)

    def test_plan_schedule_is_memoised(self):
        circuit, network, mapping = _prepare(qft_circuit, 12, 3)
        assignment = assign_communications(
            aggregate_communications(circuit, mapping))
        assert plan_schedule(assignment, burst=True) is \
            plan_schedule(assignment, burst=True)
        assert plan_schedule(assignment, burst=True) is not \
            plan_schedule(assignment, burst=False)
