"""Unit tests for the node-to-node collective communication extension."""

import pytest

from repro.circuits import qft_circuit
from repro.comm import CommBlock, CommScheme
from repro.core import (
    CollectiveBlock,
    aggregate_communications,
    assign_communications,
    collective_latency,
    form_collectives,
)
from repro.core.aggregation import AggregationResult
from repro.core.assignment import AssignmentResult
from repro.comm.cost import total_comm_count, block_latency
from repro.hardware import uniform_network
from repro.ir import Circuit, Gate, decompose_to_cx
from repro.partition import QubitMapping


def make_block(hub, partner, mapping, scheme=CommScheme.CAT, extra_gates=()):
    block = CommBlock(hub_qubit=hub, hub_node=mapping.node_of(hub),
                      remote_node=mapping.node_of(partner))
    block.append(Gate("cx", (hub, partner)))
    block.extend(extra_gates)
    block.scheme = scheme
    return block


def assignment_from(items, blocks, mapping, num_qubits=6):
    circuit = Circuit(num_qubits)
    aggregation = AggregationResult(circuit, mapping, list(items), list(blocks))
    return AssignmentResult(aggregation=aggregation, blocks=list(blocks),
                            cost=total_comm_count(blocks, mapping))


@pytest.fixture
def mapping():
    return QubitMapping({0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 5: 2})


class TestFormCollectives:
    def test_adjacent_same_link_blocks_grouped(self, mapping):
        a = make_block(0, 2, mapping)
        b = make_block(1, 3, mapping)
        assignment = assignment_from([a, b], [a, b], mapping)
        items = form_collectives(assignment)
        assert len(items) == 1
        assert isinstance(items[0], CollectiveBlock)
        assert len(items[0]) == 2
        assert items[0].nodes == (0, 1)

    def test_blocks_on_different_links_not_grouped(self, mapping):
        a = make_block(0, 2, mapping)
        b = make_block(1, 4, mapping)
        assignment = assignment_from([a, b], [a, b], mapping)
        items = form_collectives(assignment)
        assert all(isinstance(item, CommBlock) for item in items)

    def test_intervening_dependent_gate_breaks_collective(self, mapping):
        a = make_block(0, 2, mapping)
        b = make_block(1, 3, mapping)
        gate = Gate("h", (0,))
        assignment = assignment_from([a, gate, b], [a, b], mapping)
        items = form_collectives(assignment)
        assert not any(isinstance(item, CollectiveBlock) for item in items)

    def test_unrelated_gate_does_not_break_collective(self, mapping):
        a = make_block(0, 2, mapping)
        b = make_block(1, 3, mapping)
        gate = Gate("h", (5,))
        assignment = assignment_from([a, gate, b], [a, b], mapping)
        items = form_collectives(assignment)
        assert any(isinstance(item, CollectiveBlock) for item in items)

    def test_min_members_threshold(self, mapping):
        a = make_block(0, 2, mapping)
        assignment = assignment_from([a], [a], mapping)
        items = form_collectives(assignment, min_members=2)
        assert items == [a]

    def test_comm_count_unchanged(self, mapping):
        a = make_block(0, 2, mapping)
        b = make_block(1, 3, mapping, scheme=CommScheme.TP)
        assignment = assignment_from([a, b], [a, b], mapping)
        collective = form_collectives(assignment)[0]
        assert collective.comm_count(mapping) == assignment.cost.total_comm

    def test_on_real_program(self, mapping):
        circuit = decompose_to_cx(qft_circuit(6))
        assignment = assign_communications(aggregate_communications(circuit, mapping))
        items = form_collectives(assignment)
        block_total = sum(len(item) if isinstance(item, CollectiveBlock) else 1
                          for item in items
                          if isinstance(item, (CommBlock, CollectiveBlock)))
        assert block_total == len(assignment.blocks)


class TestCollectiveLatency:
    def test_empty_collective(self, mapping):
        network = uniform_network(3, 2)
        collective = CollectiveBlock(node_a=0, node_b=1, blocks=[])
        assert collective_latency(collective, mapping, network) == 0.0

    def test_two_blocks_within_budget_run_in_one_wave(self, mapping):
        network = uniform_network(3, 2, comm_qubits_per_node=2)
        a = make_block(0, 2, mapping)
        b = make_block(1, 3, mapping)
        collective = CollectiveBlock(node_a=0, node_b=1, blocks=[a, b])
        latency = collective_latency(collective, mapping, network)
        expected = network.latency.t_epr + max(
            block_latency(a, mapping, network.latency),
            block_latency(b, mapping, network.latency))
        assert latency == pytest.approx(expected)

    def test_more_comm_qubits_reduce_collective_latency(self, mapping):
        blocks = [make_block(0, 2, mapping), make_block(1, 3, mapping),
                  make_block(0, 3, mapping), make_block(1, 2, mapping)]
        collective = CollectiveBlock(node_a=0, node_b=1, blocks=blocks)
        tight = uniform_network(3, 2, comm_qubits_per_node=1)
        roomy = uniform_network(3, 2, comm_qubits_per_node=4)
        assert (collective_latency(collective, mapping, roomy)
                < collective_latency(collective, mapping, tight))

    def test_touched_qubits_and_gates(self, mapping):
        a = make_block(0, 2, mapping)
        b = make_block(1, 3, mapping)
        collective = CollectiveBlock(node_a=0, node_b=1, blocks=[a, b])
        assert collective.touched_qubits() == (0, 1, 2, 3)
        assert len(collective.gates) == 2
