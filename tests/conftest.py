"""Shared pytest fixtures and an import-path fallback.

The fallback lets the suite run straight from a source checkout even when
the package has not been installed (useful in the offline environment where
``pip install -e .`` may be unavailable).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:  # pragma: no cover - only hit without an install
        sys.path.insert(0, _SRC)

import pytest

from repro.circuits import arithmetic_snippet, arithmetic_snippet_layout, qft_circuit
from repro.hardware import uniform_network
from repro.partition import QubitMapping


@pytest.fixture
def small_network():
    """Three nodes with four data qubits and two comm qubits each."""
    return uniform_network(num_nodes=3, qubits_per_node=4)


@pytest.fixture
def two_node_network():
    """Two nodes with four data qubits each."""
    return uniform_network(num_nodes=2, qubits_per_node=4)


@pytest.fixture
def snippet_circuit():
    """The Figure 4 arithmetic walk-through circuit."""
    return arithmetic_snippet()


@pytest.fixture
def snippet_mapping():
    """The Figure 4 qubit-to-node layout (3 nodes)."""
    return QubitMapping(arithmetic_snippet_layout())


@pytest.fixture
def small_qft():
    """An eight-qubit QFT used across compiler tests."""
    return qft_circuit(8)
