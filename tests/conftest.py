"""Shared pytest fixtures and an import-path fallback.

The fallback lets the suite run straight from a source checkout even when
the package has not been installed (useful in the offline environment where
``pip install -e .`` may be unavailable).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:  # pragma: no cover - only hit without an install
        sys.path.insert(0, _SRC)

import pytest

from repro.circuits import arithmetic_snippet, arithmetic_snippet_layout, qft_circuit
from repro.hardware import uniform_network
from repro.partition import QubitMapping


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "no_autoverify: opt a test out of the automatic static verification "
        "of every program it compiles (mutation tests corrupt compiled "
        "artifacts on purpose)")


@pytest.fixture(autouse=True)
def _autoverify_compiled_programs(request):
    """Statically verify every program the test compiles, at teardown.

    Wraps :meth:`repro.core.pipeline.AutoCommCompiler.compile` to record
    each compiled program, then asserts the :mod:`repro.verify` checkers
    report zero error diagnostics on every one of them.  This turns the
    whole suite into a verifier workload: any test that compiles a program
    also proves the artifact passes static analysis.  Mark a test
    ``no_autoverify`` when it deliberately produces corrupt artifacts.
    """
    if request.node.get_closest_marker("no_autoverify"):
        yield
        return
    from repro.core import pipeline as _pipeline

    compiled = []
    original = _pipeline.AutoCommCompiler.compile

    def recording_compile(self, circuit, network, mapping=None, cache=None):
        program = original(self, circuit, network, mapping, cache=cache)
        compiled.append(program)
        return program

    _pipeline.AutoCommCompiler.compile = recording_compile
    try:
        yield
    finally:
        _pipeline.AutoCommCompiler.compile = original
    if not compiled:
        return
    from repro.verify import verify_program

    for program in compiled:
        report = verify_program(program)
        errors = report.errors
        assert not errors, (
            f"static verification of {program.name!r} "
            f"({program.compiler}, remap={program.remap}) found "
            f"{len(errors)} error diagnostics:\n"
            + "\n".join(f"  {diag}" for diag in errors))


@pytest.fixture
def small_network():
    """Three nodes with four data qubits and two comm qubits each."""
    return uniform_network(num_nodes=3, qubits_per_node=4)


@pytest.fixture
def two_node_network():
    """Two nodes with four data qubits each."""
    return uniform_network(num_nodes=2, qubits_per_node=4)


@pytest.fixture
def snippet_circuit():
    """The Figure 4 arithmetic walk-through circuit."""
    return arithmetic_snippet()


@pytest.fixture
def snippet_mapping():
    """The Figure 4 qubit-to-node layout (3 nodes)."""
    return QubitMapping(arithmetic_snippet_layout())


@pytest.fixture
def small_qft():
    """An eight-qubit QFT used across compiler tests."""
    return qft_circuit(8)
