"""Canonical serialization: payload round-trips, writers, schema versioning."""

import gzip
import json

import pytest

from repro.circuits import build_benchmark, qft_circuit
from repro.core import AutoCommConfig, compile_autocomm
from repro.hardware import (DEFAULT_LATENCY, apply_topology, load_link_spec,
                            uniform_network)
from repro.ir import Circuit, Gate
from repro.partition import QubitMapping
from repro.persist import (SCHEMA_VERSION, canonical_json,
                           circuit_from_payload, circuit_to_payload,
                           dumps_program, load_program, loads_program,
                           mapping_from_payload, mapping_to_payload,
                           network_from_payload, network_to_payload,
                           program_from_payload, program_to_payload,
                           save_program)


def _compiled(num_qubits=10, nodes=4, topology="all-to-all", remap="never"):
    circuit, _ = build_benchmark("QFT", num_qubits, nodes)
    network = uniform_network(nodes, -(-num_qubits // nodes))
    if topology != "all-to-all":
        apply_topology(network, topology)
    config = (AutoCommConfig(remap="bursts", phase_blocks=4,
                             overlap=remap.endswith("+overlap"))
              if remap.startswith("bursts") else None)
    return compile_autocomm(circuit, network, config=config)


class TestCanonicalJson:
    def test_sorted_keys_and_compact(self):
        assert canonical_json({"b": 1, "a": [2, 3]}) == '{"a":[2,3],"b":1}'

    def test_insertion_order_irrelevant(self):
        first = {"x": 1, "y": 2}
        second = {"y": 2, "x": 1}
        assert canonical_json(first) == canonical_json(second)


class TestCircuitCodec:
    def test_round_trip(self):
        circuit = Circuit(3, [Gate("h", (0,)), Gate("rz", (1,), (0.25,)),
                              Gate("cx", (0, 2))], name="trip")
        loaded = circuit_from_payload(circuit_to_payload(circuit))
        assert loaded.num_qubits == 3
        assert loaded.name == "trip"
        assert [(g.name, tuple(g.qubits), tuple(g.params))
                for g in loaded.gates] == \
               [(g.name, tuple(g.qubits), tuple(g.params))
                for g in circuit.gates]

    def test_payload_is_canonical(self):
        circuit = qft_circuit(4)
        assert (canonical_json(circuit_to_payload(circuit))
                == canonical_json(circuit_to_payload(qft_circuit(4))))


class TestNetworkCodec:
    @pytest.mark.parametrize("topology", ["line", "ring", "star", "grid"])
    def test_topology_round_trip(self, topology):
        network = uniform_network(5, 3)
        apply_topology(network, topology, swap_overhead=1.5)
        loaded = network_from_payload(network_to_payload(network))
        assert loaded.num_nodes == network.num_nodes
        assert loaded.topology_kind == network.topology_kind
        assert loaded.swap_overhead == network.swap_overhead
        for a in range(5):
            for b in range(a + 1, 5):
                assert loaded.epr_latency(a, b) == network.epr_latency(a, b)
                assert (loaded.routing.route(a, b)
                        == network.routing.route(a, b))

    def test_link_profile_round_trip(self):
        network = uniform_network(4, 3)
        apply_topology(network, "ring", link_profile="distance_scaled")
        loaded = network_from_payload(network_to_payload(network))
        assert loaded.heterogeneous_links
        assert loaded.link_model.as_dict() == network.link_model.as_dict()

    def test_link_spec_round_trip(self, tmp_path):
        spec = tmp_path / "links.json"
        spec.write_text(json.dumps({
            "default": {"t_epr": 10.0, "capacity": 2},
            "links": {"0-1": {"t_epr": 3.0, "p_epr": 0.5}},
        }))
        model = load_link_spec(spec, DEFAULT_LATENCY.t_epr)
        network = uniform_network(3, 4)
        apply_topology(network, "line", link_model=model)
        loaded = network_from_payload(network_to_payload(network))
        assert loaded.link_model.as_dict() == network.link_model.as_dict()


class TestMappingCodec:
    def test_round_trip(self):
        network = uniform_network(3, 4)
        mapping = QubitMapping({q: q % 3 for q in range(9)}, network)
        loaded = mapping_from_payload(mapping_to_payload(mapping), network)
        assert all(loaded.node_of(q) == mapping.node_of(q) for q in range(9))


class TestProgramCodec:
    @pytest.mark.parametrize("remap", ["never", "bursts", "bursts+overlap"])
    def test_payload_round_trip(self, remap):
        program = _compiled(remap=remap)
        loaded = program_from_payload(program_to_payload(program))
        assert loaded.metrics.as_dict() == program.metrics.as_dict()
        assert loaded.compiler == program.compiler
        assert loaded.remap == program.remap
        assert len(loaded.circuit) == len(program.circuit)
        assert loaded.schedule.overlap == program.schedule.overlap
        assert (loaded.schedule.boundary_bubble
                == program.schedule.boundary_bubble)

    def test_overlapped_plan_round_trip(self):
        from repro.persist.codec import plan_from_payload, plan_to_payload
        from repro.sim.engine import plan_for_program
        program = _compiled(remap="bursts+overlap")
        plan = plan_for_program(program)
        assert plan.overlap and plan.item_phases is not None
        loaded = plan_from_payload(plan_to_payload(plan), program.network)
        assert loaded.overlap == plan.overlap
        assert loaded.item_phases == plan.item_phases
        assert loaded.preds == plan.preds

    def test_schema_version_enforced(self):
        payload = program_to_payload(_compiled(num_qubits=6, nodes=2))
        payload["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError):
            program_from_payload(payload)

    def test_assignment_blocks_share_identity_after_load(self):
        loaded = program_from_payload(program_to_payload(_compiled()))
        assert all(a is b for a, b in zip(loaded.assignment.blocks,
                                          loaded.assignment.aggregation.blocks))

    def test_bytes_are_deterministic(self):
        program = _compiled()
        data = dumps_program(program)
        assert data == dumps_program(program)
        # Re-serializing the loaded program reproduces the exact bytes:
        # nothing in the payload depends on object identity or set order.
        assert dumps_program(loads_program(data)) == data

    def test_gzip_payload_is_canonical_json(self):
        data = dumps_program(_compiled(num_qubits=6, nodes=2))
        payload = json.loads(gzip.decompress(data).decode("utf-8"))
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["kind"] == "compiled-program"

    def test_save_load_binary(self, tmp_path):
        program = _compiled(num_qubits=8, nodes=3, topology="ring")
        path = tmp_path / "program.rpz"
        save_program(program, path)
        loaded = load_program(path)
        assert loaded.metrics.as_dict() == program.metrics.as_dict()

    def test_save_load_json(self, tmp_path):
        program = _compiled(num_qubits=8, nodes=3)
        path = tmp_path / "program.json"
        save_program(program, path)
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text)["schema"] == SCHEMA_VERSION
        loaded = load_program(path)
        assert loaded.metrics.as_dict() == program.metrics.as_dict()

    def test_spans_round_trip(self):
        program = _compiled(num_qubits=6, nodes=2)
        loaded = program_from_payload(program_to_payload(program))
        assert loaded.spans is not None
        assert loaded.spans.as_dict() == program.spans.as_dict()
