"""Loaded programs are behaviourally identical to fresh compiles.

The correctness bar of the persistence layer: across every benchmark
family x topology x remap mode, a program serialized and loaded back must
report the same metrics, replay to the same deterministic latency, pass
static verification and drive bit-identical Monte-Carlo streams for any
seed and worker count.
"""

import pytest

from repro.circuits import BENCHMARK_FAMILIES, build_benchmark
from repro.core import AutoCommConfig, compile_autocomm
from repro.hardware import SUPPORTED_TOPOLOGIES, apply_topology
from repro.persist import dumps_program, loads_program
from repro.sim import SimulationConfig, run_monte_carlo, simulate_program
from repro.verify import verify_program

MATRIX = [(family, topology, remap)
          for family in sorted(BENCHMARK_FAMILIES)
          for topology in SUPPORTED_TOPOLOGIES
          for remap in ("never", "bursts", "bursts+overlap")]


def _compile(family, topology, remap, num_qubits=8, nodes=4):
    circuit, network = build_benchmark(family, num_qubits, nodes)
    if topology != "all-to-all":
        apply_topology(network, topology)
    config = (AutoCommConfig(remap="bursts", phase_blocks=4,
                             overlap=remap.endswith("+overlap"))
              if remap.startswith("bursts") else None)
    return compile_autocomm(circuit, network, config=config)


@pytest.mark.parametrize("family,topology,remap", MATRIX)
def test_roundtrip_matrix(family, topology, remap):
    program = _compile(family, topology, remap)
    loaded = loads_program(dumps_program(program))

    assert loaded.metrics.as_dict() == program.metrics.as_dict()
    assert loaded.metrics.latency == program.metrics.latency

    fresh_replay = simulate_program(program, SimulationConfig(ideal_links=True))
    loaded_replay = simulate_program(loaded, SimulationConfig(ideal_links=True))
    assert loaded_replay.latency == fresh_replay.latency

    report = verify_program(loaded)
    assert not report.errors, "\n".join(str(d) for d in report.errors)


@pytest.mark.parametrize("family", sorted(BENCHMARK_FAMILIES))
def test_monte_carlo_streams_bit_identical(family):
    # One representative per family: lossy links, several trials, and both
    # worker counts must draw the exact same latency streams from the
    # loaded program as from the fresh one.
    program = _compile(family, "ring", "never")
    loaded = loads_program(dumps_program(program))
    for workers in (1, 3):
        config = SimulationConfig(p_epr=0.7, seed=11, trials=6,
                                  workers=workers, record_trace=False)
        fresh = run_monte_carlo(program, config)
        warm = run_monte_carlo(loaded, config)
        assert warm.latencies == fresh.latencies


@pytest.mark.parametrize("remap", ["never", "bursts"])
def test_cache_hit_equivalence_through_pipeline(tmp_path, remap):
    # The same guarantee end-to-end through CompileCache: the program a
    # cache hit returns simulates identically to the one that was stored.
    from repro.persist import CompileCache

    cache = CompileCache(tmp_path)
    cold = _compile("QAOA", "line", remap)
    circuit, network = build_benchmark("QAOA", 8, 4)
    apply_topology(network, "line")
    config = (AutoCommConfig(remap="bursts", phase_blocks=4)
              if remap == "bursts" else None)
    compile_autocomm(circuit, network, config=config, cache=cache)
    warm = compile_autocomm(circuit, network, config=config, cache=cache)
    assert cache.counters()["hits"] == 1
    assert warm.metrics.as_dict() == cold.metrics.as_dict()
    config_mc = SimulationConfig(p_epr=0.8, seed=3, trials=4,
                                 record_trace=False)
    assert (run_monte_carlo(warm, config_mc).latencies
            == run_monte_carlo(cold, config_mc).latencies)
