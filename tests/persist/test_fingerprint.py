"""Compile fingerprints: determinism, input sensitivity, process stability."""

import subprocess
import sys

from repro.circuits import qft_circuit
from repro.core import AutoCommConfig
from repro.hardware import apply_topology, uniform_network
from repro.ir import Circuit, Gate
from repro.partition import QubitMapping
from repro.persist import (compile_fingerprint, fingerprint_circuit,
                           fingerprint_config, fingerprint_network)

_STABILITY_SNIPPET = """
import sys
sys.path.insert(0, {src!r})
from repro.circuits import qft_circuit
from repro.hardware import apply_topology, uniform_network
from repro.persist import compile_fingerprint
network = uniform_network(4, 3)
apply_topology(network, "ring")
print(compile_fingerprint(qft_circuit(10), network))
"""


def _inputs():
    network = uniform_network(4, 3)
    apply_topology(network, "ring")
    return qft_circuit(10), network


class TestDeterminism:
    def test_repeatable(self):
        circuit, network = _inputs()
        assert (compile_fingerprint(circuit, network)
                == compile_fingerprint(circuit, network))

    def test_fresh_objects_agree(self):
        first = compile_fingerprint(*_inputs())
        second = compile_fingerprint(*_inputs())
        assert first == second

    def test_default_config_is_explicit_default(self):
        circuit, network = _inputs()
        assert (compile_fingerprint(circuit, network)
                == compile_fingerprint(circuit, network,
                                       config=AutoCommConfig()))

    def test_stable_across_process_restarts(self):
        # PYTHONHASHSEED varies between interpreter runs; the fingerprint
        # must not (it would make the on-disk cache useless).
        import repro
        src = str(next(iter(repro.__path__)))[: -len("/repro")]
        snippet = _STABILITY_SNIPPET.format(src=src)
        runs = {
            subprocess.run([sys.executable, "-c", snippet],
                           capture_output=True, text=True,
                           check=True).stdout.strip()
            for _ in range(2)
        }
        assert len(runs) == 1
        assert runs == {compile_fingerprint(*_inputs())}


class TestSensitivity:
    def test_gate_params_matter(self):
        base = Circuit(2, [Gate("rz", (0,), (0.25,)), Gate("cx", (0, 1))])
        tweaked = Circuit(2, [Gate("rz", (0,), (0.50,)), Gate("cx", (0, 1))])
        assert fingerprint_circuit(base) != fingerprint_circuit(tweaked)

    def test_topology_matters(self):
        ring = uniform_network(4, 3)
        apply_topology(ring, "ring")
        line = uniform_network(4, 3)
        apply_topology(line, "line")
        assert fingerprint_network(ring) != fingerprint_network(line)

    def test_link_override_matters(self):
        plain = uniform_network(4, 3)
        apply_topology(plain, "ring")
        profiled = uniform_network(4, 3)
        apply_topology(profiled, "ring", link_profile="distance_scaled")
        assert fingerprint_network(plain) != fingerprint_network(profiled)

    def test_remap_mode_matters(self):
        assert (fingerprint_config(AutoCommConfig(remap="never"))
                != fingerprint_config(AutoCommConfig(remap="bursts")))

    def test_phase_blocks_matter(self):
        assert (fingerprint_config(AutoCommConfig(remap="bursts",
                                                  phase_blocks=4))
                != fingerprint_config(AutoCommConfig(remap="bursts",
                                                     phase_blocks=8)))

    def test_mapping_matters(self):
        circuit, network = _inputs()
        default = compile_fingerprint(circuit, network)
        mapping = QubitMapping({q: (q + 1) % 4 for q in range(10)}, network)
        assert compile_fingerprint(circuit, network, mapping) != default

    def test_circuit_name_matters(self):
        circuit, network = _inputs()
        renamed = Circuit(circuit.num_qubits, list(circuit.gates),
                          name="other-name")
        assert (compile_fingerprint(circuit, network)
                != compile_fingerprint(renamed, network))
