"""CompileCache robustness: corruption, atomicity, env resolution, wiring."""

import gzip
import json
import threading
import warnings

import pytest

from repro.circuits import qft_circuit
from repro.core import compile_autocomm
from repro.hardware import uniform_network
from repro.persist import (CACHE_DIR_ENV, CompileCache, SCHEMA_VERSION,
                           compile_fingerprint, dumps_program, resolve_cache)
from repro.persist.cache import ENTRY_SUFFIX


def _inputs(num_qubits=8, nodes=3):
    return qft_circuit(num_qubits), uniform_network(
        nodes, -(-num_qubits // nodes))


def _fill(cache):
    """Compile one program into ``cache``; returns (fingerprint, program)."""
    circuit, network = _inputs()
    key = compile_fingerprint(circuit, network)
    program = compile_autocomm(circuit, network, cache=cache)
    return key, program


class TestStoreLoad:
    def test_round_trip_and_counters(self, tmp_path):
        cache = CompileCache(tmp_path)
        key, program = _fill(cache)
        assert key in cache
        loaded = cache.load(key)
        assert loaded is not None
        assert loaded.metrics.as_dict() == program.metrics.as_dict()
        assert cache.counters() == {"hits": 1, "misses": 1, "stores": 1,
                                    "corrupt": 0}

    def test_missing_entry_is_silent_miss(self, tmp_path):
        cache = CompileCache(tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert cache.load("0" * 64) is None
        assert cache.counters()["corrupt"] == 0

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = CompileCache(tmp_path)
        _fill(cache)
        leftovers = [p for p in tmp_path.iterdir()
                     if p.name.startswith(".store-")]
        assert leftovers == []


class TestCorruption:
    def test_truncated_entry_recompiles_with_warning(self, tmp_path):
        cache = CompileCache(tmp_path)
        key, program = _fill(cache)
        path = cache.path_for(key)
        path.write_bytes(path.read_bytes()[:20])
        with pytest.warns(RuntimeWarning, match="corrupt"):
            assert cache.load(key) is None
        # The pipeline degrades the same way: a fresh compile, re-stored.
        circuit, network = _inputs()
        with pytest.warns(RuntimeWarning, match="corrupt"):
            again = compile_autocomm(circuit, network, cache=cache)
        assert again.metrics.as_dict() == program.metrics.as_dict()
        assert cache.load(key) is not None

    def test_garbage_entry_recompiles_with_warning(self, tmp_path):
        cache = CompileCache(tmp_path)
        key, _ = _fill(cache)
        cache.path_for(key).write_bytes(b"this is not gzip at all")
        with pytest.warns(RuntimeWarning, match="corrupt"):
            assert cache.load(key) is None
        assert cache.counters()["corrupt"] == 1

    def test_valid_gzip_wrong_json_warns(self, tmp_path):
        cache = CompileCache(tmp_path)
        key, _ = _fill(cache)
        cache.path_for(key).write_bytes(gzip.compress(b"[1, 2, 3]"))
        with pytest.warns(RuntimeWarning, match="corrupt"):
            assert cache.load(key) is None

    def test_schema_skew_is_silent_miss(self, tmp_path):
        cache = CompileCache(tmp_path)
        key, _ = _fill(cache)
        skewed = {"schema": SCHEMA_VERSION + 1, "kind": "compiled-program"}
        cache.path_for(key).write_bytes(
            gzip.compress(json.dumps(skewed).encode("utf-8")))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert cache.load(key) is None
        assert cache.counters()["corrupt"] == 0


class TestAtomicity:
    def test_concurrent_stores_same_key(self, tmp_path):
        cache = CompileCache(tmp_path)
        circuit, network = _inputs()
        key = compile_fingerprint(circuit, network)
        program = compile_autocomm(circuit, network)
        # Entries are stored span-stripped, so loaded programs re-encode to
        # the span-free bytes.
        data = dumps_program(program, spans=False)
        errors = []

        def worker():
            local = CompileCache(tmp_path)
            try:
                for _ in range(5):
                    local.store(key, program)
                    loaded = local.load(key)
                    if loaded is None:
                        errors.append("load missed a stored key")
                    elif dumps_program(loaded) != data:
                        errors.append("loaded bytes differ")
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(repr(exc))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert cache.load(key) is not None

    def test_store_failure_cleans_temp(self, tmp_path, monkeypatch):
        cache = CompileCache(tmp_path)
        circuit, network = _inputs()
        program = compile_autocomm(circuit, network)
        import os as _os
        real_replace = _os.replace

        def failing_replace(src, dst):
            if str(dst).endswith(ENTRY_SUFFIX):
                raise OSError("disk full")
            return real_replace(src, dst)

        monkeypatch.setattr("repro.persist.cache.os.replace", failing_replace)
        with pytest.raises(OSError):
            cache.store("f" * 64, program)
        leftovers = [p for p in tmp_path.iterdir()
                     if p.name.startswith(".store-")]
        assert leftovers == []
        assert "f" * 64 not in cache


class TestStatsAndClear:
    def test_stats_report_disk_and_counters(self, tmp_path):
        cache = CompileCache(tmp_path)
        key, _ = _fill(cache)
        cache.load(key)
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["total_bytes"] == cache.path_for(key).stat().st_size
        assert stats["counters"]["hits"] == 1
        assert stats["counters"]["stores"] == 1

    def test_sidecar_accumulates_across_instances(self, tmp_path):
        first = CompileCache(tmp_path)
        key, _ = _fill(first)
        second = CompileCache(tmp_path)
        second.load(key)
        assert second.counters()["hits"] == 1  # per-process registry
        assert second.stats()["counters"]["hits"] == 1
        assert second.stats()["counters"]["stores"] == 1

    def test_clear_removes_everything(self, tmp_path):
        cache = CompileCache(tmp_path)
        key, _ = _fill(cache)
        assert cache.clear() == 1
        assert cache.entries() == []
        assert key not in cache
        # clear() drops the stats sidecar with the entries.
        assert cache.stats()["counters"] == {"hits": 0, "misses": 0,
                                             "stores": 0, "corrupt": 0}


class TestResolveCache:
    def test_false_disables_even_with_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        assert resolve_cache(False) is None

    def test_instance_passes_through(self, tmp_path):
        cache = CompileCache(tmp_path)
        assert resolve_cache(cache) is cache

    def test_path_builds_cache(self, tmp_path):
        cache = resolve_cache(tmp_path / "store")
        assert isinstance(cache, CompileCache)
        assert cache.directory == tmp_path / "store"

    def test_none_consults_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert resolve_cache(None) is None
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        cache = resolve_cache(None)
        assert isinstance(cache, CompileCache)
        assert cache.directory == tmp_path


class TestPipelineWiring:
    def test_second_compile_hits(self, tmp_path):
        cache = CompileCache(tmp_path)
        circuit, network = _inputs()
        cold = compile_autocomm(circuit, network, cache=cache)
        warm = compile_autocomm(circuit, network, cache=cache)
        assert cache.counters()["hits"] == 1
        assert warm.metrics.as_dict() == cold.metrics.as_dict()

    def test_hit_gets_fresh_span_tree(self, tmp_path):
        cache = CompileCache(tmp_path)
        circuit, network = _inputs()
        compile_autocomm(circuit, network, cache=cache)
        warm = compile_autocomm(circuit, network, cache=cache)
        stages = [child.name for child in warm.spans.children]
        assert stages == ["cache-lookup"]
        assert warm.spans.children[0].counters["hit"] == 1

    def test_env_var_enables_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        circuit, network = _inputs()
        compile_autocomm(circuit, network)
        compile_autocomm(circuit, network)
        cache = CompileCache(tmp_path)
        assert len(cache.entries()) == 1
        assert cache.stats()["counters"]["hits"] == 1

    def test_false_overrides_env_var(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        circuit, network = _inputs()
        compile_autocomm(circuit, network, cache=False)
        assert CompileCache(tmp_path).entries() == []

    def test_different_config_is_a_different_entry(self, tmp_path):
        from repro.core import AutoCommConfig
        cache = CompileCache(tmp_path)
        circuit, network = _inputs()
        compile_autocomm(circuit, network, cache=cache)
        compile_autocomm(circuit, network,
                         config=AutoCommConfig(remap="bursts",
                                               phase_blocks=4),
                         cache=cache)
        assert len(cache.entries()) == 2
        assert cache.counters()["hits"] == 0
