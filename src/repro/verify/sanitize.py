"""Trace-scope sanitizer passes: a race detector for the event engine.

These passes consume one finished simulation — the executed
:class:`~repro.sim.engine.SimulatedOp` records plus the
:class:`~repro.sim.trace.TraceRecorder`'s link windows — and detect,
post-hoc, what the engine must never do: double-book a node's
communication qubits, overlap more EPR generations on a link than its
capacity admits, or execute an item before its dependencies retired.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .checks import _error, _peak_concurrency
from .diagnostics import Diagnostic
from .passes import CheckPass, TIME_TOLERANCE, TraceContext, register_pass

__all__ = ["TraceCausalityCheck", "TraceCommQubitCheck",
           "TraceLinkCapacityCheck"]


@register_pass
class TraceCausalityCheck(CheckPass):
    """Executed ops respect their windows and the plan's dependencies."""

    id = "trace-causality"
    description = ("every executed op has prep_start <= start <= end, runs "
                   "after its dependencies retire, and every plan item "
                   "executed exactly once")
    scope = "trace"

    def run(self, ctx: TraceContext) -> List[Diagnostic]:
        diags: List[Diagnostic] = []
        n = len(ctx.plan.items)
        seen: Dict[int, int] = {}
        ends: Dict[int, float] = {}
        for op in ctx.result.ops:
            if 0 <= op.index < n:
                seen[op.index] = seen.get(op.index, 0) + 1
                ends[op.index] = op.end
            else:
                diags.append(_error(
                    self.id, f"executed op index {op.index} out of range "
                             f"[0, {n})", op=op.index))
        for index in range(n):
            count = seen.get(index, 0)
            if count == 0:
                diags.append(_error(
                    self.id, "plan item never executed", op=index))
            elif count > 1:
                diags.append(_error(
                    self.id, f"plan item executed {count} times",
                    op=index))
        for op in ctx.result.ops:
            if op.prep_start < -TIME_TOLERANCE:
                diags.append(_error(
                    self.id, "op preparation starts at negative time "
                             f"{op.prep_start}", op=op.index))
            if op.start < op.prep_start - TIME_TOLERANCE:
                diags.append(_error(
                    self.id, f"op starts at {op.start} before its EPR "
                             f"preparation at {op.prep_start}",
                    op=op.index))
            if op.end < op.start - TIME_TOLERANCE:
                diags.append(_error(
                    self.id, f"op ends at {op.end} before it starts at "
                             f"{op.start}", op=op.index))
            if not 0 <= op.index < n:
                continue
            for pred in ctx.plan.preds[op.index]:
                pred_end = ends.get(pred)
                if pred_end is None:
                    continue
                if op.start < pred_end - TIME_TOLERANCE:
                    diags.append(_error(
                        self.id, f"op starts at {op.start} before "
                                 f"dependency {pred} retires at "
                                 f"{pred_end}", op=op.index))
        return diags


@register_pass
class TraceCommQubitCheck(CheckPass):
    """No node ever hosts more concurrent comm ops than it has comm qubits."""

    id = "trace-comm-qubits"
    description = ("concurrent [prep_start, end) windows per node never "
                   "exceed the node's communication qubits")
    scope = "trace"

    def run(self, ctx: TraceContext) -> List[Diagnostic]:
        diags: List[Diagnostic] = []
        network = ctx.network
        per_node: Dict[int, List[Tuple[float, float, int]]] = {}
        for op in ctx.result.ops:
            if op.kind == "gate":
                continue
            for node in op.nodes:
                per_node.setdefault(node, []).append(
                    (op.prep_start, op.end, 1))
        for node, intervals in sorted(per_node.items()):
            if not 0 <= node < network.num_nodes:
                diags.append(_error(
                    self.id, f"executed op touches unknown node {node}",
                    node=node))
                continue
            capacity = network.node(node).num_comm_qubits
            peak, when = _peak_concurrency(intervals)
            if peak > capacity:
                diags.append(_error(
                    self.id, f"{peak} comm ops hold the node's comm "
                             f"qubits at t={when} but it has only "
                             f"{capacity} (double-booking)", node=node))
        return diags


@register_pass
class TraceLinkCapacityCheck(CheckPass):
    """Link EPR-generation windows never exceed the link's capacity."""

    id = "trace-link-capacity"
    description = ("per-link concurrent EPR generation slots stay within "
                   "the link's capacity; recorded link windows are "
                   "well-formed")
    scope = "trace"

    def run(self, ctx: TraceContext) -> List[Diagnostic]:
        diags: List[Diagnostic] = []
        network = ctx.network
        trace = getattr(ctx.result, "trace", None)
        if trace is not None:
            for link, windows in sorted(trace.link_busy.items()):
                for start, end in windows:
                    if start < -TIME_TOLERANCE or end < start - TIME_TOLERANCE:
                        diags.append(_error(
                            self.id, "malformed link window "
                                     f"[{start}, {end}]", link=link))
        if getattr(ctx.config, "ideal_links", False):
            return diags
        n = len(ctx.plan.items)
        profiles = None
        per_link: Dict[Tuple[int, int], List[Tuple[float, float, int]]] = {}
        for op in ctx.result.ops:
            if op.kind == "gate" or not 0 <= op.index < n:
                continue
            if profiles is None:
                mapping = ctx.plan.item_mapping(0, None)
                if mapping is None:
                    from ..sim.engine import mapping_for_program
                    mapping = mapping_for_program(ctx.program)
                profiles = ctx.plan.op_profiles(mapping, network.latency)
            profile = profiles[op.index]
            if not profile.prep_pairs:
                continue
            multiplicity: Dict[Tuple[int, int], int] = {}
            for a, b in profile.prep_pairs:
                for link in network.route_links(a, b):
                    multiplicity[link] = multiplicity.get(link, 0) + 1
            for link, count in multiplicity.items():
                capacity = self._capacity(ctx, link)
                if capacity is None:
                    continue
                # The engine books min(count, capacity) concurrent slots
                # for the generation window and serialises the excess.
                per_link.setdefault(link, []).append(
                    (op.prep_start, op.start, min(count, capacity)))
        for link, intervals in sorted(per_link.items()):
            capacity = self._capacity(ctx, link)
            if capacity is None:
                continue
            peak, when = _peak_concurrency(intervals)
            if peak > capacity:
                diags.append(_error(
                    self.id, f"{peak} concurrent EPR generation slots at "
                             f"t={when} on a capacity-{capacity} link",
                    link=link))
        return diags

    @staticmethod
    def _capacity(ctx: TraceContext, link: Tuple[int, int]) -> Optional[int]:
        capacity = ctx.network.link_capacity(*link)
        if capacity is not None:
            return capacity
        return getattr(ctx.config, "link_capacity", None)
