"""The check-pass framework: registry, contexts and entry points.

A :class:`CheckPass` is one named static analysis over a compiled artifact.
Program-scope passes see a :class:`ProgramContext` (the compiled program
plus the schedule plan its analytical schedule was computed from) and must
not execute anything; trace-scope passes see a :class:`TraceContext` (one
finished simulation) and sanitize the event engine's output post-hoc.

Passes self-register through :func:`register_pass`; the registry is what
the CLI, the CI gate and the test fixture enumerate, so adding a checker is
one class definition away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Type

from ..core.pipeline import CompiledProgram
from ..core.scheduling import SchedulePlan
from ..hardware.network import QuantumNetwork
from ..partition.mapping import QubitMapping
from .diagnostics import Diagnostic, Severity, VerificationReport

__all__ = ["CheckPass", "ProgramContext", "TraceContext", "register_pass",
           "registered_passes", "program_passes", "trace_passes",
           "verify_program", "sanitize_simulation"]

#: Small slack for floating-point time comparisons in causality checks.
TIME_TOLERANCE = 1e-9


@dataclass
class ProgramContext:
    """Everything a program-scope pass may inspect (never execute)."""

    program: CompiledProgram
    plan: SchedulePlan
    network: QuantumNetwork
    mapping: QubitMapping


@dataclass
class TraceContext:
    """One finished simulation plus the plan it replayed."""

    program: CompiledProgram
    plan: SchedulePlan
    network: QuantumNetwork
    #: A :class:`~repro.sim.engine.SimulationResult` (typed loosely to keep
    #: the static-verification import graph free of the execution engine).
    result: Any
    #: The :class:`~repro.sim.engine.SimulationConfig` of the run (``None``
    #: when unknown; capacity checks then use only the link model).
    config: Optional[Any] = None


class CheckPass:
    """Base class of one registered static check."""

    #: Stable kebab-case identifier (used in diagnostics and CLI output).
    id: str = ""
    #: One-line description of the invariant the pass checks.
    description: str = ""
    #: "program" or "trace".
    scope: str = "program"

    def run(self, context) -> List[Diagnostic]:  # pragma: no cover - abstract
        raise NotImplementedError


_REGISTRY: Dict[str, Type[CheckPass]] = {}


def register_pass(cls: Type[CheckPass]) -> Type[CheckPass]:
    """Class decorator adding a pass to the global registry."""
    if not cls.id:
        raise ValueError(f"check pass {cls.__name__} needs a non-empty id")
    if cls.scope not in ("program", "trace"):
        raise ValueError(f"check pass {cls.id!r} has unknown scope "
                         f"{cls.scope!r}")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate check pass id {cls.id!r}")
    _REGISTRY[cls.id] = cls
    return cls


def registered_passes() -> Dict[str, Type[CheckPass]]:
    """Copy of the full registry (id -> pass class)."""
    return dict(_REGISTRY)


def program_passes() -> List[CheckPass]:
    """Fresh instances of every program-scope pass, in id order."""
    return [cls() for _, cls in sorted(_REGISTRY.items())
            if cls.scope == "program"]


def trace_passes() -> List[CheckPass]:
    """Fresh instances of every trace-scope pass, in id order."""
    return [cls() for _, cls in sorted(_REGISTRY.items())
            if cls.scope == "trace"]


def _plan_and_mapping(program: CompiledProgram):
    # Imported lazily: repro.sim pulls in the execution engine, which a
    # purely static verification otherwise never needs.
    from ..sim.engine import mapping_for_program, plan_for_program
    return plan_for_program(program), mapping_for_program(program)


def _plan_failure_report(target: str, exc: Exception) -> VerificationReport:
    """A one-diagnostic report for artifacts too corrupt to even plan.

    The plan builders validate structural invariants of their own (e.g.
    one migration list per phase boundary); a verifier must turn such a
    rejection into a diagnostic, not a crash.
    """
    report = VerificationReport(target=target)
    report.checks_run.append("plan-construction")
    report.diagnostics.append(Diagnostic(
        checker="plan-construction", severity=Severity.ERROR,
        message=f"schedule plan could not be reconstructed: {exc}"))
    return report


def verify_program(program: CompiledProgram,
                   passes: Optional[Sequence[CheckPass]] = None
                   ) -> VerificationReport:
    """Run every program-scope check over one compiled program.

    Analyses the program's schedule plan, mappings, migrations, routes and
    analytical schedule without executing anything.  ``passes`` restricts
    the run to specific pass instances (mutation tests use this to isolate
    one checker).
    """
    try:
        plan, mapping = _plan_and_mapping(program)
    except (ValueError, KeyError, IndexError) as exc:
        return _plan_failure_report(program.name, exc)
    context = ProgramContext(program=program, plan=plan,
                             network=program.network, mapping=mapping)
    report = VerificationReport(target=program.name)
    for check in (passes if passes is not None else program_passes()):
        report.checks_run.append(check.id)
        report.diagnostics.extend(check.run(context))
    return report


def sanitize_simulation(program: CompiledProgram, result,
                        config=None,
                        passes: Optional[Sequence[CheckPass]] = None
                        ) -> VerificationReport:
    """Sanitize one finished simulation's op records and trace post-hoc.

    A race detector for the event engine: double-booked comm qubits,
    link windows beyond capacity and causality violations are reported as
    error diagnostics.
    """
    try:
        plan, _ = _plan_and_mapping(program)
    except (ValueError, KeyError, IndexError) as exc:
        return _plan_failure_report(f"{program.name} (trace)", exc)
    context = TraceContext(program=program, plan=plan,
                           network=program.network, result=result,
                           config=config)
    report = VerificationReport(target=f"{program.name} (trace)")
    for check in (passes if passes is not None else trace_passes()):
        report.checks_run.append(check.id)
        report.diagnostics.extend(check.run(context))
    return report
