"""Static verification of compiled programs and simulation traces.

``repro.verify`` analyses a :class:`~repro.core.pipeline.CompiledProgram`
and its :class:`~repro.core.scheduling.SchedulePlan` *without executing
them*: dependency-graph acyclicity and item coverage, mapping
well-formedness, migration legality, EPR route validity against the
routing table and link model, schedule causality and booking feasibility.
A second family of passes sanitizes a finished simulation post-hoc — a
race detector for the discrete-event engine.

Quick start::

    from repro import compile_autocomm
    from repro.circuits import qft_circuit
    from repro.hardware import uniform_network
    from repro.verify import verify_program

    program = compile_autocomm(qft_circuit(12), uniform_network(4, 3))
    report = verify_program(program)
    assert report.clean, report.render()

Every checker self-registers through
:func:`~repro.verify.passes.register_pass`; ``repro.cli verify`` and the
CI gate enumerate the same registry.
"""

from .diagnostics import Diagnostic, Location, Severity, VerificationReport
from .passes import (CheckPass, ProgramContext, TraceContext, program_passes,
                     register_pass, registered_passes, sanitize_simulation,
                     trace_passes, verify_program)
from . import checks as _checks  # noqa: F401  (registers program passes)
from . import sanitize as _sanitize  # noqa: F401  (registers trace passes)

__all__ = [
    "Severity",
    "Location",
    "Diagnostic",
    "VerificationReport",
    "CheckPass",
    "ProgramContext",
    "TraceContext",
    "register_pass",
    "registered_passes",
    "program_passes",
    "trace_passes",
    "verify_program",
    "sanitize_simulation",
]
