"""Structured diagnostics for the static program verifier.

A :class:`Diagnostic` is one finding of one checker: a severity, a
human-readable message and a structured :class:`Location` (op index, phase,
qubit, node, link) so tooling can attribute the finding to a concrete part
of the compiled artifact without parsing the message.  Checkers collect
their findings into a :class:`VerificationReport`, the unit the CLI, the CI
gate and the test-suite fixture consume.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["Severity", "Location", "Diagnostic", "VerificationReport"]


class Severity(enum.IntEnum):
    """Severity of one diagnostic; ordering follows the integer values."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Location:
    """Structured position of a finding inside a compiled artifact.

    Every field is optional; a checker fills in what it knows.  ``op`` is a
    schedule-plan item index, ``phase`` a phase index of a phase-structured
    compile, ``link`` a normalised (low, high) physical node pair.
    """

    op: Optional[int] = None
    phase: Optional[int] = None
    qubit: Optional[int] = None
    node: Optional[int] = None
    link: Optional[Tuple[int, int]] = None

    def describe(self) -> str:
        parts = []
        if self.op is not None:
            parts.append(f"op {self.op}")
        if self.phase is not None:
            parts.append(f"phase {self.phase}")
        if self.qubit is not None:
            parts.append(f"qubit {self.qubit}")
        if self.node is not None:
            parts.append(f"node {self.node}")
        if self.link is not None:
            parts.append(f"link {self.link[0]}-{self.link[1]}")
        return ", ".join(parts)

    def as_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {}
        if self.op is not None:
            data["op"] = self.op
        if self.phase is not None:
            data["phase"] = self.phase
        if self.qubit is not None:
            data["qubit"] = self.qubit
        if self.node is not None:
            data["node"] = self.node
        if self.link is not None:
            data["link"] = list(self.link)
        return data


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one checker."""

    checker: str
    severity: Severity
    message: str
    location: Location = field(default_factory=Location)

    def as_dict(self) -> Dict[str, object]:
        return {
            "checker": self.checker,
            "severity": self.severity.label,
            "message": self.message,
            "location": self.location.as_dict(),
        }

    def __str__(self) -> str:
        where = self.location.describe()
        suffix = f" [{where}]" if where else ""
        return (f"{self.severity.label}: {self.checker}: "
                f"{self.message}{suffix}")


@dataclass
class VerificationReport:
    """All findings of one verification run over one artifact."""

    target: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    checks_run: List[str] = field(default_factory=list)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity == Severity.WARNING]

    @property
    def ok(self) -> bool:
        """No error-severity findings (warnings allowed)."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """No findings at all."""
        return not self.diagnostics

    def by_checker(self, checker: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.checker == checker]

    def merge(self, other: "VerificationReport") -> "VerificationReport":
        """Fold another report's findings and check list into this one."""
        self.diagnostics.extend(other.diagnostics)
        self.checks_run.extend(c for c in other.checks_run
                               if c not in self.checks_run)
        return self

    def render(self) -> str:
        lines = [f"verify {self.target}: {len(self.checks_run)} checks, "
                 f"{len(self.diagnostics)} diagnostics"
                 f" ({len(self.errors)} errors, "
                 f"{len(self.warnings)} warnings)"]
        for diagnostic in self.diagnostics:
            lines.append(f"  {diagnostic}")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        return {
            "target": self.target,
            "checks_run": list(self.checks_run),
            "ok": self.ok,
            "clean": self.clean,
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }
