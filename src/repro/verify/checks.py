"""Program-scope static checks over a compiled program's artifacts.

Each pass analyses the :class:`~repro.core.pipeline.CompiledProgram` and
the :class:`~repro.core.scheduling.SchedulePlan` its analytical schedule
was computed from — never by executing anything.  The invariants mirror
what the rest of the stack relies on dynamically: an acyclic dependency
graph that covers every assignment item, well-formed per-phase mappings, a
legal migration history, EPR routes that exist on the physical link graph,
and a schedule that respects causality and comm-qubit booking.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..core.scheduling import (MigrationOp, _item_qubits,
                               prep_latency_for_pairs)
from ..partition.mapping import QubitMapping
from .diagnostics import Diagnostic, Location, Severity
from .passes import (CheckPass, ProgramContext, TIME_TOLERANCE,
                     register_pass)

__all__ = ["DagAcyclicityCheck", "ItemCoverageCheck", "MappingCheck",
           "MigrationCheck", "RouteCheck", "CausalityCheck", "BookingCheck"]


def _error(checker: str, message: str, **location) -> Diagnostic:
    return Diagnostic(checker=checker, severity=Severity.ERROR,
                      message=message, location=Location(**location))


def _warning(checker: str, message: str, **location) -> Diagnostic:
    return Diagnostic(checker=checker, severity=Severity.WARNING,
                      message=message, location=Location(**location))


def _peak_concurrency(intervals: Iterable[Tuple[float, float, int]]
                      ) -> Tuple[int, float]:
    """Peak weighted overlap of half-open [start, end) intervals.

    Returns ``(peak, time_of_peak)``.  Ends are processed before starts at
    equal timestamps, so back-to-back intervals do not count as overlapping.
    """
    events: List[Tuple[float, int, int]] = []
    for start, end, weight in intervals:
        if end <= start:
            continue
        events.append((start, 1, weight))
        events.append((end, 0, -weight))
    events.sort()
    peak, peak_time, level = 0, 0.0, 0
    for time, _, delta in events:
        level += delta
        if level > peak:
            peak, peak_time = level, time
    return peak, peak_time


@register_pass
class DagAcyclicityCheck(CheckPass):
    """The plan's dependency graph is well-formed and acyclic."""

    id = "dag-acyclic"
    description = ("predecessor indices are in range, no self-dependencies, "
                   "and the dependency graph contains no cycle")
    scope = "program"

    def run(self, ctx: ProgramContext) -> List[Diagnostic]:
        plan = ctx.plan
        n = len(plan.items)
        diags: List[Diagnostic] = []
        if len(plan.preds) != n:
            diags.append(_error(
                self.id, f"plan has {n} items but {len(plan.preds)} "
                         "predecessor lists"))
            return diags
        valid_preds: List[List[int]] = []
        for index, plist in enumerate(plan.preds):
            kept = []
            for pred in plist:
                if not 0 <= pred < n:
                    diags.append(_error(
                        self.id, f"predecessor {pred} out of range "
                                 f"[0, {n})", op=index))
                elif pred == index:
                    diags.append(_error(
                        self.id, "item depends on itself", op=index))
                else:
                    kept.append(pred)
            valid_preds.append(kept)
        # Kahn's algorithm over the valid edges: any residue is a cycle.
        indegree = [len(p) for p in valid_preds]
        succs: List[List[int]] = [[] for _ in range(n)]
        for index, plist in enumerate(valid_preds):
            for pred in plist:
                succs[pred].append(index)
        stack = [i for i, d in enumerate(indegree) if d == 0]
        seen = 0
        while stack:
            node = stack.pop()
            seen += 1
            for succ in succs[node]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    stack.append(succ)
        if seen != n:
            residue = [i for i, d in enumerate(indegree) if d > 0]
            diags.append(_error(
                self.id, f"dependency cycle through {len(residue)} items "
                         f"(first: {residue[:8]})", op=residue[0]))
        return diags


@register_pass
class ItemCoverageCheck(CheckPass):
    """The analytical schedule covers every plan item exactly once."""

    id = "item-coverage"
    description = ("scheduled op indices cover the plan's items exactly, "
                   "item counts match, and the plan covers every "
                   "assignment item plus every migration")
    scope = "program"

    def run(self, ctx: ProgramContext) -> List[Diagnostic]:
        plan = ctx.plan
        program = ctx.program
        diags: List[Diagnostic] = []
        n = len(plan.items)

        # Plan-level coverage of the assignment passes' output.
        expected: Optional[int] = None
        if program.phases:
            expected = sum(len(phase.assignment.items)
                           for phase in program.phases)
            expected += sum(len(moves)
                            for moves in (program.migrations or []))
        elif program.assignment is not None:
            expected = len(program.assignment.items)
        if expected is not None:
            covered = sum(plan.item_count(i) for i in range(n))
            if covered != expected:
                diags.append(_error(
                    self.id, f"plan covers {covered} assignment items, "
                             f"expected {expected}"))

        schedule = program.schedule
        if schedule is None:
            return diags
        seen: Dict[int, int] = {}
        for op in schedule.ops:
            if not 0 <= op.index < n:
                diags.append(_error(
                    self.id, f"scheduled op index {op.index} out of range "
                             f"[0, {n})", op=op.index))
                continue
            seen[op.index] = seen.get(op.index, 0) + 1
            if op.num_items != plan.item_count(op.index):
                diags.append(_error(
                    self.id, f"op covers {op.num_items} items, plan says "
                             f"{plan.item_count(op.index)}", op=op.index))
        for index in range(n):
            count = seen.get(index, 0)
            if count == 0:
                diags.append(_error(
                    self.id, "plan item never scheduled", op=index))
            elif count > 1:
                diags.append(_error(
                    self.id, f"plan item scheduled {count} times",
                    op=index))
        if schedule.num_fused_chains != plan.num_fused_chains:
            diags.append(_error(
                self.id, f"schedule reports {schedule.num_fused_chains} "
                         "fused chains, plan has "
                         f"{plan.num_fused_chains}"))
        return diags


@register_pass
class MappingCheck(CheckPass):
    """Every mapping is a total, capacity-respecting placement."""

    id = "mapping-wellformed"
    description = ("program and per-phase mappings cover qubits 0..n-1 "
                   "exactly, reference real nodes and respect node "
                   "data-qubit capacities")
    scope = "program"

    def run(self, ctx: ProgramContext) -> List[Diagnostic]:
        diags: List[Diagnostic] = []
        num_qubits = ctx.program.circuit.num_qubits
        self._check_mapping(ctx, ctx.program.mapping, num_qubits, None,
                            diags)
        for phase in ctx.program.phases or []:
            self._check_mapping(ctx, phase.mapping, num_qubits, phase.index,
                                diags)
        return diags

    def _check_mapping(self, ctx: ProgramContext, mapping: QubitMapping,
                       num_qubits: int, phase: Optional[int],
                       diags: List[Diagnostic]) -> None:
        network = ctx.network
        assignment = mapping.as_dict()
        expected = set(range(num_qubits))
        missing = expected - set(assignment)
        extra = set(assignment) - expected
        for qubit in sorted(missing):
            diags.append(_error(self.id, "qubit has no placement",
                                qubit=qubit, phase=phase))
        for qubit in sorted(extra):
            diags.append(_error(
                self.id, f"mapping places unknown qubit {qubit} "
                         f"(circuit has {num_qubits})",
                qubit=qubit, phase=phase))
        loads: Dict[int, int] = {}
        for qubit in sorted(set(assignment) & expected):
            node = assignment[qubit]
            if not 0 <= node < network.num_nodes:
                diags.append(_error(
                    self.id, f"qubit placed on unknown node {node}",
                    qubit=qubit, phase=phase))
                continue
            loads[node] = loads.get(node, 0) + 1
        for node, load in sorted(loads.items()):
            capacity = network.node(node).num_data_qubits
            if load > capacity:
                diags.append(_error(
                    self.id, f"node holds {load} qubits but has only "
                             f"{capacity} data qubits",
                    node=node, phase=phase))


@register_pass
class MigrationCheck(CheckPass):
    """Migrations form a legal phase-to-phase placement history."""

    id = "migration-legality"
    description = ("each migration moves a qubit from its actual previous "
                   "placement, endpoints have comm qubits, and the "
                   "placement history composes into each phase's mapping")
    scope = "program"

    def run(self, ctx: ProgramContext) -> List[Diagnostic]:
        program = ctx.program
        diags: List[Diagnostic] = []
        if not program.phases:
            return diags
        phases = program.phases
        migrations = program.migrations or []
        if len(migrations) != len(phases) - 1:
            diags.append(_error(
                self.id, f"{len(phases)} phases need "
                         f"{len(phases) - 1} migration boundaries, "
                         f"got {len(migrations)}"))
            return diags
        network = ctx.network
        num_qubits = program.circuit.num_qubits
        if phases[0].mapping.as_dict() != program.mapping.as_dict():
            diags.append(_error(
                self.id, "phase 0 mapping differs from the program's "
                         "initial mapping", phase=0))
        current = dict(program.mapping.as_dict())
        for boundary, moves in enumerate(migrations):
            moved = set()
            for move in moves:
                if not 0 <= move.qubit < num_qubits:
                    diags.append(_error(
                        self.id, f"migration of unknown qubit {move.qubit}",
                        phase=boundary + 1, qubit=move.qubit))
                    continue
                if move.qubit in moved:
                    diags.append(_error(
                        self.id, "qubit migrated twice at one boundary",
                        phase=boundary + 1, qubit=move.qubit))
                moved.add(move.qubit)
                if move.source == move.target:
                    diags.append(_error(
                        self.id, f"migration from node {move.source} to "
                                 "itself", phase=boundary + 1,
                        qubit=move.qubit, node=move.source))
                actual = current.get(move.qubit)
                if actual != move.source:
                    diags.append(_error(
                        self.id, f"migration leaves node {move.source} but "
                                 f"the qubit lives on node {actual}",
                        phase=boundary + 1, qubit=move.qubit))
                for endpoint in (move.source, move.target):
                    if not 0 <= endpoint < network.num_nodes:
                        diags.append(_error(
                            self.id, f"migration endpoint {endpoint} is "
                                     "not a node", phase=boundary + 1,
                            qubit=move.qubit, node=endpoint))
                    elif network.node(endpoint).num_comm_qubits < 1:
                        diags.append(_error(
                            self.id, "migration endpoint has no "
                                     "communication qubit",
                            phase=boundary + 1, qubit=move.qubit,
                            node=endpoint))
                current[move.qubit] = move.target
            phase_map = phases[boundary + 1].mapping.as_dict()
            if phase_map != current:
                mismatched = sorted(q for q in set(current) | set(phase_map)
                                    if current.get(q) != phase_map.get(q))
                diags.append(_error(
                    self.id, f"placement after boundary {boundary} does "
                             "not compose into phase "
                             f"{boundary + 1}'s mapping (qubits "
                             f"{mismatched[:8]} disagree)",
                    phase=boundary + 1,
                    qubit=mismatched[0] if mismatched else None))
                # Re-anchor so one bad boundary doesn't cascade.
                current = dict(phase_map)
        diags.extend(self._migration_windows(ctx))
        return diags

    def _migration_windows(self, ctx: ProgramContext) -> List[Diagnostic]:
        """Time-based legality of migration teleports in the schedule.

        A migration moving qubit ``q`` into phase ``b + 1`` must start at
        or after every scheduled op of phases ``<= b`` touching ``q``
        retires, and complete before any op of phases ``>= b + 1`` touching
        ``q`` starts.  Under barrier boundaries this is implied by the
        global barrier; under overlapped boundaries it is exactly the
        per-qubit constraint the overlap pass must preserve — anything
        using ``q`` while its teleport is in flight is an illegal overlap.
        """
        plan = ctx.plan
        schedule = ctx.program.schedule
        diags: List[Diagnostic] = []
        if schedule is None or plan.item_phases is None:
            return diags
        num_qubits = ctx.program.circuit.num_qubits
        n = len(plan.items)
        touchers: Dict[int, List[Tuple[int, object]]] = {}
        moves: List[Tuple[MigrationOp, int, object]] = []
        for op in schedule.ops:
            if not 0 <= op.index < n:
                continue
            item = plan.items[op.index]
            phase = plan.item_phases[op.index]
            if isinstance(item, MigrationOp):
                moves.append((item, phase, op))
                touchers.setdefault(item.qubit, []).append((phase, op))
            else:
                for qubit in _item_qubits(item, num_qubits):
                    touchers.setdefault(qubit, []).append((phase, op))
        for move, phase, op in moves:
            boundary = phase - 1
            for other_phase, other in touchers.get(move.qubit, ()):
                if other is op:
                    continue
                if (other_phase <= boundary
                        and other.end > op.start + TIME_TOLERANCE):
                    diags.append(_error(
                        self.id, f"migration of qubit {move.qubit} into "
                                 f"phase {phase} starts at {op.start} "
                                 f"before the phase-{other_phase} op "
                                 f"{other.index} touching it retires at "
                                 f"{other.end}",
                        phase=phase, qubit=move.qubit, op=op.index))
                elif (other_phase >= phase
                        and other.start < op.end - TIME_TOLERANCE):
                    diags.append(_error(
                        self.id, f"phase-{other_phase} op {other.index} "
                                 f"touching qubit {move.qubit} starts at "
                                 f"{other.start} while its migration is "
                                 f"in flight until {op.end}",
                        phase=phase, qubit=move.qubit, op=other.index))
        return diags


@register_pass
class RouteCheck(CheckPass):
    """Every consumed EPR pair has a valid route on real physical links."""

    id = "route-validity"
    description = ("EPR routes exist, connect the requested endpoints over "
                   "direct physical links, and every link has positive "
                   "latency, positive capacity and a valid p_epr")
    scope = "program"

    def run(self, ctx: ProgramContext) -> List[Diagnostic]:
        network = ctx.network
        diags: List[Diagnostic] = []
        profiles = ctx.plan.op_profiles(ctx.mapping, network.latency)
        checked_pairs = set()
        checked_links = set()
        for index, profile in enumerate(profiles):
            for pair in profile.prep_pairs:
                a, b = pair
                if a == b:
                    diags.append(_error(
                        self.id, "EPR pair with identical endpoints "
                                 f"({a}, {b})", op=index, node=a))
                    continue
                if not (0 <= a < network.num_nodes
                        and 0 <= b < network.num_nodes):
                    diags.append(_error(
                        self.id, f"EPR pair ({a}, {b}) references a node "
                                 f"outside [0, {network.num_nodes})",
                        op=index))
                    continue
                key = (a, b) if a < b else (b, a)
                if key in checked_pairs:
                    continue
                checked_pairs.add(key)
                diags.extend(self._check_route(ctx, index, a, b,
                                               checked_links))
        return diags

    def _check_route(self, ctx: ProgramContext, index: int, a: int, b: int,
                     checked_links) -> List[Diagnostic]:
        network = ctx.network
        diags: List[Diagnostic] = []
        try:
            route = network.epr_route(a, b)
        except KeyError:
            diags.append(_error(
                self.id, f"no EPR route between nodes {a} and {b}",
                op=index, link=(min(a, b), max(a, b))))
            return diags
        path = route.path
        if path[0] != a or path[-1] != b:
            diags.append(_error(
                self.id, f"route for ({a}, {b}) runs "
                         f"{path[0]} -> {path[-1]}", op=index,
                link=(min(a, b), max(a, b))))
        routing = network.routing
        for u, v in zip(path, path[1:]):
            if u == v:
                diags.append(_error(
                    self.id, f"route revisits node {u} consecutively",
                    op=index, node=u))
                continue
            link = (u, v) if u < v else (v, u)
            if routing is not None:
                if link not in routing.physical_links:
                    diags.append(_error(
                        self.id, f"route hop {u}-{v} is not a physical "
                                 "link of the topology", op=index,
                        link=link))
                    continue
            if link in checked_links:
                continue
            checked_links.add(link)
            latency = network.link_latency(u, v)
            if not latency > 0:
                diags.append(_error(
                    self.id, "link has non-positive EPR latency "
                             f"{latency}", op=index, link=link))
            capacity = network.link_capacity(u, v)
            if capacity is not None and capacity < 1:
                diags.append(_error(
                    self.id, f"link has non-positive capacity {capacity}",
                    op=index, link=link))
            p_epr = network.link_p_epr(u, v)
            if not 0.0 < p_epr <= 1.0:
                diags.append(_error(
                    self.id, f"link has p_epr {p_epr} outside (0, 1]",
                    op=index, link=link))
        return diags


@register_pass
class CausalityCheck(CheckPass):
    """No scheduled op starts before its dependencies retire."""

    id = "schedule-causality"
    description = ("every scheduled op starts at or after the end of each "
                   "of its predecessors, and ends at or after it starts")
    scope = "program"

    def run(self, ctx: ProgramContext) -> List[Diagnostic]:
        schedule = ctx.program.schedule
        diags: List[Diagnostic] = []
        if schedule is None:
            return diags
        plan = ctx.plan
        n = len(plan.items)
        ends: Dict[int, float] = {}
        for op in schedule.ops:
            if 0 <= op.index < n:
                ends[op.index] = op.end
        for op in schedule.ops:
            if op.end < op.start - TIME_TOLERANCE:
                diags.append(_error(
                    self.id, f"op ends at {op.end} before it starts at "
                             f"{op.start}", op=op.index))
            if not 0 <= op.index < n:
                continue
            for pred in plan.preds[op.index]:
                pred_end = ends.get(pred)
                if pred_end is None:
                    continue
                if op.start < pred_end - TIME_TOLERANCE:
                    diags.append(_error(
                        self.id, f"op starts at {op.start} before "
                                 f"predecessor {pred} retires at "
                                 f"{pred_end}", op=op.index))
        diags.extend(self._cross_phase_qubit_order(ctx))
        return diags

    def _cross_phase_qubit_order(self, ctx: ProgramContext
                                 ) -> List[Diagnostic]:
        """Per-qubit causality across phase boundaries of a phased plan.

        For every qubit, compute ops of a later phase touching it must not
        start before compute ops of an earlier phase touching it retire.
        Barrier schedules satisfy this via the global boundary sink; the
        overlap pass must preserve it through per-qubit edges alone — a
        violation means a later-phase op raced a qubit across a boundary.
        (Migration teleports are checked separately by
        ``migration-legality``, which pins them *between* the two windows.)
        """
        plan = ctx.plan
        schedule = ctx.program.schedule
        diags: List[Diagnostic] = []
        if schedule is None or plan.item_phases is None:
            return diags
        num_qubits = ctx.program.circuit.num_qubits
        n = len(plan.items)
        per_qubit: Dict[int, List[Tuple[int, object]]] = {}
        for op in schedule.ops:
            if not 0 <= op.index < n:
                continue
            item = plan.items[op.index]
            if isinstance(item, MigrationOp):
                continue
            phase = plan.item_phases[op.index]
            for qubit in _item_qubits(item, num_qubits):
                per_qubit.setdefault(qubit, []).append((phase, op))
        for qubit, entries in sorted(per_qubit.items()):
            entries.sort(key=lambda e: e[0])
            # Latest retirement over all strictly-earlier phases, swept in
            # phase order so each op is compared against one running max.
            frontier_end = float("-inf")
            current_phase: Optional[int] = None
            current_max = float("-inf")
            for phase, op in entries:
                if current_phase is None:
                    current_phase = phase
                elif phase != current_phase:
                    frontier_end = max(frontier_end, current_max)
                    current_phase = phase
                    current_max = float("-inf")
                if op.start < frontier_end - TIME_TOLERANCE:
                    diags.append(_error(
                        self.id, f"phase-{phase} op {op.index} touching "
                                 f"qubit {qubit} starts at {op.start} "
                                 "before an earlier phase's op on the same "
                                 f"qubit retires at {frontier_end}",
                        qubit=qubit, op=op.index))
                current_max = max(current_max, op.end)
        return diags


@register_pass
class BookingCheck(CheckPass):
    """Schedule-implied resource demand never exceeds static capacities."""

    id = "booking-feasibility"
    description = ("concurrent comm ops per node never exceed its comm "
                   "qubits; statically bounded per-link demand within "
                   "capacity (warning when the analytical idealisation "
                   "exceeds it)")
    scope = "program"

    def run(self, ctx: ProgramContext) -> List[Diagnostic]:
        schedule = ctx.program.schedule
        diags: List[Diagnostic] = []
        if schedule is None:
            return diags
        network = ctx.network
        comm_ops = [op for op in schedule.ops if op.kind != "gate"]

        # Node comm-qubit feasibility: a comm op occupies one comm qubit on
        # each involved node at least over [start, end) (the booked window
        # extends earlier into EPR preparation), so a protocol-window
        # overlap beyond capacity is already a certain violation.
        per_node: Dict[int, List[Tuple[float, float, int]]] = {}
        for op in comm_ops:
            for node in op.nodes:
                per_node.setdefault(node, []).append((op.start, op.end, 1))
        for node, intervals in sorted(per_node.items()):
            if not 0 <= node < network.num_nodes:
                diags.append(_error(
                    self.id, f"comm op touches unknown node {node}",
                    node=node))
                continue
            capacity = network.node(node).num_comm_qubits
            peak, when = _peak_concurrency(intervals)
            if peak > capacity:
                diags.append(_error(
                    self.id, f"{peak} concurrent comm ops at t={when} "
                             f"but the node has {capacity} comm qubits",
                    node=node))

        # Per-link EPR generation demand against link capacities.  The
        # analytical scheduler deliberately idealises links (the simulator
        # serialises the excess), so exceeding a capacity statically is a
        # warning about the idealisation, not a broken schedule.
        if not self._any_capacity(ctx):
            return diags
        profiles = ctx.plan.op_profiles(ctx.mapping, network.latency)
        n = len(ctx.plan.items)
        per_link: Dict[Tuple[int, int], List[Tuple[float, float, int]]] = {}
        for op in comm_ops:
            if not 0 <= op.index < n:
                continue
            profile = profiles[op.index]
            if not profile.prep_pairs:
                continue
            prep = prep_latency_for_pairs(network, profile.prep_pairs)
            window = (max(0.0, op.start - prep), op.start)
            multiplicity: Dict[Tuple[int, int], int] = {}
            for a, b in profile.prep_pairs:
                for link in network.route_links(a, b):
                    multiplicity[link] = multiplicity.get(link, 0) + 1
            for link, count in multiplicity.items():
                capacity = network.link_capacity(*link)
                demand = count if capacity is None else min(count, capacity)
                per_link.setdefault(link, []).append(
                    (window[0], window[1], demand))
        for link, intervals in sorted(per_link.items()):
            capacity = network.link_capacity(*link)
            if capacity is None:
                continue
            peak, when = _peak_concurrency(intervals)
            if peak > capacity:
                diags.append(_warning(
                    self.id, f"analytical schedule implies {peak} "
                             f"concurrent EPR generations at t={when} on a "
                             f"capacity-{capacity} link; the simulator "
                             "will serialise the excess", link=link))
        return diags

    @staticmethod
    def _any_capacity(ctx: ProgramContext) -> bool:
        model = ctx.network.link_model
        return model is not None and model.has_capacities
