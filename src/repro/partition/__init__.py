"""Qubit-to-node partitioning: interaction graphs, mappings and OEE search."""

from .interaction_graph import interaction_graph, interaction_matrix, cut_weight
from .mapping import QubitMapping, round_robin_mapping, block_mapping
from .oee import (oee_partition, oee_repartition, OEEResult, exchange_gain,
                  migration_distance_matrix)

__all__ = [
    "interaction_graph",
    "interaction_matrix",
    "cut_weight",
    "QubitMapping",
    "round_robin_mapping",
    "block_mapping",
    "oee_partition",
    "oee_repartition",
    "OEEResult",
    "exchange_gain",
    "migration_distance_matrix",
]
