"""Qubit-to-node partitioning: interaction graphs, mappings and OEE search."""

from .interaction_graph import interaction_graph, interaction_matrix, cut_weight
from .mapping import QubitMapping, round_robin_mapping, block_mapping
from .oee import (oee_partition, oee_repartition, OEEResult, exchange_gain,
                  exchange_gain_vector, migration_distance_matrix)
from .oee_reference import (exchange_gain_reference, oee_partition_reference,
                            oee_repartition_reference)

__all__ = [
    "interaction_graph",
    "interaction_matrix",
    "cut_weight",
    "QubitMapping",
    "round_robin_mapping",
    "block_mapping",
    "oee_partition",
    "oee_repartition",
    "OEEResult",
    "exchange_gain",
    "exchange_gain_vector",
    "migration_distance_matrix",
    "exchange_gain_reference",
    "oee_partition_reference",
    "oee_repartition_reference",
]
