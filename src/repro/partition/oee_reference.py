"""Reference (pre-vectorization) implementation of the OEE search.

This module preserves the original pure-python Overall Extreme Exchange
search exactly as it behaved before the numpy rewrite of
:mod:`repro.partition.oee`: neighbour weights live in dicts-of-dicts, every
candidate swap re-walks both qubits' adjacency lists, and the migration-aware
repartition pass re-prices every move per candidate.

It exists for two reasons:

* **Equivalence testing** — the vectorized search must produce bit-identical
  mappings, cuts, exchange counts and migration bills; the tests in
  ``tests/partition/test_oee_vectorized.py`` and the hypothesis properties in
  ``tests/properties/test_property_oee.py`` diff the two implementations over
  the benchmark families and random graphs.
* **Perf trajectory** — ``benchmarks/bench_partition.py`` times this path
  against the vectorized search and records the speedup in
  ``BENCH_partition.json``; CI fails when the speedup regresses.

It also serves as an escape hatch: setting ``REPRO_OEE_REFERENCE=1`` in the
environment makes :func:`repro.partition.oee_partition` /
:func:`~repro.partition.oee_repartition` delegate here, which is useful when
bisecting a suspected partitioner issue.

Do not "optimize" this module: its slowness is the baseline being measured.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

import networkx as nx

from ..hardware.network import QuantumNetwork
from ..ir.circuit import Circuit
from .interaction_graph import cut_weight, interaction_graph
from .mapping import QubitMapping, block_mapping
from .oee import (OEEResult, _topology_distances, migration_distance_matrix)

__all__ = ["exchange_gain_reference", "oee_partition_reference",
           "oee_repartition_reference"]


def exchange_gain_reference(weights: Dict[int, Dict[int, float]],
                            assignment: Dict[int, int],
                            qubit_a: int, qubit_b: int,
                            node_distances: Optional[List[List[float]]] = None
                            ) -> float:
    """Scalar gain of swapping ``qubit_a``/``qubit_b`` (pre-vectorization)."""
    node_a = assignment[qubit_a]
    node_b = assignment[qubit_b]
    if node_a == node_b:
        return 0.0
    gain = 0.0
    if node_distances is None:
        for neighbour, weight in weights[qubit_a].items():
            if neighbour == qubit_b:
                continue
            node_n = assignment[neighbour]
            gain += weight * ((node_n != node_a) - (node_n != node_b))
        for neighbour, weight in weights[qubit_b].items():
            if neighbour == qubit_a:
                continue
            node_n = assignment[neighbour]
            gain += weight * ((node_n != node_b) - (node_n != node_a))
        return gain
    dist_a = node_distances[node_a]
    dist_b = node_distances[node_b]
    for neighbour, weight in weights[qubit_a].items():
        if neighbour == qubit_b:
            continue
        node_n = assignment[neighbour]
        gain += weight * (dist_a[node_n] - dist_b[node_n])
    for neighbour, weight in weights[qubit_b].items():
        if neighbour == qubit_a:
            continue
        node_n = assignment[neighbour]
        gain += weight * (dist_b[node_n] - dist_a[node_n])
    return gain


def _neighbour_weights(graph: nx.Graph) -> Dict[int, Dict[int, float]]:
    weights: Dict[int, Dict[int, float]] = defaultdict(dict)
    for a, b, data in graph.edges(data=True):
        w = data.get("weight", 1.0)
        weights[a][b] = w
        weights[b][a] = w
    return weights


def oee_partition_reference(circuit: Circuit, network: QuantumNetwork,
                            initial: Optional[QubitMapping] = None,
                            max_rounds: int = 50,
                            use_link_distances: Optional[bool] = None
                            ) -> OEEResult:
    """The original scalar extreme-exchange search (see module docstring)."""
    network.validate_capacity(circuit.num_qubits)
    distances = _topology_distances(network, use_link_distances)
    graph = interaction_graph(circuit)
    weights = _neighbour_weights(graph)
    mapping = initial if initial is not None else block_mapping(circuit.num_qubits, network)
    assignment = mapping.as_dict()
    initial_cut = cut_weight(graph, assignment, node_distances=distances)

    # Only qubits with at least one interaction can change the cut.
    active = sorted(weights.keys())
    num_exchanges = 0
    rounds = 0
    for rounds in range(1, max_rounds + 1):
        improved = False
        for i, qubit_a in enumerate(active):
            # Greedy "extreme" step: find the partner with the largest gain.
            best_gain = 0.0
            best_partner: Optional[int] = None
            for qubit_b in active[i + 1:]:
                if assignment[qubit_a] == assignment[qubit_b]:
                    continue
                gain = exchange_gain_reference(weights, assignment, qubit_a,
                                               qubit_b, node_distances=distances)
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_partner = qubit_b
            if best_partner is not None:
                assignment[qubit_a], assignment[best_partner] = (
                    assignment[best_partner], assignment[qubit_a])
                num_exchanges += 1
                improved = True
        if not improved:
            break

    final_cut = cut_weight(graph, assignment, node_distances=distances)
    result_mapping = QubitMapping(assignment, network)
    return OEEResult(result_mapping, initial_cut, final_cut, num_exchanges,
                     rounds)


def oee_repartition_reference(circuit: Circuit, network: QuantumNetwork,
                              previous: QubitMapping,
                              max_rounds: int = 50,
                              use_link_distances: Optional[bool] = None,
                              migration_costs: Optional[List[List[float]]] = None
                              ) -> OEEResult:
    """The original scalar migration-aware repartition search."""
    network.validate_capacity(circuit.num_qubits)
    if previous.num_qubits != circuit.num_qubits:
        raise ValueError("previous mapping and circuit disagree on qubit count")
    distances = _topology_distances(network, use_link_distances)
    migration = (migration_costs if migration_costs is not None
                 else migration_distance_matrix(network))
    graph = interaction_graph(circuit)
    weights = _neighbour_weights(graph)
    home = previous.as_dict()
    assignment = dict(home)
    initial_cut = cut_weight(graph, assignment, node_distances=distances)

    def move_cost(qubit: int, node: int) -> float:
        origin = home[qubit]
        return 0.0 if node == origin else migration[origin][node]

    # Only qubits interacting in this phase can *earn* a move, but any
    # qubit may serve as the displaced swap partner (exchanges preserve
    # per-node load, so capacity is maintained by construction).
    active = sorted(weights.keys())
    all_qubits = list(range(circuit.num_qubits))
    num_exchanges = 0
    rounds = 0
    for rounds in range(1, max_rounds + 1):
        improved = False
        for qubit_a in active:
            best_gain = 0.0
            best_partner: Optional[int] = None
            node_a = assignment[qubit_a]
            for qubit_b in all_qubits:
                node_b = assignment[qubit_b]
                if qubit_b == qubit_a or node_a == node_b:
                    continue
                gain = exchange_gain_reference(weights, assignment, qubit_a,
                                               qubit_b, node_distances=distances)
                # Migration delta of the swap: what both qubits pay now vs
                # what they would pay on each other's nodes.
                gain += (move_cost(qubit_a, node_a) + move_cost(qubit_b, node_b)
                         - move_cost(qubit_a, node_b) - move_cost(qubit_b, node_a))
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_partner = qubit_b
            if best_partner is not None:
                assignment[qubit_a], assignment[best_partner] = (
                    assignment[best_partner], assignment[qubit_a])
                node_a = assignment[qubit_a]
                num_exchanges += 1
                improved = True
        if not improved:
            break

    final_cut = cut_weight(graph, assignment, node_distances=distances)
    moves = [q for q in all_qubits if assignment[q] != home[q]]
    total_migration = sum(migration[home[q]][assignment[q]] for q in moves)
    return OEEResult(QubitMapping(assignment, network), initial_cut,
                     final_cut, num_exchanges, rounds,
                     migration_moves=len(moves),
                     migration_cost=total_migration)
