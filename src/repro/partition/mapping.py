"""Qubit-to-node mapping.

A :class:`QubitMapping` records, for every program qubit, the node it lives
on.  Every AutoComm pass and every baseline consumes the same mapping object,
so the classification of gates as local vs. remote is consistent across
compilers.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Mapping, Optional, Tuple

from ..hardware.network import QuantumNetwork
from ..ir.circuit import Circuit
from ..ir.gates import Gate

__all__ = ["QubitMapping", "round_robin_mapping", "block_mapping"]


class QubitMapping:
    """Static assignment of program qubits to quantum nodes."""

    def __init__(self, assignment: Mapping[int, int],
                 network: Optional[QuantumNetwork] = None) -> None:
        self._assignment: Dict[int, int] = {int(q): int(n) for q, n in assignment.items()}
        if not self._assignment:
            raise ValueError("mapping cannot be empty")
        expected = set(range(len(self._assignment)))
        if set(self._assignment) != expected:
            raise ValueError("mapping must cover qubits 0..n-1 exactly")
        self.network = network
        if network is not None:
            self._validate_against(network)

    @classmethod
    def from_trusted(cls, assignment: Dict[int, int],
                     network: Optional[QuantumNetwork] = None
                     ) -> "QubitMapping":
        """Rebuild a mapping from an already-validated assignment dict.

        Skips the coverage and capacity checks of ``__init__`` (and takes
        ownership of ``assignment`` instead of copying it) for decode
        paths replaying this class's own output — :mod:`repro.persist`
        rebuilds one mapping per phase of a phased program, and the
        re-validation dominates an otherwise cheap load.
        """
        mapping = cls.__new__(cls)
        mapping._assignment = assignment
        mapping.network = network
        return mapping

    def _validate_against(self, network: QuantumNetwork) -> None:
        loads = Counter(self._assignment.values())
        for node_index, load in loads.items():
            if node_index < 0 or node_index >= network.num_nodes:
                raise ValueError(f"mapping references unknown node {node_index}")
            capacity = network.node(node_index).num_data_qubits
            if load > capacity:
                raise ValueError(
                    f"node {node_index} holds {load} qubits but only has "
                    f"{capacity} data qubits")

    # ----------------------------------------------------------------- queries

    @property
    def num_qubits(self) -> int:
        return len(self._assignment)

    @property
    def num_nodes(self) -> int:
        return max(self._assignment.values()) + 1

    def node_of(self, qubit: int) -> int:
        """Node index hosting ``qubit``."""
        return self._assignment[qubit]

    def qubits_on(self, node: int) -> Tuple[int, ...]:
        """Sorted tuple of qubits living on ``node``."""
        return tuple(sorted(q for q, n in self._assignment.items() if n == node))

    def as_dict(self) -> Dict[int, int]:
        return dict(self._assignment)

    def nodes_of(self, gate: Gate) -> Tuple[int, ...]:
        """Sorted tuple of distinct nodes a gate touches."""
        return tuple(sorted({self._assignment[q] for q in gate.qubits}))

    def is_remote(self, gate: Gate) -> bool:
        """True when a multi-qubit gate spans more than one node."""
        if not gate.is_multi_qubit:
            return False
        assignment = self._assignment
        qubits = gate.qubits
        first = assignment[qubits[0]]
        for q in qubits[1:]:
            if assignment[q] != first:
                return True
        return False

    def remote_gates(self, circuit: Circuit) -> List[Tuple[int, Gate]]:
        """All (index, gate) pairs of remote multi-qubit gates in order."""
        return [(i, g) for i, g in enumerate(circuit) if self.is_remote(g)]

    def count_remote_gates(self, circuit: Circuit) -> int:
        """Number of remote multi-qubit gates under this mapping."""
        return sum(1 for g in circuit if self.is_remote(g))

    def remote_pair_histogram(self, circuit: Circuit) -> Counter:
        """Counter of (qubit, node) pairs over all remote two-qubit gates.

        For a remote two-qubit gate on qubits (a, b) living on nodes (na, nb),
        both directed views (a, nb) and (b, na) are counted; AutoComm's
        aggregation preprocessing uses this histogram to pick the most
        communication-heavy qubit-node pair first.
        """
        histogram: Counter = Counter()
        for gate in circuit:
            if not (gate.is_two_qubit and self.is_remote(gate)):
                continue
            a, b = gate.qubits
            histogram[(a, self._assignment[b])] += 1
            histogram[(b, self._assignment[a])] += 1
        return histogram

    def with_swapped(self, qubit_a: int, qubit_b: int) -> "QubitMapping":
        """Return a new mapping with the node assignments of two qubits swapped."""
        new = dict(self._assignment)
        new[qubit_a], new[qubit_b] = new[qubit_b], new[qubit_a]
        return QubitMapping(new, self.network)

    def __eq__(self, other) -> bool:
        if not isinstance(other, QubitMapping):
            return NotImplemented
        return self._assignment == other._assignment

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QubitMapping(qubits={self.num_qubits}, nodes={self.num_nodes})"


def round_robin_mapping(num_qubits: int, network: QuantumNetwork) -> QubitMapping:
    """Assign qubit ``q`` to node ``q mod k`` (a deliberately naive layout)."""
    assignment = {q: q % network.num_nodes for q in range(num_qubits)}
    return QubitMapping(assignment, network)


def block_mapping(num_qubits: int, network: QuantumNetwork) -> QubitMapping:
    """Assign consecutive qubits to the same node, filling nodes in order."""
    assignment: Dict[int, int] = {}
    node = 0
    used = 0
    for qubit in range(num_qubits):
        while used >= network.node(node).num_data_qubits:
            node += 1
            used = 0
            if node >= network.num_nodes:
                raise ValueError("network capacity exceeded")
        assignment[qubit] = node
        used += 1
    return QubitMapping(assignment, network)
