"""Weighted qubit-interaction graph of a circuit.

Vertices are program qubits; an edge's weight counts how many multi-qubit
gates join the two qubits.  The static partitioners in
:mod:`repro.partition.oee` minimise the total weight of edges cut by the
qubit-to-node assignment, which equals the number of remote multi-qubit
gates under a static mapping.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional, Sequence

import networkx as nx

from ..ir.circuit import Circuit

__all__ = ["interaction_graph", "cut_weight", "interaction_matrix"]


def interaction_graph(circuit: Circuit) -> nx.Graph:
    """Build the weighted interaction graph of ``circuit``.

    Every qubit appears as a vertex even if it is idle, so partitioners see
    the full register.
    """
    graph = nx.Graph()
    graph.add_nodes_from(range(circuit.num_qubits))
    weights: Counter = circuit.interaction_pairs()
    for (a, b), weight in weights.items():
        graph.add_edge(a, b, weight=weight)
    return graph


def interaction_matrix(circuit: Circuit):
    """Dense symmetric matrix of pairwise interaction counts (numpy array)."""
    import numpy as np

    matrix = np.zeros((circuit.num_qubits, circuit.num_qubits), dtype=float)
    for (a, b), weight in circuit.interaction_pairs().items():
        matrix[a, b] = weight
        matrix[b, a] = weight
    return matrix


def cut_weight(graph: nx.Graph, assignment: Dict[int, int],
               node_distances: Optional[Sequence[Sequence[float]]] = None
               ) -> float:
    """Total weight of edges whose endpoints live on different nodes.

    With ``node_distances`` (a dense node-by-node distance matrix, e.g.
    ``RoutingTable.cost_matrix()`` — link-latency route sums on a
    heterogeneous link model, hop counts otherwise) every cut edge is
    scaled by the routed distance between its endpoints' nodes, so the
    objective prices the physical links a static mapping would consume on a
    routed topology rather than the bare remote-gate count.
    """
    total = 0.0
    if node_distances is None:
        for a, b, data in graph.edges(data=True):
            if assignment[a] != assignment[b]:
                total += data.get("weight", 1.0)
        return total
    for a, b, data in graph.edges(data=True):
        node_a, node_b = assignment[a], assignment[b]
        if node_a != node_b:
            total += data.get("weight", 1.0) * node_distances[node_a][node_b]
    return total
