"""Static qubit partitioning by Overall Extreme Exchange (OEE).

The AutoComm evaluation maps program qubits to nodes with the "Static Overall
Extreme Exchange" strategy studied by Baker et al. (Time-sliced quantum
circuit partitioning, CF 2020).  OEE is a Kernighan–Lin style local search on
the weighted qubit-interaction graph: starting from an initial balanced
assignment it repeatedly applies the qubit *exchange* (swap of two qubits on
different nodes) with the largest reduction in cut weight, until no exchange
improves the cut.  The cut weight equals the number of remote multi-qubit
gates under a static mapping, which is the objective the paper optimises
before AutoComm runs.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..hardware.network import QuantumNetwork
from ..ir.circuit import Circuit
from ..obs.span import stage
from .interaction_graph import cut_weight, interaction_graph
from .mapping import QubitMapping, block_mapping

__all__ = ["oee_partition", "oee_repartition", "OEEResult", "exchange_gain",
           "migration_distance_matrix"]


class OEEResult:
    """Outcome of an OEE partitioning run.

    ``migration_moves``/``migration_cost`` are only populated by
    :func:`oee_repartition`: the number of qubits whose node changed
    relative to the seed mapping and the total routed distance those moves
    were charged in the objective.
    """

    def __init__(self, mapping: QubitMapping, initial_cut: float,
                 final_cut: float, num_exchanges: int, rounds: int,
                 migration_moves: int = 0,
                 migration_cost: float = 0.0) -> None:
        self.mapping = mapping
        self.initial_cut = initial_cut
        self.final_cut = final_cut
        self.num_exchanges = num_exchanges
        self.rounds = rounds
        self.migration_moves = migration_moves
        self.migration_cost = migration_cost

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"OEEResult(cut {self.initial_cut:.0f} -> {self.final_cut:.0f}, "
                f"{self.num_exchanges} exchanges, {self.rounds} rounds)")


def exchange_gain(weights: Dict[int, Dict[int, float]], assignment: Dict[int, int],
                  qubit_a: int, qubit_b: int,
                  node_distances: Optional[List[List[float]]] = None) -> float:
    """Cut-weight reduction from swapping the nodes of ``qubit_a`` and ``qubit_b``.

    Positive gain means the swap reduces the number of remote gates — or,
    with ``node_distances`` (route costs of a routed topology: link-latency
    sums, or hop counts on uniform links), the routed cost those remote
    gates would incur.  The edge
    between the two exchanged qubits never contributes: its endpoints swap
    nodes, so its (symmetric) distance is unchanged.
    """
    node_a = assignment[qubit_a]
    node_b = assignment[qubit_b]
    if node_a == node_b:
        return 0.0
    gain = 0.0
    if node_distances is None:
        for neighbour, weight in weights[qubit_a].items():
            if neighbour == qubit_b:
                continue
            node_n = assignment[neighbour]
            gain += weight * ((node_n != node_a) - (node_n != node_b))
        for neighbour, weight in weights[qubit_b].items():
            if neighbour == qubit_a:
                continue
            node_n = assignment[neighbour]
            gain += weight * ((node_n != node_b) - (node_n != node_a))
        return gain
    dist_a = node_distances[node_a]
    dist_b = node_distances[node_b]
    for neighbour, weight in weights[qubit_a].items():
        if neighbour == qubit_b:
            continue
        node_n = assignment[neighbour]
        gain += weight * (dist_a[node_n] - dist_b[node_n])
    for neighbour, weight in weights[qubit_b].items():
        if neighbour == qubit_a:
            continue
        node_n = assignment[neighbour]
        gain += weight * (dist_b[node_n] - dist_a[node_n])
    return gain


def _neighbour_weights(graph: nx.Graph) -> Dict[int, Dict[int, float]]:
    weights: Dict[int, Dict[int, float]] = defaultdict(dict)
    for a, b, data in graph.edges(data=True):
        w = data.get("weight", 1.0)
        weights[a][b] = w
        weights[b][a] = w
    return weights


def _topology_distances(network: QuantumNetwork,
                        use_link_distances: Optional[bool]
                        ) -> Optional[List[List[float]]]:
    """Resolve the distance matrix the partitioner should weight cuts by.

    The distances are the routing table's route costs — link-latency sums
    when the network carries a heterogeneous link model, plain hop counts
    (identical integers to before link weights existed) otherwise.

    ``None`` (auto) engages distance weighting only when the network
    carries a routing table with non-uniform hop counts or weighted (link-
    latency) routes; an unweighted all-to-all table (all hops 1) takes the
    unweighted path, whose arithmetic — and therefore whose mapping — is
    bit-identical to the pre-routing code.
    """
    routing = getattr(network, "routing", None)
    if use_link_distances is None:
        use_link_distances = routing is not None and (
            not routing.uniform or routing.weighted)
    if not use_link_distances:
        return None
    if routing is None:
        raise ValueError("use_link_distances requires a routed network "
                         "(see repro.hardware.apply_topology)")
    return routing.cost_matrix()


def _record_oee_span(span, result: OEEResult) -> None:
    """Attach an OEE run's search statistics to its stage span."""
    if not span.enabled:
        return
    span.set("rounds", result.rounds)
    span.set("exchanges", result.num_exchanges)
    span.set("initial_cut", result.initial_cut)
    span.set("final_cut", result.final_cut)
    if result.migration_moves or result.migration_cost:
        span.set("moves", result.migration_moves)
        span.set("migration_cost", result.migration_cost)


def oee_partition(circuit: Circuit, network: QuantumNetwork,
                  initial: Optional[QubitMapping] = None,
                  max_rounds: int = 50,
                  use_link_distances: Optional[bool] = None) -> OEEResult:
    """Partition ``circuit``'s qubits across ``network`` by extreme exchange.

    Args:
        circuit: the program (any basis; interaction counts are taken from
            multi-qubit gates directly).
        network: target distributed system; node data-qubit capacities bound
            the per-node load (the initial block mapping is balanced and
            exchanges preserve balance).
        initial: optional starting mapping; defaults to the balanced block
            mapping.
        max_rounds: safety bound on improvement passes.
        use_link_distances: weight each cut edge by the routed distance
            between its endpoints' nodes — the route's link-latency sum on a
            heterogeneous link model, the hop count otherwise — so the
            objective prices the physical links a static mapping would
            actually cross instead of the bare remote-gate count.  Default
            ``None`` auto-enables this exactly when the network carries
            non-uniform or latency-weighted entanglement routes.

    Returns:
        An :class:`OEEResult` whose ``mapping`` minimises (locally) the number
        of remote multi-qubit gates — hop-weighted when distance weighting
        is engaged.
    """
    with stage("oee-partition") as span:
        result = _oee_partition(circuit, network, initial=initial,
                                max_rounds=max_rounds,
                                use_link_distances=use_link_distances)
        _record_oee_span(span, result)
        return result


def _oee_partition(circuit: Circuit, network: QuantumNetwork,
                   initial: Optional[QubitMapping] = None,
                   max_rounds: int = 50,
                   use_link_distances: Optional[bool] = None) -> OEEResult:
    """The extreme-exchange search behind :func:`oee_partition`."""
    network.validate_capacity(circuit.num_qubits)
    distances = _topology_distances(network, use_link_distances)
    graph = interaction_graph(circuit)
    weights = _neighbour_weights(graph)
    mapping = initial if initial is not None else block_mapping(circuit.num_qubits, network)
    assignment = mapping.as_dict()
    initial_cut = cut_weight(graph, assignment, node_distances=distances)

    # Only qubits with at least one interaction can change the cut.
    active = sorted(weights.keys())
    num_exchanges = 0
    rounds = 0
    for rounds in range(1, max_rounds + 1):
        improved = False
        for i, qubit_a in enumerate(active):
            # Greedy "extreme" step: find the partner with the largest gain.
            best_gain = 0.0
            best_partner: Optional[int] = None
            for qubit_b in active[i + 1:]:
                if assignment[qubit_a] == assignment[qubit_b]:
                    continue
                gain = exchange_gain(weights, assignment, qubit_a, qubit_b,
                                     node_distances=distances)
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_partner = qubit_b
            if best_partner is not None:
                assignment[qubit_a], assignment[best_partner] = (
                    assignment[best_partner], assignment[qubit_a])
                num_exchanges += 1
                improved = True
        if not improved:
            break

    final_cut = cut_weight(graph, assignment, node_distances=distances)
    result_mapping = QubitMapping(assignment, network)
    return OEEResult(result_mapping, initial_cut, final_cut, num_exchanges,
                     rounds)


def migration_distance_matrix(network: QuantumNetwork) -> List[List[float]]:
    """Node-by-node cost of moving one data qubit between nodes.

    On a routed network this is the routing table's
    :meth:`~repro.hardware.routing.RoutingTable.cost_matrix` — the routed
    link-cost of the teleport that would carry the qubit (link-latency sums
    under a heterogeneous link model, hop counts otherwise), in the same
    units the distance-weighted cut objective uses.  Unrouted (all-to-all)
    networks charge one unit per move, matching the unweighted remote-gate
    cut.
    """
    routing = getattr(network, "routing", None)
    if routing is not None:
        return routing.cost_matrix()
    n = network.num_nodes
    return [[0.0 if i == j else 1.0 for j in range(n)] for i in range(n)]


def oee_repartition(circuit: Circuit, network: QuantumNetwork,
                    previous: QubitMapping,
                    max_rounds: int = 50,
                    use_link_distances: Optional[bool] = None,
                    migration_costs: Optional[List[List[float]]] = None
                    ) -> OEEResult:
    """Incrementally re-partition for one program phase, migration-aware.

    The phase-structured pipeline calls this between burst phases: the
    search is *seeded* from the previous phase's mapping and every exchange
    is judged by the phase's cut-weight reduction **minus the migration
    bill** — each qubit that ends up away from its previous node is charged
    the routed distance of the teleport that moves it
    (:func:`migration_distance_matrix`, i.e. ``RoutingTable.cost_matrix``
    on a routed network).  A remap therefore only happens where the
    phase's communication savings beat the cost of physically migrating
    the qubits, and a phase whose traffic already suits the previous
    placement returns it unchanged.

    Args:
        circuit: the gates of one phase (any basis; interaction counts are
            taken from multi-qubit gates directly).
        network: target distributed system.
        previous: the mapping the previous phase executed under (the seed;
            also the reference migration is priced against).
        max_rounds: safety bound on improvement passes.
        use_link_distances: as in :func:`oee_partition` — weight cut edges
            by routed distance (auto-engaged on non-uniform routes).
        migration_costs: override the per-move distance matrix (defaults to
            :func:`migration_distance_matrix`).

    Returns:
        An :class:`OEEResult` whose ``mapping`` locally minimises
        ``phase cut weight + migration cost``; ``migration_moves`` and
        ``migration_cost`` report the moves relative to ``previous``.
    """
    with stage("oee-repartition") as span:
        result = _oee_repartition(circuit, network, previous,
                                  max_rounds=max_rounds,
                                  use_link_distances=use_link_distances,
                                  migration_costs=migration_costs)
        _record_oee_span(span, result)
        return result


def _oee_repartition(circuit: Circuit, network: QuantumNetwork,
                     previous: QubitMapping,
                     max_rounds: int = 50,
                     use_link_distances: Optional[bool] = None,
                     migration_costs: Optional[List[List[float]]] = None
                     ) -> OEEResult:
    """The migration-aware search behind :func:`oee_repartition`."""
    network.validate_capacity(circuit.num_qubits)
    if previous.num_qubits != circuit.num_qubits:
        raise ValueError("previous mapping and circuit disagree on qubit count")
    distances = _topology_distances(network, use_link_distances)
    migration = (migration_costs if migration_costs is not None
                 else migration_distance_matrix(network))
    graph = interaction_graph(circuit)
    weights = _neighbour_weights(graph)
    home = previous.as_dict()
    assignment = dict(home)
    initial_cut = cut_weight(graph, assignment, node_distances=distances)

    def move_cost(qubit: int, node: int) -> float:
        origin = home[qubit]
        return 0.0 if node == origin else migration[origin][node]

    # Only qubits interacting in this phase can *earn* a move, but any
    # qubit may serve as the displaced swap partner (exchanges preserve
    # per-node load, so capacity is maintained by construction).
    active = sorted(weights.keys())
    all_qubits = list(range(circuit.num_qubits))
    num_exchanges = 0
    rounds = 0
    for rounds in range(1, max_rounds + 1):
        improved = False
        for qubit_a in active:
            best_gain = 0.0
            best_partner: Optional[int] = None
            node_a = assignment[qubit_a]
            for qubit_b in all_qubits:
                node_b = assignment[qubit_b]
                if qubit_b == qubit_a or node_a == node_b:
                    continue
                gain = exchange_gain(weights, assignment, qubit_a, qubit_b,
                                     node_distances=distances)
                # Migration delta of the swap: what both qubits pay now vs
                # what they would pay on each other's nodes.
                gain += (move_cost(qubit_a, node_a) + move_cost(qubit_b, node_b)
                         - move_cost(qubit_a, node_b) - move_cost(qubit_b, node_a))
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_partner = qubit_b
            if best_partner is not None:
                assignment[qubit_a], assignment[best_partner] = (
                    assignment[best_partner], assignment[qubit_a])
                node_a = assignment[qubit_a]
                num_exchanges += 1
                improved = True
        if not improved:
            break

    final_cut = cut_weight(graph, assignment, node_distances=distances)
    moves = [q for q in all_qubits if assignment[q] != home[q]]
    total_migration = sum(migration[home[q]][assignment[q]] for q in moves)
    return OEEResult(QubitMapping(assignment, network), initial_cut,
                     final_cut, num_exchanges, rounds,
                     migration_moves=len(moves),
                     migration_cost=total_migration)
