"""Static qubit partitioning by Overall Extreme Exchange (OEE).

The AutoComm evaluation maps program qubits to nodes with the "Static Overall
Extreme Exchange" strategy studied by Baker et al. (Time-sliced quantum
circuit partitioning, CF 2020).  OEE is a Kernighan–Lin style local search on
the weighted qubit-interaction graph: starting from an initial balanced
assignment it repeatedly applies the qubit *exchange* (swap of two qubits on
different nodes) with the largest reduction in cut weight, until no exchange
improves the cut.  The cut weight equals the number of remote multi-qubit
gates under a static mapping, which is the objective the paper optimises
before AutoComm runs.

Vectorized search
-----------------

The search state lives on numpy: the interaction graph is a dense weight
matrix ``W``, the assignment an index vector ``A``, and each pivot qubit's
gains against *every* candidate partner come from one gathered vector
expression instead of a pair of adjacency-dict walks per candidate.  The
state matrices are updated incrementally after each accepted swap (rank-one
column/outer-product updates), so a full improvement round is O(n) vector
ops per pivot rather than O(n * degree) python arithmetic per pair.

Two invariants keep the swap sequence — and therefore every mapping, phase
split and migration plan downstream — bit-identical to the scalar search
preserved in :mod:`repro.partition.oee_reference`:

* Interaction weights are integer gate counts and node distances are hop
  counts or dyadic link-latency sums, so every gain is computed exactly in
  float64 no matter how the terms are grouped; regrouping the sums onto
  matrix products cannot change the value.
* Partner selection replays the reference tie-break exactly: candidates are
  scanned in the reference order and a partner is accepted only when its
  gain beats the *last accepted* gain by more than ``1e-12`` (a cheap python
  scan over the numpy gain vector, entered only when the vectorized max
  shows an improving partner exists).

Setting ``REPRO_OEE_REFERENCE=1`` routes :func:`oee_partition` /
:func:`oee_repartition` back through the preserved scalar implementation
(useful when bisecting a suspected partitioner issue); equivalence of the
two paths is enforced by ``tests/partition/test_oee_vectorized.py``, the
hypothesis properties in ``tests/properties/test_property_oee.py`` and the
assertions inside ``benchmarks/bench_partition.py``.
"""

from __future__ import annotations

import os
from collections import defaultdict
from typing import Dict, List, Optional, Sequence

import networkx as nx
import numpy as np

from ..hardware.network import QuantumNetwork
from ..ir.circuit import Circuit
from ..obs.span import stage
from .interaction_graph import cut_weight, interaction_graph
from .mapping import QubitMapping, block_mapping

__all__ = ["oee_partition", "oee_repartition", "OEEResult", "exchange_gain",
           "exchange_gain_vector", "migration_distance_matrix"]

#: Tolerance of the greedy tie-break: a candidate replaces the incumbent
#: partner only when its gain exceeds the incumbent's by more than this.
_EPS = 1e-12


def _use_reference() -> bool:
    """True when ``REPRO_OEE_REFERENCE`` requests the scalar search."""
    return os.environ.get("REPRO_OEE_REFERENCE", "").lower() not in (
        "", "0", "false", "no")


class OEEResult:
    """Outcome of an OEE partitioning run.

    ``migration_moves``/``migration_cost`` are only populated by
    :func:`oee_repartition`: the number of qubits whose node changed
    relative to the seed mapping and the total routed distance those moves
    were charged in the objective.
    """

    def __init__(self, mapping: QubitMapping, initial_cut: float,
                 final_cut: float, num_exchanges: int, rounds: int,
                 migration_moves: int = 0,
                 migration_cost: float = 0.0) -> None:
        self.mapping = mapping
        self.initial_cut = initial_cut
        self.final_cut = final_cut
        self.num_exchanges = num_exchanges
        self.rounds = rounds
        self.migration_moves = migration_moves
        self.migration_cost = migration_cost

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"OEEResult(cut {self.initial_cut:.0f} -> {self.final_cut:.0f}, "
                f"{self.num_exchanges} exchanges, {self.rounds} rounds)")


def exchange_gain(weights: Dict[int, Dict[int, float]], assignment: Dict[int, int],
                  qubit_a: int, qubit_b: int,
                  node_distances: Optional[List[List[float]]] = None) -> float:
    """Cut-weight reduction from swapping the nodes of ``qubit_a`` and ``qubit_b``.

    Positive gain means the swap reduces the number of remote gates — or,
    with ``node_distances`` (route costs of a routed topology: link-latency
    sums, or hop counts on uniform links), the routed cost those remote
    gates would incur.  The edge
    between the two exchanged qubits never contributes: its endpoints swap
    nodes, so its (symmetric) distance is unchanged.

    This scalar form prices one pair; the search itself evaluates whole
    candidate rows at once via :class:`_GainState` /
    :func:`exchange_gain_vector`.
    """
    node_a = assignment[qubit_a]
    node_b = assignment[qubit_b]
    if node_a == node_b:
        return 0.0
    gain = 0.0
    if node_distances is None:
        for neighbour, weight in weights[qubit_a].items():
            if neighbour == qubit_b:
                continue
            node_n = assignment[neighbour]
            gain += weight * ((node_n != node_a) - (node_n != node_b))
        for neighbour, weight in weights[qubit_b].items():
            if neighbour == qubit_a:
                continue
            node_n = assignment[neighbour]
            gain += weight * ((node_n != node_b) - (node_n != node_a))
        return gain
    dist_a = node_distances[node_a]
    dist_b = node_distances[node_b]
    for neighbour, weight in weights[qubit_a].items():
        if neighbour == qubit_b:
            continue
        node_n = assignment[neighbour]
        gain += weight * (dist_a[node_n] - dist_b[node_n])
    for neighbour, weight in weights[qubit_b].items():
        if neighbour == qubit_a:
            continue
        node_n = assignment[neighbour]
        gain += weight * (dist_b[node_n] - dist_a[node_n])
    return gain


def exchange_gain_vector(weights, assignment: Sequence[int], qubit_a: int,
                         node_distances=None) -> "np.ndarray":
    """Gains of swapping ``qubit_a`` with *every* qubit, as one numpy vector.

    ``weights`` is the dense symmetric interaction matrix
    (:func:`~repro.partition.interaction_graph.interaction_matrix`),
    ``assignment`` a length-n node-index sequence.  Entry ``b`` equals
    ``exchange_gain(..., qubit_a, b)``; entries where ``b`` shares
    ``qubit_a``'s node (including ``b == qubit_a``) are 0.0, matching the
    scalar early-return.  This is the vectorized gain math the OEE search
    runs on, exposed for the property tests that pin it against the scalar
    reference.
    """
    W = np.asarray(weights, dtype=np.float64)
    A = np.asarray(assignment, dtype=np.int64)
    num_nodes = int(A.max()) + 1 if A.size else 1
    distances = None
    if node_distances is not None:
        distances = np.asarray(node_distances, dtype=np.float64)
        num_nodes = distances.shape[0]
    state = _GainState(W, A, num_nodes, distances)
    gains = state.gain_vector(qubit_a)
    gains[A == A[qubit_a]] = 0.0
    return gains


class _GainState:
    """Incrementally-maintained vector state of one OEE search.

    Uniform (unweighted-distance) objective: ``S[q, m]`` is the total
    interaction weight between qubit ``q`` and the qubits currently on node
    ``m`` (``S = W @ onehot(A)``), so the gain of swapping ``a`` and ``b``
    is ``S[a, nb] - S[a, na] + S[b, na] - S[b, nb] - 2 W[a, b]``.

    Routed objective: ``S[q, m]`` generalises to the distance-priced load
    ``sum_n W[q, n] * D[m, A[n]]`` (``S = W @ D.T[A]``), whose gain formula
    mirrors the scalar one with an explicit correction for the swapped
    pair's own edge.  Both forms admit rank-one updates per accepted swap.

    For migration-aware repartitioning, ``move`` holds each qubit's
    effective move-cost row (home node priced at zero, exactly like the
    scalar ``move_cost``) and ``cur_move`` the cost each qubit currently
    pays under ``A``.
    """

    def __init__(self, W: "np.ndarray", A: "np.ndarray", num_nodes: int,
                 distances: Optional["np.ndarray"],
                 home: Optional["np.ndarray"] = None,
                 migration: Optional["np.ndarray"] = None) -> None:
        n = W.shape[0]
        self.n = n
        self.W = W
        self.A = A
        self.D = distances
        self._rows = np.arange(n)
        if distances is None:
            onehot = np.zeros((n, num_nodes))
            if n:
                onehot[self._rows, A] = 1.0
            self.S = W @ onehot
        else:
            self.S = W @ distances.T[A] if n else np.zeros((0, num_nodes))
        self.S_self = self.S[self._rows, A] if n else np.zeros(0)
        if migration is None:
            self.move = None
            self.cur_move = None
        else:
            self.home = home
            move = migration[home].copy()
            move[self._rows, home] = 0.0
            self.move = move
            self.cur_move = move[self._rows, A]

    def gain_vector(self, qubit_a: int) -> "np.ndarray":
        """Raw gain of swapping ``qubit_a`` with each qubit (length n).

        Entries for same-node partners (and ``qubit_a`` itself) are
        meaningless — callers mask them before use.
        """
        A = self.A
        node_a = A[qubit_a]
        row = self.S[qubit_a]
        if self.D is None:
            gains = (row.take(A) - row[node_a]
                     + self.S[:, node_a] - self.S_self
                     - 2.0 * self.W[qubit_a])
        else:
            D = self.D
            # The swapped pair's own edge is excluded by the scalar form;
            # remove its two (generally asymmetric-safe) contributions.
            own_edge = self.W[qubit_a] * (
                (D[node_a].take(A) - D.diagonal().take(A))
                + (D[:, node_a].take(A) - D[node_a, node_a]))
            gains = ((row[node_a] - row.take(A))
                     + (self.S_self - self.S[:, node_a])
                     - own_edge)
        if self.move is not None:
            # Migration delta, grouped exactly like the scalar accumulation:
            # ((pay_a_now + pay_b_now) - pay_a_there) - pay_b_here.
            gains = gains + (((self.move[qubit_a, node_a] + self.cur_move)
                              - self.move[qubit_a].take(A))
                             - self.move[:, node_a])
        return gains

    def best_partner(self, qubit_a: int,
                     candidates: "np.ndarray") -> Optional[int]:
        """Replay the reference greedy scan over ``candidates`` (in order)."""
        if candidates.size == 0:
            return None
        gains = self.gain_vector(qubit_a).take(candidates)
        gains[self.A.take(candidates) == self.A[qubit_a]] = -np.inf
        if not (gains.max() > _EPS):
            return None
        # An improving partner exists: replay the scalar tie-break, which
        # accepts a candidate only when it beats the last *accepted* gain.
        best_gain = 0.0
        best_partner: Optional[int] = None
        order = candidates.tolist()
        for index, gain in enumerate(gains.tolist()):
            if gain > best_gain + _EPS:
                best_gain = gain
                best_partner = order[index]
        return best_partner

    def swap(self, qubit_a: int, qubit_b: int) -> None:
        """Exchange the two qubits' nodes and refresh the state matrices."""
        A = self.A
        node_a = int(A[qubit_a])
        node_b = int(A[qubit_b])
        delta = self.W[qubit_a] - self.W[qubit_b]
        if self.D is None:
            self.S[:, node_a] -= delta
            self.S[:, node_b] += delta
        else:
            self.S += np.outer(delta, self.D[:, node_b] - self.D[:, node_a])
        A[qubit_a] = node_b
        A[qubit_b] = node_a
        self.S_self = self.S[self._rows, A]
        if self.move is not None:
            self.cur_move[qubit_a] = self.move[qubit_a, node_b]
            self.cur_move[qubit_b] = self.move[qubit_b, node_a]

    def as_dict(self) -> Dict[int, int]:
        return {q: int(self.A[q]) for q in range(self.n)}


def _weight_matrix(graph: nx.Graph, num_qubits: int) -> "np.ndarray":
    """Dense symmetric weight matrix of an interaction graph.

    Built from the graph (not the circuit) so the gate list is scanned once
    per search; matches
    :func:`~repro.partition.interaction_graph.interaction_matrix`.
    """
    W = np.zeros((num_qubits, num_qubits))
    for a, b, data in graph.edges(data=True):
        w = data.get("weight", 1.0)
        W[a, b] = w
        W[b, a] = w
    return W


def _active_qubits(W: "np.ndarray") -> "np.ndarray":
    """Qubits with at least one interaction, in index order (the reference
    iterates ``sorted(weights.keys())``, which is the same set and order)."""
    if W.size == 0:
        return np.zeros(0, dtype=np.int64)
    return np.flatnonzero((W != 0.0).any(axis=1))


def _neighbour_weights(graph: nx.Graph) -> Dict[int, Dict[int, float]]:
    weights: Dict[int, Dict[int, float]] = defaultdict(dict)
    for a, b, data in graph.edges(data=True):
        w = data.get("weight", 1.0)
        weights[a][b] = w
        weights[b][a] = w
    return weights


def _topology_distances(network: QuantumNetwork,
                        use_link_distances: Optional[bool]
                        ) -> Optional[List[List[float]]]:
    """Resolve the distance matrix the partitioner should weight cuts by.

    The distances are the routing table's route costs — link-latency sums
    when the network carries a heterogeneous link model, plain hop counts
    (identical integers to before link weights existed) otherwise.

    ``None`` (auto) engages distance weighting only when the network
    carries a routing table with non-uniform hop counts or weighted (link-
    latency) routes; an unweighted all-to-all table (all hops 1) takes the
    unweighted path, whose arithmetic — and therefore whose mapping — is
    bit-identical to the pre-routing code.
    """
    routing = getattr(network, "routing", None)
    if use_link_distances is None:
        use_link_distances = routing is not None and (
            not routing.uniform or routing.weighted)
    if not use_link_distances:
        return None
    if routing is None:
        raise ValueError("use_link_distances requires a routed network "
                         "(see repro.hardware.apply_topology)")
    return routing.cost_matrix()


def _record_oee_span(span, result: OEEResult) -> None:
    """Attach an OEE run's search statistics to its stage span."""
    if not span.enabled:
        return
    span.set("rounds", result.rounds)
    span.set("exchanges", result.num_exchanges)
    span.set("initial_cut", result.initial_cut)
    span.set("final_cut", result.final_cut)
    if result.migration_moves or result.migration_cost:
        span.set("moves", result.migration_moves)
        span.set("migration_cost", result.migration_cost)


def oee_partition(circuit: Circuit, network: QuantumNetwork,
                  initial: Optional[QubitMapping] = None,
                  max_rounds: int = 50,
                  use_link_distances: Optional[bool] = None) -> OEEResult:
    """Partition ``circuit``'s qubits across ``network`` by extreme exchange.

    Args:
        circuit: the program (any basis; interaction counts are taken from
            multi-qubit gates directly).
        network: target distributed system; node data-qubit capacities bound
            the per-node load (the initial block mapping is balanced and
            exchanges preserve balance).
        initial: optional starting mapping; defaults to the balanced block
            mapping.
        max_rounds: safety bound on improvement passes.
        use_link_distances: weight each cut edge by the routed distance
            between its endpoints' nodes — the route's link-latency sum on a
            heterogeneous link model, the hop count otherwise — so the
            objective prices the physical links a static mapping would
            actually cross instead of the bare remote-gate count.  Default
            ``None`` auto-enables this exactly when the network carries
            non-uniform or latency-weighted entanglement routes.

    Returns:
        An :class:`OEEResult` whose ``mapping`` minimises (locally) the number
        of remote multi-qubit gates — hop-weighted when distance weighting
        is engaged.
    """
    with stage("oee-partition") as span:
        if _use_reference():
            from .oee_reference import oee_partition_reference
            result = oee_partition_reference(
                circuit, network, initial=initial, max_rounds=max_rounds,
                use_link_distances=use_link_distances)
        else:
            result = _oee_partition(circuit, network, initial=initial,
                                    max_rounds=max_rounds,
                                    use_link_distances=use_link_distances)
        _record_oee_span(span, result)
        return result


def _oee_partition(circuit: Circuit, network: QuantumNetwork,
                   initial: Optional[QubitMapping] = None,
                   max_rounds: int = 50,
                   use_link_distances: Optional[bool] = None) -> OEEResult:
    """The vectorized extreme-exchange search behind :func:`oee_partition`."""
    network.validate_capacity(circuit.num_qubits)
    distances = _topology_distances(network, use_link_distances)
    graph = interaction_graph(circuit)
    mapping = initial if initial is not None else block_mapping(circuit.num_qubits, network)
    assignment = mapping.as_dict()
    initial_cut = cut_weight(graph, assignment, node_distances=distances)

    n = circuit.num_qubits
    W = _weight_matrix(graph, n)
    A = np.array([assignment[q] for q in range(n)], dtype=np.int64)
    dist_matrix = (None if distances is None
                   else np.asarray(distances, dtype=np.float64))
    state = _GainState(W, A, network.num_nodes, dist_matrix)

    # Only qubits with at least one interaction can change the cut.
    active = _active_qubits(W)
    active_list = active.tolist()
    num_exchanges = 0
    rounds = 0
    for rounds in range(1, max_rounds + 1):
        improved = False
        for i, qubit_a in enumerate(active_list):
            # Greedy "extreme" step: find the partner with the largest gain
            # among the not-yet-pivoted active qubits.
            best_partner = state.best_partner(qubit_a, active[i + 1:])
            if best_partner is not None:
                state.swap(qubit_a, best_partner)
                num_exchanges += 1
                improved = True
        if not improved:
            break

    assignment = state.as_dict()
    final_cut = cut_weight(graph, assignment, node_distances=distances)
    result_mapping = QubitMapping(assignment, network)
    return OEEResult(result_mapping, initial_cut, final_cut, num_exchanges,
                     rounds)


def migration_distance_matrix(network: QuantumNetwork) -> List[List[float]]:
    """Node-by-node cost of moving one data qubit between nodes.

    On a routed network this is the routing table's
    :meth:`~repro.hardware.routing.RoutingTable.cost_matrix` — the routed
    link-cost of the teleport that would carry the qubit (link-latency sums
    under a heterogeneous link model, hop counts otherwise), in the same
    units the distance-weighted cut objective uses.  Unrouted (all-to-all)
    networks charge one unit per move, matching the unweighted remote-gate
    cut.
    """
    routing = getattr(network, "routing", None)
    if routing is not None:
        return routing.cost_matrix()
    n = network.num_nodes
    return [[0.0 if i == j else 1.0 for j in range(n)] for i in range(n)]


def oee_repartition(circuit: Circuit, network: QuantumNetwork,
                    previous: QubitMapping,
                    max_rounds: int = 50,
                    use_link_distances: Optional[bool] = None,
                    migration_costs: Optional[List[List[float]]] = None
                    ) -> OEEResult:
    """Incrementally re-partition for one program phase, migration-aware.

    The phase-structured pipeline calls this between burst phases: the
    search is *seeded* from the previous phase's mapping and every exchange
    is judged by the phase's cut-weight reduction **minus the migration
    bill** — each qubit that ends up away from its previous node is charged
    the routed distance of the teleport that moves it
    (:func:`migration_distance_matrix`, i.e. ``RoutingTable.cost_matrix``
    on a routed network).  A remap therefore only happens where the
    phase's communication savings beat the cost of physically migrating
    the qubits, and a phase whose traffic already suits the previous
    placement returns it unchanged.

    Args:
        circuit: the gates of one phase (any basis; interaction counts are
            taken from multi-qubit gates directly).
        network: target distributed system.
        previous: the mapping the previous phase executed under (the seed;
            also the reference migration is priced against).
        max_rounds: safety bound on improvement passes.
        use_link_distances: as in :func:`oee_partition` — weight cut edges
            by routed distance (auto-engaged on non-uniform routes).
        migration_costs: override the per-move distance matrix (defaults to
            :func:`migration_distance_matrix`).

    Returns:
        An :class:`OEEResult` whose ``mapping`` locally minimises
        ``phase cut weight + migration cost``; ``migration_moves`` and
        ``migration_cost`` report the moves relative to ``previous``.
    """
    with stage("oee-repartition") as span:
        if _use_reference():
            from .oee_reference import oee_repartition_reference
            result = oee_repartition_reference(
                circuit, network, previous, max_rounds=max_rounds,
                use_link_distances=use_link_distances,
                migration_costs=migration_costs)
        else:
            result = _oee_repartition(circuit, network, previous,
                                      max_rounds=max_rounds,
                                      use_link_distances=use_link_distances,
                                      migration_costs=migration_costs)
        _record_oee_span(span, result)
        return result


def _oee_repartition(circuit: Circuit, network: QuantumNetwork,
                     previous: QubitMapping,
                     max_rounds: int = 50,
                     use_link_distances: Optional[bool] = None,
                     migration_costs: Optional[List[List[float]]] = None
                     ) -> OEEResult:
    """The vectorized migration-aware search behind :func:`oee_repartition`."""
    network.validate_capacity(circuit.num_qubits)
    if previous.num_qubits != circuit.num_qubits:
        raise ValueError("previous mapping and circuit disagree on qubit count")
    distances = _topology_distances(network, use_link_distances)
    migration = (migration_costs if migration_costs is not None
                 else migration_distance_matrix(network))
    graph = interaction_graph(circuit)
    home = previous.as_dict()
    assignment = dict(home)
    initial_cut = cut_weight(graph, assignment, node_distances=distances)

    n = circuit.num_qubits
    W = _weight_matrix(graph, n)
    A = np.array([assignment[q] for q in range(n)], dtype=np.int64)
    home_arr = np.array([home[q] for q in range(n)], dtype=np.int64)
    dist_matrix = (None if distances is None
                   else np.asarray(distances, dtype=np.float64))
    state = _GainState(W, A, network.num_nodes, dist_matrix,
                       home=home_arr,
                       migration=np.asarray(migration, dtype=np.float64))

    # Only qubits interacting in this phase can *earn* a move, but any
    # qubit may serve as the displaced swap partner (exchanges preserve
    # per-node load, so capacity is maintained by construction).
    active_list = _active_qubits(W).tolist()
    all_qubits = np.arange(n)
    num_exchanges = 0
    rounds = 0
    for rounds in range(1, max_rounds + 1):
        improved = False
        for qubit_a in active_list:
            best_partner = state.best_partner(qubit_a, all_qubits)
            if best_partner is not None:
                state.swap(qubit_a, best_partner)
                num_exchanges += 1
                improved = True
        if not improved:
            break

    assignment = state.as_dict()
    final_cut = cut_weight(graph, assignment, node_distances=distances)
    moves = [q for q in range(n) if assignment[q] != home[q]]
    total_migration = sum(migration[home[q]][assignment[q]] for q in moves)
    return OEEResult(QubitMapping(assignment, network), initial_cut,
                     final_cut, num_exchanges, rounds,
                     migration_moves=len(moves),
                     migration_cost=total_migration)
