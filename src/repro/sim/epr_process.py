"""Stochastic EPR-pair generation.

Real remote-entanglement hardware is heralded: each generation attempt
succeeds only with some probability ``p`` and is retried until it succeeds,
so the preparation time of one EPR pair is a geometrically distributed
number of attempts.  The analytical scheduler abstracts this into the fixed
``t_epr`` of :class:`~repro.hardware.timing.LatencyModel`; the execution
simulator samples the attempt process explicitly:

* the *success attempt* always costs the deterministic pair latency
  (``QuantumNetwork.epr_latency``, which reflects topology overrides);
* each *failed attempt* costs ``retry_latency`` (defaulting to the same pair
  latency), modelling heralding + reset before the next try.

With ``p_success = 1.0`` the process degenerates to exactly the analytical
preparation latency, consuming no randomness — the deterministic mode the
schedule validator relies on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from ..hardware.network import QuantumNetwork

__all__ = ["EPRSample", "EPRProcess"]


@dataclass(frozen=True)
class EPRSample:
    """Outcome of generating the EPR pair(s) for one communication."""

    attempts: int
    duration: float


class EPRProcess:
    """Samples EPR-pair generation times on a network's links."""

    def __init__(self, network: QuantumNetwork, p_success: float = 1.0,
                 retry_latency: Optional[float] = None,
                 max_attempts: int = 100_000) -> None:
        if not 0.0 < p_success <= 1.0:
            raise ValueError(f"p_success must be in (0, 1], got {p_success}")
        if retry_latency is not None and retry_latency <= 0:
            raise ValueError("retry_latency must be positive")
        self.network = network
        self.p_success = p_success
        self.retry_latency = retry_latency
        self.max_attempts = max_attempts

    @property
    def deterministic(self) -> bool:
        return self.p_success >= 1.0

    # ---------------------------------------------------------------- queries

    def pair_latency(self, node_a: int, node_b: int) -> float:
        """Deterministic generation latency of one successful attempt."""
        return self.network.epr_latency(node_a, node_b)

    def attempt_latency(self, node_a: int, node_b: int) -> float:
        """Cost of one failed attempt on the pair's link."""
        if self.retry_latency is not None:
            return self.retry_latency
        return self.pair_latency(node_a, node_b)

    def mean_generation_time(self, node_a: int, node_b: int) -> float:
        """Expected preparation time: success cost plus expected retries."""
        p = self.p_success
        return (self.pair_latency(node_a, node_b)
                + self.attempt_latency(node_a, node_b) * (1.0 - p) / p)

    def expected_prep(self, nodes: Sequence[int]) -> float:
        """The deterministic preparation the analytical scheduler charges.

        A communication spanning several nodes (a fused TP chain) is charged
        its slowest pair, mirroring the scheduler's accounting.
        """
        nodes = list(nodes)
        if len(nodes) < 2:
            return self.network.latency.t_epr
        return max(self.pair_latency(a, b)
                   for i, a in enumerate(nodes) for b in nodes[i + 1:])

    # --------------------------------------------------------------- sampling

    def sample_pair(self, rng: random.Random, node_a: int,
                    node_b: int) -> EPRSample:
        """Sample the generation of one EPR pair between two nodes."""
        success = self.pair_latency(node_a, node_b)
        if self.deterministic:
            return EPRSample(attempts=1, duration=success)
        attempts = 1
        while rng.random() >= self.p_success:
            attempts += 1
            if attempts > self.max_attempts:  # pragma: no cover - defensive
                raise RuntimeError(
                    f"EPR generation exceeded {self.max_attempts} attempts "
                    f"(p_success={self.p_success})")
        retries = (attempts - 1) * self.attempt_latency(node_a, node_b)
        return EPRSample(attempts=attempts, duration=retries + success)

    def sample(self, rng: random.Random, nodes: Sequence[int]) -> EPRSample:
        """Sample the preparation for a communication spanning ``nodes``.

        All pairs generate concurrently, so the communication waits for the
        slowest pair; with ``p_success = 1`` this equals
        :meth:`expected_prep` exactly.
        """
        nodes = list(nodes)
        if len(nodes) < 2:
            return EPRSample(attempts=1, duration=self.network.latency.t_epr)
        attempts = 0
        duration = 0.0
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                pair = self.sample_pair(rng, a, b)
                attempts += pair.attempts
                duration = max(duration, pair.duration)
        return EPRSample(attempts=attempts, duration=duration)
