"""Discrete-event execution simulation of compiled distributed programs.

While :mod:`repro.core.scheduling` *estimates* program latency analytically,
this subsystem *executes* a :class:`~repro.core.pipeline.CompiledProgram` on
the modelled hardware:

* :mod:`repro.sim.engine` — the event queue and execution engine, plus the
  Monte-Carlo driver;
* :mod:`repro.sim.epr_process` — stochastic EPR-pair generation with a
  configurable per-attempt success probability and retry latency;
* :mod:`repro.sim.trace` — timestamped execution traces, per-link occupancy
  and latency-distribution statistics;
* :mod:`repro.sim.validate` — asserts that deterministic simulation
  (``p_epr = 1.0``) reproduces the analytical schedule exactly.

Quick start::

    from repro import compile_autocomm
    from repro.circuits import qft_circuit
    from repro.hardware import uniform_network
    from repro.sim import SimulationConfig, run_monte_carlo, validate_schedule

    program = compile_autocomm(qft_circuit(20), uniform_network(4, 5))
    print(validate_schedule(program).describe())          # deterministic check
    mc = run_monte_carlo(program, SimulationConfig(p_epr=0.5, trials=50, seed=7))
    print(mc.summary())                                   # latency distribution
"""

from .engine import (
    ExecutionEngine,
    MonteCarloResult,
    SimulatedOp,
    SimulationConfig,
    SimulationResult,
    mapping_for_program,
    plan_for_program,
    run_monte_carlo,
    simulate_program,
)
from .epr_process import EPRProcess, EPRSample
from .trace import LatencyDistribution, TraceEvent, TraceRecorder
from .validate import ValidationReport, validate_schedule

__all__ = [
    "ExecutionEngine",
    "MonteCarloResult",
    "SimulatedOp",
    "SimulationConfig",
    "SimulationResult",
    "run_monte_carlo",
    "simulate_program",
    "plan_for_program",
    "mapping_for_program",
    "EPRProcess",
    "EPRSample",
    "LatencyDistribution",
    "TraceEvent",
    "TraceRecorder",
    "ValidationReport",
    "validate_schedule",
]
