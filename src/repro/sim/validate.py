"""Cross-validation of analytical schedules against deterministic execution.

:func:`validate_schedule` replays a compiled program's schedule through the
discrete-event engine with ``p_epr = 1.0`` and *ideal links* (link
capacities and per-link success probabilities ignored, per-link latencies
kept — exactly the analytical scheduler's assumptions) and compares the
resulting timing against the analytical
:class:`~repro.core.scheduling.ScheduleResult`:
the program latency, the per-op completion times and the number of covered
assignment items must all agree.  Any disagreement means the analytical
latency model and the executable semantics have drifted apart — the class of
bug this module exists to catch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.pipeline import CompiledProgram
from .engine import SimulationConfig, SimulationResult, simulate_program

__all__ = ["ValidationReport", "validate_schedule"]


@dataclass(frozen=True)
class ValidationReport:
    """Comparison of one analytical schedule with its deterministic replay."""

    name: str
    analytical_latency: float
    simulated_latency: float
    max_op_end_delta: float
    num_ops_analytical: int
    num_ops_simulated: int
    items_covered_analytical: int
    items_covered_simulated: int
    tolerance: float

    @property
    def latency_delta(self) -> float:
        return abs(self.simulated_latency - self.analytical_latency)

    @property
    def matches(self) -> bool:
        return (self.latency_delta <= self.tolerance
                and self.max_op_end_delta <= self.tolerance
                and self.num_ops_analytical == self.num_ops_simulated
                and self.items_covered_analytical == self.items_covered_simulated)

    def describe(self) -> str:
        status = "OK" if self.matches else "MISMATCH"
        return (f"{status}: {self.name} analytical={self.analytical_latency:.2f} "
                f"simulated={self.simulated_latency:.2f} "
                f"(max op delta {self.max_op_end_delta:.2e}, "
                f"{self.num_ops_simulated} ops)")


def validate_schedule(program: CompiledProgram, tolerance: float = 1e-6,
                      result: Optional[SimulationResult] = None) -> ValidationReport:
    """Replay ``program``'s schedule deterministically and compare timings.

    Args:
        program: a compiled program carrying ``assignment`` and ``schedule``.
        tolerance: maximum absolute timing disagreement accepted as a match.
        result: an existing deterministic simulation to compare (one is run
            when omitted).
    """
    if program.schedule is None:
        raise ValueError(f"program {program.name!r} has no schedule to validate")
    if result is None:
        result = simulate_program(program, SimulationConfig(p_epr=1.0,
                                                            ideal_links=True))

    analytical_ends: Dict[int, float] = {op.index: op.end
                                         for op in program.schedule.ops}
    simulated_ends: Dict[int, float] = {op.index: op.end for op in result.ops}
    max_delta = 0.0
    for index, end in analytical_ends.items():
        other = simulated_ends.get(index)
        if other is None:
            max_delta = float("inf")
            break
        max_delta = max(max_delta, abs(end - other))

    return ValidationReport(
        name=program.name,
        analytical_latency=program.schedule.latency,
        simulated_latency=result.latency,
        max_op_end_delta=max_delta,
        num_ops_analytical=len(program.schedule.ops),
        num_ops_simulated=len(result.ops),
        items_covered_analytical=program.schedule.num_scheduled_items(),
        items_covered_simulated=result.num_scheduled_items(),
        tolerance=tolerance,
    )
