"""Execution traces and latency statistics.

The engine emits a stream of timestamped :class:`TraceEvent` records — EPR
generation start/ready, qubit teleportations, classical correction messages,
operation start/end — which :class:`TraceRecorder` collects together with
per-link busy windows.  :class:`LatencyDistribution` summarises the program
latencies of a seeded Monte-Carlo run.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["TraceEvent", "TraceRecorder", "LatencyDistribution"]


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped event of a simulated execution."""

    time: float
    kind: str                    # "epr-start", "epr-ready", "teleport",
                                 # "classical-msg", "op-start", "op-end", ...
    index: int = -1              # schedulable item index, -1 for global events
    nodes: Tuple[int, ...] = ()
    detail: str = ""


class TraceRecorder:
    """Collects trace events and per-link occupancy during one simulation."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.events: List[TraceEvent] = []
        # Busy windows of EPR generation per unordered node pair.
        self.link_busy: Dict[Tuple[int, int], List[Tuple[float, float]]] = {}

    def record(self, time: float, kind: str, index: int = -1,
               nodes: Sequence[int] = (), detail: str = "") -> None:
        if not self.enabled:
            return
        self.events.append(TraceEvent(time=time, kind=kind, index=index,
                                      nodes=tuple(nodes), detail=detail))

    def record_link(self, node_a: int, node_b: int, start: float,
                    end: float) -> None:
        if not self.enabled:
            return
        key = (node_a, node_b) if node_a < node_b else (node_b, node_a)
        self.link_busy.setdefault(key, []).append((start, end))

    # ---------------------------------------------------------------- queries

    def timeline(self) -> List[TraceEvent]:
        """All events in time order (stable for equal timestamps)."""
        return sorted(self.events, key=lambda e: e.time)

    def events_of(self, kind: str) -> List[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    def num_events(self) -> int:
        return len(self.events)

    def link_utilisation(self, horizon: float) -> Dict[Tuple[int, int], float]:
        """Fraction of time each link spent generating EPR pairs.

        Degenerate horizons — zero, negative or non-finite, as produced by
        an empty program's zero makespan — yield zero utilisation for every
        recorded link instead of dividing by them.
        """
        if not math.isfinite(horizon) or horizon <= 0:
            return {pair: 0.0 for pair in self.link_busy}
        return {pair: sum(e - s for (s, e) in windows) / horizon
                for pair, windows in self.link_busy.items()}

    def event_dicts(self) -> List[Dict[str, object]]:
        """Timeline as JSON-ready dicts (one per event, time order)."""
        return [{"time": event.time, "kind": event.kind, "index": event.index,
                 "nodes": list(event.nodes), "detail": event.detail}
                for event in self.timeline()]

    def write_jsonl(self, path) -> int:
        """Write the timeline as JSON Lines; returns the event count.

        One JSON object per line (``time``/``kind``/``index``/``nodes``/
        ``detail``), consumable with ``jq`` or a line-by-line reader without
        loading the whole trace.  Used by ``repro.cli simulate --trace-out``.
        """
        events = self.event_dicts()
        with open(path, "w") as handle:
            for event in events:
                handle.write(json.dumps(event) + "\n")
        return len(events)

    def render(self, limit: Optional[int] = None) -> str:
        """Human-readable event log (used by the CLI's ``--trace`` flag)."""
        lines = []
        events = self.timeline()
        shown = events if limit is None else events[:limit]
        for event in shown:
            nodes = ",".join(str(n) for n in event.nodes)
            where = f" nodes={nodes}" if nodes else ""
            which = f" op={event.index}" if event.index >= 0 else ""
            detail = f" {event.detail}" if event.detail else ""
            lines.append(f"t={event.time:10.2f}  {event.kind:<13}{which}{where}{detail}")
        if limit is not None and len(events) > limit:
            lines.append(f"... {len(events) - limit} more events")
        return "\n".join(lines)


class LatencyDistribution:
    """Summary statistics over the latencies of a Monte-Carlo run."""

    def __init__(self, latencies: Sequence[float]) -> None:
        if not latencies:
            raise ValueError("a latency distribution needs at least one sample")
        self.latencies = sorted(float(x) for x in latencies)

    def __len__(self) -> int:
        return len(self.latencies)

    @property
    def mean(self) -> float:
        return sum(self.latencies) / len(self.latencies)

    @property
    def std(self) -> float:
        mean = self.mean
        return math.sqrt(sum((x - mean) ** 2 for x in self.latencies)
                         / len(self.latencies))

    @property
    def minimum(self) -> float:
        return self.latencies[0]

    @property
    def maximum(self) -> float:
        return self.latencies[-1]

    def percentile(self, q: float) -> float:
        """Linearly interpolated percentile, ``q`` in [0, 100]."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if len(self.latencies) == 1:
            return self.latencies[0]
        position = (len(self.latencies) - 1) * q / 100.0
        low = int(position)
        high = min(low + 1, len(self.latencies) - 1)
        fraction = position - low
        return self.latencies[low] * (1 - fraction) + self.latencies[high] * fraction

    def histogram(self, bins: int = 10) -> List[Tuple[float, float, int]]:
        """(low, high, count) triples covering [minimum, maximum]."""
        if bins <= 0:
            raise ValueError("bins must be positive")
        low, high = self.minimum, self.maximum
        if high <= low:
            return [(low, high, len(self.latencies))]
        width = (high - low) / bins
        counts = [0] * bins
        for value in self.latencies:
            slot = min(int((value - low) / width), bins - 1)
            counts[slot] += 1
        return [(low + i * width, low + (i + 1) * width, counts[i])
                for i in range(bins)]

    def summary(self) -> Dict[str, float]:
        return {
            "trials": float(len(self.latencies)),
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "max": self.maximum,
        }
