"""Discrete-event execution engine for compiled distributed programs.

The engine *executes* a compiled program's schedule plan on the modelled
hardware instead of estimating its latency analytically: an event queue
advances gate, EPR-generation, teleportation and classical-message events;
communication qubits are occupied through the same
:class:`~repro.hardware.epr.CommResourceTracker` the analytical scheduler
uses, and EPR pairs are produced by a (possibly stochastic)
:class:`~repro.sim.epr_process.EPRProcess`.

Two properties anchor the design:

* **Deterministic equivalence** — with ``p_epr = 1.0`` the engine replays
  the exact plan (:func:`repro.core.scheduling.plan_schedule`) the
  analytical scheduler used, makes placement decisions in the same
  ``(ready time, item index)`` order and books identical resource windows,
  so the simulated program latency equals the analytical
  :class:`~repro.core.scheduling.ScheduleResult` latency bit-for-bit.  The
  validator in :mod:`repro.sim.validate` asserts this.
* **Seeded stochasticity** — with ``p_epr < 1`` every EPR preparation is a
  sampled retry process; a Monte-Carlo run over ``trials`` seeded trials
  yields a reproducible latency distribution.

EPR preparation is requested ahead of an item's data-readiness whenever a
communication qubit is free early (the analytical scheduler's pipelining
assumption); each trial therefore realises one feasible timed execution of
the program under the sampled EPR durations.
"""

from __future__ import annotations

import heapq
import random
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.pipeline import CompiledProgram
from ..core.scheduling import SchedulePlan, plan_phased_schedule, plan_schedule
from ..hardware.epr import CommResourceTracker, SlotSchedule
from ..hardware.network import QuantumNetwork
from ..obs.metrics import MetricsRegistry
from .epr_process import EPRProcess
from .trace import LatencyDistribution, TraceRecorder

__all__ = ["SimulationConfig", "SimulatedOp", "SimulationResult",
           "MonteCarloResult", "ExecutionEngine", "simulate_program",
           "run_monte_carlo", "plan_for_program", "mapping_for_program"]

#: Event-queue ordering: finishing operations release dependencies before
#: ready items placed at the same instant make resource decisions.
_FINISH, _READY = 0, 1


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs of one simulation run."""

    #: Success probability of one EPR generation attempt (1.0 = deterministic).
    p_epr: float = 1.0
    #: Latency of one failed attempt; defaults to the pair's EPR latency.
    retry_latency: Optional[float] = None
    #: Master seed for stochastic runs.
    seed: Optional[int] = None
    #: Monte-Carlo trials for :func:`run_monte_carlo`.
    trials: int = 1
    #: Uniform fallback for concurrent EPR generations per link (None =
    #: unlimited, the analytical model's assumption; node comm qubits still
    #: constrain).  Semantically a default-only link capacity: a link whose
    #: :class:`~repro.hardware.links.LinkModel` spec carries its own
    #: capacity uses that (see ``ExecutionEngine._effective_capacity``),
    #: and combining this knob with a capacity-bearing link model is
    #: rejected as ambiguous.
    link_capacity: Optional[int] = None
    #: Ignore link capacities and per-link success probabilities (per-link
    #: *latencies* are kept — the analytical model includes them).  This is
    #: the analytical scheduler's idealisation; the schedule validator turns
    #: it on so deterministic replay checks the latency model and nothing
    #: else.
    ideal_links: bool = False
    #: Record the fine-grained event trace (disable for large sweeps).
    record_trace: bool = True
    #: Fill a :class:`~repro.obs.metrics.MetricsRegistry` with queue waits,
    #: per-link EPR generation/retry counts, migration stalls and comm-qubit
    #: occupancy.  Observation only: latencies and Monte-Carlo streams are
    #: bit-identical with this on or off.
    record_metrics: bool = True
    #: Pre-sample EPR attempt counts in vectorised batches (bitwise-identical
    #: to the per-attempt loop on the same seed; disable to A/B-test).
    batch_epr: bool = True
    #: Worker processes for :func:`run_monte_carlo`.  Each trial's stream is
    #: seeded independently from the master generator, so any worker count
    #: returns identical latencies, attempts and merged metrics; ``1``
    #: (default) runs in-process and never touches a pool.
    workers: int = 1


@dataclass(frozen=True)
class SimulatedOp:
    """One executed operation with its simulated time windows."""

    index: int
    kind: str                    # "gate", "cat", "tp", "tp-chain"
    start: float                 # protocol start (EPR ready, data ready)
    end: float
    nodes: Tuple[int, ...] = ()
    prep_start: float = 0.0      # EPR generation start (= start for gates)
    epr_attempts: int = 0
    num_items: int = 1
    #: Physical EPR pairs consumed (swaps included on routed topologies).
    epr_pairs: int = 0
    #: Wait beyond the earliest feasible start (comm-qubit / link
    #: contention); 0 for gates.
    queue_wait: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class SimulationResult:
    """Outcome of executing one program once."""

    ops: List[SimulatedOp]
    latency: float
    trace: TraceRecorder
    resources: CommResourceTracker
    mode: str
    seed: Optional[int] = None
    total_epr_attempts: int = 0
    #: Physical EPR pairs the execution actually generated, entanglement
    #: swaps included.  Lower than the compiler's per-block
    #: ``CompilationMetrics.total_epr_pairs`` when TP chains were fused
    #: (k+1 teleports instead of 2k) — this counts the itinerary really
    #: flown, the metric counts the paper's per-block convention.
    total_epr_pairs: int = 0
    #: Registry the engine filled during this run (shared across trials in
    #: a Monte-Carlo run); disabled when ``record_metrics`` was off.
    metrics: Optional[MetricsRegistry] = None

    def comm_ops(self) -> List[SimulatedOp]:
        return [op for op in self.ops if op.kind != "gate"]

    def num_scheduled_items(self) -> int:
        return sum(op.num_items for op in self.ops)

    def node_utilisation(self) -> Dict[int, float]:
        """Busy fraction of each node's communication qubits."""
        return {node.index: self.resources.utilisation(node.index,
                                                       horizon=self.latency)
                for node in self.resources.network}

    def link_utilisation(self) -> Dict[Tuple[int, int], float]:
        """Fraction of time each link spent generating EPR pairs."""
        return self.trace.link_utilisation(self.latency)


@dataclass
class MonteCarloResult:
    """Seeded latency distribution over repeated stochastic executions."""

    #: The run's configuration with the **master** seed — the one integer
    #: the whole distribution reproduces from — not any trial's derived
    #: seed.  Per-trial seeds live in ``trial_seeds`` (and each trial's
    #: ``SimulationResult.seed``), so any single trial can be replayed
    #: through :func:`simulate_program` with ``replace(config, seed=...)``.
    config: SimulationConfig
    latencies: List[float]
    trial_seeds: List[int]
    epr_attempts: List[int]
    analytical_latency: Optional[float] = None
    #: Full result of the first trial (with trace) for inspection/rendering.
    sample_trial: Optional[SimulationResult] = None
    #: One registry aggregated over every trial (all engines wrote into it).
    metrics: Optional[MetricsRegistry] = None

    @property
    def distribution(self) -> LatencyDistribution:
        return LatencyDistribution(self.latencies)

    def summary(self) -> Dict[str, float]:
        data = self.distribution.summary()
        data["mean_epr_attempts"] = (sum(self.epr_attempts)
                                     / max(1, len(self.epr_attempts)))
        if self.analytical_latency is not None:
            data["analytical"] = self.analytical_latency
            data["slowdown"] = (data["mean"] / self.analytical_latency
                                if self.analytical_latency > 0 else 1.0)
        return data


class ExecutionEngine:
    """Executes one schedule plan on the modelled hardware."""

    def __init__(self, plan: SchedulePlan, network: QuantumNetwork,
                 mapping, config: Optional[SimulationConfig] = None,
                 rng: Optional[random.Random] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.plan = plan
        self.network = network
        self.mapping = mapping
        self.config = config or SimulationConfig()
        engine_owns_rng = rng is None
        self.rng = rng if rng is not None else random.Random(self.config.seed)
        self.latency = network.latency
        #: Trial-invariant (kind, duration, nodes, item-count) per plan unit,
        #: cached on the plan and therefore shared across Monte-Carlo trials.
        self._profiles = plan.op_profiles(mapping, network.latency)
        link_model = network.link_model
        if (self.config.link_capacity is not None and link_model is not None
                and link_model.has_capacities):
            raise ValueError(
                "ambiguous link capacities: the network's link model "
                "already defines per-link capacities; drop the global "
                "link_capacity (--link-capacity) or the capacities in the "
                "link spec")
        #: Whether any link bounds concurrent EPR generations this run.
        self._capacity_constrained = not self.config.ideal_links and (
            self.config.link_capacity is not None
            or (link_model is not None and link_model.has_capacities))
        per_link = network.heterogeneous_links and not self.config.ideal_links
        #: Memoised physical-link expansion per op pair-list (plan units
        #: repeat pair lists across Monte-Carlo events).
        self._route_cache: Dict[Tuple[Tuple[int, int], ...],
                                Tuple[Tuple[Tuple[Tuple[int, int], int], ...],
                                      int]] = {}
        self.epr = EPRProcess(network, p_success=self.config.p_epr,
                              retry_latency=self.config.retry_latency,
                              per_link=per_link)
        # Batched pre-sampling serves the draws from a numpy clone of the
        # generator without advancing the Python object, so it is only
        # enabled for the engine's own private generator — a caller-supplied
        # rng must observe the usual stream consumption.  It also pays a
        # fixed setup cost (~tens of us), so below a few hundred expected
        # draws the C-backed rejection loop is kept instead.  A link model
        # with its own success probabilities mixes per-link draw
        # probabilities, which the fixed-p batched stream cannot serve, so
        # batching stays off there.
        links_deterministic = link_model is None or link_model.deterministic
        if (self.config.batch_epr and self.config.p_epr < 1.0
                and engine_owns_rng
                and (not per_link or links_deterministic)):
            if per_link:
                # One attempt process per physical link of every route.
                pair_draws = sum(
                    self._physical_links(profile.prep_pairs)[1]
                    for profile in self._profiles if profile.prep_pairs)
            else:
                pair_draws = sum(len(profile.prep_pairs)
                                 for profile in self._profiles)
            expected_draws = int(pair_draws / self.config.p_epr)
            if expected_draws >= 512:
                self.epr.use_batched_sampling(self.rng,
                                              expected_draws=expected_draws,
                                              seed=self.config.seed)
        self.resources = CommResourceTracker(network)
        self.trace = TraceRecorder(enabled=self.config.record_trace)
        #: Caller-shared registry (Monte-Carlo aggregation), or this run's own.
        self.metrics = (metrics if metrics is not None
                        else MetricsRegistry(enabled=self.config.record_metrics))
        self._links: Dict[Tuple[int, int], SlotSchedule] = {}

    # ------------------------------------------------------------- event loop

    def run(self) -> SimulationResult:
        """Advance the event queue until every item has executed."""
        items = self.plan.items
        succs = self.plan.successors()
        indegree = [len(p) for p in self.plan.preds]
        ready_time = [0.0] * len(items)
        executed: List[Optional[SimulatedOp]] = [None] * len(items)

        queue: List[Tuple[float, int, int]] = []
        for index, degree in enumerate(indegree):
            if degree == 0:
                heapq.heappush(queue, (0.0, _READY, index))

        completed = 0
        while queue:
            time, phase, index = heapq.heappop(queue)
            if phase == _READY:
                op = self._execute_item(index, time)
                executed[index] = op
                completed += 1
                heapq.heappush(queue, (op.end, _FINISH, index))
            else:  # _FINISH: release successors of the completed item
                end = executed[index].end
                for succ in succs[index]:
                    ready_time[succ] = max(ready_time[succ], end)
                    indegree[succ] -= 1
                    if indegree[succ] == 0:
                        heapq.heappush(queue,
                                       (ready_time[succ], _READY, succ))

        if completed != len(items):  # pragma: no cover - defensive
            raise RuntimeError("dependency cycle in simulated program")

        ops = [op for op in executed if op is not None]
        makespan = max((op.end for op in ops), default=0.0)
        total_attempts = sum(op.epr_attempts for op in ops)
        metrics = self.metrics
        if metrics.enabled:
            self._flush_metrics(ops, makespan, total_attempts)
        return SimulationResult(
            ops=ops, latency=makespan, trace=self.trace,
            resources=self.resources, mode=self.plan.mode,
            seed=self.config.seed,
            total_epr_attempts=total_attempts,
            total_epr_pairs=sum(op.epr_pairs for op in ops),
            metrics=metrics)

    # ------------------------------------------------------------- metrics

    def _flush_metrics(self, ops: List[SimulatedOp], makespan: float,
                       total_attempts: int) -> None:
        """Fold this run's executed ops into the registry, once per run.

        Everything the metrics need is already in the :class:`SimulatedOp`
        records, the trial-invariant profiles and the memoised route cache,
        so the per-op execution path carries no metrics code at all —
        registry lookups build sorted label keys and instrument calls are
        attribute dispatches, which is too slow per executed op (the
        overhead benchmark holds the instrumented engine within a few
        percent of the stripped one).  Instrument handles are memoised on
        the registry itself, so across a shared-registry Monte-Carlo run
        only the first trial pays the labelled-lookup cost.  Node occupancy
        is rebuilt from the op records (each comm op reserves one slot per
        endpoint for its whole window), which spares the per-run
        interval-list rescan of ``CommResourceTracker.utilisation``.
        """
        metrics = self.metrics
        handles = metrics.handles
        fixed = handles.get("sim")
        if fixed is None:
            fixed = handles["sim"] = (
                metrics.counter("sim.trials"),
                metrics.histogram("sim.latency"),
                metrics.histogram("sim.epr_attempts"),
                metrics.counter("epr.attempts"),
                metrics.counter("epr.retries"))
        trials, latency, attempts_hist, attempts, retries = fixed
        trials.inc()
        latency.observe(makespan)
        attempts_hist.observe(total_attempts)

        acc_attempts = 0
        acc_retries = 0
        waits_by_kind: Dict[str, List[float]] = {}
        stalls: List[float] = []
        node_busy: Dict[int, float] = {}
        link_totals: Dict[Tuple[int, int], List[float]] = {}
        profiles = self._profiles
        route_cache = self._route_cache
        per_link_stochastic = self.epr.per_link and not self.epr.deterministic
        for op in ops:
            kind = op.kind
            if kind == "gate":
                continue
            wait = op.queue_wait
            kind_waits = waits_by_kind.get(kind)
            if kind_waits is None:
                kind_waits = waits_by_kind[kind] = []
            kind_waits.append(wait)
            if kind == "migration":
                stalls.append(wait)
            prep_pairs = profiles[op.index].prep_pairs
            acc_attempts += op.epr_attempts
            acc_retries += op.epr_attempts - ((op.epr_pairs
                                               if per_link_stochastic
                                               else len(prep_pairs)) or 1)
            prep_start = op.prep_start
            window = op.end - prep_start
            for node in op.nodes:
                node_busy[node] = node_busy.get(node, 0.0) + window
            busy = op.start - prep_start
            # Always a hit: _execute_comm resolved this op's routes already.
            for pair, count in route_cache[prep_pairs][0]:
                totals = link_totals.get(pair)
                if totals is None:
                    totals = link_totals[pair] = [0, 0.0]
                totals[0] += count
                totals[1] += busy
        attempts.inc(acc_attempts)
        retries.inc(acc_retries)

        if makespan > 0:
            occ_handles = handles.get("occ")
            if occ_handles is None:
                occ_handles = handles["occ"] = {}
            for node in self.network:
                index = node.index
                occupancy = occ_handles.get(index)
                if occupancy is None:
                    occupancy = occ_handles[index] = (
                        metrics.histogram("node.comm_occupancy", node=index),
                        node.num_comm_qubits)
                occupancy[0].observe(
                    node_busy.get(index, 0.0) / (makespan * occupancy[1]))
        wait_handles = handles.get("qw")
        if wait_handles is None:
            wait_handles = handles["qw"] = {}
        for kind, kind_waits in waits_by_kind.items():
            queue_wait = wait_handles.get(kind)
            if queue_wait is None:
                queue_wait = wait_handles[kind] = metrics.histogram(
                    "comm.queue_wait", kind=kind)
            queue_wait.values.extend(kind_waits)
        if stalls:
            metrics.histogram("migration.stall").values.extend(stalls)
        pair_handles = handles.get("links")
        if pair_handles is None:
            pair_handles = handles["links"] = {}
        for pair, (generations, busy) in link_totals.items():
            link_handles = pair_handles.get(pair)
            if link_handles is None:
                link = f"{pair[0]}-{pair[1]}"
                link_handles = pair_handles[pair] = (
                    metrics.counter("link.epr_generations", link=link),
                    metrics.counter("link.busy_time", link=link))
            link_handles[0].inc(generations)
            link_handles[1].inc(busy)

    # ------------------------------------------------------------- execution

    def _execute_item(self, index: int, ready: float) -> SimulatedOp:
        profile = self._profiles[index]
        if profile.kind == "gate":
            end = ready + profile.duration
            return SimulatedOp(index=index, kind="gate", start=ready, end=end,
                               prep_start=ready)
        return self._execute_comm(index, self.plan.items[index], ready,
                                  profile, kind=profile.kind)

    def _execute_comm(self, index, item, ready: float, profile,
                      kind: str) -> SimulatedOp:
        nodes = tuple(profile.nodes)
        duration = profile.duration
        # One EPR generation per consumed pair: the block's hub<->remote
        # link, or the consecutive hops of a fused chain's teleport
        # itinerary — NOT the all-pairs closure of the chain's node set,
        # which would sample (and book) links the itinerary never uses.
        sample = self.epr.sample_pairs(self.rng, profile.prep_pairs)
        links, num_physical = self._physical_links(profile.prep_pairs)
        # When one physical link must host more concurrent generations than
        # it has capacity slots (a fused chain whose routed hops revisit a
        # link), the excess generations serialise into batches, stretching
        # the preparation window accordingly.  Each link batches against its
        # *own* capacity (link-model spec, or the uniform fallback).
        batches = 1
        if self._capacity_constrained and links:
            for (a, b), count in links:
                capacity = self._effective_capacity(a, b)
                if capacity is not None:
                    batches = max(batches, -(-count // capacity))
        prep = sample.duration * batches
        total = prep + duration

        # EPR generation is data-independent, so its request is back-dated to
        # pipeline with predecessor computation whenever comm qubits (and,
        # if constrained, the links) were free early.
        not_before = max(0.0, ready - prep)
        prep_start = self._find_window(nodes, links, total, prep, not_before)
        start = prep_start + prep
        end = start + duration

        label = f"{kind}-{index}"
        for node in nodes:
            self.resources.reserve(node, prep_start, end, label=label)
        for (a, b), count in links:
            self.trace.record_link(a, b, prep_start, start)
            if self._capacity_constrained:
                capacity = self._effective_capacity(a, b)
                if capacity is not None:
                    schedule = self._link_schedule(a, b, capacity)
                    for _ in range(min(count, capacity)):
                        schedule.book(prep_start, start)

        self._record_comm_trace(index, item, kind, nodes, prep_start, start,
                                end, sample.attempts)
        return SimulatedOp(index=index, kind=kind, start=start, end=end,
                           nodes=nodes, prep_start=prep_start,
                           epr_attempts=sample.attempts,
                           num_items=self.plan.item_count(index),
                           epr_pairs=num_physical,
                           queue_wait=prep_start - not_before)

    def _physical_links(self, prep_pairs: Sequence[Tuple[int, int]]
                        ) -> Tuple[Tuple[Tuple[Tuple[int, int], int], ...], int]:
        """Expand consumed pairs into ((link, multiplicity), ...) plus a total.

        Each end-to-end pair occupies every physical link of its
        entanglement route during generation (swapping splices the per-link
        pairs); two pairs riding the same link need two capacity slots.
        """
        cached = self._route_cache.get(prep_pairs)
        if cached is None:
            multiplicity: Dict[Tuple[int, int], int] = {}
            for a, b in prep_pairs:
                for link in self.network.route_links(a, b):
                    multiplicity[link] = multiplicity.get(link, 0) + 1
            cached = (tuple(sorted(multiplicity.items())),
                      sum(multiplicity.values()))
            self._route_cache[prep_pairs] = cached
        return cached

    def _effective_capacity(self, node_a: int, node_b: int) -> Optional[int]:
        """Concurrent-generation bound of one link for this run.

        The link model's own capacity wins; links it leaves unbounded fall
        back to the uniform ``link_capacity`` knob (the deprecated global
        flag, mapped onto a default for every link).  ``None`` = unlimited.
        """
        if self.config.ideal_links:
            return None
        capacity = self.network.link_capacity(node_a, node_b)
        if capacity is not None:
            return capacity
        return self.config.link_capacity

    def _find_window(self, nodes: Sequence[int],
                     links: Sequence[Tuple[Tuple[int, int], int]],
                     total: float, prep: float, not_before: float) -> float:
        """Earliest start honouring node comm qubits and link capacities."""
        time = not_before
        for _ in range(1000):
            proposal, _ = self.resources.earliest_joint(list(nodes), total,
                                                        not_before=time)
            if self._capacity_constrained and prep > 0:
                for (a, b), count in links:
                    capacity = self._effective_capacity(a, b)
                    if capacity is None:
                        continue
                    start = self._link_schedule(a, b, capacity).earliest_multi(
                        prep, min(count, capacity), not_before=proposal)
                    proposal = max(proposal, start)
            if proposal == time:
                return time
            time = proposal
        raise RuntimeError("resource search did not converge")  # pragma: no cover

    def _link_schedule(self, node_a: int, node_b: int,
                       capacity: int) -> SlotSchedule:
        key = (node_a, node_b) if node_a < node_b else (node_b, node_a)
        if key not in self._links:
            self._links[key] = SlotSchedule(capacity)
        return self._links[key]

    # ---------------------------------------------------------------- tracing

    def _record_comm_trace(self, index: int, item, kind: str,
                           nodes: Sequence[int], prep_start: float,
                           start: float, end: float, attempts: int) -> None:
        if not self.trace.enabled:
            return
        lat = self.latency
        self.trace.record(prep_start, "epr-start", index, nodes,
                          detail=f"attempts={attempts}")
        self.trace.record(start, "epr-ready", index, nodes)
        self.trace.record(start, "op-start", index, nodes, detail=kind)
        if kind == "cat":
            self.trace.record(start + lat.t_cat_entangle, "classical-msg",
                              index, nodes, detail="cat-entangle outcome")
            self.trace.record(end, "classical-msg", index, nodes,
                              detail="cat-disentangle outcome")
        elif kind == "tp":
            self.trace.record(start + lat.t_teleport, "teleport", index,
                              nodes, detail="hub to remote node")
            self.trace.record(end, "teleport", index, nodes,
                              detail="hub returned home")
        elif kind == "migration":
            self.trace.record(end, "teleport", index, nodes,
                              detail=f"migrate q{item.qubit} to new home")
        else:  # tp-chain: hops interleaved with the block bodies
            t = start
            for hop, block in enumerate(item.blocks):
                t += lat.t_teleport
                self.trace.record(t, "teleport", index, nodes,
                                  detail=f"chain hop {hop + 1}")
                t += lat.body_latency(block.gates)
            self.trace.record(end, "teleport", index, nodes,
                              detail="hub returned home")
        self.trace.record(end, "op-end", index, nodes, detail=kind)


# ---------------------------------------------------------------------------
# Program-level entry points
# ---------------------------------------------------------------------------

def _require_assignment(program: CompiledProgram):
    if program.assignment is None:
        raise ValueError(
            f"program {program.name!r} carries no assignment result; "
            "compile it with a pipeline that keeps intermediate passes")
    return program.assignment


def _program_burst(program: CompiledProgram) -> bool:
    return program.schedule is not None and program.schedule.mode == "burst"


def _program_overlap(program: CompiledProgram) -> bool:
    """Whether the winning analytical schedule used overlapped boundaries."""
    return (program.schedule is not None
            and getattr(program.schedule, "overlap", False))


def _plan_for(program: CompiledProgram) -> SchedulePlan:
    """The plan the program's analytical schedule was computed from.

    Phase-structured programs replay the combined phased plan (per-phase
    items plus inter-phase migration teleports); plans are memoised on the
    underlying assignment, so the engine executes the *same* plan object
    the analytical scheduler priced — including, since the zero-bubble
    boundaries change, whether that plan's cross-phase dependencies are
    barrier edges or overlapped per-qubit edges.
    """
    if getattr(program, "phases", None):
        return plan_phased_schedule(program.phases, program.migrations or [],
                                    burst=_program_burst(program),
                                    overlap=_program_overlap(program))
    assignment = _require_assignment(program)
    return plan_schedule(assignment, burst=_program_burst(program))


def _mapping_for(program: CompiledProgram):
    """Default mapping for profile building (phase plans carry their own)."""
    if getattr(program, "phases", None):
        return program.phases[0].mapping
    return _require_assignment(program).mapping


#: Public names for the plan/mapping accessors: the static verifier
#: (:mod:`repro.verify`) analyses the same plan object the analytical
#: scheduler priced and the engine replays.
plan_for_program = _plan_for
mapping_for_program = _mapping_for


def simulate_program(program: CompiledProgram,
                     config: Optional[SimulationConfig] = None) -> SimulationResult:
    """Execute one compiled program once on the modelled hardware.

    The schedule variant ("burst" or "plain") recorded by the analytical
    scheduler is replayed, so with the default deterministic config the
    result reproduces ``program.schedule.latency`` exactly.
    """
    config = config or SimulationConfig()
    engine = ExecutionEngine(_plan_for(program), program.network,
                             _mapping_for(program), config=config)
    return engine.run()


def _chunk_seeds(trial_seeds: List[int], workers: int) -> List[List[int]]:
    """Split the trial seeds into ``workers`` contiguous chunks.

    The split depends only on the counts (never on the host's core count or
    timing), so chunked results re-concatenate into exactly the sequential
    trial order for any worker count.
    """
    base, extra = divmod(len(trial_seeds), workers)
    chunks: List[List[int]] = []
    start = 0
    for index in range(workers):
        size = base + (1 if index < extra else 0)
        chunks.append(trial_seeds[start:start + size])
        start += size
    return chunks


def _run_trial_chunk(payload) -> Tuple[List[float], List[int],
                                       MetricsRegistry,
                                       Optional[SimulationResult]]:
    """Execute one contiguous chunk of Monte-Carlo trials.

    Runs inside a worker process (module-level so it pickles); the first
    chunk also returns its first trial as the run's sample (with the trace,
    when enabled), mirroring what the sequential loop keeps.
    """
    plan, network, mapping, config, seeds, first_chunk = payload
    metrics = MetricsRegistry(enabled=config.record_metrics)
    quiet = replace(config, record_trace=False)
    latencies: List[float] = []
    attempts: List[int] = []
    sample: Optional[SimulationResult] = None
    for index, trial_seed in enumerate(seeds):
        is_sample = first_chunk and index == 0
        template = config if is_sample else quiet
        trial_config = replace(template, seed=trial_seed)
        engine = ExecutionEngine(plan, network, mapping,
                                 config=trial_config, metrics=metrics)
        result = engine.run()
        latencies.append(result.latency)
        attempts.append(result.total_epr_attempts)
        if is_sample:
            sample = result
    return latencies, attempts, metrics, sample


def run_monte_carlo(program: CompiledProgram,
                    config: SimulationConfig) -> MonteCarloResult:
    """Run ``config.trials`` seeded stochastic executions of one program.

    Trial seeds are derived from ``config.seed`` through a master generator,
    so the whole distribution is reproducible from one integer — the
    returned result's ``config`` keeps that master seed (see
    :class:`MonteCarloResult`).

    With ``config.workers > 1`` the trials run on a process pool: seeds are
    chunked deterministically, every worker executes its chunk with its own
    engines and :class:`~repro.obs.metrics.MetricsRegistry`, and the
    registries merge losslessly in chunk order.  Because each trial's
    randomness comes only from its own derived seed, latencies, attempts and
    merged metrics are identical to the sequential run for any worker count.
    """
    if config.trials < 1:
        raise ValueError("trials must be >= 1")
    if config.workers < 1:
        raise ValueError("workers must be >= 1")
    master = random.Random(config.seed)
    trial_seeds = [master.getrandbits(63) for _ in range(config.trials)]

    # The plan (items + dependency graph) is identical across trials and its
    # commutation analysis dominates planning cost, so build it once (each
    # worker process receives the finished plan, not the program to re-plan).
    plan = _plan_for(program)
    mapping = _mapping_for(program)

    workers = min(config.workers, config.trials)
    if workers > 1:
        payloads = [(plan, program.network, mapping, config, chunk, index == 0)
                    for index, chunk in enumerate(_chunk_seeds(trial_seeds,
                                                               workers))]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outcomes = list(pool.map(_run_trial_chunk, payloads))
        latencies = []
        attempts = []
        sample_trial: Optional[SimulationResult] = None
        metrics = MetricsRegistry(enabled=config.record_metrics)
        for chunk_latencies, chunk_attempts, chunk_metrics, sample in outcomes:
            latencies.extend(chunk_latencies)
            attempts.extend(chunk_attempts)
            metrics.merge(chunk_metrics)
            if sample is not None:
                sample_trial = sample
        if sample_trial is not None:
            # The sequential loop's sample shares the run-wide registry;
            # point the worker's sample at the merged aggregate likewise.
            sample_trial.metrics = metrics
    else:
        latencies, attempts, metrics, sample_trial = _run_trial_chunk(
            (plan, program.network, mapping, config, trial_seeds, True))

    analytical = (program.schedule.latency if program.schedule is not None
                  else None)
    return MonteCarloResult(config=config, latencies=latencies,
                            trial_seeds=trial_seeds, epr_attempts=attempts,
                            analytical_latency=analytical,
                            sample_trial=sample_trial, metrics=metrics)
