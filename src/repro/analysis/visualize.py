"""Text visualisations of compiled programs.

Terminal-friendly renderings used by the examples and handy when debugging a
schedule: an ASCII timeline of the remote communications per node (from the
analytical schedule or from a discrete-event simulation), and a histogram of
burst-block sizes.  No plotting dependencies are required.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

from ..core.pipeline import CompiledProgram
from ..core.scheduling import ScheduledOp

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.engine import SimulationResult

__all__ = ["schedule_timeline", "simulation_timeline", "burst_histogram"]


def schedule_timeline(program: CompiledProgram, width: int = 72) -> str:
    """ASCII timeline of remote communications, one row per node.

    Each character cell covers ``latency / width`` time units; a cell shows
    ``C`` when a Cat-Comm block is active on the node, ``T`` for a TP-Comm
    block, ``M`` for an inter-phase migration teleport, ``#`` when more
    than one communication overlaps, and ``.`` when the node's
    communication qubits are idle.
    """
    if program.schedule is None:
        raise ValueError("program has no schedule attached")
    comm_ops: List[ScheduledOp] = program.schedule.comm_ops()
    latency = program.schedule.latency
    num_nodes = program.network.num_nodes
    if latency <= 0 or not comm_ops:
        return "\n".join(f"node {n}: (no remote communication)"
                         for n in range(num_nodes))

    cell = latency / width
    rows: Dict[int, List[str]] = {n: ["."] * width for n in range(num_nodes)}
    for op in comm_ops:
        symbol = _op_symbol(op.kind)
        first = min(width - 1, int(op.start / cell))
        last = min(width - 1, max(first, int((op.end - 1e-9) / cell)))
        for node in op.nodes:
            row = rows[node]
            for position in range(first, last + 1):
                row[position] = symbol if row[position] == "." else "#"
    lines = [f"0{' ' * (width - len(str(round(latency))) - 1)}{round(latency)} [CX units]"]
    for node in range(num_nodes):
        lines.append(f"node {node}: {''.join(rows[node])}")
    return "\n".join(lines)


def simulation_timeline(result: "SimulationResult", num_nodes: int,
                        width: int = 72) -> str:
    """ASCII timeline of one simulated execution, one row per node.

    Unlike :func:`schedule_timeline` this also shows the EPR-generation
    windows the engine realised: ``e`` marks a node generating EPR pairs
    (including stochastic retries), ``C``/``T`` mark a live Cat-Comm /
    TP-Comm protocol, and ``#`` marks overlapping communications.
    """
    comm_ops = result.comm_ops()
    latency = result.latency
    if latency <= 0 or not comm_ops:
        return "\n".join(f"node {n}: (no remote communication)"
                         for n in range(num_nodes))

    cell = latency / width
    # Each cell remembers which op painted it, so the '#' overlap marker only
    # appears when two *different* communications share a cell — the EPR/
    # protocol boundary of a single op shows the protocol symbol instead.
    rows: Dict[int, List[Optional[tuple]]] = {
        n: [None] * width for n in range(num_nodes)}

    def paint(index: int, nodes: Sequence[int], begin: float, finish: float,
              symbol: str) -> None:
        if finish <= begin:
            return
        first = min(width - 1, int(begin / cell))
        last = min(width - 1, max(first, int((finish - 1e-9) / cell)))
        for node in nodes:
            row = rows[node]
            for position in range(first, last + 1):
                current = row[position]
                if current is None or current == (index, "e"):
                    row[position] = (index, symbol)
                elif current[0] != index:
                    row[position] = (index, "#")

    for op in comm_ops:
        paint(op.index, op.nodes, op.prep_start, op.start, "e")
        paint(op.index, op.nodes, op.start, op.end, _op_symbol(op.kind))

    header = (f"0{' ' * (width - len(str(round(latency))) - 1)}"
              f"{round(latency)} [CX units]")
    lines = [header]
    for node in range(num_nodes):
        lines.append("node %d: %s" % (
            node, "".join("." if c is None else c[1] for c in rows[node])))
    lines.append("legend: e=EPR generation  C=Cat-Comm  T=TP-Comm  "
                 "M=migration  #=overlap")
    return "\n".join(lines)


def _op_symbol(kind: str) -> str:
    """Timeline symbol of one communication kind."""
    if kind == "migration":
        return "M"
    return "T" if kind.startswith("tp") else "C"


def burst_histogram(program: CompiledProgram, max_width: int = 40) -> str:
    """Histogram of burst-block sizes (remote CX gates per block).

    Phase-structured programs classify each phase's blocks under that
    phase's own mapping (a later-phase block pooled into
    ``program.blocks`` is only meaningful under the mapping it was
    aggregated with).
    """
    if program.phases is not None:
        sizes = [block.num_remote_gates(phase.mapping)
                 for phase in program.phases for block in phase.blocks]
    else:
        sizes = [block.num_remote_gates(program.mapping)
                 for block in program.blocks]
    if not sizes:
        return "(no burst blocks)"
    counts: Dict[int, int] = {}
    for size in sizes:
        counts[size] = counts.get(size, 0) + 1
    peak = max(counts.values())
    lines = []
    for size in sorted(counts):
        bar = "#" * max(1, int(max_width * counts[size] / peak))
        lines.append(f"{size:3d} remote CX | {bar} {counts[size]}")
    return "\n".join(lines)
