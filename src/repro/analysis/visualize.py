"""Text visualisations of compiled programs.

Terminal-friendly renderings used by the examples and handy when debugging a
schedule: an ASCII timeline of the remote communications per node, and a
histogram of burst-block sizes.  No plotting dependencies are required.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.pipeline import CompiledProgram
from ..core.scheduling import ScheduledOp

__all__ = ["schedule_timeline", "burst_histogram"]


def schedule_timeline(program: CompiledProgram, width: int = 72) -> str:
    """ASCII timeline of remote communications, one row per node.

    Each character cell covers ``latency / width`` time units; a cell shows
    ``C`` when a Cat-Comm block is active on the node, ``T`` for a TP-Comm
    block, ``#`` when more than one communication overlaps, and ``.`` when
    the node's communication qubits are idle.
    """
    if program.schedule is None:
        raise ValueError("program has no schedule attached")
    comm_ops: List[ScheduledOp] = program.schedule.comm_ops()
    latency = program.schedule.latency
    num_nodes = program.network.num_nodes
    if latency <= 0 or not comm_ops:
        return "\n".join(f"node {n}: (no remote communication)"
                         for n in range(num_nodes))

    cell = latency / width
    rows: Dict[int, List[str]] = {n: ["."] * width for n in range(num_nodes)}
    for op in comm_ops:
        symbol = "T" if op.kind.startswith("tp") else "C"
        first = min(width - 1, int(op.start / cell))
        last = min(width - 1, max(first, int((op.end - 1e-9) / cell)))
        for node in op.nodes:
            row = rows[node]
            for position in range(first, last + 1):
                row[position] = symbol if row[position] == "." else "#"
    lines = [f"0{' ' * (width - len(str(round(latency))) - 1)}{round(latency)} [CX units]"]
    for node in range(num_nodes):
        lines.append(f"node {node}: {''.join(rows[node])}")
    return "\n".join(lines)


def burst_histogram(program: CompiledProgram, max_width: int = 40) -> str:
    """Histogram of burst-block sizes (remote CX gates per block)."""
    sizes = [block.num_remote_gates(program.mapping) for block in program.blocks]
    if not sizes:
        return "(no burst blocks)"
    counts: Dict[int, int] = {}
    for size in sizes:
        counts[size] = counts.get(size, 0) + 1
    peak = max(counts.values())
    lines = []
    for size in sorted(counts):
        bar = "#" * max(1, int(max_width * counts[size] / peak))
        lines.append(f"{size:3d} remote CX | {bar} {counts[size]}")
    return "\n".join(lines)
