"""Program fidelity estimation for compiled distributed programs.

The paper motivates communication reduction with fidelity: remote operations
are up to 40x less accurate than local gates and the long runtime of
communication exposes the state to decoherence.  This module provides the
standard multiplicative error model used in DQC compiler evaluations so the
effect of AutoComm's savings can be expressed as an end-to-end fidelity
estimate:

``F = (1 - e_epr)^#comm * (1 - e_2q)^#2q * (1 - e_1q)^#1q * exp(-latency / T_coh)``

where ``#comm`` counts remote communications (EPR pairs consumed), the gate
counts are local-gate counts of the compiled circuit, and the final factor
models decoherence over the scheduled program latency.  The default error
rates follow the ranges quoted in the paper's introduction (remote operations
roughly an order of magnitude noisier than local two-qubit gates).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from ..core.pipeline import CompiledProgram

__all__ = ["ErrorModel", "DEFAULT_ERROR_MODEL", "estimate_fidelity",
           "fidelity_breakdown"]


@dataclass(frozen=True)
class ErrorModel:
    """Error rates and coherence budget for fidelity estimation.

    Attributes:
        epr_error: infidelity contributed by one remote communication (EPR
            pair generation + purification + protocol operations).
        two_qubit_error: local two-qubit gate error rate.
        one_qubit_error: local single-qubit gate error rate.
        coherence_time: decoherence time constant, in the same CX-normalised
            units as the latency model (``exp(-latency / coherence_time)``).
    """

    epr_error: float = 0.02
    two_qubit_error: float = 0.002
    one_qubit_error: float = 0.0002
    coherence_time: float = 50_000.0

    def __post_init__(self) -> None:
        for name in ("epr_error", "two_qubit_error", "one_qubit_error"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {value}")
        if self.coherence_time <= 0:
            raise ValueError("coherence_time must be positive")


DEFAULT_ERROR_MODEL = ErrorModel()


def fidelity_breakdown(program: CompiledProgram,
                       model: ErrorModel = DEFAULT_ERROR_MODEL) -> Dict[str, float]:
    """Per-source fidelity factors of a compiled program.

    Inter-phase qubit migrations of a dynamically remapped program each
    consume one EPR pair (a teleport), so they count as communications;
    local-gate classification follows each phase's own mapping.
    """
    num_comm = program.metrics.total_comm + program.metrics.migration_moves
    num_2q_local = 0
    num_1q = 0
    phases = getattr(program, "phases", None)
    gate_scopes = ([(phase.aggregation.circuit, phase.mapping)
                    for phase in phases] if phases
                   else [(program.circuit, program.mapping)])
    for circuit, mapping in gate_scopes:
        for gate in circuit:
            if gate.is_multi_qubit and not mapping.is_remote(gate):
                num_2q_local += 1
            elif gate.is_single_qubit:
                num_1q += 1
    communication = (1.0 - model.epr_error) ** num_comm
    local_2q = (1.0 - model.two_qubit_error) ** num_2q_local
    local_1q = (1.0 - model.one_qubit_error) ** num_1q
    decoherence = math.exp(-program.metrics.latency / model.coherence_time)
    return {
        "communication": communication,
        "local_two_qubit": local_2q,
        "local_single_qubit": local_1q,
        "decoherence": decoherence,
        "total": communication * local_2q * local_1q * decoherence,
    }


def estimate_fidelity(program: CompiledProgram,
                      model: ErrorModel = DEFAULT_ERROR_MODEL) -> float:
    """End-to-end fidelity estimate of a compiled program."""
    return fidelity_breakdown(program, model)["total"]
