"""Analysis utilities: burst statistics and table builders for the evaluation."""

from .burst_stats import (
    burst_distribution,
    communication_loads,
    inverse_burst_distribution,
    qft_inverse_burst_bound,
    qaoa_inverse_burst_bound,
    mean_remote_cx_per_comm,
)
from .tables import (table2_row, table3_row, simulation_row, topology_row,
                     render_table,
                     geometric_mean)
from .fidelity import ErrorModel, DEFAULT_ERROR_MODEL, estimate_fidelity, fidelity_breakdown
from .visualize import schedule_timeline, simulation_timeline, burst_histogram

__all__ = [
    "burst_distribution",
    "communication_loads",
    "inverse_burst_distribution",
    "qft_inverse_burst_bound",
    "qaoa_inverse_burst_bound",
    "mean_remote_cx_per_comm",
    "table2_row",
    "table3_row",
    "simulation_row",
    "topology_row",
    "render_table",
    "geometric_mean",
    "ErrorModel",
    "DEFAULT_ERROR_MODEL",
    "estimate_fidelity",
    "fidelity_breakdown",
    "schedule_timeline",
    "simulation_timeline",
    "burst_histogram",
]
