"""Burst-communication statistics (Section 3.2 and Figure 15).

Two views are provided:

* the *measured* burst distribution of a compiled program
  (``Pr[one communication carries >= X remote CX gates]``), re-exported from
  :mod:`repro.core.metrics`;
* the *analytical* upper bounds the paper derives for the inverse-burst
  distribution of QFT and QAOA (``P(4) <= 1/t`` for QFT and
  ``P(4) <= (t - 2 (r mod t)) / r`` for QAOA), used to check that the
  implementation's measured burstiness is at least as rich as the theory
  predicts.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..comm.blocks import CommBlock
from ..core.metrics import burst_distribution, communication_loads
from ..partition.mapping import QubitMapping

__all__ = [
    "burst_distribution",
    "communication_loads",
    "inverse_burst_distribution",
    "qft_inverse_burst_bound",
    "qaoa_inverse_burst_bound",
    "mean_remote_cx_per_comm",
]


def inverse_burst_distribution(blocks: Sequence[CommBlock],
                               mapping: QubitMapping,
                               thresholds: Sequence[int] = (2, 4, 6, 8)) -> Dict[int, float]:
    """Measured analogue of the paper's P(x): fraction of remote gates whose
    burst block carries fewer than ``x`` remote CX gates.
    """
    sizes: List[int] = []
    for block in blocks:
        remote = block.num_remote_gates(mapping)
        sizes.extend([remote] * remote)
    total = len(sizes)
    if total == 0:
        return {x: 0.0 for x in thresholds}
    return {x: sum(1 for s in sizes if s < x) / total for x in thresholds}


def qft_inverse_burst_bound(num_qubits: int, num_nodes: int,
                            threshold: int = 4) -> float:
    """Paper's analytical bound ``P(2m) <= (m - 1) / t`` for the QFT.

    ``t`` is the number of qubits per node; ``threshold`` must be even.
    """
    if threshold % 2 != 0:
        raise ValueError("threshold must be even (remote CRZ = 2 remote CX)")
    qubits_per_node = num_qubits / num_nodes
    m = threshold // 2
    return min(1.0, (m - 1) / qubits_per_node)


def qaoa_inverse_burst_bound(qubits_per_node: int, remote_interactions: int,
                             threshold: int = 4) -> float:
    """Paper's analytical bound ``P(4) <= (t - 2 (r mod t)) / r`` for QAOA.

    ``remote_interactions`` is the number of remote ZZ interactions between
    one pair of nodes (the paper's ``r``); the bound only applies when
    ``r > t``, otherwise 1.0 (no guarantee) is returned.
    """
    t, r = qubits_per_node, remote_interactions
    if r <= 0:
        return 0.0
    if r <= t:
        return 1.0
    if threshold != 4:
        raise ValueError("the paper's closed form is stated for P(4)")
    return max(0.0, min(1.0, (t - 2 * (r % t)) / r))


def mean_remote_cx_per_comm(blocks: Sequence[CommBlock],
                            mapping: QubitMapping) -> float:
    """Average number of remote CX gates carried per issued communication."""
    loads = communication_loads(blocks, mapping)
    if not loads:
        return 0.0
    return sum(loads) / len(loads)
