"""Table builders for the evaluation harness.

These helpers take compiled programs and produce the rows of the paper's
tables (Table 2 benchmark statistics, Table 3 AutoComm results) as plain
dictionaries, plus text renderers so the benchmark harnesses can print the
same rows the paper reports.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, TYPE_CHECKING

from ..core.metrics import comparison_factors
from ..core.pipeline import CompiledProgram
from ..ir.circuit import Circuit
from ..partition.mapping import QubitMapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.engine import MonteCarloResult
    from ..sim.validate import ValidationReport

__all__ = ["table2_row", "table3_row", "simulation_row", "topology_row",
           "render_table", "geometric_mean"]


def table2_row(name: str, circuit: Circuit, decomposed: Circuit,
               mapping: QubitMapping, num_nodes: int) -> Dict[str, object]:
    """One row of Table 2: benchmark statistics under the OEE mapping."""
    return {
        "name": name,
        "num_qubits": circuit.num_qubits,
        "num_nodes": num_nodes,
        "num_gates": len(decomposed),
        "num_cx": decomposed.num_cx_gates(),
        "num_remote_cx": mapping.count_remote_gates(decomposed),
    }


def table3_row(autocomm: CompiledProgram, baseline: CompiledProgram,
               simulated_latency: Optional[float] = None) -> Dict[str, object]:
    """One row of Table 3: AutoComm results relative to the sparse baseline.

    When ``simulated_latency`` (a discrete-event execution measurement from
    :mod:`repro.sim`) is given, the row carries it next to the analytical
    latency as an execution-grounded second opinion.
    """
    factors = comparison_factors(baseline.metrics, autocomm.metrics)
    row = {
        "name": autocomm.name,
        "tot_comm": autocomm.metrics.total_comm,
        "tp_comm": autocomm.metrics.tp_comm,
        "peak_rem_cx": autocomm.metrics.peak_rem_cx,
        "baseline_comm": baseline.metrics.total_comm,
        "improv_factor": factors["improv_factor"],
        "lat_dec_factor": factors["lat_dec_factor"],
    }
    if simulated_latency is not None:
        row["simulated_latency"] = simulated_latency
    return row


def simulation_row(report: "ValidationReport",
                   monte_carlo: Optional["MonteCarloResult"] = None) -> Dict[str, object]:
    """One row comparing analytical latency with simulated execution.

    ``report`` comes from :func:`repro.sim.validate.validate_schedule`; an
    optional Monte-Carlo result appends the stochastic latency distribution.
    """
    row: Dict[str, object] = {
        "name": report.name,
        "latency": report.analytical_latency,
        "simulated_latency": report.simulated_latency,
        "validated": "yes" if report.matches else "NO",
    }
    if monte_carlo is not None:
        summary = monte_carlo.summary()
        row.update({
            "p_epr": monte_carlo.config.p_epr,
            "trials": int(summary["trials"]),
            "sim_mean": summary["mean"],
            "sim_std": summary["std"],
            "sim_p95": summary["p95"],
            "slowdown": summary.get("slowdown", 1.0),
        })
    return row


def topology_row(program: CompiledProgram,
                 baseline: Optional[CompiledProgram] = None,
                 simulated_latency: Optional[float] = None) -> Dict[str, object]:
    """One row of the topology-sensitivity study for a compiled program.

    ``baseline`` is the same program compiled for all-to-all connectivity;
    the row then carries the latency and physical-EPR-pair inflation the
    constrained topology causes.  ``simulated_latency`` is the
    deterministic discrete-event replay of the routed schedule.
    """
    network = program.network
    metrics = program.metrics
    row: Dict[str, object] = {
        "name": program.name,
        "topology": network.topology_kind,
        "max_hops": (network.routing.max_hops()
                     if network.routing is not None else 1),
        "total_comm": metrics.total_comm,
        "total_epr_pairs": metrics.total_epr_pairs,
        "latency": metrics.latency,
    }
    if network.heterogeneous_links:
        row["link_model"] = network.link_model.describe()
        if metrics.total_epr_latency is not None:
            row["total_epr_latency"] = metrics.total_epr_latency
    if simulated_latency is not None:
        row["simulated_latency"] = simulated_latency
    if baseline is not None:
        row["latency_vs_all_to_all"] = (
            metrics.latency / baseline.metrics.latency
            if baseline.metrics.latency else float("inf"))
        row["epr_pairs_vs_all_to_all"] = (
            metrics.total_epr_pairs / baseline.metrics.total_epr_pairs
            if baseline.metrics.total_epr_pairs else float("inf"))
    return row


def render_table(rows: Sequence[Mapping[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 float_format: str = "{:.2f}") -> str:
    """Render rows as a fixed-width text table (for harness output)."""
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered: List[List[str]] = [[str(c) for c in columns]]
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [max(len(line[i]) for line in rendered) for i in range(len(columns))]
    lines = []
    for index, line in enumerate(rendered):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
        if index == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
    return "\n".join(lines)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, used to average improvement factors across programs."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))
