"""Reference (pre-optimization) implementation of the aggregation pass.

This module preserves the original scan-per-pair implementation of
:class:`repro.core.aggregation.CommAggregator` exactly as it behaved before
the indexed rewrite: every qubit-node pair re-counts its raw remote gates by
scanning the full item list, the pair ordering histogram is rebuilt from
scratch each sweep, and per-item qubit sets are recomputed on demand.

It exists for two reasons:

* **Equivalence testing** — the optimized pass must produce byte-identical
  results (same items, same blocks, same metrics); the tests in
  ``tests/core/test_aggregation_indexed.py`` diff the two implementations
  over the benchmark families.
* **Perf trajectory** — ``benchmarks/bench_compiler_perf.py`` times this
  path (with the pair-level commutation cache disabled) against the indexed
  pass and records the speedup in ``BENCH_compiler.json``; CI fails when the
  speedup regresses.

Do not "optimize" this module: its slowness is the baseline being measured.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..comm.blocks import CommBlock
from ..ir.circuit import Circuit
from ..ir.commutation_reference import commutes_reference as commutes
from ..ir.gates import Gate, gate_spec
from ..partition.mapping import QubitMapping
from .aggregation import AggregationResult, ScheduleItem


def _is_two_qubit(gate: Gate) -> bool:
    """Registry-walking replica of the pre-optimization ``is_two_qubit``."""
    return gate_spec(gate.name).unitary is not None and len(gate.qubits) == 2


def _is_single_qubit(gate: Gate) -> bool:
    """Registry-walking replica of the pre-optimization ``is_single_qubit``."""
    return gate_spec(gate.name).unitary is not None and len(gate.qubits) == 1


def _is_remote(mapping: QubitMapping, gate: Gate) -> bool:
    """Set-building replica of the pre-optimization ``is_remote``."""
    if not (gate_spec(gate.name).unitary is not None and len(gate.qubits) >= 2):
        return False
    return len({mapping._assignment[q] for q in gate.qubits}) > 1


def _touched_qubits_scan(block: CommBlock) -> Tuple[int, ...]:
    """Gate-scanning replica of the pre-optimization ``touched_qubits``."""
    qubits: Set[int] = set()
    for gate in block.gates:
        qubits.update(gate.qubits)
    return tuple(sorted(qubits))

__all__ = ["ReferenceCommAggregator", "aggregate_communications_reference"]


class ReferenceCommAggregator:
    """The original scanning implementation of the aggregation pass."""

    def __init__(self, circuit: Circuit, mapping: QubitMapping,
                 use_commutation: bool = True, max_sweeps: int = 3) -> None:
        if circuit.num_qubits != mapping.num_qubits:
            raise ValueError("circuit and mapping disagree on qubit count")
        self.circuit = circuit
        self.mapping = mapping
        self.use_commutation = use_commutation
        self.max_sweeps = max_sweeps

    # ------------------------------------------------------------------ public

    def run(self) -> AggregationResult:
        items: List[ScheduleItem] = list(self.circuit.gates)
        previous_block_count = -1
        for _ in range(self.max_sweeps):
            for pair in self._pairs_by_weight(items):
                if self._raw_remote_count(items, pair) == 0:
                    continue
                items = self._aggregate_pair(items, pair)
            blocks_now = sum(isinstance(i, CommBlock) for i in items)
            raw_left = sum(1 for i in items
                           if isinstance(i, Gate) and self._is_remote_2q(i))
            if raw_left == 0 or blocks_now == previous_block_count:
                break
            previous_block_count = blocks_now
        items = self._blockify_leftovers(items)
        blocks = [item for item in items if isinstance(item, CommBlock)]
        return AggregationResult(self.circuit, self.mapping, items, blocks)

    # ------------------------------------------------------------- pair order

    def _is_remote_2q(self, gate: Gate) -> bool:
        return _is_two_qubit(gate) and _is_remote(self.mapping, gate)

    def _pairs_by_weight(self, items: Sequence[ScheduleItem]) -> List[Tuple[int, int]]:
        """Qubit-node pairs ordered by descending raw remote-gate count."""
        histogram: Counter = Counter()
        for item in items:
            if isinstance(item, Gate) and self._is_remote_2q(item):
                a, b = item.qubits
                histogram[(a, self.mapping.node_of(b))] += 1
                histogram[(b, self.mapping.node_of(a))] += 1
        ordered = sorted(histogram.items(), key=lambda kv: (-kv[1], kv[0]))
        return [pair for pair, _ in ordered]

    def _raw_remote_count(self, items: Sequence[ScheduleItem],
                          pair: Tuple[int, int]) -> int:
        qubit, node = pair
        count = 0
        for item in items:
            if isinstance(item, Gate) and self._eligible(item, qubit, node):
                count += 1
        return count

    def _eligible(self, gate: Gate, hub: int, remote_node: int) -> bool:
        """Is ``gate`` a remote two-qubit gate between ``hub`` and ``remote_node``?"""
        if not self._is_remote_2q(gate):
            return False
        if hub not in gate.qubits:
            return False
        other = gate.qubits[0] if gate.qubits[1] == hub else gate.qubits[1]
        return self.mapping.node_of(other) == remote_node

    # --------------------------------------------------------- per-pair sweep

    def _aggregate_pair(self, items: List[ScheduleItem],
                        pair: Tuple[int, int]) -> List[ScheduleItem]:
        hub, remote_node = pair
        hub_node = self.mapping.node_of(hub)
        if hub_node == remote_node:
            return items
        remote_qubits = set(self.mapping.qubits_on(remote_node))

        out: List[ScheduleItem] = []
        block: Optional[CommBlock] = None
        block_qubits: Set[int] = set()
        deferred: List[ScheduleItem] = []
        deferred_by_qubit: Dict[int, List[int]] = defaultdict(list)

        def close_block() -> None:
            nonlocal block, deferred, deferred_by_qubit, block_qubits
            block = None
            block_qubits = set()
            out.extend(deferred)
            deferred = []
            deferred_by_qubit = defaultdict(list)

        def commutes_with_deferred(candidate: ScheduleItem) -> bool:
            if not deferred:
                return True
            candidate_gates = (candidate.gates if isinstance(candidate, CommBlock)
                               else [candidate])
            checked: Set[int] = set()
            for gate in candidate_gates:
                for qubit in gate.qubits:
                    for index in deferred_by_qubit.get(qubit, ()):
                        if index in checked:
                            continue
                        checked.add(index)
                        other = deferred[index]
                        other_gates = (other.gates if isinstance(other, CommBlock)
                                       else [other])
                        for other_gate in other_gates:
                            if not commutes(gate, other_gate):
                                return False
            return True

        def defer(item: ScheduleItem) -> None:
            index = len(deferred)
            deferred.append(item)
            qubits: Set[int] = set()
            gates = item.gates if isinstance(item, CommBlock) else [item]
            for gate in gates:
                qubits.update(gate.qubits)
            for qubit in qubits:
                deferred_by_qubit[qubit].append(index)

        def item_qubits(candidate: ScheduleItem) -> Set[int]:
            if isinstance(candidate, CommBlock):
                return set(_touched_qubits_scan(candidate))
            return set(candidate.qubits)

        for item in items:
            if isinstance(item, Gate) and self._eligible(item, hub, remote_node):
                # Pulling this gate into the open block hops it over every
                # deferred item, so that move must be commutation-justified.
                if block is not None and deferred and not (
                        self.use_commutation and commutes_with_deferred(item)):
                    close_block()
                if block is None:
                    block = CommBlock(hub_qubit=hub, hub_node=hub_node,
                                      remote_node=remote_node)
                    out.append(block)
                block.append(item)
                block_qubits.update(item.qubits)
                continue

            if block is None:
                out.append(item)
                continue

            if self._allowed_in_block(item, hub, remote_qubits):
                # Absorbing keeps the gate at its original position relative
                # to the block; it only reorders against deferred items.
                if not deferred or (self.use_commutation
                                    and commutes_with_deferred(item)):
                    block.append(item)
                    block_qubits.update(item.qubits)
                elif self.use_commutation:
                    defer(item)
                else:
                    close_block()
                    out.append(item)
                continue

            if not self.use_commutation:
                close_block()
                out.append(item)
                continue

            qubits = item_qubits(item)
            disjoint_from_block = not (qubits & block_qubits)
            if (disjoint_from_block or self._commutes_with_block(item, block)) \
                    and commutes_with_deferred(item):
                defer(item)
            else:
                close_block()
                out.append(item)

        close_block()
        return out

    def _allowed_in_block(self, item: ScheduleItem, hub: int,
                          remote_qubits: Set[int]) -> bool:
        if not isinstance(item, Gate):
            return False
        if item.is_barrier or item.is_measurement or item.name == "reset":
            return False
        if _is_single_qubit(item) and item.qubits[0] == hub:
            return self.use_commutation
        return bool(item.qubits) and set(item.qubits) <= remote_qubits

    def _commutes_with_block(self, item: ScheduleItem, block: CommBlock) -> bool:
        gates = item.gates if isinstance(item, CommBlock) else [item]
        for gate in gates:
            if gate.is_barrier or gate.is_measurement or gate.name == "reset":
                return False
            for block_gate in block.gates:
                if not commutes(gate, block_gate):
                    return False
        return True

    # ------------------------------------------------------------- leftovers

    def _blockify_leftovers(self, items: List[ScheduleItem]) -> List[ScheduleItem]:
        """Wrap every remaining raw remote two-qubit gate in a singleton block."""
        out: List[ScheduleItem] = []
        for item in items:
            if isinstance(item, Gate) and self._is_remote_2q(item):
                a, b = item.qubits
                block = CommBlock(hub_qubit=a,
                                  hub_node=self.mapping.node_of(a),
                                  remote_node=self.mapping.node_of(b))
                block.append(item)
                out.append(block)
            else:
                out.append(item)
        return out


def aggregate_communications_reference(circuit: Circuit, mapping: QubitMapping,
                                       use_commutation: bool = True,
                                       max_sweeps: int = 3) -> AggregationResult:
    """Run the reference (unindexed) aggregation pass."""
    return ReferenceCommAggregator(circuit, mapping,
                                   use_commutation=use_commutation,
                                   max_sweeps=max_sweeps).run()
