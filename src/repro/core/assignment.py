"""Communication assignment pass (Section 4.3 of the paper).

Given the burst blocks produced by aggregation, choose the cheaper of the two
remote communication schemes for each block:

* **Cat-Comm** executes a block with ``cat_comm_cost`` EPR pairs (one per
  hub-role segment); it is optimal when the whole block is unidirectional
  and no opaque single-qubit gate on the hub splits it (cost 1).
* **TP-Comm** teleports the hub to the remote node, runs the block locally
  and teleports back — always exactly 2 EPR pairs, whatever the pattern.

The paper's rule (end of Section 4.3): use Cat-Comm when a single invocation
suffices, otherwise default to TP-Comm (the tie case of two Cat invocations
vs. one TP round trip is resolved in favour of TP-Comm).

On a routed network (per-pair EPR latencies from
:mod:`repro.hardware.topology`) the pass instead compares the two schemes'
estimated wall-clock protocol times, charging every invocation the pair's
EPR preparation latency (:func:`choose_scheme_routed`).  With the paper's
latency structure this provably coincides with the counting rule for every
pair latency — both schemes ride the same hub<->remote link, so the EPR
term scales both sides identically — but it keeps the pass honest for
latency models where the fixed per-invocation overheads differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..comm.blocks import CommBlock, CommPattern, CommScheme
from ..comm.cost import CommCost, total_comm_count
from ..hardware.network import QuantumNetwork
from ..obs.span import stage
from ..partition.mapping import QubitMapping
from .aggregation import AggregationResult

__all__ = ["AssignmentResult", "assign_communications", "choose_scheme",
           "choose_scheme_routed"]


@dataclass
class AssignmentResult:
    """Blocks with communication schemes chosen, plus summary statistics."""

    aggregation: AggregationResult
    blocks: List[CommBlock]
    cost: CommCost
    pattern_histogram: Dict[CommPattern, int] = field(default_factory=dict)
    scheme_histogram: Dict[CommScheme, int] = field(default_factory=dict)

    @property
    def mapping(self) -> QubitMapping:
        return self.aggregation.mapping

    @property
    def items(self):
        return self.aggregation.items

    def num_cat_blocks(self) -> int:
        return self.scheme_histogram.get(CommScheme.CAT, 0)

    def num_tp_blocks(self) -> int:
        return self.scheme_histogram.get(CommScheme.TP, 0)


def choose_scheme(block: CommBlock, mapping: QubitMapping,
                  cat_only: bool = False) -> CommScheme:
    """Pick the communication scheme for one block.

    Args:
        block: the burst block.
        mapping: qubit-to-node assignment (needed to identify remote gates).
        cat_only: force Cat-Comm regardless of cost; used for the
            "Cat-Comm only" ablation of Figure 17(b) which models the
            controlled-unitary-only compiler of Diadamo et al.
    """
    if cat_only:
        return CommScheme.CAT
    cat_cost = block.cat_comm_cost(mapping)
    if cat_cost <= 1:
        return CommScheme.CAT
    # Two or more Cat invocations never beat the fixed two communications of
    # a TP round trip; ties default to TP-Comm per the paper.
    return CommScheme.TP


def choose_scheme_routed(block: CommBlock, mapping: QubitMapping,
                         network: QuantumNetwork) -> CommScheme:
    """Pick the cheaper scheme by estimated protocol time on ``network``.

    Each Cat-Comm invocation is charged the pair's EPR preparation latency
    plus the cat entangle/disentangle halves; a TP-Comm round trip is
    charged two preparations plus two teleports.  The block body executes
    under either scheme, so it cancels and is omitted.  Ties resolve to
    TP-Comm, matching the paper's convention.
    """
    latency = network.latency
    pair_epr = network.epr_latency(block.hub_node, block.remote_node)
    cat_cost = block.cat_comm_cost(mapping)
    cat_time = cat_cost * (pair_epr + latency.t_cat_entangle
                           + latency.t_cat_disentangle)
    tp_time = block.tp_comm_cost() * (pair_epr + latency.t_teleport)
    return CommScheme.CAT if cat_time < tp_time else CommScheme.TP


def assign_communications(aggregation: AggregationResult,
                          cat_only: bool = False,
                          network: Optional[QuantumNetwork] = None
                          ) -> AssignmentResult:
    """Assign Cat-Comm or TP-Comm to every block of an aggregated program.

    When ``network`` is given the scheme choice weighs the per-pair EPR
    latency (:func:`choose_scheme_routed`) and the reported cost carries the
    swap-inclusive physical EPR-pair count of the network's routes.
    """
    with stage("assignment") as span:
        mapping = aggregation.mapping
        pattern_histogram: Dict[CommPattern, int] = {}
        scheme_histogram: Dict[CommScheme, int] = {}
        for block in aggregation.blocks:
            pattern = block.pattern(mapping)
            pattern_histogram[pattern] = pattern_histogram.get(pattern, 0) + 1
            if cat_only:
                scheme = CommScheme.CAT
            elif network is not None:
                scheme = choose_scheme_routed(block, mapping, network)
            else:
                scheme = choose_scheme(block, mapping)
            block.scheme = scheme
            scheme_histogram[scheme] = scheme_histogram.get(scheme, 0) + 1
        cost = total_comm_count(aggregation.blocks, mapping, network=network)
        if span.enabled:
            span.set("blocks", len(aggregation.blocks))
            span.set("cat_blocks", scheme_histogram.get(CommScheme.CAT, 0))
            span.set("tp_blocks", scheme_histogram.get(CommScheme.TP, 0))
            span.set("total_comm", cost.total_comm)
        return AssignmentResult(
            aggregation=aggregation,
            blocks=list(aggregation.blocks),
            cost=cost,
            pattern_histogram=pattern_histogram,
            scheme_histogram=scheme_histogram,
        )
