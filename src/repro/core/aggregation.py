"""Communication aggregation pass (Section 4.2 of the paper).

The pass rewrites a distributed circuit so that remote two-qubit gates
between one qubit (the *hub*) and one node are grouped into contiguous
*burst communication blocks*.  Grouping is only allowed when justified by
gate commutation, so the rewritten program is always semantically equivalent
to the input (``AggregationResult.to_circuit()`` flattens the result back to
a plain circuit, which the tests check against the original by simulation).

The implementation folds the paper's three steps into one scan per
qubit-node pair, processed in descending order of remote-gate count
(preprocessing), with commutation-based deferral of intervening gates
(linear merge, Algorithm 1) and repeated sweeps until no block grows
(iterative refinement):

* gates allowed inside a block (single-qubit gates on the hub, local gates
  confined to the remote node) are absorbed in place;
* any other intervening gate is *deferred* past the block when it commutes
  with every gate already in the block, mirroring Algorithm 1's
  ``non_commute_gates`` bookkeeping;
* a gate that can neither be absorbed nor deferred closes the block, which
  is the paper's "break" case.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..comm.blocks import CommBlock
from ..ir.circuit import Circuit
from ..ir.commutation import commutes
from ..ir.gates import Gate
from ..partition.mapping import QubitMapping

__all__ = ["AggregationResult", "aggregate_communications", "CommAggregator"]

#: Items of the rewritten program: plain gates or burst blocks.
ScheduleItem = Union[Gate, CommBlock]


@dataclass
class AggregationResult:
    """Output of the aggregation pass."""

    circuit: Circuit
    mapping: QubitMapping
    items: List[ScheduleItem]
    blocks: List[CommBlock]

    def to_circuit(self) -> Circuit:
        """Flatten the aggregated program back into a plain circuit.

        The result is a commutation-justified reordering of the input
        circuit; it is used by the verification tests and by downstream
        passes that need a gate-level view.
        """
        out = Circuit(self.circuit.num_qubits, name=f"{self.circuit.name}-aggregated")
        for item in self.items:
            if isinstance(item, CommBlock):
                out.extend(item.gates)
            else:
                out.append(item)
        return out

    def num_blocks(self) -> int:
        return len(self.blocks)

    def remote_gates_in_blocks(self) -> int:
        return sum(b.num_remote_gates(self.mapping) for b in self.blocks)

    def block_sizes(self) -> List[int]:
        """Remote-gate count per block (the burst sizes)."""
        return [b.num_remote_gates(self.mapping) for b in self.blocks]


class CommAggregator:
    """Implements the aggregation pass over one circuit and mapping."""

    def __init__(self, circuit: Circuit, mapping: QubitMapping,
                 use_commutation: bool = True, max_sweeps: int = 3) -> None:
        if circuit.num_qubits != mapping.num_qubits:
            raise ValueError("circuit and mapping disagree on qubit count")
        self.circuit = circuit
        self.mapping = mapping
        self.use_commutation = use_commutation
        self.max_sweeps = max_sweeps

    # ------------------------------------------------------------------ public

    def run(self) -> AggregationResult:
        items: List[ScheduleItem] = list(self.circuit.gates)
        previous_block_count = -1
        for _ in range(self.max_sweeps):
            for pair in self._pairs_by_weight(items):
                if self._raw_remote_count(items, pair) == 0:
                    continue
                items = self._aggregate_pair(items, pair)
            blocks_now = sum(isinstance(i, CommBlock) for i in items)
            raw_left = sum(1 for i in items
                           if isinstance(i, Gate) and self._is_remote_2q(i))
            if raw_left == 0 or blocks_now == previous_block_count:
                break
            previous_block_count = blocks_now
        items = self._blockify_leftovers(items)
        blocks = [item for item in items if isinstance(item, CommBlock)]
        return AggregationResult(self.circuit, self.mapping, items, blocks)

    # ------------------------------------------------------------- pair order

    def _is_remote_2q(self, gate: Gate) -> bool:
        return gate.is_two_qubit and self.mapping.is_remote(gate)

    def _pairs_by_weight(self, items: Sequence[ScheduleItem]) -> List[Tuple[int, int]]:
        """Qubit-node pairs ordered by descending raw remote-gate count."""
        histogram: Counter = Counter()
        for item in items:
            if isinstance(item, Gate) and self._is_remote_2q(item):
                a, b = item.qubits
                histogram[(a, self.mapping.node_of(b))] += 1
                histogram[(b, self.mapping.node_of(a))] += 1
        ordered = sorted(histogram.items(), key=lambda kv: (-kv[1], kv[0]))
        return [pair for pair, _ in ordered]

    def _raw_remote_count(self, items: Sequence[ScheduleItem],
                          pair: Tuple[int, int]) -> int:
        qubit, node = pair
        count = 0
        for item in items:
            if isinstance(item, Gate) and self._eligible(item, qubit, node):
                count += 1
        return count

    def _eligible(self, gate: Gate, hub: int, remote_node: int) -> bool:
        """Is ``gate`` a remote two-qubit gate between ``hub`` and ``remote_node``?"""
        if not self._is_remote_2q(gate):
            return False
        if hub not in gate.qubits:
            return False
        other = gate.qubits[0] if gate.qubits[1] == hub else gate.qubits[1]
        return self.mapping.node_of(other) == remote_node

    # --------------------------------------------------------- per-pair sweep

    def _aggregate_pair(self, items: List[ScheduleItem],
                        pair: Tuple[int, int]) -> List[ScheduleItem]:
        hub, remote_node = pair
        hub_node = self.mapping.node_of(hub)
        if hub_node == remote_node:
            return items
        remote_qubits = set(self.mapping.qubits_on(remote_node))

        out: List[ScheduleItem] = []
        block: Optional[CommBlock] = None
        block_qubits: Set[int] = set()
        deferred: List[ScheduleItem] = []
        deferred_by_qubit: Dict[int, List[int]] = defaultdict(list)

        def close_block() -> None:
            nonlocal block, deferred, deferred_by_qubit, block_qubits
            block = None
            block_qubits = set()
            out.extend(deferred)
            deferred = []
            deferred_by_qubit = defaultdict(list)

        def commutes_with_deferred(candidate: ScheduleItem) -> bool:
            if not deferred:
                return True
            candidate_gates = (candidate.gates if isinstance(candidate, CommBlock)
                               else [candidate])
            checked: Set[int] = set()
            for gate in candidate_gates:
                for qubit in gate.qubits:
                    for index in deferred_by_qubit.get(qubit, ()):
                        if index in checked:
                            continue
                        checked.add(index)
                        other = deferred[index]
                        other_gates = (other.gates if isinstance(other, CommBlock)
                                       else [other])
                        for other_gate in other_gates:
                            if not commutes(gate, other_gate):
                                return False
            return True

        def defer(item: ScheduleItem) -> None:
            index = len(deferred)
            deferred.append(item)
            qubits: Set[int] = set()
            gates = item.gates if isinstance(item, CommBlock) else [item]
            for gate in gates:
                qubits.update(gate.qubits)
            for qubit in qubits:
                deferred_by_qubit[qubit].append(index)

        def item_qubits(candidate: ScheduleItem) -> Set[int]:
            if isinstance(candidate, CommBlock):
                return set(candidate.touched_qubits())
            return set(candidate.qubits)

        for item in items:
            if isinstance(item, Gate) and self._eligible(item, hub, remote_node):
                # Pulling this gate into the open block hops it over every
                # deferred item, so that move must be commutation-justified.
                if block is not None and deferred and not (
                        self.use_commutation and commutes_with_deferred(item)):
                    close_block()
                if block is None:
                    block = CommBlock(hub_qubit=hub, hub_node=hub_node,
                                      remote_node=remote_node)
                    out.append(block)
                block.append(item)
                block_qubits.update(item.qubits)
                continue

            if block is None:
                out.append(item)
                continue

            if self._allowed_in_block(item, hub, remote_qubits):
                # Absorbing keeps the gate at its original position relative
                # to the block; it only reorders against deferred items.
                if not deferred or (self.use_commutation
                                    and commutes_with_deferred(item)):
                    block.append(item)
                    block_qubits.update(item.qubits)
                elif self.use_commutation:
                    defer(item)
                else:
                    close_block()
                    out.append(item)
                continue

            if not self.use_commutation:
                close_block()
                out.append(item)
                continue

            qubits = item_qubits(item)
            disjoint_from_block = not (qubits & block_qubits)
            if (disjoint_from_block or self._commutes_with_block(item, block)) \
                    and commutes_with_deferred(item):
                defer(item)
            else:
                close_block()
                out.append(item)

        close_block()
        return out

    def _allowed_in_block(self, item: ScheduleItem, hub: int,
                          remote_qubits: Set[int]) -> bool:
        """May ``item`` live inside a block for (hub, remote node)?

        Allowed content: single-qubit gates on the hub (they run on the hub
        or on its cat copy), and local gates entirely on the remote node's
        qubits (they run at the remote node while the communication is live).

        Absorbing a hub-side gate into the communication window is only
        sound because we know how it commutes with the remote gates, so in
        the commutation-free ablation (Figure 17a) only partner-side gates
        may be absorbed.
        """
        if not isinstance(item, Gate):
            return False
        if item.is_barrier or item.is_measurement or item.name == "reset":
            return False
        if item.is_single_qubit and item.qubits[0] == hub:
            return self.use_commutation
        return bool(item.qubits) and set(item.qubits) <= remote_qubits

    def _commutes_with_block(self, item: ScheduleItem, block: CommBlock) -> bool:
        gates = item.gates if isinstance(item, CommBlock) else [item]
        for gate in gates:
            if gate.is_barrier or gate.is_measurement or gate.name == "reset":
                return False
            for block_gate in block.gates:
                if not commutes(gate, block_gate):
                    return False
        return True

    # ------------------------------------------------------------- leftovers

    def _blockify_leftovers(self, items: List[ScheduleItem]) -> List[ScheduleItem]:
        """Wrap every remaining raw remote two-qubit gate in a singleton block."""
        out: List[ScheduleItem] = []
        for item in items:
            if isinstance(item, Gate) and self._is_remote_2q(item):
                a, b = item.qubits
                block = CommBlock(hub_qubit=a,
                                  hub_node=self.mapping.node_of(a),
                                  remote_node=self.mapping.node_of(b))
                block.append(item)
                out.append(block)
            else:
                out.append(item)
        return out


def aggregate_communications(circuit: Circuit, mapping: QubitMapping,
                             use_commutation: bool = True,
                             max_sweeps: int = 3) -> AggregationResult:
    """Run the communication aggregation pass.

    Args:
        circuit: input circuit, ideally already decomposed to the CX basis.
        mapping: static qubit-to-node assignment.
        use_commutation: disable to reproduce the "no commutation" ablation of
            Figure 17(a) (blocks are then only formed from physically adjacent
            remote gates).
        max_sweeps: maximum number of refinement sweeps over all pairs.
    """
    return CommAggregator(circuit, mapping, use_commutation=use_commutation,
                          max_sweeps=max_sweeps).run()
