"""Communication aggregation pass (Section 4.2 of the paper).

The pass rewrites a distributed circuit so that remote two-qubit gates
between one qubit (the *hub*) and one node are grouped into contiguous
*burst communication blocks*.  Grouping is only allowed when justified by
gate commutation, so the rewritten program is always semantically equivalent
to the input (``AggregationResult.to_circuit()`` flattens the result back to
a plain circuit, which the tests check against the original by simulation).

The implementation folds the paper's three steps into one scan per
qubit-node pair, processed in descending order of remote-gate count
(preprocessing), with commutation-based deferral of intervening gates
(linear merge, Algorithm 1) and repeated sweeps until no block grows
(iterative refinement):

* gates allowed inside a block (single-qubit gates on the hub, local gates
  confined to the remote node) are absorbed in place;
* any other intervening gate is *deferred* past the block when it commutes
  with every gate already in the block, mirroring Algorithm 1's
  ``non_commute_gates`` bookkeeping;
* a gate that can neither be absorbed nor deferred closes the block, which
  is the paper's "break" case.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..comm.blocks import CommBlock
from ..ir.circuit import Circuit
from ..ir.commutation import commutation_cache_stats, commutes
from ..ir.gates import Gate
from ..obs.span import stage
from ..partition.mapping import QubitMapping

__all__ = ["AggregationResult", "aggregate_communications", "CommAggregator"]

#: Items of the rewritten program: plain gates or burst blocks.
ScheduleItem = Union[Gate, CommBlock]

#: Operations that can never live in, commute past, or defer around a block.
_BLOCKING_NAMES = frozenset({"barrier", "measure", "reset"})


@dataclass
class AggregationResult:
    """Output of the aggregation pass."""

    circuit: Circuit
    mapping: QubitMapping
    items: List[ScheduleItem]
    blocks: List[CommBlock]

    def to_circuit(self) -> Circuit:
        """Flatten the aggregated program back into a plain circuit.

        The result is a commutation-justified reordering of the input
        circuit; it is used by the verification tests and by downstream
        passes that need a gate-level view.
        """
        out = Circuit(self.circuit.num_qubits, name=f"{self.circuit.name}-aggregated")
        for item in self.items:
            if isinstance(item, CommBlock):
                out.extend(item.gates)
            else:
                out.append(item)
        return out

    def num_blocks(self) -> int:
        return len(self.blocks)

    def remote_gates_in_blocks(self) -> int:
        return sum(b.num_remote_gates(self.mapping) for b in self.blocks)

    def block_sizes(self) -> List[int]:
        """Remote-gate count per block (the burst sizes)."""
        return [b.num_remote_gates(self.mapping) for b in self.blocks]


class CommAggregator:
    """Implements the aggregation pass over one circuit and mapping.

    The pass is *indexed*: remote-pair eligibility is precomputed per gate
    once, the per-pair raw-gate histogram that drives both the processing
    order and the "anything left for this pair?" check is maintained
    incrementally as gates are absorbed into blocks, and per-item qubit sets
    come from caches (:attr:`Gate.qubit_set`, :attr:`CommBlock.touched_set`)
    instead of per-query allocations.  The output is identical to the
    original scanning implementation, which is preserved in
    :mod:`repro.core.aggregation_reference` and diffed against this one by
    the equivalence tests and the perf-regression benchmark.
    """

    def __init__(self, circuit: Circuit, mapping: QubitMapping,
                 use_commutation: bool = True, max_sweeps: int = 3) -> None:
        if circuit.num_qubits != mapping.num_qubits:
            raise ValueError("circuit and mapping disagree on qubit count")
        self.circuit = circuit
        self.mapping = mapping
        self.use_commutation = use_commutation
        self.max_sweeps = max_sweeps
        #: node index per program qubit (dense list; mapping covers 0..n-1).
        self._node: List[int] = [mapping.node_of(q)
                                 for q in range(circuit.num_qubits)]
        # Filled by run(): id(gate) -> its two (hub, remote-node) pairs, the
        # live pair histogram, and the count of raw remote gates left.
        self._gate_pairs: Dict[int, Tuple[Tuple[int, int], Tuple[int, int]]] = {}
        self._histogram: Counter = Counter()
        self._raw_remaining = 0

    # ------------------------------------------------------------------ public

    def run(self) -> AggregationResult:
        items: List[ScheduleItem] = list(self.circuit.gates)
        self._build_index(items)
        previous_block_count = -1
        for _ in range(self.max_sweeps):
            for pair in self._pairs_by_weight_indexed():
                if self._histogram[pair] == 0:
                    continue
                items = self._aggregate_pair(items, pair)
            blocks_now = sum(isinstance(i, CommBlock) for i in items)
            if self._raw_remaining == 0 or blocks_now == previous_block_count:
                break
            previous_block_count = blocks_now
        items = self._blockify_leftovers(items)
        blocks = [item for item in items if isinstance(item, CommBlock)]
        return AggregationResult(self.circuit, self.mapping, items, blocks)

    # -------------------------------------------------------------- the index

    def _build_index(self, items: Sequence[ScheduleItem]) -> None:
        """Precompute per-gate remote-pair eligibility and the pair histogram.

        A remote two-qubit gate on qubits ``(a, b)`` is eligible for exactly
        the two directed pairs ``(a, node(b))`` and ``(b, node(a))``; both
        are recorded so eligibility during a pair sweep is one dict lookup.
        """
        node = self._node
        gate_pairs = self._gate_pairs = {}
        histogram = self._histogram = Counter()
        for item in items:
            if isinstance(item, Gate) and self._is_remote_2q(item):
                a, b = item.qubits
                pair_a = (a, node[b])
                pair_b = (b, node[a])
                gate_pairs[id(item)] = (pair_a, pair_b)
                histogram[pair_a] += 1
                histogram[pair_b] += 1
        self._raw_remaining = sum(1 for item in items
                                  if id(item) in gate_pairs)

    def _pairs_by_weight_indexed(self) -> List[Tuple[int, int]]:
        """Snapshot of the live histogram, ordered like ``_pairs_by_weight``."""
        ordered = sorted(((pair, count) for pair, count
                          in self._histogram.items() if count > 0),
                         key=lambda kv: (-kv[1], kv[0]))
        return [pair for pair, _ in ordered]

    def _absorb_into_block(self, gate: Gate) -> None:
        """Account for a raw remote gate moving into a block."""
        pair_a, pair_b = self._gate_pairs[id(gate)]
        self._histogram[pair_a] -= 1
        self._histogram[pair_b] -= 1
        self._raw_remaining -= 1

    # ------------------------------------------------------------- pair order

    def _is_remote_2q(self, gate: Gate) -> bool:
        return gate.is_two_qubit and self.mapping.is_remote(gate)

    def _pairs_by_weight(self, items: Sequence[ScheduleItem]) -> List[Tuple[int, int]]:
        """Qubit-node pairs ordered by descending raw remote-gate count."""
        histogram: Counter = Counter()
        for item in items:
            if isinstance(item, Gate) and self._is_remote_2q(item):
                a, b = item.qubits
                histogram[(a, self.mapping.node_of(b))] += 1
                histogram[(b, self.mapping.node_of(a))] += 1
        ordered = sorted(histogram.items(), key=lambda kv: (-kv[1], kv[0]))
        return [pair for pair, _ in ordered]

    def _raw_remote_count(self, items: Sequence[ScheduleItem],
                          pair: Tuple[int, int]) -> int:
        qubit, node = pair
        count = 0
        for item in items:
            if isinstance(item, Gate) and self._eligible(item, qubit, node):
                count += 1
        return count

    def _eligible(self, gate: Gate, hub: int, remote_node: int) -> bool:
        """Is ``gate`` a remote two-qubit gate between ``hub`` and ``remote_node``?"""
        if not self._is_remote_2q(gate):
            return False
        if hub not in gate.qubits:
            return False
        other = gate.qubits[0] if gate.qubits[1] == hub else gate.qubits[1]
        return self.mapping.node_of(other) == remote_node

    # --------------------------------------------------------- per-pair sweep

    def _aggregate_pair(self, items: List[ScheduleItem],
                        pair: Tuple[int, int]) -> List[ScheduleItem]:
        hub, remote_node = pair
        hub_node = self._node[hub]
        if hub_node == remote_node:
            return items
        remote_qubits = frozenset(self.mapping.qubits_on(remote_node))
        gate_pairs = self._gate_pairs

        out: List[ScheduleItem] = []
        block: Optional[CommBlock] = None
        block_qubits: Set[int] = set()
        block_by_qubit: Dict[int, List[Gate]] = defaultdict(list)
        deferred: List[ScheduleItem] = []
        deferred_by_qubit: Dict[int, List[int]] = defaultdict(list)
        # Incremental conjunction memo for commutes_with_deferred: two
        # single-gate candidates with the same name/params whose
        # deferred-touching qubits are identical (position and value) face
        # exactly the same pairwise patterns, because a candidate qubit
        # absent from deferred_by_qubit cannot overlap any deferred gate.
        # Each entry records how many deferred items its verdict covers, so
        # a later candidate with the same signature only checks the newly
        # deferred suffix instead of the whole list.
        conjunction_memo: Dict[tuple, Tuple[int, bool]] = {}
        # Same incremental-signature scheme against the open block's gates
        # (the block also only grows until it closes).
        block_memo: Dict[tuple, Tuple[int, bool]] = {}

        def close_block() -> None:
            nonlocal block, deferred, deferred_by_qubit, block_qubits, \
                block_by_qubit
            block = None
            block_qubits = set()
            block_by_qubit = defaultdict(list)
            out.extend(deferred)
            deferred = []
            deferred_by_qubit = defaultdict(list)
            conjunction_memo.clear()
            block_memo.clear()

        def check_against_deferred(gate: Gate, checked: Set[int]) -> bool:
            # ``checked`` is shared across a multi-gate candidate: each
            # deferred item is tested against the first candidate gate that
            # reaches it, exactly as the original implementation did.
            for qubit in gate.qubits:
                for index in deferred_by_qubit.get(qubit, ()):
                    if index in checked:
                        continue
                    checked.add(index)
                    other = deferred[index]
                    other_gates = (other.gates if isinstance(other, CommBlock)
                                   else (other,))
                    for other_gate in other_gates:
                        if not commutes(gate, other_gate):
                            return False
            return True

        def commutes_with_deferred(candidate: ScheduleItem) -> bool:
            count = len(deferred)
            if not count:
                return True
            if isinstance(candidate, CommBlock):
                checked: Set[int] = set()
                for gate in candidate.gates:
                    if not check_against_deferred(gate, checked):
                        return False
                return True
            signature = (candidate.name, candidate.params,
                         tuple((pos, q)
                               for pos, q in enumerate(candidate.qubits)
                               if q in deferred_by_qubit))
            entry = conjunction_memo.get(signature)
            if entry is None:
                verdict = check_against_deferred(candidate, set())
            else:
                covered, verdict = entry
                if not verdict:
                    # A failed conjunction stays failed as deferred grows.
                    return False
                if covered == count:
                    return True
                # Only the items deferred since the cached verdict need
                # checking; disjoint ones resolve instantly inside commutes.
                for index in range(covered, count):
                    other = deferred[index]
                    other_gates = (other.gates if isinstance(other, CommBlock)
                                   else (other,))
                    for other_gate in other_gates:
                        if not commutes(candidate, other_gate):
                            verdict = False
                            break
                    if not verdict:
                        break
            conjunction_memo[signature] = (count, verdict)
            return verdict

        def check_against_block(gate: Gate) -> bool:
            seen: Set[int] = set()
            for qubit in gate.qubits:
                for block_gate in block_by_qubit.get(qubit, ()):
                    marker = id(block_gate)
                    if marker in seen:
                        continue
                    seen.add(marker)
                    if not commutes(gate, block_gate):
                        return False
            return True

        def commutes_with_block(candidate: ScheduleItem) -> bool:
            if isinstance(candidate, CommBlock):
                for gate in candidate.gates:
                    if gate.name in _BLOCKING_NAMES:
                        return False
                    if not check_against_block(gate):
                        return False
                return True
            if candidate.name in _BLOCKING_NAMES:
                return False
            count = len(block.gates)
            signature = (candidate.name, candidate.params,
                         tuple((pos, q)
                               for pos, q in enumerate(candidate.qubits)
                               if q in block_qubits))
            entry = block_memo.get(signature)
            if entry is None:
                verdict = check_against_block(candidate)
            else:
                covered, verdict = entry
                if not verdict:
                    return False
                if covered == count:
                    return True
                for block_gate in block.gates[covered:]:
                    if not commutes(candidate, block_gate):
                        verdict = False
                        break
            block_memo[signature] = (count, verdict)
            return verdict

        def absorb(gate: Gate) -> None:
            block.append(gate)
            block_qubits.update(gate.qubits)
            for qubit in gate.qubits:
                block_by_qubit[qubit].append(gate)

        def defer(item: ScheduleItem) -> None:
            index = len(deferred)
            deferred.append(item)
            for qubit in item_qubits(item):
                deferred_by_qubit[qubit].append(index)

        def item_qubits(candidate: ScheduleItem):
            if isinstance(candidate, CommBlock):
                return candidate.touched_set
            return candidate.qubit_set

        for item in items:
            # Eligibility (a raw remote 2q gate of this exact pair) is one
            # precomputed lookup; gates already inside blocks are not items.
            eligible_pairs = gate_pairs.get(id(item))
            if eligible_pairs is not None and (pair == eligible_pairs[0]
                                               or pair == eligible_pairs[1]):
                # Pulling this gate into the open block hops it over every
                # deferred item, so that move must be commutation-justified.
                if block is not None and deferred and not (
                        self.use_commutation and commutes_with_deferred(item)):
                    close_block()
                if block is None:
                    block = CommBlock(hub_qubit=hub, hub_node=hub_node,
                                      remote_node=remote_node)
                    out.append(block)
                absorb(item)
                self._absorb_into_block(item)
                continue

            if block is None:
                out.append(item)
                continue

            if self._allowed_in_block(item, hub, remote_qubits):
                # Absorbing keeps the gate at its original position relative
                # to the block; it only reorders against deferred items.
                if not deferred or (self.use_commutation
                                    and commutes_with_deferred(item)):
                    absorb(item)
                elif self.use_commutation:
                    defer(item)
                else:
                    close_block()
                    out.append(item)
                continue

            if not self.use_commutation:
                close_block()
                out.append(item)
                continue

            disjoint_from_block = block_qubits.isdisjoint(item_qubits(item))
            if (disjoint_from_block or commutes_with_block(item)) \
                    and commutes_with_deferred(item):
                defer(item)
            else:
                close_block()
                out.append(item)

        close_block()
        return out

    def _allowed_in_block(self, item: ScheduleItem, hub: int,
                          remote_qubits: Set[int]) -> bool:
        """May ``item`` live inside a block for (hub, remote node)?

        Allowed content: single-qubit gates on the hub (they run on the hub
        or on its cat copy), and local gates entirely on the remote node's
        qubits (they run at the remote node while the communication is live).

        Absorbing a hub-side gate into the communication window is only
        sound because we know how it commutes with the remote gates, so in
        the commutation-free ablation (Figure 17a) only partner-side gates
        may be absorbed.
        """
        if not isinstance(item, Gate):
            return False
        if item.name in _BLOCKING_NAMES:
            return False
        if item._is_single and item.qubits[0] == hub:
            return self.use_commutation
        return bool(item.qubits) and item._qubit_set <= remote_qubits

    # ------------------------------------------------------------- leftovers

    def _blockify_leftovers(self, items: List[ScheduleItem]) -> List[ScheduleItem]:
        """Wrap every remaining raw remote two-qubit gate in a singleton block."""
        out: List[ScheduleItem] = []
        for item in items:
            if isinstance(item, Gate) and self._is_remote_2q(item):
                a, b = item.qubits
                block = CommBlock(hub_qubit=a,
                                  hub_node=self.mapping.node_of(a),
                                  remote_node=self.mapping.node_of(b))
                block.append(item)
                out.append(block)
            else:
                out.append(item)
        return out


def aggregate_communications(circuit: Circuit, mapping: QubitMapping,
                             use_commutation: bool = True,
                             max_sweeps: int = 3) -> AggregationResult:
    """Run the communication aggregation pass.

    Args:
        circuit: input circuit, ideally already decomposed to the CX basis.
        mapping: static qubit-to-node assignment.
        use_commutation: disable to reproduce the "no commutation" ablation of
            Figure 17(a) (blocks are then only formed from physically adjacent
            remote gates).
        max_sweeps: maximum number of refinement sweeps over all pairs.

    Under an active :mod:`repro.obs` tracer the pass runs inside an
    ``aggregation`` span carrying block/item counts and the commutation
    oracle's cache activity for this pass (hit/miss deltas).
    """
    with stage("aggregation") as span:
        if not span.enabled:
            return CommAggregator(circuit, mapping,
                                  use_commutation=use_commutation,
                                  max_sweeps=max_sweeps).run()
        before = commutation_cache_stats()
        result = CommAggregator(circuit, mapping,
                                use_commutation=use_commutation,
                                max_sweeps=max_sweeps).run()
        after = commutation_cache_stats()
        span.set("gates", len(circuit))
        span.set("blocks", len(result.blocks))
        span.set("items", len(result.items))
        span.set("commutation_hits", after["hits"] - before["hits"])
        span.set("commutation_misses", after["misses"] - before["misses"])
        return result
