"""AutoComm core passes: aggregation, assignment, scheduling and the pipeline."""

from .aggregation import AggregationResult, aggregate_communications, CommAggregator
from .aggregation_reference import (
    ReferenceCommAggregator,
    aggregate_communications_reference,
)
from .assignment import AssignmentResult, assign_communications, choose_scheme
from .assignment_reference import (
    assign_communications_reference,
    block_latency_reference,
)
from .scheduling import (
    ScheduleResult,
    ScheduledOp,
    SchedulePlan,
    FusedTPChain,
    MigrationOp,
    schedule_communications,
    schedule_phased_communications,
    plan_schedule,
    plan_phased_schedule,
    fuse_tp_chains,
    compute_boundary_bubble,
)
from .schedule_passes import (
    ScheduleDraft,
    SCHEDULE_PASSES,
    register_schedule_pass,
    default_passes,
    run_schedule_passes,
)
from .scheduling_reference import (
    plan_schedule_reference,
    schedule_communications_reference,
)
from .metrics import (
    CompilationMetrics,
    comparison_factors,
    burst_distribution,
    distribution_from_loads,
    communication_loads,
)
from .pipeline import (AutoCommConfig, AutoCommCompiler, CompiledPhase,
                       CompiledProgram, compile_autocomm)
from .collective import CollectiveBlock, form_collectives, collective_latency

__all__ = [
    "AggregationResult",
    "aggregate_communications",
    "CommAggregator",
    "ReferenceCommAggregator",
    "aggregate_communications_reference",
    "AssignmentResult",
    "assign_communications",
    "choose_scheme",
    "assign_communications_reference",
    "block_latency_reference",
    "ScheduleResult",
    "ScheduledOp",
    "SchedulePlan",
    "FusedTPChain",
    "MigrationOp",
    "schedule_communications",
    "schedule_phased_communications",
    "plan_schedule",
    "plan_phased_schedule",
    "fuse_tp_chains",
    "compute_boundary_bubble",
    "ScheduleDraft",
    "SCHEDULE_PASSES",
    "register_schedule_pass",
    "default_passes",
    "run_schedule_passes",
    "plan_schedule_reference",
    "schedule_communications_reference",
    "CompilationMetrics",
    "comparison_factors",
    "burst_distribution",
    "distribution_from_loads",
    "communication_loads",
    "AutoCommConfig",
    "AutoCommCompiler",
    "CompiledPhase",
    "CompiledProgram",
    "compile_autocomm",
    "CollectiveBlock",
    "form_collectives",
    "collective_latency",
]
