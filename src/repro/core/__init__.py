"""AutoComm core passes: aggregation, assignment, scheduling and the pipeline."""

from .aggregation import AggregationResult, aggregate_communications, CommAggregator
from .assignment import AssignmentResult, assign_communications, choose_scheme
from .scheduling import (
    ScheduleResult,
    ScheduledOp,
    SchedulePlan,
    FusedTPChain,
    schedule_communications,
    plan_schedule,
    fuse_tp_chains,
)
from .metrics import (
    CompilationMetrics,
    comparison_factors,
    burst_distribution,
    communication_loads,
)
from .pipeline import AutoCommConfig, AutoCommCompiler, CompiledProgram, compile_autocomm
from .collective import CollectiveBlock, form_collectives, collective_latency

__all__ = [
    "AggregationResult",
    "aggregate_communications",
    "CommAggregator",
    "AssignmentResult",
    "assign_communications",
    "choose_scheme",
    "ScheduleResult",
    "ScheduledOp",
    "SchedulePlan",
    "FusedTPChain",
    "schedule_communications",
    "plan_schedule",
    "fuse_tp_chains",
    "CompilationMetrics",
    "comparison_factors",
    "burst_distribution",
    "communication_loads",
    "AutoCommConfig",
    "AutoCommCompiler",
    "CompiledProgram",
    "compile_autocomm",
    "CollectiveBlock",
    "form_collectives",
    "collective_latency",
]
