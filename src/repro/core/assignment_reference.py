"""Reference (pre-optimization) assignment and cost accounting.

Preserves the pre-overhaul cost profile of the assignment pass and the
block analyses it leans on: remote-gate lists, communication patterns and
Cat-Comm segmentations are recomputed by scanning the block's gates on
every query (no per-block caches), structural gate properties walk the gate
registry (as the original ``Gate`` properties did) and remoteness rebuilds
the node set per gate (as the original ``QubitMapping.is_remote`` did).

Together with ``aggregation_reference`` and ``scheduling_reference`` this
completes the preserved pre-optimization compile pipeline used by the
equivalence tests and by ``benchmarks/bench_compiler_perf.py``.

Do not "optimize" this module: its slowness is the baseline being measured.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..comm.blocks import (_CONTROL_TRANSPARENT, _TARGET_TRANSPARENT,
                           CommBlock, CommPattern, CommScheme)
from ..comm.cost import CommCost
from ..hardware.timing import DEFAULT_LATENCY, LatencyModel
from ..ir.gates import Gate, gate_spec
from ..partition.mapping import QubitMapping
from .aggregation import AggregationResult
from .assignment import AssignmentResult

__all__ = ["assign_communications_reference", "block_latency_reference"]


# Registry-walking property replicas (see commutation_reference).

def _is_unitary(gate: Gate) -> bool:
    return gate_spec(gate.name).unitary is not None


def _is_single_qubit(gate: Gate) -> bool:
    return _is_unitary(gate) and len(gate.qubits) == 1


def _is_two_qubit(gate: Gate) -> bool:
    return _is_unitary(gate) and len(gate.qubits) == 2


def _is_multi_qubit(gate: Gate) -> bool:
    return _is_unitary(gate) and len(gate.qubits) >= 2


def _is_remote(mapping: QubitMapping, gate: Gate) -> bool:
    """Set-building replica of the pre-optimization ``is_remote``."""
    if not _is_multi_qubit(gate):
        return False
    return len({mapping._assignment[q] for q in gate.qubits}) > 1


# Scanning replicas of the CommBlock analyses (no caching).

def _remote_gates(block: CommBlock, mapping: QubitMapping) -> List[Gate]:
    return [g for g in block.gates
            if _is_two_qubit(g) and _is_remote(mapping, g)
            and block.hub_qubit in g.qubits]


def _pattern(block: CommBlock, mapping: QubitMapping) -> CommPattern:
    roles = set()
    for gate in _remote_gates(block, mapping):
        if gate.control == block.hub_qubit:
            roles.add("control")
        elif gate.target == block.hub_qubit:
            roles.add("target")
        else:
            roles.add("control")
    if roles == {"control"}:
        return CommPattern.UNIDIRECTIONAL_CONTROL
    if roles == {"target"}:
        return CommPattern.UNIDIRECTIONAL_TARGET
    return CommPattern.BIDIRECTIONAL


def _cat_comm_segments(block: CommBlock,
                       mapping: QubitMapping) -> List[List[Gate]]:
    segments: List[List[Gate]] = []
    current: List[Gate] = []
    current_role: Optional[str] = None
    pending_hub_blocker = False

    def close() -> None:
        nonlocal current, current_role, pending_hub_blocker
        if current:
            segments.append(current)
        current = []
        current_role = None
        pending_hub_blocker = False

    for gate in block.gates:
        is_remote = (_is_two_qubit(gate) and _is_remote(mapping, gate)
                     and block.hub_qubit in gate.qubits)
        if is_remote:
            if gate.control == block.hub_qubit:
                role = "control"
            elif gate.target == block.hub_qubit:
                role = "target"
            else:
                role = "control"
            if current_role is None:
                current_role = role
            elif role != current_role or pending_hub_blocker:
                close()
                current_role = role
            current.append(gate)
            pending_hub_blocker = False
        elif _is_single_qubit(gate) and gate.qubits[0] == block.hub_qubit:
            transparent = (_CONTROL_TRANSPARENT if current_role in (None, "control")
                           else _TARGET_TRANSPARENT)
            if gate.name not in transparent and current:
                pending_hub_blocker = True
            current.append(gate)
        else:
            current.append(gate)
    close()
    return [seg for seg in segments if any(
        _is_two_qubit(g) and _is_remote(mapping, g) for g in seg)] or (
            [block.gates] if block.gates else [])


def _cat_comm_cost(block: CommBlock, mapping: QubitMapping) -> int:
    return len(_cat_comm_segments(block, mapping))


def _choose_scheme(block: CommBlock, mapping: QubitMapping,
                   cat_only: bool = False) -> CommScheme:
    if cat_only:
        return CommScheme.CAT
    if _cat_comm_cost(block, mapping) <= 1:
        return CommScheme.CAT
    return CommScheme.TP


def _block_comm_count(block: CommBlock, mapping: QubitMapping) -> int:
    if block.scheme is CommScheme.TP:
        return block.tp_comm_cost()
    if block.scheme is CommScheme.CAT:
        return _cat_comm_cost(block, mapping)
    raise ValueError("block has no communication scheme assigned")


def _block_remote_cx_per_comm(block: CommBlock,
                              mapping: QubitMapping) -> float:
    remote = len(_remote_gates(block, mapping))
    comms = _block_comm_count(block, mapping)
    if comms == 0:
        return 0.0
    return remote / comms


def _total_comm_count(blocks: List[CommBlock],
                      mapping: QubitMapping) -> CommCost:
    total = 0
    tp = 0
    cat = 0
    peak = 0.0
    for block in blocks:
        count = _block_comm_count(block, mapping)
        total += count
        if block.scheme is CommScheme.TP:
            tp += count
        else:
            cat += count
        peak = max(peak, _block_remote_cx_per_comm(block, mapping))
    return CommCost(total_comm=total, tp_comm=tp, cat_comm=cat,
                    peak_remote_cx=peak)


def block_latency_reference(block: CommBlock, mapping: QubitMapping,
                            latency: LatencyModel = DEFAULT_LATENCY) -> float:
    """Scanning replica of :func:`repro.comm.cost.block_latency`."""
    num_2q = 0
    num_1q = 0
    for gate in block.gates:
        if _is_multi_qubit(gate):
            num_2q += 1
        elif _is_single_qubit(gate):
            num_1q += 1
    if block.scheme is CommScheme.TP:
        return latency.tp_comm_latency(num_2q, num_1q)
    segments = max(1, _cat_comm_cost(block, mapping))
    body = num_2q * latency.t_2q + num_1q * latency.t_1q
    return segments * (latency.t_cat_entangle + latency.t_cat_disentangle) + body


def assign_communications_reference(aggregation: AggregationResult,
                                    cat_only: bool = False
                                    ) -> AssignmentResult:
    """Assign communication schemes through the reference analyses."""
    mapping = aggregation.mapping
    pattern_histogram: Dict[CommPattern, int] = {}
    scheme_histogram: Dict[CommScheme, int] = {}
    for block in aggregation.blocks:
        pattern = _pattern(block, mapping)
        pattern_histogram[pattern] = pattern_histogram.get(pattern, 0) + 1
        scheme = _choose_scheme(block, mapping, cat_only=cat_only)
        block.scheme = scheme
        scheme_histogram[scheme] = scheme_histogram.get(scheme, 0) + 1
    cost = _total_comm_count(aggregation.blocks, mapping)
    return AssignmentResult(
        aggregation=aggregation,
        blocks=list(aggregation.blocks),
        cost=cost,
        pattern_histogram=pattern_histogram,
        scheme_histogram=scheme_histogram,
    )
