"""AutoComm compilation pipeline.

:class:`AutoCommCompiler` chains the three passes of the paper —
aggregation, assignment and scheduling — behind one call and produces a
:class:`CompiledProgram` carrying the intermediate results and the
evaluation metrics.  The baselines in :mod:`repro.baselines` produce the
same :class:`CompiledProgram` type so that every compiler is measured with
identical code.

**Phase-structured compilation** (``AutoCommConfig.remap = "bursts"``)
extends the paper's single static OEE mapping with dynamic inter-phase
remapping: the aggregated program is segmented at burst-phase boundaries
(extending Baker et al.'s time-sliced partitioning from gate slices to the
aggregated burst structure), and each later phase runs an incremental,
migration-cost-aware OEE pass (:func:`repro.partition.oee.oee_repartition`)
seeded from the previous phase's mapping.  A remap only happens where the
phase's routed communication savings beat the migration bill — each qubit
move is charged its routed teleport distance — and the moves are made
explicit as :class:`~repro.core.scheduling.MigrationOp` teleports between
the phases, scheduled and simulated like any other communication.  With the
default ``remap = "never"`` the pipeline is byte-identical to the static
one.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..comm.blocks import CommBlock
from ..hardware.network import QuantumNetwork
from ..ir.circuit import Circuit
from ..ir.decompose import decompose_to_cx
from ..obs.span import Span, Tracer, stage
from ..partition.mapping import QubitMapping
from ..partition.oee import oee_partition, oee_repartition
from .aggregation import (AggregationResult, ScheduleItem,
                          aggregate_communications)
from .assignment import AssignmentResult, assign_communications
from .metrics import (CompilationMetrics, burst_distribution,
                      communication_loads, distribution_from_loads)
from .scheduling import (MigrationOp, ScheduleResult, schedule_communications,
                         schedule_phased_communications)

__all__ = ["AutoCommConfig", "CompiledPhase", "CompiledProgram",
           "AutoCommCompiler", "compile_autocomm"]

#: Accepted values of :attr:`AutoCommConfig.remap`.
REMAP_MODES = ("never", "bursts")

#: Accepted values of :attr:`AutoCommConfig.phase_sizing`.
PHASE_SIZING_MODES = ("fixed", "auto")


@dataclass(frozen=True)
class AutoCommConfig:
    """Knobs of the AutoComm pipeline (each maps to one paper ablation)."""

    #: Use gate commutation during aggregation (Figure 17a ablation when off).
    use_commutation: bool = True
    #: Force Cat-Comm for every block (Figure 17b ablation when on).
    cat_only: bool = False
    #: Scheduling strategy: "burst-greedy" (AutoComm) or "greedy" (Figure 17c).
    schedule_strategy: str = "burst-greedy"
    #: Decompose the input to the CX basis before compiling.
    decompose: bool = True
    #: Refinement sweeps of the aggregation pass.
    max_sweeps: int = 3
    #: Dynamic inter-phase remapping: "never" keeps the paper's single
    #: static mapping (byte-identical to the pre-phase pipeline); "bursts"
    #: segments the aggregated program at burst-phase boundaries and
    #: re-partitions incrementally between phases, migration-cost-aware.
    remap: str = "never"
    #: Burst blocks per phase when segmenting under ``remap = "bursts"``.
    phase_blocks: int = 8
    #: Zero-bubble phase boundaries: schedule migration teleports on
    #: per-qubit edges so they overlap with compute on both sides of the
    #: boundary, instead of draining each phase behind a hard barrier.
    #: Adaptive — the barrier plans stay in the candidate pool, so an
    #: overlapped schedule is never slower than the barrier one.  Requires
    #: ``remap = "bursts"``.
    overlap: bool = False
    #: How phase boundaries are placed: "fixed" slices every
    #: ``phase_blocks`` burst blocks; "auto" searches a window around that
    #: quota and puts each boundary where the repartitioner's migration
    #: bill (priced via the routed migration-distance matrix) is cheapest.
    #: Requires ``remap = "bursts"``.
    phase_sizing: str = "fixed"


@dataclass
class CompiledPhase:
    """One phase of a phase-structured compile: its mapping and passes."""

    index: int
    mapping: QubitMapping
    aggregation: AggregationResult
    assignment: AssignmentResult

    @property
    def blocks(self) -> List[CommBlock]:
        return self.assignment.blocks


@dataclass
class CompiledProgram:
    """Result of compiling one distributed program."""

    name: str
    compiler: str
    circuit: Circuit
    mapping: QubitMapping
    network: QuantumNetwork
    blocks: List[CommBlock]
    metrics: CompilationMetrics
    aggregation: Optional[AggregationResult] = None
    assignment: Optional[AssignmentResult] = None
    schedule: Optional[ScheduleResult] = None
    #: Dynamic-remapping mode the program was compiled under.
    remap: str = "never"
    #: Phase structure of a ``remap = "bursts"`` compile (``None`` for the
    #: static pipeline).  ``mapping`` then holds the *initial* (phase-0)
    #: mapping; each phase carries its own.
    phases: Optional[List[CompiledPhase]] = None
    #: One migration list per phase boundary (``len(phases) - 1`` entries).
    migrations: Optional[List[List[MigrationOp]]] = None
    #: Stage-timing tree of the compile (:mod:`repro.obs`): wall time and
    #: counters per pass, phases nested.  Purely observational — ``None``
    #: when tracing was globally disabled — and excluded from every
    #: equivalence comparison.
    spans: Optional[Span] = None

    def burst_distribution(self, max_x: Optional[int] = None) -> Dict[int, float]:
        """Figure 15 distribution for this compiled program.

        Phase-structured programs pool per-phase communication loads, each
        classified under its own phase mapping.
        """
        if self.phases is not None:
            loads: List[float] = []
            for phase in self.phases:
                loads.extend(communication_loads(phase.blocks, phase.mapping))
            return distribution_from_loads(loads, max_x=max_x)
        return burst_distribution(self.blocks, self.mapping, max_x=max_x)

    def summary(self) -> Dict[str, object]:
        data = self.metrics.as_dict()
        data["compiler"] = self.compiler
        return data


class AutoCommCompiler:
    """The burst-communication-centric compiler of the paper."""

    def __init__(self, config: Optional[AutoCommConfig] = None) -> None:
        self.config = config or AutoCommConfig()
        if self.config.remap not in REMAP_MODES:
            raise ValueError(f"unknown remap mode {self.config.remap!r}; "
                             f"choose from {REMAP_MODES}")
        if self.config.phase_blocks < 1:
            raise ValueError("phase_blocks must be >= 1")
        if self.config.phase_sizing not in PHASE_SIZING_MODES:
            raise ValueError(
                f"unknown phase sizing {self.config.phase_sizing!r}; "
                f"choose from {PHASE_SIZING_MODES}")
        if self.config.remap == "never":
            if self.config.overlap:
                raise ValueError('overlap requires remap="bursts"')
            if self.config.phase_sizing != "fixed":
                raise ValueError('phase_sizing="auto" requires '
                                 'remap="bursts"')

    def compile(self, circuit: Circuit, network: QuantumNetwork,
                mapping: Optional[QubitMapping] = None,
                cache=None) -> CompiledProgram:
        """Compile ``circuit`` for ``network``.

        When ``mapping`` is omitted the qubits are placed with the OEE static
        partitioner, exactly as in the paper's experimental setup.

        Every compile runs under an :mod:`repro.obs` tracer: the returned
        program's ``spans`` field carries the stage-timing tree (one child
        per pass, phases nested) unless tracing was globally disabled.

        ``cache`` enables the persistent compile cache
        (:mod:`repro.persist`): a :class:`~repro.persist.CompileCache`, a
        directory path, ``None`` to consult the ``REPRO_CACHE_DIR``
        environment variable, or ``False`` to force caching off.  On a hit
        the whole pipeline is skipped and the deserialized program (with a
        fresh lookup-only span tree) is returned; on a miss the compiled
        program is stored before returning.
        """
        store = self._resolve_cache(cache)
        key = None
        cached = None
        with Tracer(f"compile/{circuit.name}") as tracer:
            if store is not None:
                from ..persist.fingerprint import compile_fingerprint
                key = compile_fingerprint(circuit, network, mapping,
                                          self.config)
                with stage("cache-lookup") as span:
                    cached = store.load(key)
                    span.set("hit", 1 if cached is not None else 0)
            if cached is None:
                if self.config.remap != "never":
                    program = self._compile_phased(circuit, network, mapping)
                else:
                    program = self._compile_static(circuit, network, mapping)
        if cached is not None:
            cached.spans = tracer.root
            return cached
        program.spans = tracer.root
        if store is not None:
            store.store(key, program)
        return program

    @staticmethod
    def _resolve_cache(cache):
        """Resolve the ``cache`` argument lazily.

        The guard keeps the default (uncached) path free of any
        :mod:`repro.persist` import — compilation without a cache neither
        pays for nor depends on the persistence layer.
        """
        if (cache is None or cache is False) \
                and not os.environ.get("REPRO_CACHE_DIR"):
            return None
        from ..persist.cache import resolve_cache
        return resolve_cache(cache)

    def _compile_static(self, circuit: Circuit, network: QuantumNetwork,
                        mapping: Optional[QubitMapping]) -> CompiledProgram:
        """The paper's single-mapping pipeline."""
        network.validate_capacity(circuit.num_qubits)
        with stage("decompose") as span:
            working = (decompose_to_cx(circuit) if self.config.decompose
                       else circuit)
            span.set("gates", len(working))
        if mapping is None:
            mapping = oee_partition(working, network).mapping

        aggregation = aggregate_communications(
            working, mapping,
            use_commutation=self.config.use_commutation,
            max_sweeps=self.config.max_sweeps)
        assignment = assign_communications(aggregation,
                                           cat_only=self.config.cat_only,
                                           network=network)
        schedule = schedule_communications(assignment, network,
                                           strategy=self.config.schedule_strategy)

        metrics = CompilationMetrics(
            name=circuit.name,
            total_comm=assignment.cost.total_comm,
            tp_comm=assignment.cost.tp_comm,
            cat_comm=assignment.cost.cat_comm,
            peak_rem_cx=assignment.cost.peak_remote_cx,
            latency=schedule.latency,
            num_blocks=len(assignment.blocks),
            num_remote_gates=mapping.count_remote_gates(working),
            total_epr_pairs=assignment.cost.total_epr_pairs,
            total_epr_latency=assignment.cost.total_epr_latency,
        )
        return CompiledProgram(
            name=circuit.name,
            compiler=self._compiler_label(),
            circuit=working,
            mapping=mapping,
            network=network,
            blocks=assignment.blocks,
            metrics=metrics,
            aggregation=aggregation,
            assignment=assignment,
            schedule=schedule,
        )

    # ------------------------------------------------- phase-structured path

    def _compile_phased(self, circuit: Circuit, network: QuantumNetwork,
                        mapping: Optional[QubitMapping]) -> CompiledProgram:
        """The ``remap = "bursts"`` pipeline: segment, repartition, migrate."""
        network.validate_capacity(circuit.num_qubits)
        with stage("decompose") as span:
            working = (decompose_to_cx(circuit) if self.config.decompose
                       else circuit)
            span.set("gates", len(working))
        if mapping is None:
            mapping = oee_partition(working, network).mapping

        # The initial aggregation discovers the burst structure the phases
        # are sliced along; phase 0 reuses its blocks verbatim.
        base = aggregate_communications(
            working, mapping,
            use_commutation=self.config.use_commutation,
            max_sweeps=self.config.max_sweeps)
        with stage("segment") as span:
            if self.config.phase_sizing == "auto":
                segments, decisions = _segment_items_auto(
                    base.items, self.config.phase_blocks, working, network,
                    mapping)
                span.set("sizing_auto", 1)
                span.set("sizing_candidates",
                         sum(len(d["candidates"]) for d in decisions))
            else:
                segments = _segment_items(base.items,
                                          self.config.phase_blocks)
                span.set("sizing_auto", 0)
            span.set("phases", len(segments))
            span.set("phase_blocks", self.config.phase_blocks)

        phases: List[CompiledPhase] = []
        migrations: List[List[MigrationOp]] = []
        current = mapping
        for index, segment in enumerate(segments):
            with stage(f"phase-{index}") as phase_span:
                phase_circuit = _phase_circuit(working, segment, index)
                if index > 0:
                    with stage("migration-planning") as plan_span:
                        repartition = oee_repartition(phase_circuit, network,
                                                      previous=current)
                        new_mapping = repartition.mapping
                        moves = [MigrationOp(qubit=q,
                                             source=current.node_of(q),
                                             target=new_mapping.node_of(q))
                                 for q in range(working.num_qubits)
                                 if new_mapping.node_of(q) != current.node_of(q)]
                        plan_span.set("moves", len(moves))
                        plan_span.set("migration_cost",
                                      repartition.migration_cost)
                    migrations.append(moves)
                    if moves:
                        current = new_mapping
                if current is mapping:
                    # Blocks from the initial aggregation were built under the
                    # initial mapping, so an un-remapped phase reuses them.
                    aggregation = AggregationResult(
                        circuit=phase_circuit, mapping=current,
                        items=list(segment),
                        blocks=[i for i in segment
                                if isinstance(i, CommBlock)])
                else:
                    aggregation = aggregate_communications(
                        phase_circuit, current,
                        use_commutation=self.config.use_commutation,
                        max_sweeps=self.config.max_sweeps)
                assignment = assign_communications(
                    aggregation, cat_only=self.config.cat_only,
                    network=network)
                phase_span.set("blocks", len(assignment.blocks))
                phases.append(CompiledPhase(index=index, mapping=current,
                                            aggregation=aggregation,
                                            assignment=assignment))

        schedule = schedule_phased_communications(
            phases, migrations, network,
            strategy=self.config.schedule_strategy,
            overlap=self.config.overlap)

        latency_model = network.latency
        all_moves = [move for boundary in migrations for move in boundary]
        migration_latency = sum(
            network.epr_latency(move.source, move.target)
            + latency_model.t_teleport for move in all_moves)
        costs = [phase.assignment.cost for phase in phases]
        total_epr_latency = (
            sum(c.total_epr_latency for c in costs)
            if all(c.total_epr_latency is not None for c in costs) else None)
        metrics = CompilationMetrics(
            name=circuit.name,
            total_comm=sum(c.total_comm for c in costs),
            tp_comm=sum(c.tp_comm for c in costs),
            cat_comm=sum(c.cat_comm for c in costs),
            peak_rem_cx=max((c.peak_remote_cx for c in costs), default=0.0),
            latency=schedule.latency,
            num_blocks=sum(len(phase.blocks) for phase in phases),
            num_remote_gates=sum(
                phase.mapping.count_remote_gates(phase.aggregation.circuit)
                for phase in phases),
            total_epr_pairs=sum(c.total_epr_pairs for c in costs),
            total_epr_latency=total_epr_latency,
            num_phases=len(phases),
            migration_moves=len(all_moves),
            migration_latency=migration_latency,
            boundary_bubble=schedule.boundary_bubble,
        )
        return CompiledProgram(
            name=circuit.name,
            compiler=self._compiler_label(),
            circuit=working,
            mapping=mapping,
            network=network,
            blocks=[block for phase in phases for block in phase.blocks],
            metrics=metrics,
            aggregation=base,
            assignment=None,
            schedule=schedule,
            remap=self.config.remap,
            phases=phases,
            migrations=migrations,
        )

    def _compiler_label(self) -> str:
        label = "autocomm"
        if not self.config.use_commutation:
            label += "-nocommute"
        if self.config.cat_only:
            label += "-catonly"
        if self.config.schedule_strategy != "burst-greedy":
            label += f"-{self.config.schedule_strategy}"
        if self.config.remap != "never":
            label += "-remap"
        if self.config.overlap:
            label += "-overlap"
        if self.config.phase_sizing == "auto":
            label += "-autosize"
        return label


def _segment_items(items: Sequence[ScheduleItem],
                   phase_blocks: int) -> List[List[ScheduleItem]]:
    """Slice an aggregated item list at burst-phase boundaries.

    A boundary is placed immediately before a burst block once the open
    phase already holds ``phase_blocks`` blocks; local gates between two
    blocks stay with the earlier phase, and trailing local gates join the
    last phase.  Every phase therefore holds at least one burst block
    (except a blockless program, which yields a single phase).
    """
    segments: List[List[ScheduleItem]] = []
    open_segment: List[ScheduleItem] = []
    open_blocks = 0
    for item in items:
        if isinstance(item, CommBlock) and open_blocks >= phase_blocks:
            segments.append(open_segment)
            open_segment = []
            open_blocks = 0
        open_segment.append(item)
        if isinstance(item, CommBlock):
            open_blocks += 1
    if open_segment or not segments:
        segments.append(open_segment)
    return segments


def _segment_items_auto(items: Sequence[ScheduleItem], phase_blocks: int,
                        working: Circuit, network: QuantumNetwork,
                        mapping: QubitMapping):
    """Remap-aware phase sizing: place boundaries where migration is cheap.

    Greedy left-to-right replacement for the fixed ``phase_blocks`` quota:
    each boundary may fall anywhere in a slack window around the quota
    (``max(1, phase_blocks // 2)`` blocks either side), and every candidate
    position is priced by seeding :func:`~repro.partition.oee.oee_repartition`
    — whose objective charges each move its routed
    :func:`~repro.partition.oee.migration_distance_matrix` distance — with
    the mapping the open phase runs under, over a preview of the next
    ``phase_blocks`` burst blocks.  The candidate with the smallest
    migration bill wins; ties prefer the position closest to the quota,
    then the earliest.  The main phase loop re-runs the repartition on the
    chosen segments, so sizing only decides *where* boundaries go, never
    what migrates.

    Returns ``(segments, decisions)`` where ``decisions`` records, per
    boundary, every candidate's block count and priced bill plus the
    chosen count — the auditable trail the sizing tests pin down.
    """
    slack = max(1, phase_blocks // 2)
    lo = max(1, phase_blocks - slack)
    hi = phase_blocks + slack
    block_positions = [i for i, item in enumerate(items)
                       if isinstance(item, CommBlock)]
    segments: List[List[ScheduleItem]] = []
    decisions: List[Dict[str, object]] = []
    start = 0
    block_cursor = 0
    current = mapping
    while len(block_positions) - block_cursor > lo:
        remaining = len(block_positions) - block_cursor
        candidates = []
        for count in range(lo, min(hi, remaining - 1) + 1):
            boundary = block_positions[block_cursor + count]
            preview_last = block_cursor + count + phase_blocks
            preview_end = (block_positions[preview_last]
                           if preview_last < len(block_positions)
                           else len(items))
            preview = _phase_circuit(working, items[boundary:preview_end],
                                     len(segments) + 1)
            repartition = oee_repartition(preview, network, previous=current)
            candidates.append({
                "blocks": count,
                "boundary_item": boundary,
                "migration_cost": repartition.migration_cost,
                "migration_moves": repartition.migration_moves,
                "mapping": repartition.mapping,
            })
        if not candidates:
            break
        chosen = min(candidates,
                     key=lambda c: (c["migration_cost"],
                                    abs(c["blocks"] - phase_blocks),
                                    c["blocks"]))
        decisions.append({
            "boundary": len(segments),
            "candidates": [{"blocks": c["blocks"],
                            "migration_cost": c["migration_cost"],
                            "migration_moves": c["migration_moves"]}
                           for c in candidates],
            "chosen_blocks": chosen["blocks"],
            "migration_cost": chosen["migration_cost"],
        })
        segments.append(list(items[start:chosen["boundary_item"]]))
        start = chosen["boundary_item"]
        block_cursor += chosen["blocks"]
        if chosen["migration_moves"]:
            current = chosen["mapping"]
    if items[start:] or not segments:
        segments.append(list(items[start:]))
    return segments, decisions


def _phase_circuit(working: Circuit, segment: Sequence[ScheduleItem],
                   index: int) -> Circuit:
    """Flatten one phase's items back into a plain circuit."""
    phase = Circuit(working.num_qubits, name=f"{working.name}-phase{index}")
    for item in segment:
        if isinstance(item, CommBlock):
            phase.extend(item.gates)
        else:
            phase.append(item)
    return phase


def compile_autocomm(circuit: Circuit, network: QuantumNetwork,
                     mapping: Optional[QubitMapping] = None,
                     config: Optional[AutoCommConfig] = None,
                     cache=None) -> CompiledProgram:
    """One-call convenience wrapper around :class:`AutoCommCompiler`."""
    return AutoCommCompiler(config).compile(circuit, network, mapping,
                                            cache=cache)
