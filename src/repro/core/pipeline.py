"""AutoComm compilation pipeline.

:class:`AutoCommCompiler` chains the three passes of the paper —
aggregation, assignment and scheduling — behind one call and produces a
:class:`CompiledProgram` carrying the intermediate results and the
evaluation metrics.  The baselines in :mod:`repro.baselines` produce the
same :class:`CompiledProgram` type so that every compiler is measured with
identical code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..comm.blocks import CommBlock
from ..hardware.network import QuantumNetwork
from ..ir.circuit import Circuit
from ..ir.decompose import decompose_to_cx
from ..partition.mapping import QubitMapping
from ..partition.oee import oee_partition
from .aggregation import AggregationResult, aggregate_communications
from .assignment import AssignmentResult, assign_communications
from .metrics import CompilationMetrics, burst_distribution
from .scheduling import ScheduleResult, schedule_communications

__all__ = ["AutoCommConfig", "CompiledProgram", "AutoCommCompiler", "compile_autocomm"]


@dataclass(frozen=True)
class AutoCommConfig:
    """Knobs of the AutoComm pipeline (each maps to one paper ablation)."""

    #: Use gate commutation during aggregation (Figure 17a ablation when off).
    use_commutation: bool = True
    #: Force Cat-Comm for every block (Figure 17b ablation when on).
    cat_only: bool = False
    #: Scheduling strategy: "burst-greedy" (AutoComm) or "greedy" (Figure 17c).
    schedule_strategy: str = "burst-greedy"
    #: Decompose the input to the CX basis before compiling.
    decompose: bool = True
    #: Refinement sweeps of the aggregation pass.
    max_sweeps: int = 3


@dataclass
class CompiledProgram:
    """Result of compiling one distributed program."""

    name: str
    compiler: str
    circuit: Circuit
    mapping: QubitMapping
    network: QuantumNetwork
    blocks: List[CommBlock]
    metrics: CompilationMetrics
    aggregation: Optional[AggregationResult] = None
    assignment: Optional[AssignmentResult] = None
    schedule: Optional[ScheduleResult] = None

    def burst_distribution(self, max_x: Optional[int] = None) -> Dict[int, float]:
        """Figure 15 distribution for this compiled program."""
        return burst_distribution(self.blocks, self.mapping, max_x=max_x)

    def summary(self) -> Dict[str, object]:
        data = self.metrics.as_dict()
        data["compiler"] = self.compiler
        return data


class AutoCommCompiler:
    """The burst-communication-centric compiler of the paper."""

    def __init__(self, config: Optional[AutoCommConfig] = None) -> None:
        self.config = config or AutoCommConfig()

    def compile(self, circuit: Circuit, network: QuantumNetwork,
                mapping: Optional[QubitMapping] = None) -> CompiledProgram:
        """Compile ``circuit`` for ``network``.

        When ``mapping`` is omitted the qubits are placed with the OEE static
        partitioner, exactly as in the paper's experimental setup.
        """
        network.validate_capacity(circuit.num_qubits)
        working = decompose_to_cx(circuit) if self.config.decompose else circuit
        if mapping is None:
            mapping = oee_partition(working, network).mapping

        aggregation = aggregate_communications(
            working, mapping,
            use_commutation=self.config.use_commutation,
            max_sweeps=self.config.max_sweeps)
        assignment = assign_communications(aggregation,
                                           cat_only=self.config.cat_only,
                                           network=network)
        schedule = schedule_communications(assignment, network,
                                           strategy=self.config.schedule_strategy)

        metrics = CompilationMetrics(
            name=circuit.name,
            total_comm=assignment.cost.total_comm,
            tp_comm=assignment.cost.tp_comm,
            cat_comm=assignment.cost.cat_comm,
            peak_rem_cx=assignment.cost.peak_remote_cx,
            latency=schedule.latency,
            num_blocks=len(assignment.blocks),
            num_remote_gates=mapping.count_remote_gates(working),
            total_epr_pairs=assignment.cost.total_epr_pairs,
            total_epr_latency=assignment.cost.total_epr_latency,
        )
        return CompiledProgram(
            name=circuit.name,
            compiler=self._compiler_label(),
            circuit=working,
            mapping=mapping,
            network=network,
            blocks=assignment.blocks,
            metrics=metrics,
            aggregation=aggregation,
            assignment=assignment,
            schedule=schedule,
        )

    def _compiler_label(self) -> str:
        label = "autocomm"
        if not self.config.use_commutation:
            label += "-nocommute"
        if self.config.cat_only:
            label += "-catonly"
        if self.config.schedule_strategy != "burst-greedy":
            label += f"-{self.config.schedule_strategy}"
        return label


def compile_autocomm(circuit: Circuit, network: QuantumNetwork,
                     mapping: Optional[QubitMapping] = None,
                     config: Optional[AutoCommConfig] = None) -> CompiledProgram:
    """One-call convenience wrapper around :class:`AutoCommCompiler`."""
    return AutoCommCompiler(config).compile(circuit, network, mapping)
