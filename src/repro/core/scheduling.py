"""Communication scheduling pass (Section 4.4 of the paper).

The pass turns an assigned program (a sequence of local gates and burst
blocks) into a timed schedule on the distributed machine and reports the
program latency.  It models exactly the constraints the paper discusses:

* each node owns two communication qubits, so at most two remote
  communications can touch a node at any time (``CommResourceTracker``);
* every communication needs an EPR pair whose preparation takes ``t_epr``
  and can be pipelined with earlier computation when a communication qubit
  is free early;
* commutable blocks that share a qubit or node may run in parallel
  ("more block-level parallelism", Figure 12/13);
* sequential TP-Comm blocks that teleport the same hub qubit are fused into
  a teleportation chain, saving ``(n-1)(t_epr + t_tele)`` (Figure 14).

The plain ``greedy`` strategy (used for the Figure 17(c) ablation and for
the baselines) runs the same resource-constrained list scheduler but keeps
strict program order between blocks and performs no fusion.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..comm.blocks import CommBlock, CommScheme
from ..comm.cost import block_latency
from ..hardware.epr import CommResourceTracker
from ..hardware.network import QuantumNetwork
from ..hardware.timing import LatencyModel
from ..ir.commutation import commutes
from ..ir.gates import Gate
from ..obs.span import stage
from ..partition.mapping import QubitMapping
from .aggregation import ScheduleItem
from .assignment import AssignmentResult

__all__ = ["ScheduledOp", "ScheduleResult", "SchedulePlan", "OpProfile",
           "plan_schedule", "schedule_communications", "FusedTPChain",
           "prep_latency_for_pairs", "MigrationOp", "plan_phased_schedule",
           "schedule_phased_communications", "compute_boundary_bubble"]


@dataclass(frozen=True)
class MigrationOp:
    """One inter-phase qubit migration: teleport ``qubit`` between nodes.

    Emitted by the phase-structured pipeline when dynamic remapping moves a
    data qubit to a new home between burst phases.  Scheduled and simulated
    like a single teleport: one end-to-end EPR pair on the (routed)
    ``source``–``target`` pair, comm qubits occupied on both endpoints for
    the preparation plus one ``t_teleport``.
    """

    qubit: int
    source: int
    target: int

    @property
    def nodes(self) -> Tuple[int, int]:
        return (self.source, self.target)

    @property
    def touched_set(self) -> frozenset:
        return frozenset((self.qubit,))

    def num_remote_gates(self, mapping: QubitMapping) -> int:
        return 0


@dataclass
class FusedTPChain:
    """A run of TP-Comm blocks on the same hub qubit, fused into one chain.

    The hub is teleported node-to-node around the chain (A -> B -> C -> ... -> A)
    instead of bouncing back to its home node between blocks, which removes
    ``n - 1`` teleportations and their EPR preparations from the critical path.
    """

    blocks: List[CommBlock]

    @property
    def hub_qubit(self) -> int:
        return self.blocks[0].hub_qubit

    @property
    def touched_set(self) -> Set[int]:
        """Cached union of the chain's block qubit sets (do not mutate)."""
        cached = getattr(self, "_touched", None)
        if cached is None:
            cached = set()
            for block in self.blocks:
                cached |= block.touched_set
            self._touched = cached
        return cached

    def touched_qubits(self) -> Tuple[int, ...]:
        return tuple(sorted(self.touched_set))

    def nodes(self) -> Tuple[int, ...]:
        involved: Set[int] = set()
        for block in self.blocks:
            involved.update(block.nodes)
        return tuple(sorted(involved))

    def itinerary(self) -> Tuple[int, ...]:
        """Nodes visited by the hub in teleport order: home -> remotes -> home."""
        home = self.blocks[0].hub_node
        return (home, *(block.remote_node for block in self.blocks), home)

    def hop_pairs(self) -> Tuple[Tuple[int, int], ...]:
        """The node pair of every teleport hop of the itinerary, in order.

        One EPR pair is consumed per hop; hops between co-located stops
        (consecutive blocks on the same remote node) need none and are
        skipped.  Unlike the all-pairs closure of :meth:`nodes`, these are
        the links the chain actually uses.
        """
        itinerary = self.itinerary()
        return tuple((a, b) for a, b in zip(itinerary, itinerary[1:])
                     if a != b)

    @property
    def gates(self) -> List[Gate]:
        return [gate for block in self.blocks for gate in block.gates]

    def num_teleports(self) -> int:
        """Teleportations after fusion: one per hop plus the final return."""
        return len(self.blocks) + 1

    def duration(self, mapping: QubitMapping, latency: LatencyModel) -> float:
        body = sum(latency.body_latency(block.gates) for block in self.blocks)
        return self.num_teleports() * latency.t_teleport + body


#: Units handled by the scheduler.
SchedulableItem = Union[Gate, CommBlock, FusedTPChain, "MigrationOp"]


@dataclass(frozen=True)
class ScheduledOp:
    """One scheduled operation with its time window."""

    index: int
    kind: str                       # "gate", "cat", "tp", "tp-chain"
    start: float
    end: float
    nodes: Tuple[int, ...] = ()
    num_remote_gates: int = 0
    #: Assignment items covered by this op (> 1 for fused TP chains).
    num_items: int = 1

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class ScheduleResult:
    """Timed schedule of the whole program."""

    ops: List[ScheduledOp]
    latency: float
    resources: CommResourceTracker
    num_comm_ops: int
    num_fused_chains: int
    #: Which schedule variant produced this result: "burst" (commutation-aware
    #: dependencies + TP fusion) or "plain" (strict program order).  The
    #: execution simulator replays the same variant.
    mode: str = "plain"
    #: Whether the winning plan used zero-bubble (overlapped) phase
    #: boundaries instead of hard barriers.  The simulator replays the same
    #: boundary semantics; always ``False`` for single-phase schedules.
    overlap: bool = False
    #: Idle time summed over phase boundaries: the gap between the last
    #: compute op of each phase and the first compute op of the next, minus
    #: the time migration work (EPR preparation included) covers inside the
    #: gap.  Zero for single-phase schedules; the quantity the overlap pass
    #: exists to shrink.
    boundary_bubble: float = 0.0

    def comm_ops(self) -> List[ScheduledOp]:
        return [op for op in self.ops if op.kind != "gate"]

    def num_scheduled_items(self) -> int:
        """Assignment items covered by the schedule (fused chains count all)."""
        return sum(op.num_items for op in self.ops)

    def parallelism_profile(self, resolution: int = 200) -> List[int]:
        """Sampled count of concurrently running communications over time.

        Samples ``resolution + 1`` points covering ``[0, latency]``
        *inclusive*: the final time point is a real sample (an op running
        up to the horizon counts there), and a zero-duration op counts at
        the sample landing exactly on its instant.  Pre-fix, the horizon
        sample was dropped (off-by-one) and zero-duration ops never
        counted anywhere.
        """
        comm = self.comm_ops()
        if not comm or self.latency <= 0:
            return []

        def active(op: ScheduledOp, t: float) -> bool:
            if op.start == op.end:
                return op.start == t
            if t == self.latency:
                return op.start < t <= op.end
            return op.start <= t < op.end

        samples = []
        for i in range(resolution + 1):
            # The horizon sample is the exact latency, not a rounded ratio.
            t = self.latency if i == resolution else self.latency * i / resolution
            samples.append(sum(1 for op in comm if active(op, t)))
        return samples


# ---------------------------------------------------------------------------
# Fusion of sequential TP-Comm blocks
# ---------------------------------------------------------------------------

def _touched_set(item: SchedulableItem) -> frozenset:
    """Cached qubit set of a schedulable item (no per-call allocation)."""
    if isinstance(item, (CommBlock, FusedTPChain, MigrationOp)):
        return item.touched_set
    return item.qubit_set


class _PairwiseCommutation:
    """Memoised item-pair commutation checks within one plan build.

    ``_items_commute`` asks "does every gate of A commute with every gate of
    B?" — naively |A| x |B| gate-pair queries.  Two facts make that cheap:
    gate pairs on disjoint qubits always commute (so only B-gates sharing a
    qubit with the A-gate need checking, found through a per-item
    qubit-to-gates index), and the scheduler asks about the same item pairs
    repeatedly across the lookback window, so the verdict is memoised per
    ordered-id pair.  Memoisation is only valid while the item objects stay
    alive and unchanged, which holds for the duration of one
    :func:`plan_schedule` call.
    """

    def __init__(self) -> None:
        self._memo: Dict[Tuple[int, int], bool] = {}
        self._index: Dict[int, Dict[int, List[Gate]]] = {}

    def items_commute(self, a: SchedulableItem, b: SchedulableItem) -> bool:
        ia, ib = id(a), id(b)
        key = (ia, ib) if ia <= ib else (ib, ia)
        verdict = self._memo.get(key)
        if verdict is None:
            verdict = self._compute(a, b)
            self._memo[key] = verdict
        return verdict

    def _gates_by_qubit(self, item: SchedulableItem) -> Dict[int, List[Gate]]:
        index = self._index.get(id(item))
        if index is None:
            index = defaultdict(list)
            gates = (item.gates if isinstance(item, (CommBlock, FusedTPChain))
                     else (item,))
            for gate in gates:
                for qubit in gate.qubits:
                    index[qubit].append(gate)
            self._index[id(item)] = index
        return index

    def _compute(self, a: SchedulableItem, b: SchedulableItem) -> bool:
        shared = _touched_set(a) & _touched_set(b)
        if not shared:
            return True
        # A gate pair can only fail to commute when it overlaps, and any
        # overlap lies inside the items' shared qubits — so only the gates
        # touching those qubits (found through both items' indices) need
        # pairwise checks; every skipped pair is disjoint and commutes.
        index_a = self._gates_by_qubit(a)
        index_b = self._gates_by_qubit(b)
        checked: Set[Tuple[int, int]] = set()
        for qubit in shared:
            for ga in index_a.get(qubit, ()):
                ga_id = id(ga)
                for gb in index_b.get(qubit, ()):
                    key = (ga_id, id(gb))
                    if key in checked:
                        continue
                    checked.add(key)
                    if not commutes(ga, gb):
                        return False
        return True


def fuse_tp_chains(items: Sequence[ScheduleItem],
                   mapping: QubitMapping,
                   oracle: Optional[_PairwiseCommutation] = None
                   ) -> List[SchedulableItem]:
    """Fuse runs of TP blocks sharing a hub qubit into :class:`FusedTPChain` units.

    Two TP blocks are fused when they teleport the same hub qubit and every
    intervening item either avoids the chain's qubits entirely or commutes
    with all of its blocks (so hopping the state directly from one remote
    node to the next is a commutation-justified reordering).  An intervening
    item that touches the hub always closes the chain: the hub is away from
    its home node mid-chain, so nothing else may act on it.
    """
    if oracle is None:
        oracle = _PairwiseCommutation()
    out: List[SchedulableItem] = []
    open_chain: List[CommBlock] = []
    chain_qubits: Set[int] = set()

    def close() -> None:
        nonlocal open_chain, chain_qubits
        if len(open_chain) >= 2:
            out.append(FusedTPChain(blocks=open_chain))
        elif open_chain:
            out.append(open_chain[0])
        open_chain = []
        chain_qubits = set()

    for item in items:
        if isinstance(item, CommBlock) and item.scheme is CommScheme.TP:
            if open_chain and open_chain[-1].hub_qubit != item.hub_qubit:
                close()
            open_chain.append(item)
            chain_qubits |= item.touched_set
            continue
        if isinstance(item, Gate) and item.is_barrier:
            close()
            out.append(item)
            continue
        if open_chain:
            touched = _touched_set(item)
            if (open_chain[-1].hub_qubit in touched
                    or (not touched.isdisjoint(chain_qubits)
                        and not all(oracle.items_commute(item, block)
                                    for block in open_chain))):
                close()
        out.append(item)
    close()
    return out


# ---------------------------------------------------------------------------
# Dependency graph construction
# ---------------------------------------------------------------------------

def _item_qubits(item: SchedulableItem, num_qubits: int) -> Tuple[int, ...]:
    if isinstance(item, (CommBlock, FusedTPChain)):
        return item.touched_qubits()
    if item.is_barrier:
        return tuple(range(num_qubits))
    return item.qubits


def _items_commute(a: SchedulableItem, b: SchedulableItem) -> bool:
    """Does every gate of ``a`` commute with every gate of ``b``?

    Standalone (unmemoised) helper; the plan builder routes the same check
    through :class:`_PairwiseCommutation` so the verdict is computed once
    per item pair.
    """
    return _PairwiseCommutation().items_commute(a, b)


def _build_dependencies(items: Sequence[SchedulableItem], num_qubits: int,
                        commutation_aware: bool,
                        lookback: int = 12,
                        oracle: Optional[_PairwiseCommutation] = None,
                        collect_open: bool = False):
    """Return predecessor lists per item index.

    With ``commutation_aware`` enabled, an item may skip the dependency on
    the most recent items sharing a qubit when they commute (pairwise,
    bounded lookback), which is what allows two commutable blocks with a
    shared qubit or node to run in parallel.

    With ``collect_open`` the return value is ``(preds, open_qubits)``
    where ``open_qubits[i]`` is the set of item ``i``'s qubits for which
    *no* predecessor was chosen — the qubit was never touched before, or
    everything touching it within the window commuted and no beyond-window
    anchor exists.  The overlap stitch pass uses these to gate items on the
    cross-phase retire frontier of exactly the qubits whose ordering the
    intra-phase graph does not already carry.
    """
    open_qubits: List[Set[int]] = []
    if not commutation_aware:
        # Plain program order: each item depends on the latest earlier item
        # per qubit, so only that latest index needs tracking.
        preds = []
        last_on_qubit: Dict[int, int] = {}
        for index, item in enumerate(items):
            if isinstance(item, Gate) and item.is_barrier:
                qubits = range(num_qubits)
            else:
                qubits = _touched_set(item)
            chosen = {last_on_qubit[q] for q in qubits if q in last_on_qubit}
            preds.append(sorted(chosen))
            if collect_open:
                open_qubits.append({q for q in qubits
                                    if q not in last_on_qubit})
            for qubit in qubits:
                last_on_qubit[qubit] = index
        return (preds, open_qubits) if collect_open else preds

    if oracle is None:
        oracle = _PairwiseCommutation()
    preds: List[List[int]] = [[] for _ in items]
    history: Dict[int, List[int]] = {q: [] for q in range(num_qubits)}
    for index, item in enumerate(items):
        # Iterate the cached qubit set directly: the iteration order does
        # not influence the chosen predecessor set (each qubit's history
        # chain is scanned independently and ``chosen``/``preds`` are
        # order-insensitive).
        if isinstance(item, Gate) and item.is_barrier:
            qubits = range(num_qubits)
        else:
            qubits = _touched_set(item)
        chosen: Set[int] = set()
        open_set: Set[int] = set()
        both_blocks_possible = isinstance(item, (CommBlock, FusedTPChain))
        for qubit in qubits:
            chain = history[qubit]
            if not chain:
                open_set.add(qubit)
                continue
            depends_on_someone = False
            for offset, prev_index in enumerate(reversed(chain)):
                if offset >= lookback:
                    chosen.add(prev_index)
                    depends_on_someone = True
                    break
                prev_item = items[prev_index]
                if (both_blocks_possible
                        and isinstance(prev_item, (CommBlock, FusedTPChain))
                        and oracle.items_commute(item, prev_item)):
                    # Commutable block pair: no ordering needed; keep looking
                    # further back for the real dependency.
                    continue
                chosen.add(prev_index)
                depends_on_someone = True
                break
            if not depends_on_someone:
                # Everything in the window commuted; anchor on the oldest item
                # beyond the window if one exists.
                if len(chain) > lookback:
                    chosen.add(chain[-lookback - 1])
                else:
                    open_set.add(qubit)
        preds[index] = sorted(chosen)
        if collect_open:
            open_qubits.append(open_set)
        for qubit in qubits:
            history[qubit].append(index)
    return (preds, open_qubits) if collect_open else preds


# ---------------------------------------------------------------------------
# Schedule planning (shared with the execution simulator)
# ---------------------------------------------------------------------------

@dataclass
class SchedulePlan:
    """Schedulable items plus their dependency graph.

    Both the analytical list scheduler below and the discrete-event execution
    engine in :mod:`repro.sim` consume the same plan, so deterministic
    simulation replays exactly the units and ordering constraints the
    analytical latency was computed from.
    """

    items: List[SchedulableItem]
    preds: List[List[int]]
    num_fused_chains: int
    burst: bool
    #: Per-item qubit mappings for phase-structured plans (``None`` for the
    #: single-mapping plans of the static pipeline).  A phased program's
    #: blocks were aggregated under their phase's mapping, so durations and
    #: remote-gate counts must be derived from that mapping, not the
    #: program-level one.
    item_mappings: Optional[List[QubitMapping]] = None
    #: Whether phase boundaries were stitched with the zero-bubble overlap
    #: pass (per-qubit migration/compute edges) instead of hard barriers.
    #: Always ``False`` for single-mapping plans.
    overlap: bool = False
    #: Phase index per item for phase-structured plans (``None`` for the
    #: static pipeline).  Migrations carry the index of the phase they move
    #: into; the boundary a migration belongs to is therefore
    #: ``item_phases[i] - 1``.
    item_phases: Optional[List[int]] = None
    #: Lazily built caches shared by every consumer of the plan (the
    #: analytical scheduler and all Monte-Carlo trial engines).
    _succs: Optional[List[List[int]]] = field(
        default=None, repr=False, compare=False)
    _profiles: Optional[Dict[Tuple[int, int],
                             Tuple[QubitMapping, LatencyModel,
                                   List["OpProfile"]]]] = field(
        default=None, repr=False, compare=False)

    @property
    def mode(self) -> str:
        return "burst" if self.burst else "plain"

    def __getstate__(self):
        """Pickle without the lazy caches.

        ``_profiles`` is keyed by object identity (``id(mapping)`` /
        ``id(latency)``), so its entries are meaningless in another process;
        both caches rebuild on demand.  Dropping them is what lets a plan
        travel to Monte-Carlo worker processes (and, eventually, a compile
        cache) at minimal size.
        """
        state = self.__dict__.copy()
        state["_succs"] = None
        state["_profiles"] = None
        return state

    def __setstate__(self, state):
        """Restore a plan, re-initialising the lazy caches explicitly.

        The default ``__dict__.update`` restore would happen to leave the
        cache slots at whatever ``__getstate__`` stored, but that symmetry
        is an accident callers should not depend on; resetting here makes
        unpickled (and :mod:`repro.persist`-deserialized, which reuses this
        path) plans safe by construction: both caches rebuild on demand.
        """
        self.__dict__.update(state)
        self._succs = None
        self._profiles = None

    def successors(self) -> List[List[int]]:
        if self._succs is None:
            succs: List[List[int]] = [[] for _ in self.items]
            for index, plist in enumerate(self.preds):
                for p in plist:
                    succs[p].append(index)
            self._succs = succs
        return self._succs

    def item_count(self, index: int) -> int:
        """Assignment items covered by plan unit ``index``."""
        item = self.items[index]
        return len(item.blocks) if isinstance(item, FusedTPChain) else 1

    def item_mapping(self, index: int, default: QubitMapping) -> QubitMapping:
        """Mapping plan unit ``index`` executes under (phase-aware)."""
        if self.item_mappings is not None:
            return self.item_mappings[index]
        return default

    def op_profiles(self, mapping: QubitMapping,
                    latency: LatencyModel) -> List["OpProfile"]:
        """Trial-invariant (kind, duration, nodes, item-count) per plan unit.

        Gate and block durations depend only on the plan, the mapping and
        the latency model, so Monte-Carlo execution computes them once here
        instead of once per trial per event.
        """
        if self._profiles is None:
            self._profiles = {}
        key = (id(mapping), id(latency))
        entry = self._profiles.get(key)
        # The cached entry keeps references to the keyed objects (so their
        # ids cannot be reused while the entry lives) and is validated by
        # identity before use.
        if entry is not None and entry[0] is mapping and entry[1] is latency:
            return entry[2]
        profiles: List[OpProfile] = []
        for index, item in enumerate(self.items):
            item_mapping = self.item_mapping(index, mapping)
            if isinstance(item, Gate):
                profiles.append(OpProfile(
                    kind="gate", duration=latency.gate_latency(item),
                    nodes=(), num_items=1))
            elif isinstance(item, MigrationOp):
                profiles.append(OpProfile(
                    kind="migration", duration=latency.t_teleport,
                    nodes=item.nodes, num_items=1,
                    prep_pairs=(item.nodes,)))
            elif isinstance(item, FusedTPChain):
                profiles.append(OpProfile(
                    kind="tp-chain",
                    duration=item.duration(item_mapping, latency),
                    nodes=tuple(item.nodes()),
                    num_items=len(item.blocks),
                    prep_pairs=item.hop_pairs()))
            else:
                profiles.append(OpProfile(
                    kind="tp" if item.scheme is CommScheme.TP else "cat",
                    duration=block_latency(item, item_mapping, latency),
                    nodes=tuple(item.nodes), num_items=1,
                    prep_pairs=(tuple(item.nodes),)))
        self._profiles[key] = (mapping, latency, profiles)
        return profiles


@dataclass(frozen=True)
class OpProfile:
    """Static execution profile of one plan unit (see ``op_profiles``)."""

    kind: str
    duration: float
    nodes: Tuple[int, ...]
    num_items: int
    #: Node pairs whose EPR preparations this op consumes — the single
    #: hub<->remote pair for a block, the consecutive teleport hops of the
    #: itinerary for a fused chain (NOT the all-pairs closure of ``nodes``),
    #: empty for local gates.  Pairs may repeat: a chain revisiting a link
    #: generates one EPR pair per visit.
    prep_pairs: Tuple[Tuple[int, int], ...] = ()


def plan_schedule(assignment: AssignmentResult, burst: bool) -> SchedulePlan:
    """Build the schedulable units and dependency graph for one program.

    Plans are memoised on the assignment object: the burst-greedy scheduler,
    the plain fallback and the execution simulator all ask for the same two
    plans, and the commutation-aware dependency build dominates planning
    cost.  The plan depends only on the assignment's items (which do not
    change after assignment), so the memo is sound.
    """
    cache: Dict[bool, SchedulePlan] = getattr(assignment, "_plan_cache", None)
    if cache is None:
        cache = {}
        assignment._plan_cache = cache
    plan = cache.get(burst)
    if plan is not None:
        return plan

    with stage(f"plan-{'burst' if burst else 'plain'}") as span:
        mapping = assignment.mapping
        num_qubits = assignment.aggregation.circuit.num_qubits
        items: List[SchedulableItem] = list(assignment.items)
        num_fused = 0
        oracle = _PairwiseCommutation()
        if burst:
            fused = fuse_tp_chains(items, mapping, oracle=oracle)
            num_fused = sum(isinstance(i, FusedTPChain) for i in fused)
            items = fused
        preds = _build_dependencies(items, num_qubits, commutation_aware=burst,
                                    oracle=oracle)
        if span.enabled:
            span.set("items", len(items))
            span.set("fused_chains", num_fused)
    plan = SchedulePlan(items=items, preds=preds, num_fused_chains=num_fused,
                        burst=burst)
    # When fusion changed nothing, the burst and plain plans schedule the
    # same units — share one profile cache so durations are computed once.
    other = cache.get(not burst)
    if (other is not None and len(other.items) == len(plan.items)
            and all(a is b for a, b in zip(other.items, plan.items))):
        if other._profiles is None:
            other._profiles = {}
        plan._profiles = other._profiles
    cache[burst] = plan
    return plan


# ---------------------------------------------------------------------------
# Resource-constrained list scheduling
# ---------------------------------------------------------------------------

def schedule_communications(assignment: AssignmentResult,
                            network: QuantumNetwork,
                            strategy: str = "burst-greedy") -> ScheduleResult:
    """Schedule an assigned program onto the network.

    Args:
        assignment: output of :func:`repro.core.assignment.assign_communications`.
        network: the distributed machine (latency model and comm-qubit counts).
        strategy: ``"burst-greedy"`` for the full AutoComm schedule
            (commutation-aware block parallelism plus TP fusion) or
            ``"greedy"`` for the plain as-soon-as-possible schedule used by
            the baselines and the Figure 17(c) ablation.
    """
    if strategy not in ("burst-greedy", "greedy"):
        raise ValueError(f"unknown scheduling strategy {strategy!r}")
    with stage("scheduling") as span:
        if strategy == "burst-greedy":
            # The burst-aware schedule is adaptive: commutation-driven
            # reordering and TP fusion almost always help, but greedy list
            # scheduling under resource constraints can exhibit anomalies, so
            # keep whichever of the two schedules finishes earlier.
            burst_result = _run_schedule(assignment, network, burst=True)
            plain_result = _run_schedule(assignment, network, burst=False)
            result = (burst_result
                      if burst_result.latency <= plain_result.latency
                      else plain_result)
        else:
            result = _run_schedule(assignment, network, burst=False)
        _record_schedule_span(span, result)
        return result


def _record_schedule_span(span, result: ScheduleResult) -> None:
    """Attach a schedule's headline statistics to its stage span."""
    if not span.enabled:
        return
    span.set("ops", len(result.ops))
    span.set("comm_ops", result.num_comm_ops)
    span.set("fused_chains", result.num_fused_chains)
    span.set("latency", result.latency)
    span.set("burst_won", 1 if result.mode == "burst" else 0)
    span.set("overlap_won", 1 if result.overlap else 0)
    span.set("boundary_bubble", result.boundary_bubble)


def _run_schedule(assignment: AssignmentResult, network: QuantumNetwork,
                  burst: bool, plan: Optional[SchedulePlan] = None
                  ) -> ScheduleResult:
    if plan is None:
        plan = plan_schedule(assignment, burst=burst)
    return _execute_plan(plan, network, assignment.mapping)


def _execute_plan(plan: SchedulePlan, network: QuantumNetwork,
                  mapping: QubitMapping) -> ScheduleResult:
    """Resource-constrained list scheduling of one plan (phase-aware)."""
    latency = network.latency
    items = plan.items
    succs = plan.successors()
    indegree = [len(plist) for plist in plan.preds]
    # Per-item kinds/durations/nodes are trial-invariant; computing them
    # through the plan's profile cache shares the work between the burst and
    # plain schedule runs and with the execution simulator.
    profiles = plan.op_profiles(mapping, latency)

    resources = CommResourceTracker(network)
    ready_time = [0.0] * len(items)
    finish_time = [0.0] * len(items)
    scheduled: List[Optional[ScheduledOp]] = [None] * len(items)
    prep_latencies: Dict[Tuple[Tuple[int, int], ...], float] = {}

    heap: List[Tuple[float, int]] = []
    for index, degree in enumerate(indegree):
        if degree == 0:
            heapq.heappush(heap, (0.0, index))

    completed = 0
    while heap:
        ready, index = heapq.heappop(heap)
        profile = profiles[index]
        kind = profile.kind
        if kind == "gate":
            op = ScheduledOp(index=index, kind="gate", start=ready,
                             end=ready + profile.duration)
        else:
            nodes = profile.nodes
            prep = prep_latencies.get(profile.prep_pairs)
            if prep is None:
                prep = prep_latency_for_pairs(network, profile.prep_pairs)
                prep_latencies[profile.prep_pairs] = prep
            start = _reserve_comm(resources, nodes, ready, profile.duration,
                                  prep, label=f"{kind}-{index}")
            item = items[index]
            item_map = plan.item_mapping(index, mapping)
            if kind == "tp-chain":
                num_remote = sum(b.num_remote_gates(item_map)
                                 for b in item.blocks)
            else:
                num_remote = item.num_remote_gates(item_map)
            op = ScheduledOp(index=index, kind=kind, start=start,
                             end=start + profile.duration, nodes=nodes,
                             num_remote_gates=num_remote,
                             num_items=profile.num_items)
        scheduled[index] = op
        finish_time[index] = op.end
        completed += 1
        for succ in succs[index]:
            ready_time[succ] = max(ready_time[succ], op.end)
            indegree[succ] -= 1
            if indegree[succ] == 0:
                heapq.heappush(heap, (ready_time[succ], succ))

    if completed != len(items):  # pragma: no cover - defensive
        raise RuntimeError("dependency cycle in schedule construction")

    ops = [op for op in scheduled if op is not None]
    makespan = max((op.end for op in ops), default=0.0)
    num_comm = sum(1 for op in ops if op.kind != "gate")
    return ScheduleResult(ops=ops, latency=makespan, resources=resources,
                          num_comm_ops=num_comm,
                          num_fused_chains=plan.num_fused_chains,
                          mode=plan.mode, overlap=plan.overlap)


def prep_latency_for_pairs(network: QuantumNetwork,
                           pairs: Sequence[Tuple[int, int]]) -> float:
    """EPR preparation latency for the pairs one op actually consumes.

    All preparations run concurrently, so the op waits for the slowest
    pair.  For a fused TP chain ``pairs`` are the consecutive hops of the
    teleport itinerary (home -> remote_1 -> ... -> home), *not* the
    all-pairs closure of the chain's node set — the itinerary never links
    most of those pairs, and on a non-uniform topology charging the
    slowest unused pair overstates the chain's critical path.

    Each pair's latency is ``QuantumNetwork.epr_latency`` — on a routed
    topology the link-latency combination of the pair's entanglement route
    (heterogeneous links priced individually by the network's
    :class:`~repro.hardware.links.LinkModel`), so the analytical schedule
    charges exactly what the per-link discrete-event replay realises.
    """
    if not pairs:
        return network.latency.t_epr
    return max(network.epr_latency(a, b) for a, b in pairs)


def _epr_prep_latency(network: QuantumNetwork, nodes: Sequence[int]) -> float:
    """Pre-PR prep-latency accounting over a node set's all-pairs closure.

    Kept verbatim for :mod:`repro.core.scheduling_reference`: it charges a
    fused chain the slowest pair of its *node set*, including pairs the
    teleport itinerary never links — the fused-chain latency bug fixed by
    :func:`prep_latency_for_pairs`.  On uniform (all-to-all) latencies the
    two agree, which is what the reference-equivalence tests exercise.
    """
    nodes = list(nodes)
    if len(nodes) < 2:
        return network.latency.t_epr
    return max(network.epr_latency(a, b)
               for i, a in enumerate(nodes) for b in nodes[i + 1:])


def _reserve_comm(resources: CommResourceTracker, nodes: Sequence[int],
                  ready: float, duration: float, prep: float,
                  label: str) -> float:
    """Find and book the earliest feasible window for a communication.

    The communication qubits on every involved node are occupied from
    ``start - prep`` (EPR preparation, pipelined with earlier computation
    when a qubit is free early) until the protocol finishes.
    """
    earliest_prep = max(0.0, ready - prep)
    prep_start, _ = resources.earliest_joint(list(nodes), prep + duration,
                                             not_before=earliest_prep)
    start = prep_start + prep
    for node in nodes:
        resources.reserve(node, prep_start, start + duration, label=label)
    return start


# ---------------------------------------------------------------------------
# Phase-structured scheduling (dynamic inter-phase remapping)
# ---------------------------------------------------------------------------

def plan_phased_schedule(phases: Sequence, migrations: Sequence[Sequence[MigrationOp]],
                         burst: bool, overlap: bool = False) -> SchedulePlan:
    """Build one combined plan over a phase-structured program.

    ``phases`` are the pipeline's ``CompiledPhase`` objects (anything with
    ``mapping`` and ``assignment`` works); ``migrations`` holds one list of
    :class:`MigrationOp` per phase boundary (``len(phases) - 1`` entries).

    Construction runs the :mod:`repro.core.schedule_passes` pipeline:
    per-phase TP fusion and dependency graphs (commutation-aware under
    ``burst``, strict program order otherwise) under each phase's own
    mapping, then one stitch pass.  With ``overlap`` off, phase boundaries
    are hard barriers (``barrier-phases``): the boundary's migration
    teleports depend on every sink of the earlier phase, and every source
    of the later phase depends on the boundary — byte-identical to the
    pre-pass-pipeline plans.  With ``overlap`` on, boundaries become
    per-qubit edges (``overlap-boundaries``): a migration starts as soon as
    its qubit's last earlier-phase ops retire and later-phase items wait
    only on the frontiers of the qubits they touch.  With a single phase
    the plan degenerates to the static plan's items and dependencies either
    way.

    Plans are memoised on the first phase's assignment object, keyed by
    ``(burst, overlap)``, so the analytical scheduler and the execution
    simulator replay the *same* plan object — deterministic replay then
    matches the analytical latency bit-for-bit for the same reason it does
    on the static pipeline.  The cached entry keeps the exact phase and
    migration objects it was built from and is validated by identity, so a
    call with a different phase or migration list (sharing the same first
    assignment) rebuilds instead of returning a stale plan.
    """
    if len(migrations) != max(0, len(phases) - 1):
        raise ValueError("need exactly one migration list per phase boundary")
    anchor = phases[0].assignment
    cache = getattr(anchor, "_phased_plan_cache", None)
    if cache is None:
        cache = {}
        anchor._phased_plan_cache = cache
    entry = cache.get((burst, overlap))
    if entry is not None:
        cached_phases, cached_migrations, plan = entry
        if (len(cached_phases) == len(phases)
                and all(a is b for a, b in zip(cached_phases, phases))
                and len(cached_migrations) == len(migrations)
                and all(len(x) == len(y) and all(m is n for m, n in zip(x, y))
                        for x, y in zip(cached_migrations, migrations))):
            return plan

    # Imported here: schedule_passes imports this module's primitives at
    # its own top level, so the dependency must stay one-way at import time.
    from .schedule_passes import ScheduleDraft, run_schedule_passes

    with stage(f"plan-phased-{'burst' if burst else 'plain'}") as span:
        draft = ScheduleDraft.from_phases(
            phases, migrations, burst=burst, overlap=overlap,
            num_qubits=anchor.aggregation.circuit.num_qubits)
        run_schedule_passes(draft)
        if span.enabled:
            span.set("items", len(draft.items))
            span.set("fused_chains", draft.num_fused_chains)
            span.set("phases", len(phases))
            span.set("overlap", 1 if overlap else 0)

    plan = SchedulePlan(items=draft.items, preds=draft.preds,
                        num_fused_chains=draft.num_fused_chains, burst=burst,
                        item_mappings=draft.item_mappings,
                        overlap=overlap, item_phases=draft.item_phases)
    cache[(burst, overlap)] = (tuple(phases),
                               tuple(tuple(b) for b in migrations), plan)
    return plan


def compute_boundary_bubble(plan: SchedulePlan,
                            ops: Sequence[ScheduledOp]) -> float:
    """Compute-idle time at phase boundaries of one scheduled phased plan.

    For each pair of consecutive phases, the bubble is the gap between the
    last compute (non-migration) op of the earlier phase retiring and the
    first compute op of the later phase starting — the stretch where the
    compute pipeline is stalled and only migration teleports (if anything)
    run.  Under barrier boundaries every migration bill shows up here;
    overlapped schedules pull later-phase compute into the window, shrinking
    the gap (clamped at zero when the phase windows interleave).  This is
    the phased-schedule analogue of a pipeline bubble in zero-bubble
    pipeline parallelism.  Returns ``0.0`` for single-phase or non-phased
    plans.
    """
    if plan.item_phases is None:
        return 0.0
    windows: Dict[int, List[float]] = {}
    for op in ops:
        if isinstance(plan.items[op.index], MigrationOp):
            continue
        phase = plan.item_phases[op.index]
        window = windows.get(phase)
        if window is None:
            windows[phase] = [op.start, op.end]
        else:
            window[0] = min(window[0], op.start)
            window[1] = max(window[1], op.end)
    if len(windows) < 2:
        return 0.0
    ordered = sorted(windows)
    return sum(max(0.0, windows[later][0] - windows[earlier][1])
               for earlier, later in zip(ordered, ordered[1:]))


def schedule_phased_communications(phases: Sequence,
                                   migrations: Sequence[Sequence[MigrationOp]],
                                   network: QuantumNetwork,
                                   strategy: str = "burst-greedy",
                                   overlap: bool = False
                                   ) -> ScheduleResult:
    """Schedule a phase-structured program (phases + migration teleports).

    The same adaptive strategy as :func:`schedule_communications`: under
    ``"burst-greedy"`` both the burst-aware and the plain combined plans are
    scheduled and the earlier-finishing one wins.  With ``overlap`` the
    candidate set doubles to include the zero-bubble (overlapped-boundary)
    plans, preferred on ties — greedy list scheduling under resource
    constraints can exhibit anomalies, so keeping the barrier plans in the
    pool makes the overlapped schedule *never worse* than the barrier one
    by construction.
    """
    if strategy not in ("burst-greedy", "greedy"):
        raise ValueError(f"unknown scheduling strategy {strategy!r}")
    default_mapping = phases[0].mapping
    with stage("scheduling") as span:
        # (burst, overlap) variants in preference order: strict improvement
        # required to displace an earlier candidate, so overlap beats
        # barrier and burst beats plain on equal latency.
        if strategy == "burst-greedy":
            variants = [(True, True), (False, True)] if overlap else []
            variants += [(True, False), (False, False)]
        else:
            variants = [(False, True)] if overlap else []
            variants += [(False, False)]
        result: Optional[ScheduleResult] = None
        result_plan: Optional[SchedulePlan] = None
        for burst, overlapped in variants:
            plan = plan_phased_schedule(phases, migrations, burst=burst,
                                        overlap=overlapped)
            candidate = _execute_plan(plan, network, default_mapping)
            if result is None or candidate.latency < result.latency:
                result, result_plan = candidate, plan
        result.boundary_bubble = compute_boundary_bubble(result_plan,
                                                         result.ops)
        _record_schedule_span(span, result)
        return result
